//! The §5 headline findings.

use crate::stats;
use aipan_core::dataset::Dataset;
use aipan_taxonomy::records::AnnotationPayload;
use aipan_taxonomy::{
    AccessLabel, ChoiceLabel, DataTypeCategory, ProtectionLabel, RetentionLabel, Sector,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// The §5 statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Insights {
    /// Analysis population (companies with ≥1 annotation; paper: 2529).
    pub population: usize,
    /// Companies collecting from ≥3 data-type categories (paper: 93.5%).
    pub cats_ge_3: usize,
    /// Companies collecting from >13 categories (paper: 52.8%).
    pub cats_gt_13: usize,
    /// Companies collecting from >22 categories (paper: 13.0%).
    pub cats_gt_22: usize,
    /// Companies collecting from >25 categories (paper: 4.8%).
    pub cats_gt_25: usize,
    /// Stated retention periods: median days (paper: 2 years).
    pub retention_median_days: u32,
    /// Stated retention minimum (days) and the domains stating it
    /// (paper: 1 day at arescre.com and pg.com).
    pub retention_min: (u32, Vec<String>),
    /// Stated retention maximum (days) and the domains stating it
    /// (paper: 50 years at bms.com).
    pub retention_max: (u32, Vec<String>),
    /// Companies with any generic protection mention (paper: >70%).
    pub protection_any_generic: usize,
    /// Companies with at least one *specific* protection practice
    /// (paper: 39.9%).
    pub protection_specific: usize,
    /// Companies with read/write access — edit, partial or full delete
    /// (paper: 77.5%).
    pub access_read_write: usize,
    /// Companies with read-only access — only view/export (paper: 0.5%).
    pub access_read_only: usize,
    /// Companies with no access mention at all (paper: 22.0%).
    pub access_none: usize,
    /// Companies with any opt-out choice (paper: ~two-thirds).
    pub optout_any: usize,
    /// Companies with opt-in (paper: <20%).
    pub optin: usize,
    /// Companies whose policy mentions selling data ("data sharing →
    /// data for sale"; paper: 26).
    pub data_for_sale: Vec<String>,
    /// The most active sector by average distinct categories (paper:
    /// consumer discretionary, 16.3 categories / 48.8 descriptors).
    pub most_active_sector: (Sector, f64, f64),
}

impl Insights {
    /// Compute the §5 insights over a dataset.
    pub fn compute(dataset: &Dataset) -> Insights {
        let population = dataset.annotated().count();

        // Distinct data-type categories per company.
        let mut cats_ge_3 = 0;
        let mut cats_gt_13 = 0;
        let mut cats_gt_22 = 0;
        let mut cats_gt_25 = 0;
        for policy in dataset.annotated() {
            let distinct: BTreeSet<DataTypeCategory> = policy
                .annotations
                .iter()
                .filter_map(|a| match &a.payload {
                    AnnotationPayload::DataType { category, .. } => Some(*category),
                    _ => None,
                })
                .collect();
            let n = distinct.len();
            if n >= 3 {
                cats_ge_3 += 1;
            }
            if n > 13 {
                cats_gt_13 += 1;
            }
            if n > 22 {
                cats_gt_22 += 1;
            }
            if n > 25 {
                cats_gt_25 += 1;
            }
        }

        // Stated retention periods.
        let mut periods: Vec<(u32, String)> = Vec::new();
        for policy in dataset.annotated() {
            for ann in &policy.annotations {
                if let AnnotationPayload::Retention {
                    label: RetentionLabel::Stated,
                    period_days: Some(days),
                } = &ann.payload
                {
                    periods.push((*days, policy.domain.clone()));
                }
            }
        }
        let mut days_only: Vec<u32> = periods.iter().map(|(d, _)| *d).collect();
        let retention_median_days = stats::median(&mut days_only);
        let min_days = periods.iter().map(|(d, _)| *d).min().unwrap_or(0);
        let max_days = periods.iter().map(|(d, _)| *d).max().unwrap_or(0);
        let domains_for = |target: u32| -> Vec<String> {
            let mut v: Vec<String> = periods
                .iter()
                .filter(|(d, _)| *d == target)
                .map(|(_, dom)| dom.clone())
                .collect();
            v.sort();
            v.dedup();
            v
        };

        // Protection specificity.
        let mut protection_any_generic = 0;
        let mut protection_specific = 0;
        for policy in dataset.annotated() {
            let mut generic = false;
            let mut specific = false;
            for ann in &policy.annotations {
                if let AnnotationPayload::Protection { label } = &ann.payload {
                    if *label == ProtectionLabel::Generic {
                        generic = true;
                    } else {
                        specific = true;
                    }
                }
            }
            if generic {
                protection_any_generic += 1;
            }
            if specific {
                protection_specific += 1;
            }
        }

        // Access split.
        let mut access_read_write = 0;
        let mut access_read_only = 0;
        let mut access_none = 0;
        for policy in dataset.annotated() {
            let labels: BTreeSet<AccessLabel> = policy
                .annotations
                .iter()
                .filter_map(|a| match &a.payload {
                    AnnotationPayload::Access { label } => Some(*label),
                    _ => None,
                })
                .collect();
            if labels.is_empty() {
                access_none += 1;
            } else if labels.iter().any(|l| l.is_write()) {
                access_read_write += 1;
            } else if labels.contains(&AccessLabel::View) || labels.contains(&AccessLabel::Export) {
                access_read_only += 1;
            } else {
                // Deactivate only: neither read/write nor read-only.
            }
        }

        // Choices.
        let mut optout_any = 0;
        let mut optin = 0;
        for policy in dataset.annotated() {
            let mut any_optout = false;
            let mut any_optin = false;
            for ann in &policy.annotations {
                if let AnnotationPayload::Choice { label } = &ann.payload {
                    match label {
                        ChoiceLabel::OptOutViaContact | ChoiceLabel::OptOutViaLink => {
                            any_optout = true
                        }
                        ChoiceLabel::OptIn => any_optin = true,
                        _ => {}
                    }
                }
            }
            if any_optout {
                optout_any += 1;
            }
            if any_optin {
                optin += 1;
            }
        }

        // Data for sale.
        let mut data_for_sale: Vec<String> = dataset
            .annotated()
            .filter(|p| {
                p.annotations.iter().any(|a| {
                    matches!(&a.payload, AnnotationPayload::Purpose { descriptor, .. }
                        if descriptor == "data for sale")
                })
            })
            .map(|p| p.domain.clone())
            .collect();
        data_for_sale.sort();

        // Most active sector: average distinct categories and descriptors.
        let mut most_active = (Sector::Energy, 0.0, 0.0);
        for sector in Sector::ALL {
            let mut cat_counts: Vec<f64> = Vec::new();
            let mut desc_counts: Vec<f64> = Vec::new();
            for policy in dataset.annotated().filter(|p| p.sector == sector) {
                let cats: BTreeSet<DataTypeCategory> = policy
                    .annotations
                    .iter()
                    .filter_map(|a| match &a.payload {
                        AnnotationPayload::DataType { category, .. } => Some(*category),
                        _ => None,
                    })
                    .collect();
                let descs = policy
                    .annotations
                    .iter()
                    .filter(|a| matches!(a.payload, AnnotationPayload::DataType { .. }))
                    .count();
                cat_counts.push(cats.len() as f64);
                desc_counts.push(descs as f64);
            }
            let (cat_mean, _) = stats::mean_sd(&cat_counts);
            let (desc_mean, _) = stats::mean_sd(&desc_counts);
            if cat_mean > most_active.1 {
                most_active = (sector, cat_mean, desc_mean);
            }
        }

        Insights {
            population,
            cats_ge_3,
            cats_gt_13,
            cats_gt_22,
            cats_gt_25,
            retention_median_days,
            retention_min: (min_days, domains_for(min_days)),
            retention_max: (max_days, domains_for(max_days)),
            protection_any_generic,
            protection_specific,
            access_read_write,
            access_read_only,
            access_none,
            optout_any,
            optin,
            data_for_sale,
            most_active_sector: most_active,
        }
    }

    /// Render as text with the paper's reference values.
    pub fn render(&self) -> String {
        let pct = |n: usize| {
            if self.population == 0 {
                0.0
            } else {
                n as f64 / self.population as f64 * 100.0
            }
        };
        let mut out = String::new();
        let _ = writeln!(out, "Section 5 insights (population {})", self.population);
        let _ = writeln!(
            out,
            "  ≥3 data-type categories:  {:>6} ({:.1}%)   [paper: 93.5%]",
            self.cats_ge_3,
            pct(self.cats_ge_3)
        );
        let _ = writeln!(
            out,
            "  >13 categories:           {:>6} ({:.1}%)   [paper: 52.8%]",
            self.cats_gt_13,
            pct(self.cats_gt_13)
        );
        let _ = writeln!(
            out,
            "  >22 categories:           {:>6} ({:.1}%)   [paper: 13.0%]",
            self.cats_gt_22,
            pct(self.cats_gt_22)
        );
        let _ = writeln!(
            out,
            "  >25 categories:           {:>6} ({:.1}%)   [paper: 4.8%]",
            self.cats_gt_25,
            pct(self.cats_gt_25)
        );
        let _ = writeln!(
            out,
            "  retention median:         {} days (~{:.1} years)   [paper: 2 years]",
            self.retention_median_days,
            self.retention_median_days as f64 / 365.0
        );
        let _ = writeln!(
            out,
            "  retention min:            {} day(s) at {:?}   [paper: 1 day, arescre.com & pg.com]",
            self.retention_min.0, self.retention_min.1
        );
        let _ = writeln!(
            out,
            "  retention max:            {} days (~{:.0} years) at {:?}   [paper: 50 years, bms.com]",
            self.retention_max.0,
            self.retention_max.0 as f64 / 365.0,
            self.retention_max.1
        );
        let _ = writeln!(
            out,
            "  generic protection:       {:>6} ({:.1}%)   [paper: >70%]",
            self.protection_any_generic,
            pct(self.protection_any_generic)
        );
        let _ = writeln!(
            out,
            "  specific protection:      {:>6} ({:.1}%)   [paper: 39.9%]",
            self.protection_specific,
            pct(self.protection_specific)
        );
        let _ = writeln!(
            out,
            "  read/write access:        {:>6} ({:.1}%)   [paper: 77.5%]",
            self.access_read_write,
            pct(self.access_read_write)
        );
        let _ = writeln!(
            out,
            "  read-only access:         {:>6} ({:.1}%)   [paper: 0.5%]",
            self.access_read_only,
            pct(self.access_read_only)
        );
        let _ = writeln!(
            out,
            "  no access mention:        {:>6} ({:.1}%)   [paper: 22.0%]",
            self.access_none,
            pct(self.access_none)
        );
        let _ = writeln!(
            out,
            "  any opt-out:              {:>6} ({:.1}%)   [paper: ~66%]",
            self.optout_any,
            pct(self.optout_any)
        );
        let _ = writeln!(
            out,
            "  opt-in:                   {:>6} ({:.1}%)   [paper: <20%]",
            self.optin,
            pct(self.optin)
        );
        let _ = writeln!(
            out,
            "  data-for-sale companies:  {:>6}   [paper: 26]",
            self.data_for_sale.len()
        );
        let _ = writeln!(
            out,
            "  most active sector:       {} ({:.1} categories, {:.1} descriptors)   [paper: CD, 16.3 / 48.8]",
            self.most_active_sector.0.name(),
            self.most_active_sector.1,
            self.most_active_sector.2
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aipan_core::dataset::{AnnotatedPolicy, SegmentationMethod};
    use aipan_taxonomy::records::Annotation;
    use aipan_taxonomy::PurposeCategory;

    fn policy(domain: &str, annotations: Vec<Annotation>) -> AnnotatedPolicy {
        AnnotatedPolicy {
            domain: domain.into(),
            sector: Sector::ConsumerDiscretionary,
            annotations,
            fallbacks: vec![],
            hallucinations_removed: 0,
            core_word_count: 100,
            segmentation: SegmentationMethod::Headings,
            policy_path: "/privacy".into(),
        }
    }

    fn retention(days: u32) -> Annotation {
        Annotation::new(
            AnnotationPayload::Retention {
                label: RetentionLabel::Stated,
                period_days: Some(days),
            },
            "period",
            1,
        )
    }

    #[test]
    fn retention_extremes_with_domains() {
        let ds = Dataset {
            policies: vec![
                policy("short.com", vec![retention(1)]),
                policy("mid.com", vec![retention(730)]),
                policy("long.com", vec![retention(18250)]),
            ],
        };
        let ins = Insights::compute(&ds);
        assert_eq!(ins.retention_min, (1, vec!["short.com".to_string()]));
        assert_eq!(ins.retention_max, (18250, vec!["long.com".to_string()]));
        assert_eq!(ins.retention_median_days, 730);
    }

    #[test]
    fn access_split() {
        let rw = policy(
            "rw.com",
            vec![Annotation::new(
                AnnotationPayload::Access {
                    label: AccessLabel::Edit,
                },
                "edit",
                1,
            )],
        );
        let ro = policy(
            "ro.com",
            vec![Annotation::new(
                AnnotationPayload::Access {
                    label: AccessLabel::View,
                },
                "view",
                1,
            )],
        );
        let none = policy(
            "none.com",
            vec![Annotation::new(
                AnnotationPayload::Choice {
                    label: ChoiceLabel::OptIn,
                },
                "consent",
                1,
            )],
        );
        let ds = Dataset {
            policies: vec![rw, ro, none],
        };
        let ins = Insights::compute(&ds);
        assert_eq!(ins.access_read_write, 1);
        assert_eq!(ins.access_read_only, 1);
        assert_eq!(ins.access_none, 1);
        assert_eq!(ins.optin, 1);
    }

    #[test]
    fn data_for_sale_detection() {
        let seller = policy(
            "seller.com",
            vec![Annotation::new(
                AnnotationPayload::Purpose {
                    descriptor: "data for sale".into(),
                    category: PurposeCategory::DataSharing,
                },
                "sell your personal information",
                1,
            )],
        );
        let ds = Dataset {
            policies: vec![seller],
        };
        let ins = Insights::compute(&ds);
        assert_eq!(ins.data_for_sale, vec!["seller.com".to_string()]);
    }

    #[test]
    fn category_count_thresholds() {
        let mut anns = Vec::new();
        for cat in DataTypeCategory::ALL.iter().take(26) {
            anns.push(Annotation::new(
                AnnotationPayload::DataType {
                    descriptor: format!("d-{}", cat.name()),
                    category: *cat,
                },
                "d",
                1,
            ));
        }
        let ds = Dataset {
            policies: vec![policy("wide.com", anns)],
        };
        let ins = Insights::compute(&ds);
        assert_eq!(ins.cats_ge_3, 1);
        assert_eq!(ins.cats_gt_25, 1);
    }

    #[test]
    fn render_contains_reference_values() {
        let ds = Dataset {
            policies: vec![policy("a.com", vec![retention(730)])],
        };
        let text = Insights::compute(&ds).render();
        assert!(text.contains("paper: 93.5%"));
        assert!(text.contains("retention median"));
    }
}
