//! # aipan-analysis
//!
//! Statistical analysis, validation, and table regeneration over AIPAN
//! datasets — the machinery behind the paper's evaluation:
//!
//! * [`stats`] — coverage / mean±SD aggregation over policies, overall and
//!   per sector.
//! * [`tables`] — regenerates Table 1 (annotation counts + top descriptors),
//!   Table 2a/2b (data types and purposes with sector breakdowns), Table 3
//!   (handling and rights), and Table 5 (all 34 data-type categories).
//! * [`insights`] — the §5 headline findings (category-count distribution,
//!   retention extremes, protection specificity, read/write access,
//!   data-for-sale companies).
//! * [`risk`] — privacy-exposure scoring and sector leaderboards (the
//!   "legal exposure risk analysis" the Discussion says the dataset
//!   unlocks).
//! * [`trends`] — dataset-to-dataset diffing for longitudinal analysis
//!   ("trends, policy peer group comparisons").
//! * [`validation`] — the §4 validation: crawl-failure audit,
//!   missing-aspect audit, stratified annotation precision (measured
//!   against the synthetic world's planted ground truth), and the §6
//!   GPT-4 / GPT-3.5 / Llama-3.1 comparison.

#![warn(missing_docs)]

pub mod insights;
pub mod risk;
pub mod stats;
pub mod tables;
pub mod trends;
pub mod validation;

pub use insights::Insights;
pub use risk::RiskScore;
pub use stats::{CategoryStats, SectorBreakdown};
pub use trends::TrendReport;
pub use validation::{FailureAudit, MissingAspectAudit, ModelComparison, PrecisionReport};
