//! Privacy-exposure risk scoring — one of the analyses the paper's
//! Discussion says the structured dataset "unlocks" ("policy quality
//! evaluations, as well as legal exposure risk analysis").
//!
//! The score combines three findings of §5:
//!
//! * **breadth and sensitivity of collection** — sensitive categories
//!   (bio/health, financial/legal, precise location) weigh more;
//! * **absence of concrete protections** — the paper highlights that only
//!   39.9% state any specific protection and only 10% a concrete retention
//!   period;
//! * **absence of user rights** — no deletion right, no opt-out.
//!
//! Scores are in 0–100 (higher = more exposure). The weights are simple and
//! documented; the point is the *ranking* machinery, not an actuarial model.

use aipan_core::dataset::{AnnotatedPolicy, Dataset};
use aipan_taxonomy::records::AnnotationPayload;
use aipan_taxonomy::{
    AccessLabel, ChoiceLabel, DataTypeCategory, ProtectionLabel, RetentionLabel, Sector,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Risk weight of a data-type category (sensitive classes score higher).
pub fn category_sensitivity(category: DataTypeCategory) -> f64 {
    use DataTypeCategory::*;
    match category {
        // Highly sensitive.
        MedicalInfo | BiometricData | FitnessHealth => 3.0,
        FinancialInfo | FinancialCapability | InsuranceInfo | LegalInfo => 2.5,
        PreciseLocation => 2.5,
        PersonalIdentifier => 2.0,
        // Moderately sensitive.
        PhysicalCharacteristic
        | DemographicInfo
        | ApproximateLocation
        | TravelData
        | CommunicationData
        | ContentGeneration => 1.5,
        // Baseline.
        _ => 1.0,
    }
}

/// A scored policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RiskScore {
    /// Domain scored.
    pub domain: String,
    /// Sector.
    pub sector: Sector,
    /// 0–100 exposure score (higher = more exposure).
    pub score: f64,
    /// Collection sub-score (0–50).
    pub collection: f64,
    /// Protection-gap sub-score (0–25).
    pub protection_gap: f64,
    /// Rights-gap sub-score (0–25).
    pub rights_gap: f64,
}

/// Score a single policy.
pub fn score_policy(policy: &AnnotatedPolicy) -> RiskScore {
    // Collection: sensitivity-weighted distinct categories, saturating.
    let categories: BTreeSet<DataTypeCategory> = policy
        .annotations
        .iter()
        .filter_map(|a| match &a.payload {
            AnnotationPayload::DataType { category, .. } => Some(*category),
            _ => None,
        })
        .collect();
    let weighted: f64 = categories.iter().map(|&c| category_sensitivity(c)).sum();
    // A maximally broad collector (all 34 categories) scores 51.5 weighted;
    // scale into 0–50 so the scale saturates exactly there.
    let collection = (weighted / 51.5 * 50.0).min(50.0);

    // Protection gap: start from the full gap, credit concrete practices.
    let mut protections: BTreeSet<ProtectionLabel> = BTreeSet::new();
    let mut has_stated_retention = false;
    let mut retains_indefinitely = false;
    for ann in &policy.annotations {
        match &ann.payload {
            AnnotationPayload::Protection { label } => {
                protections.insert(*label);
            }
            AnnotationPayload::Retention { label, .. } => match label {
                RetentionLabel::Stated => has_stated_retention = true,
                RetentionLabel::Indefinitely => retains_indefinitely = true,
                RetentionLabel::Limited => {}
            },
            _ => {}
        }
    }
    let specific = protections
        .iter()
        .filter(|l| **l != ProtectionLabel::Generic)
        .count();
    let mut protection_gap: f64 = 25.0;
    protection_gap -= (specific as f64 * 4.0).min(16.0);
    if protections.contains(&ProtectionLabel::Generic) {
        protection_gap -= 3.0;
    }
    if has_stated_retention {
        protection_gap -= 6.0;
    }
    if retains_indefinitely {
        protection_gap += 4.0;
    }
    let protection_gap = protection_gap.clamp(0.0, 25.0);

    // Rights gap: credit deletion, edit/view, and opt-outs.
    let mut rights_gap: f64 = 25.0;
    let has =
        |f: &dyn Fn(&AnnotationPayload) -> bool| policy.annotations.iter().any(|a| f(&a.payload));
    if has(&|p| {
        matches!(
            p,
            AnnotationPayload::Access {
                label: AccessLabel::FullDelete
            }
        )
    }) {
        rights_gap -= 9.0;
    } else if has(&|p| {
        matches!(
            p,
            AnnotationPayload::Access {
                label: AccessLabel::PartialDelete
            }
        )
    }) {
        rights_gap -= 5.0;
    }
    if has(&|p| {
        matches!(
            p,
            AnnotationPayload::Access {
                label: AccessLabel::Edit
            }
        )
    }) {
        rights_gap -= 5.0;
    }
    if has(&|p| {
        matches!(
            p,
            AnnotationPayload::Access {
                label: AccessLabel::View | AccessLabel::Export
            }
        )
    }) {
        rights_gap -= 3.0;
    }
    if has(&|p| {
        matches!(
            p,
            AnnotationPayload::Choice {
                label: ChoiceLabel::OptOutViaContact | ChoiceLabel::OptOutViaLink
            }
        )
    }) {
        rights_gap -= 5.0;
    }
    if has(&|p| {
        matches!(
            p,
            AnnotationPayload::Choice {
                label: ChoiceLabel::OptIn
            }
        )
    }) {
        rights_gap -= 3.0;
    }
    let rights_gap = rights_gap.clamp(0.0, 25.0);

    RiskScore {
        domain: policy.domain.clone(),
        sector: policy.sector,
        score: collection + protection_gap + rights_gap,
        collection,
        protection_gap,
        rights_gap,
    }
}

/// Score a whole dataset, descending by score.
pub fn rank(dataset: &Dataset) -> Vec<RiskScore> {
    let mut scores: Vec<RiskScore> = dataset.annotated().map(score_policy).collect();
    scores.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.domain.cmp(&b.domain))
    });
    scores
}

/// Per-sector average scores, descending.
pub fn sector_averages(scores: &[RiskScore]) -> Vec<(Sector, f64, usize)> {
    let mut out = Vec::new();
    for sector in Sector::ALL {
        let v: Vec<f64> = scores
            .iter()
            .filter(|s| s.sector == sector)
            .map(|s| s.score)
            .collect();
        if !v.is_empty() {
            out.push((sector, v.iter().sum::<f64>() / v.len() as f64, v.len()));
        }
    }
    out.sort_by(|a, b| b.1.total_cmp(&a.1));
    out
}

/// Render a leaderboard (top-`k` riskiest plus sector averages).
pub fn render(scores: &[RiskScore], k: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Privacy-exposure leaderboard (top {k} of {}):",
        scores.len()
    );
    let _ = writeln!(
        out,
        "  {:<28} {:<4} {:>6} {:>9} {:>9} {:>8}",
        "domain", "sec", "score", "collect", "protGap", "rightGap"
    );
    for s in scores.iter().take(k) {
        let _ = writeln!(
            out,
            "  {:<28} {:<4} {:>6.1} {:>9.1} {:>9.1} {:>8.1}",
            s.domain,
            s.sector.abbrev(),
            s.score,
            s.collection,
            s.protection_gap,
            s.rights_gap
        );
    }
    let _ = writeln!(out, "sector averages:");
    for (sector, avg, n) in sector_averages(scores) {
        let _ = writeln!(out, "  {:<24} {:>6.1}  (n={n})", sector.name(), avg);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aipan_core::dataset::SegmentationMethod;
    use aipan_taxonomy::records::Annotation;

    fn policy(domain: &str, annotations: Vec<Annotation>) -> AnnotatedPolicy {
        AnnotatedPolicy {
            domain: domain.into(),
            sector: Sector::HealthCare,
            annotations,
            fallbacks: vec![],
            hallucinations_removed: 0,
            core_word_count: 100,
            segmentation: SegmentationMethod::Headings,
            policy_path: "/privacy".into(),
        }
    }

    fn dt(category: DataTypeCategory) -> Annotation {
        Annotation::new(
            AnnotationPayload::DataType {
                descriptor: format!("d-{category:?}"),
                category,
            },
            "d",
            1,
        )
    }

    #[test]
    fn sensitive_collection_scores_higher() {
        let benign = score_policy(&policy("a.com", vec![dt(DataTypeCategory::Preferences)]));
        let sensitive = score_policy(&policy("b.com", vec![dt(DataTypeCategory::BiometricData)]));
        assert!(sensitive.collection > benign.collection);
    }

    #[test]
    fn protections_and_rights_reduce_score() {
        let naked = policy("naked.com", vec![dt(DataTypeCategory::MedicalInfo)]);
        let mut guarded_annotations = vec![
            dt(DataTypeCategory::MedicalInfo),
            Annotation::new(
                AnnotationPayload::Protection {
                    label: ProtectionLabel::SecureStorage,
                },
                "encrypted",
                2,
            ),
            Annotation::new(
                AnnotationPayload::Retention {
                    label: RetentionLabel::Stated,
                    period_days: Some(365),
                },
                "one year",
                3,
            ),
            Annotation::new(
                AnnotationPayload::Access {
                    label: AccessLabel::FullDelete,
                },
                "delete",
                4,
            ),
            Annotation::new(
                AnnotationPayload::Choice {
                    label: ChoiceLabel::OptOutViaLink,
                },
                "opt out",
                5,
            ),
        ];
        guarded_annotations.push(Annotation::new(
            AnnotationPayload::Choice {
                label: ChoiceLabel::OptIn,
            },
            "consent",
            6,
        ));
        let guarded = policy("guarded.com", guarded_annotations);
        let naked_score = score_policy(&naked);
        let guarded_score = score_policy(&guarded);
        assert!(naked_score.score > guarded_score.score);
        assert!(guarded_score.protection_gap < naked_score.protection_gap);
        assert!(guarded_score.rights_gap < naked_score.rights_gap);
    }

    #[test]
    fn indefinite_retention_penalized() {
        // Both policies earn the same protection credit; the indefinite
        // retainer must lose part of it back.
        let credit = Annotation::new(
            AnnotationPayload::Protection {
                label: ProtectionLabel::SecureStorage,
            },
            "encrypted",
            2,
        );
        let base = policy(
            "a.com",
            vec![dt(DataTypeCategory::ContactInfo), credit.clone()],
        );
        let indefinite = policy(
            "b.com",
            vec![
                dt(DataTypeCategory::ContactInfo),
                credit,
                Annotation::new(
                    AnnotationPayload::Retention {
                        label: RetentionLabel::Indefinitely,
                        period_days: None,
                    },
                    "indefinitely",
                    3,
                ),
            ],
        );
        assert!(score_policy(&indefinite).protection_gap > score_policy(&base).protection_gap);
    }

    #[test]
    fn scores_bounded() {
        let everything: Vec<Annotation> = DataTypeCategory::ALL.iter().map(|&c| dt(c)).collect();
        let s = score_policy(&policy("max.com", everything));
        assert!(s.score <= 100.0 && s.score >= 0.0);
        assert!(
            (s.collection - 50.0).abs() < 1e-9,
            "max collector saturates"
        );
    }

    #[test]
    fn rank_descending_and_render() {
        let ds = Dataset {
            policies: vec![
                policy("low.com", vec![dt(DataTypeCategory::Preferences)]),
                policy(
                    "high.com",
                    vec![
                        dt(DataTypeCategory::BiometricData),
                        dt(DataTypeCategory::MedicalInfo),
                    ],
                ),
            ],
        };
        let ranked = rank(&ds);
        assert_eq!(ranked[0].domain, "high.com");
        let text = render(&ranked, 2);
        assert!(text.contains("high.com"));
        assert!(text.contains("sector averages"));
    }
}
