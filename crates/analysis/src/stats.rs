//! Coverage and mention-count statistics over a dataset.

use aipan_core::dataset::{AnnotatedPolicy, Dataset};
use aipan_taxonomy::records::AnnotationPayload;
use aipan_taxonomy::{
    AccessLabel, ChoiceLabel, DataTypeCategory, DataTypeMeta, ProtectionLabel, PurposeCategory,
    PurposeMeta, RetentionLabel, Sector,
};
use serde::{Deserialize, Serialize};

/// Coverage and unique-mention statistics for one grouping (a category,
/// meta-category, or label) over a population of policies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CategoryStats {
    /// Number of policies in the population.
    pub population: usize,
    /// Policies with ≥1 matching annotation.
    pub covered: usize,
    /// Mean unique mentions among covered policies.
    pub mean: f64,
    /// Standard deviation of unique mentions among covered policies.
    pub sd: f64,
    /// Total unique mentions across the population (the Table 1 counts).
    pub total_mentions: usize,
}

impl CategoryStats {
    /// Coverage: fraction of the population with ≥1 annotation.
    pub fn coverage(&self) -> f64 {
        if self.population == 0 {
            0.0
        } else {
            self.covered as f64 / self.population as f64
        }
    }

    /// Compute stats from per-policy unique-mention counts (zeros mean
    /// uncovered).
    pub fn from_counts(counts: &[usize]) -> CategoryStats {
        let population = counts.len();
        let covered_counts: Vec<f64> = counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| c as f64)
            .collect();
        let covered = covered_counts.len();
        let total_mentions = counts.iter().sum();
        let (mean, sd) = mean_sd(&covered_counts);
        CategoryStats {
            population,
            covered,
            mean,
            sd,
            total_mentions,
        }
    }
}

/// Mean and (population) standard deviation.
pub fn mean_sd(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Median of a list (0 for empty).
pub fn median(values: &mut [u32]) -> u32 {
    if values.is_empty() {
        return 0;
    }
    values.sort_unstable();
    values[values.len() / 2]
}

/// How many unique mentions a policy has for `matches`.
fn unique_mentions(
    policy: &AnnotatedPolicy,
    matches: impl Fn(&AnnotationPayload) -> bool,
) -> usize {
    // Annotations are already deduplicated per policy by dedup key.
    policy
        .annotations
        .iter()
        .filter(|a| matches(&a.payload))
        .count()
}

/// Compute stats over all annotated policies for an arbitrary payload
/// predicate.
pub fn stats_for(
    dataset: &Dataset,
    matches: impl Fn(&AnnotationPayload) -> bool + Copy,
) -> CategoryStats {
    let counts: Vec<usize> = dataset
        .annotated()
        .map(|p| unique_mentions(p, matches))
        .collect();
    CategoryStats::from_counts(&counts)
}

/// Compute per-sector stats for an arbitrary payload predicate.
pub fn stats_by_sector(
    dataset: &Dataset,
    matches: impl Fn(&AnnotationPayload) -> bool + Copy,
) -> Vec<(Sector, CategoryStats)> {
    Sector::ALL
        .iter()
        .map(|&sector| {
            let counts: Vec<usize> = dataset
                .annotated()
                .filter(|p| p.sector == sector)
                .map(|p| unique_mentions(p, matches))
                .collect();
            (sector, CategoryStats::from_counts(&counts))
        })
        .collect()
}

/// The sector columns of Tables 2/3/5: top-3 sectors by coverage and the
/// lowest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SectorBreakdown {
    /// Sectors with stats, sorted by coverage descending.
    pub ranked: Vec<(Sector, CategoryStats)>,
}

impl SectorBreakdown {
    /// Compute the breakdown for a payload predicate.
    pub fn compute(
        dataset: &Dataset,
        matches: impl Fn(&AnnotationPayload) -> bool + Copy,
    ) -> SectorBreakdown {
        let mut ranked = stats_by_sector(dataset, matches);
        ranked.sort_by(|a, b| {
            b.1.coverage()
                .total_cmp(&a.1.coverage())
                .then_with(|| a.0.abbrev().cmp(b.0.abbrev()))
        });
        SectorBreakdown { ranked }
    }

    /// The top-`k` sectors by coverage.
    pub fn top(&self, k: usize) -> &[(Sector, CategoryStats)] {
        &self.ranked[..k.min(self.ranked.len())]
    }

    /// The lowest-coverage sector.
    pub fn lowest(&self) -> Option<&(Sector, CategoryStats)> {
        self.ranked.last()
    }
}

// --- Convenience predicates -------------------------------------------------

/// Predicate: data-type annotation in `category`.
pub fn is_datatype_category(
    category: DataTypeCategory,
) -> impl Fn(&AnnotationPayload) -> bool + Copy {
    move |p| matches!(p, AnnotationPayload::DataType { category: c, .. } if *c == category)
}

/// Predicate: data-type annotation in `meta`.
pub fn is_datatype_meta(meta: DataTypeMeta) -> impl Fn(&AnnotationPayload) -> bool + Copy {
    move |p| matches!(p, AnnotationPayload::DataType { category, .. } if category.meta() == meta)
}

/// Predicate: purpose annotation in `category`.
pub fn is_purpose_category(
    category: PurposeCategory,
) -> impl Fn(&AnnotationPayload) -> bool + Copy {
    move |p| matches!(p, AnnotationPayload::Purpose { category: c, .. } if *c == category)
}

/// Predicate: purpose annotation in `meta`.
pub fn is_purpose_meta(meta: PurposeMeta) -> impl Fn(&AnnotationPayload) -> bool + Copy {
    move |p| matches!(p, AnnotationPayload::Purpose { category, .. } if category.meta() == meta)
}

/// Predicate: retention annotation with `label`.
pub fn is_retention(label: RetentionLabel) -> impl Fn(&AnnotationPayload) -> bool + Copy {
    move |p| matches!(p, AnnotationPayload::Retention { label: l, .. } if *l == label)
}

/// Predicate: protection annotation with `label`.
pub fn is_protection(label: ProtectionLabel) -> impl Fn(&AnnotationPayload) -> bool + Copy {
    move |p| matches!(p, AnnotationPayload::Protection { label: l } if *l == label)
}

/// Predicate: choice annotation with `label`.
pub fn is_choice(label: ChoiceLabel) -> impl Fn(&AnnotationPayload) -> bool + Copy {
    move |p| matches!(p, AnnotationPayload::Choice { label: l } if *l == label)
}

/// Predicate: access annotation with `label`.
pub fn is_access(label: AccessLabel) -> impl Fn(&AnnotationPayload) -> bool + Copy {
    move |p| matches!(p, AnnotationPayload::Access { label: l } if *l == label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aipan_core::dataset::SegmentationMethod;
    use aipan_taxonomy::records::Annotation;

    fn policy(domain: &str, sector: Sector, descriptors: &[&str]) -> AnnotatedPolicy {
        AnnotatedPolicy {
            domain: domain.into(),
            sector,
            annotations: descriptors
                .iter()
                .map(|d| {
                    Annotation::new(
                        AnnotationPayload::DataType {
                            descriptor: d.to_string(),
                            category: DataTypeCategory::ContactInfo,
                        },
                        *d,
                        1,
                    )
                })
                .collect(),
            fallbacks: vec![],
            hallucinations_removed: 0,
            core_word_count: 100,
            segmentation: SegmentationMethod::Headings,
            policy_path: "/privacy".into(),
        }
    }

    fn dataset() -> Dataset {
        Dataset {
            policies: vec![
                policy("a.com", Sector::Energy, &["email address", "phone number"]),
                policy("b.com", Sector::Energy, &[]),
                policy("c.com", Sector::Financials, &["email address"]),
            ],
        }
    }

    #[test]
    fn from_counts_basics() {
        let s = CategoryStats::from_counts(&[0, 2, 4]);
        assert_eq!(s.population, 3);
        assert_eq!(s.covered, 2);
        assert!((s.mean - 3.0).abs() < 1e-9);
        assert!((s.sd - 1.0).abs() < 1e-9);
        assert_eq!(s.total_mentions, 6);
        assert!((s.coverage() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_population() {
        let s = CategoryStats::from_counts(&[]);
        assert_eq!(s.coverage(), 0.0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn dataset_stats_and_sector_split() {
        let ds = dataset();
        // b.com has zero annotations → not in the annotated population.
        let s = stats_for(&ds, is_datatype_category(DataTypeCategory::ContactInfo));
        assert_eq!(s.population, 2);
        assert_eq!(s.covered, 2);
        assert!((s.mean - 1.5).abs() < 1e-9);

        let by_sector = stats_by_sector(&ds, is_datatype_category(DataTypeCategory::ContactInfo));
        let energy = by_sector
            .iter()
            .find(|(s, _)| *s == Sector::Energy)
            .unwrap();
        assert_eq!(energy.1.covered, 1);
        assert_eq!(energy.1.population, 1);
    }

    #[test]
    fn breakdown_ranks_by_coverage() {
        let ds = dataset();
        let b = SectorBreakdown::compute(&ds, is_datatype_category(DataTypeCategory::ContactInfo));
        assert_eq!(b.ranked.len(), 11);
        let coverages: Vec<f64> = b.ranked.iter().map(|(_, s)| s.coverage()).collect();
        for w in coverages.windows(2) {
            assert!(w[0] >= w[1], "not sorted: {coverages:?}");
        }
        assert!(b.lowest().is_some());
        assert_eq!(b.top(3).len(), 3);
    }

    #[test]
    fn median_and_mean_sd() {
        let mut v = vec![5, 1, 9];
        assert_eq!(median(&mut v), 5);
        let (m, s) = mean_sd(&[2.0, 4.0, 6.0]);
        assert!((m - 4.0).abs() < 1e-9);
        assert!((s - (8.0f64 / 3.0).sqrt()).abs() < 1e-9);
        assert_eq!(median(&mut []), 0);
    }
}
