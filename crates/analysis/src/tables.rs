//! Regeneration of the paper's tables.
//!
//! Each `table*` function computes the table's rows from a [`Dataset`];
//! each `render_table*` function formats them in the paper's layout so the
//! output can be eyeballed against the original (EXPERIMENTS.md records the
//! comparison).

use crate::stats::{self, CategoryStats, SectorBreakdown};
use aipan_core::dataset::Dataset;
use aipan_taxonomy::records::{AnnotationPayload, AspectKind};
use aipan_taxonomy::{
    AccessLabel, ChoiceLabel, DataTypeCategory, DataTypeMeta, ProtectionLabel, PurposeCategory,
    PurposeMeta, RetentionLabel,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Table 1 / Table 4: annotation counts and top descriptors
// ---------------------------------------------------------------------------

/// One Table 1/4 row: a category with its count and top descriptors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Meta-category name.
    pub meta: String,
    /// Category name.
    pub category: String,
    /// Unique-annotation count for the category.
    pub count: usize,
    /// Top descriptors with within-category share (descending).
    pub top_descriptors: Vec<(String, f64)>,
}

/// The Table 1/4 data: per-aspect totals plus per-category rows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1 {
    /// Total unique data-type annotations (paper: 108,748).
    pub types_total: usize,
    /// Total unique purpose annotations (paper: 77,360).
    pub purposes_total: usize,
    /// Total retention annotations (paper: 4,550).
    pub retention_total: usize,
    /// Total protection annotations (paper: 5,464).
    pub protection_total: usize,
    /// Total choice annotations (paper: 7,484).
    pub choices_total: usize,
    /// Total access annotations (paper: 9,121).
    pub access_total: usize,
    /// Data-type category rows (all 34; Table 4).
    pub datatype_rows: Vec<Table1Row>,
    /// Purpose category rows (all 7).
    pub purpose_rows: Vec<Table1Row>,
    /// Per-label counts for retention, protection, choices, access.
    pub label_counts: Vec<(String, String, usize)>,
}

/// Compute Table 1/4 (top-`k` descriptors per category).
pub fn table1(dataset: &Dataset, k: usize) -> Table1 {
    let mut datatype_rows = Vec::new();
    for category in DataTypeCategory::ALL {
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        let mut total = 0usize;
        for policy in dataset.annotated() {
            for ann in &policy.annotations {
                if let AnnotationPayload::DataType {
                    descriptor,
                    category: c,
                } = &ann.payload
                {
                    if *c == category {
                        *counts.entry(descriptor.clone()).or_insert(0) += 1;
                        total += 1;
                    }
                }
            }
        }
        datatype_rows.push(Table1Row {
            meta: category.meta().name().to_string(),
            category: category.name().to_string(),
            count: total,
            top_descriptors: top_k(counts, total, k),
        });
    }
    let mut purpose_rows = Vec::new();
    for category in PurposeCategory::ALL {
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        let mut total = 0usize;
        for policy in dataset.annotated() {
            for ann in &policy.annotations {
                if let AnnotationPayload::Purpose {
                    descriptor,
                    category: c,
                } = &ann.payload
                {
                    if *c == category {
                        *counts.entry(descriptor.clone()).or_insert(0) += 1;
                        total += 1;
                    }
                }
            }
        }
        purpose_rows.push(Table1Row {
            meta: category.meta().name().to_string(),
            category: category.name().to_string(),
            count: total,
            top_descriptors: top_k(counts, total, k),
        });
    }

    let mut label_counts = Vec::new();
    for label in RetentionLabel::ALL {
        let s = stats::stats_for(dataset, stats::is_retention(label));
        label_counts.push((
            "Data retention".to_string(),
            label.name().to_string(),
            s.total_mentions,
        ));
    }
    for label in ProtectionLabel::ALL {
        let s = stats::stats_for(dataset, stats::is_protection(label));
        label_counts.push((
            "Data protection".to_string(),
            label.name().to_string(),
            s.total_mentions,
        ));
    }
    for label in ChoiceLabel::ALL {
        let s = stats::stats_for(dataset, stats::is_choice(label));
        label_counts.push((
            "User choices".to_string(),
            label.name().to_string(),
            s.total_mentions,
        ));
    }
    for label in AccessLabel::ALL {
        let s = stats::stats_for(dataset, stats::is_access(label));
        label_counts.push((
            "User access".to_string(),
            label.name().to_string(),
            s.total_mentions,
        ));
    }

    Table1 {
        types_total: dataset.annotation_count(AspectKind::Types),
        purposes_total: dataset.annotation_count(AspectKind::Purposes),
        retention_total: RetentionLabel::ALL
            .iter()
            .map(|&l| stats::stats_for(dataset, stats::is_retention(l)).total_mentions)
            .sum(),
        protection_total: ProtectionLabel::ALL
            .iter()
            .map(|&l| stats::stats_for(dataset, stats::is_protection(l)).total_mentions)
            .sum(),
        choices_total: ChoiceLabel::ALL
            .iter()
            .map(|&l| stats::stats_for(dataset, stats::is_choice(l)).total_mentions)
            .sum(),
        access_total: AccessLabel::ALL
            .iter()
            .map(|&l| stats::stats_for(dataset, stats::is_access(l)).total_mentions)
            .sum(),
        datatype_rows,
        purpose_rows,
        label_counts,
    }
}

fn top_k(counts: BTreeMap<String, usize>, total: usize, k: usize) -> Vec<(String, f64)> {
    let mut v: Vec<(String, usize)> = counts.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v.into_iter()
        .take(k)
        .map(|(d, c)| {
            (
                d,
                if total == 0 {
                    0.0
                } else {
                    c as f64 / total as f64
                },
            )
        })
        .collect()
}

/// Render Table 1/4 as text.
pub fn render_table1(t: &Table1) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1/4 — AI-generated annotations (types {}, purposes {}, retention {}, \
         protection {}, choices {}, access {})",
        t.types_total,
        t.purposes_total,
        t.retention_total,
        t.protection_total,
        t.choices_total,
        t.access_total
    );
    let mut last_meta = String::new();
    for row in t.datatype_rows.iter().chain(t.purpose_rows.iter()) {
        if row.meta != last_meta {
            let _ = writeln!(out, "  {}", row.meta);
            last_meta = row.meta.clone();
        }
        let tops: Vec<String> = row
            .top_descriptors
            .iter()
            .map(|(d, f)| format!("{d} ({:.1}%)", f * 100.0))
            .collect();
        let _ = writeln!(
            out,
            "    {:<26} {:>7}  {}",
            row.category,
            row.count,
            tops.join(", ")
        );
    }
    let _ = writeln!(out, "  Handling & rights labels");
    for (group, label, count) in &t.label_counts {
        let _ = writeln!(out, "    {:<16} {:<22} {:>6}", group, label, count);
    }
    out
}

// ---------------------------------------------------------------------------
// Tables 2a / 2b / 5 — coverage, mean±SD, sector breakdowns
// ---------------------------------------------------------------------------

/// One row of Tables 2a/2b/5: a grouping with overall and sector statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BreakdownRow {
    /// Grouping name (meta-category, category, or label).
    pub name: String,
    /// Overall statistics.
    pub overall: CategoryStats,
    /// Sector breakdown (ranked by coverage).
    pub sectors: SectorBreakdown,
}

impl BreakdownRow {
    fn compute(
        dataset: &Dataset,
        name: &str,
        matches: impl Fn(&AnnotationPayload) -> bool + Copy,
    ) -> BreakdownRow {
        BreakdownRow {
            name: name.to_string(),
            overall: stats::stats_for(dataset, matches),
            sectors: SectorBreakdown::compute(dataset, matches),
        }
    }
}

/// Table 2a: data-type meta-category rows.
pub fn table2a(dataset: &Dataset) -> Vec<BreakdownRow> {
    DataTypeMeta::ALL
        .iter()
        .map(|&meta| BreakdownRow::compute(dataset, meta.name(), stats::is_datatype_meta(meta)))
        .collect()
}

/// Table 2b: purpose meta-categories and categories (meta rows are prefixed
/// with their name; category rows with "- ").
pub fn table2b(dataset: &Dataset) -> Vec<BreakdownRow> {
    let mut rows = Vec::new();
    for meta in PurposeMeta::ALL {
        rows.push(BreakdownRow::compute(
            dataset,
            meta.name(),
            stats::is_purpose_meta(meta),
        ));
        for &category in meta.categories() {
            rows.push(BreakdownRow::compute(
                dataset,
                &format!("- {}", category.name()),
                stats::is_purpose_category(category),
            ));
        }
    }
    rows
}

/// Table 5: all 34 data-type category rows.
pub fn table5(dataset: &Dataset) -> Vec<BreakdownRow> {
    DataTypeCategory::ALL
        .iter()
        .map(|&c| BreakdownRow::compute(dataset, c.name(), stats::is_datatype_category(c)))
        .collect()
}

/// Table 3: handling and rights label rows (coverage focus).
pub fn table3(dataset: &Dataset) -> Vec<(String, BreakdownRow)> {
    let mut rows = Vec::new();
    for label in RetentionLabel::ALL {
        rows.push((
            "Data retention".to_string(),
            BreakdownRow::compute(dataset, label.name(), stats::is_retention(label)),
        ));
    }
    for label in ProtectionLabel::ALL {
        rows.push((
            "Data protection".to_string(),
            BreakdownRow::compute(dataset, label.name(), stats::is_protection(label)),
        ));
    }
    for label in ChoiceLabel::ALL {
        rows.push((
            "User choices".to_string(),
            BreakdownRow::compute(dataset, label.name(), stats::is_choice(label)),
        ));
    }
    for label in AccessLabel::ALL {
        rows.push((
            "User access".to_string(),
            BreakdownRow::compute(dataset, label.name(), stats::is_access(label)),
        ));
    }
    rows
}

/// Render a breakdown table (2a/2b/5 layout).
pub fn render_breakdown(title: &str, rows: &[BreakdownRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "  {:<28} {:>8} {:>11}   {:<18} {:<18} {:<18} {:<18}",
        "Category", "Coverage", "Mean±SD", "Highest", "2nd", "3rd", "Lowest"
    );
    for row in rows {
        let sector_cell = |entry: Option<&(aipan_taxonomy::Sector, CategoryStats)>| -> String {
            match entry {
                Some((sector, s)) => format!(
                    "{} {:.1}% {:.1}±{:.1}",
                    sector.abbrev(),
                    s.coverage() * 100.0,
                    s.mean,
                    s.sd
                ),
                None => "-".to_string(),
            }
        };
        let top = row.sectors.top(3);
        let _ = writeln!(
            out,
            "  {:<28} {:>7.1}% {:>5.1}±{:<4.1}   {:<18} {:<18} {:<18} {:<18}",
            row.name,
            row.overall.coverage() * 100.0,
            row.overall.mean,
            row.overall.sd,
            sector_cell(top.first()),
            sector_cell(top.get(1)),
            sector_cell(top.get(2)),
            sector_cell(row.sectors.lowest()),
        );
    }
    out
}

/// Render Table 3 (coverage + highest/2nd/lowest sectors, as in the paper).
pub fn render_table3(rows: &[(String, BreakdownRow)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 3 — Data handling and user rights annotations");
    let _ = writeln!(
        out,
        "  {:<16} {:<22} {:>7}   {:<12} {:<12} {:<12}",
        "Meta-category", "Category", "Cov.", "Highest", "2nd highest", "Lowest"
    );
    let mut last_group = String::new();
    for (group, row) in rows {
        let group_cell = if *group == last_group {
            ""
        } else {
            group.as_str()
        };
        last_group = group.clone();
        let cell = |entry: Option<&(aipan_taxonomy::Sector, CategoryStats)>| match entry {
            Some((sector, s)) => {
                format!("{} {:.1}%", sector.abbrev(), s.coverage() * 100.0)
            }
            None => "-".to_string(),
        };
        let top = row.sectors.top(2);
        let _ = writeln!(
            out,
            "  {:<16} {:<22} {:>6.1}%   {:<12} {:<12} {:<12}",
            group_cell,
            row.name,
            row.overall.coverage() * 100.0,
            cell(top.first()),
            cell(top.get(1)),
            cell(row.sectors.lowest()),
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Table 6 — examples of validated annotations with context
// ---------------------------------------------------------------------------

/// One Table 6 row: an annotation with the verbatim mention and the policy
/// line that contains it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table6Row {
    /// Aspect stream ("Types", "Purposes", "Handling", "Rights").
    pub aspect: String,
    /// Category or label name.
    pub category: String,
    /// Normalized descriptor or label.
    pub descriptor: String,
    /// Verbatim extracted text.
    pub text: String,
    /// The policy line containing the mention (the validation context).
    pub context: String,
    /// Source domain.
    pub domain: String,
}

/// Regenerate Table 6: sampled annotations with their validation context,
/// recovered by re-rendering each sampled company's policy.
pub fn table6(
    world: &aipan_webgen::World,
    dataset: &Dataset,
    per_aspect: usize,
    seed: u64,
) -> Vec<Table6Row> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rows = Vec::new();
    let mut policies: Vec<&aipan_core::dataset::AnnotatedPolicy> = dataset.annotated().collect();
    policies.sort_by(|a, b| a.domain.cmp(&b.domain));
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0x7ab1e6);
    policies.shuffle(&mut rng);

    let mut taken = [0usize; 4];
    for policy in policies {
        if taken.iter().all(|&t| t >= per_aspect) {
            break;
        }
        let Some(truth) = world.truth(&policy.domain) else {
            continue;
        };
        let Some(style) = world.styles.get(&policy.domain) else {
            continue;
        };
        let Some(company) = world.company(&policy.domain) else {
            continue;
        };
        let html =
            aipan_webgen::policy::render_policy(truth, style, &company.name, world.config.seed);
        let doc = aipan_html::extract(&html);
        for ann in &policy.annotations {
            let idx = match ann.aspect_kind() {
                AspectKind::Types => 0,
                AspectKind::Purposes => 1,
                AspectKind::Handling => 2,
                AspectKind::Rights => 3,
            };
            if taken.get(idx).is_some_and(|&t| t >= per_aspect) {
                continue;
            }
            // Context: the rendered line containing the verbatim mention.
            let folded = aipan_taxonomy::normalize::fold(&ann.text);
            let Some(context) = doc
                .lines
                .iter()
                .find(|l| aipan_taxonomy::normalize::fold(&l.text).contains(&folded))
            else {
                continue;
            };
            let (aspect, category, descriptor) = describe_payload(&ann.payload);
            rows.push(Table6Row {
                aspect,
                category,
                descriptor,
                text: ann.text.clone(),
                context: context.text.clone(),
                domain: policy.domain.clone(),
            });
            if let Some(t) = taken.get_mut(idx) {
                *t += 1;
            }
        }
    }
    rows.sort_by(|a, b| a.aspect.cmp(&b.aspect).then(a.category.cmp(&b.category)));
    rows
}

fn describe_payload(payload: &AnnotationPayload) -> (String, String, String) {
    match payload {
        AnnotationPayload::DataType {
            descriptor,
            category,
        } => ("Types".into(), category.name().into(), descriptor.clone()),
        AnnotationPayload::Purpose {
            descriptor,
            category,
        } => (
            "Purposes".into(),
            category.name().into(),
            descriptor.clone(),
        ),
        AnnotationPayload::Retention { label, .. } => (
            "Handling".into(),
            "Data retention".into(),
            label.name().into(),
        ),
        AnnotationPayload::Protection { label } => (
            "Handling".into(),
            "Data protection".into(),
            label.name().into(),
        ),
        AnnotationPayload::Choice { label } => {
            ("Rights".into(), "User choices".into(), label.name().into())
        }
        AnnotationPayload::Access { label } => {
            ("Rights".into(), "User access".into(), label.name().into())
        }
    }
}

/// Render Table 6 as text.
pub fn render_table6(rows: &[Table6Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 6 — Examples of validated AI-generated annotations and context"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "  [{}] {} → {:?}\n    text:    {:?}\n    context: {:?}  ({})",
            row.aspect, row.category, row.descriptor, row.text, row.context, row.domain
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aipan_core::dataset::{AnnotatedPolicy, SegmentationMethod};
    use aipan_taxonomy::records::Annotation;
    use aipan_taxonomy::Sector;

    fn mk_policy(domain: &str, sector: Sector) -> AnnotatedPolicy {
        AnnotatedPolicy {
            domain: domain.into(),
            sector,
            annotations: vec![
                Annotation::new(
                    AnnotationPayload::DataType {
                        descriptor: "email address".into(),
                        category: DataTypeCategory::ContactInfo,
                    },
                    "email address",
                    1,
                ),
                Annotation::new(
                    AnnotationPayload::DataType {
                        descriptor: "postal address".into(),
                        category: DataTypeCategory::ContactInfo,
                    },
                    "mailing address",
                    2,
                ),
                Annotation::new(
                    AnnotationPayload::Purpose {
                        descriptor: "analytics".into(),
                        category: PurposeCategory::AnalyticsResearch,
                    },
                    "analytics",
                    3,
                ),
                Annotation::new(
                    AnnotationPayload::Retention {
                        label: RetentionLabel::Limited,
                        period_days: None,
                    },
                    "as long as necessary",
                    4,
                ),
                Annotation::new(
                    AnnotationPayload::Choice {
                        label: ChoiceLabel::OptIn,
                    },
                    "obtain your consent",
                    5,
                ),
            ],
            fallbacks: vec![],
            hallucinations_removed: 0,
            core_word_count: 500,
            segmentation: SegmentationMethod::Headings,
            policy_path: "/privacy".into(),
        }
    }

    fn ds() -> Dataset {
        Dataset {
            policies: vec![
                mk_policy("a.com", Sector::Energy),
                mk_policy("b.com", Sector::Financials),
            ],
        }
    }

    #[test]
    fn table1_counts_and_tops() {
        let t = table1(&ds(), 3);
        assert_eq!(t.types_total, 4);
        assert_eq!(t.purposes_total, 2);
        assert_eq!(t.retention_total, 2);
        assert_eq!(t.choices_total, 2);
        let contact = t
            .datatype_rows
            .iter()
            .find(|r| r.category == "Contact info")
            .unwrap();
        assert_eq!(contact.count, 4);
        assert_eq!(contact.top_descriptors.len(), 2);
        assert!((contact.top_descriptors[0].1 - 0.5).abs() < 1e-9);
        assert_eq!(t.datatype_rows.len(), 34);
        assert_eq!(t.purpose_rows.len(), 7);
        assert_eq!(t.label_counts.len(), 3 + 7 + 5 + 6);
    }

    #[test]
    fn table2a_has_six_rows_with_coverage() {
        let rows = table2a(&ds());
        assert_eq!(rows.len(), 6);
        let phys = &rows[0];
        assert_eq!(phys.name, "Physical profile");
        assert!((phys.overall.coverage() - 1.0).abs() < 1e-9);
        assert!((phys.overall.mean - 2.0).abs() < 1e-9);
    }

    #[test]
    fn table2b_rows_meta_then_categories() {
        let rows = table2b(&ds());
        assert_eq!(rows.len(), 3 + 7);
        assert_eq!(rows[0].name, "Operations");
        assert!(rows[1].name.starts_with("- "));
    }

    #[test]
    fn table5_has_34_rows() {
        assert_eq!(table5(&ds()).len(), 34);
    }

    #[test]
    fn table3_has_21_rows() {
        let rows = table3(&ds());
        assert_eq!(rows.len(), 3 + 7 + 5 + 6);
        let opt_in = rows.iter().find(|(_, r)| r.name == "Opt-in").unwrap();
        assert!((opt_in.1.overall.coverage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn renderers_do_not_panic_and_mention_key_entries() {
        let d = ds();
        let t1 = render_table1(&table1(&d, 3));
        assert!(t1.contains("Contact info"));
        let t2a = render_breakdown("Table 2a", &table2a(&d));
        assert!(t2a.contains("Physical profile"));
        let t3 = render_table3(&table3(&d));
        assert!(t3.contains("Opt-in"));
        let t5 = render_breakdown("Table 5", &table5(&d));
        assert!(t5.contains("Diagnostic data"));
    }

    #[test]
    fn empty_dataset_renders() {
        let empty = Dataset::default();
        let _ = render_table1(&table1(&empty, 3));
        let _ = render_breakdown("t", &table2a(&empty));
        let _ = render_table3(&table3(&empty));
    }
}
