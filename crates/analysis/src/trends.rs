//! Longitudinal analysis: diff two dataset snapshots of the same universe.
//!
//! The paper's Discussion lists "trends" and "policy peer group comparisons"
//! among the analyses the structured dataset unlocks (and cites the
//! million-document longitudinal corpus of Amos et al.). This module
//! compares two [`Dataset`] snapshots — e.g. two crawls months apart — and
//! reports, per company and in aggregate, which practices appeared and
//! disappeared.

use aipan_core::dataset::Dataset;
use aipan_taxonomy::records::{AnnotationPayload, AspectKind};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// A practice key used for diffing: category/label plus aspect.
fn practice_key(payload: &AnnotationPayload) -> String {
    match payload {
        AnnotationPayload::DataType { category, .. } => format!("type:{}", category.name()),
        AnnotationPayload::Purpose { category, .. } => format!("purpose:{}", category.name()),
        AnnotationPayload::Retention { label, .. } => format!("retention:{label}"),
        AnnotationPayload::Protection { label } => format!("protection:{label}"),
        AnnotationPayload::Choice { label } => format!("choice:{label}"),
        AnnotationPayload::Access { label } => format!("access:{label}"),
    }
}

/// One company's change set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompanyDiff {
    /// The company's domain.
    pub domain: String,
    /// Practices present in the new snapshot only.
    pub added: Vec<String>,
    /// Practices present in the old snapshot only.
    pub removed: Vec<String>,
}

/// The full trend report between two snapshots.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrendReport {
    /// Companies present in both snapshots.
    pub companies_compared: usize,
    /// Companies only in the old snapshot (policy disappeared).
    pub disappeared: usize,
    /// Companies only in the new snapshot (policy appeared).
    pub appeared: usize,
    /// Per-company diffs (only companies with changes), sorted by domain.
    pub diffs: Vec<CompanyDiff>,
    /// Aggregate: practice → (companies adding, companies removing).
    pub practice_flux: BTreeMap<String, (usize, usize)>,
}

impl TrendReport {
    /// Diff two snapshots of (roughly) the same universe.
    pub fn diff(old: &Dataset, new: &Dataset) -> TrendReport {
        let old_by_domain: BTreeMap<&str, BTreeSet<String>> = old
            .annotated()
            .map(|p| {
                (
                    p.domain.as_str(),
                    p.annotations
                        .iter()
                        .map(|a| practice_key(&a.payload))
                        .collect(),
                )
            })
            .collect();
        let new_by_domain: BTreeMap<&str, BTreeSet<String>> = new
            .annotated()
            .map(|p| {
                (
                    p.domain.as_str(),
                    p.annotations
                        .iter()
                        .map(|a| practice_key(&a.payload))
                        .collect(),
                )
            })
            .collect();

        let mut diffs = Vec::new();
        let mut practice_flux: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        let mut companies_compared = 0usize;
        for (domain, old_set) in &old_by_domain {
            let Some(new_set) = new_by_domain.get(domain) else {
                continue;
            };
            companies_compared += 1;
            let added: Vec<String> = new_set.difference(old_set).cloned().collect();
            let removed: Vec<String> = old_set.difference(new_set).cloned().collect();
            for practice in &added {
                practice_flux.entry(practice.clone()).or_default().0 += 1;
            }
            for practice in &removed {
                practice_flux.entry(practice.clone()).or_default().1 += 1;
            }
            if !added.is_empty() || !removed.is_empty() {
                diffs.push(CompanyDiff {
                    domain: domain.to_string(),
                    added,
                    removed,
                });
            }
        }
        let disappeared = old_by_domain
            .keys()
            .filter(|d| !new_by_domain.contains_key(*d))
            .count();
        let appeared = new_by_domain
            .keys()
            .filter(|d| !old_by_domain.contains_key(*d))
            .count();
        TrendReport {
            companies_compared,
            disappeared,
            appeared,
            diffs,
            practice_flux,
        }
    }

    /// Share of compared companies with any change.
    pub fn churn_rate(&self) -> f64 {
        if self.companies_compared == 0 {
            0.0
        } else {
            self.diffs.len() as f64 / self.companies_compared as f64
        }
    }

    /// Practices ranked by net adoption (adds − removes), descending.
    pub fn top_trends(&self, k: usize) -> Vec<(&str, i64)> {
        let mut v: Vec<(&str, i64)> = self
            .practice_flux
            .iter()
            .map(|(p, (a, r))| (p.as_str(), *a as i64 - *r as i64))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v.truncate(k);
        v
    }

    /// Render a summary.
    pub fn render(&self, k: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Trend report: {} companies compared, {} changed ({:.1}% churn), \
             {} policies disappeared, {} appeared",
            self.companies_compared,
            self.diffs.len(),
            self.churn_rate() * 100.0,
            self.disappeared,
            self.appeared
        );
        let _ = writeln!(out, "  top net adoptions (adds − removals):");
        for (practice, net) in self.top_trends(k) {
            let (adds, removes) = self.practice_flux.get(practice).copied().unwrap_or((0, 0));
            let _ = writeln!(out, "    {practice:<36} {net:+4}  (+{adds} / -{removes})");
        }
        out
    }
}

/// Peer-group comparison: how a company's practice set compares to its
/// sector's norm (practices its peers commonly state that it lacks).
pub fn peer_gaps(dataset: &Dataset, domain: &str, threshold: f64) -> Option<Vec<String>> {
    let target = dataset.by_domain(domain)?;
    let peers: Vec<_> = dataset
        .annotated()
        .filter(|p| p.sector == target.sector && p.domain != domain)
        .collect();
    if peers.is_empty() {
        return Some(Vec::new());
    }
    let mine: BTreeSet<String> = target
        .annotations
        .iter()
        .map(|a| practice_key(&a.payload))
        .collect();
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for peer in &peers {
        let set: BTreeSet<String> = peer
            .annotations
            .iter()
            .map(|a| practice_key(&a.payload))
            .collect();
        for practice in set {
            *counts.entry(practice).or_default() += 1;
        }
    }
    let mut gaps: Vec<String> = counts
        .into_iter()
        .filter(|(practice, count)| {
            // Only rights/handling gaps are "missing protections"; data-type
            // gaps just mean collecting less, which is not a deficiency.
            (practice.starts_with("choice:")
                || practice.starts_with("access:")
                || practice.starts_with("protection:")
                || practice.starts_with("retention:"))
                && *count as f64 / peers.len() as f64 >= threshold
                && !mine.contains(practice)
        })
        .map(|(practice, _)| practice)
        .collect();
    gaps.sort();
    Some(gaps)
}

/// Count annotations per aspect (convenience for snapshot summaries).
pub fn aspect_counts(dataset: &Dataset) -> BTreeMap<AspectKind, usize> {
    AspectKind::ALL
        .iter()
        .map(|&k| (k, dataset.annotation_count(k)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aipan_core::dataset::{AnnotatedPolicy, SegmentationMethod};
    use aipan_taxonomy::records::Annotation;
    use aipan_taxonomy::{ChoiceLabel, DataTypeCategory, Sector};

    fn policy(domain: &str, annotations: Vec<Annotation>) -> AnnotatedPolicy {
        AnnotatedPolicy {
            domain: domain.into(),
            sector: Sector::Financials,
            annotations,
            fallbacks: vec![],
            hallucinations_removed: 0,
            core_word_count: 100,
            segmentation: SegmentationMethod::Headings,
            policy_path: "/privacy".into(),
        }
    }

    fn dt() -> Annotation {
        Annotation::new(
            AnnotationPayload::DataType {
                descriptor: "email address".into(),
                category: DataTypeCategory::ContactInfo,
            },
            "email address",
            1,
        )
    }

    fn optin() -> Annotation {
        Annotation::new(
            AnnotationPayload::Choice {
                label: ChoiceLabel::OptIn,
            },
            "consent",
            2,
        )
    }

    #[test]
    fn diff_detects_additions_and_removals() {
        let old = Dataset {
            policies: vec![policy("a.com", vec![dt()])],
        };
        let new = Dataset {
            policies: vec![policy("a.com", vec![dt(), optin()])],
        };
        let report = TrendReport::diff(&old, &new);
        assert_eq!(report.companies_compared, 1);
        assert_eq!(report.diffs.len(), 1);
        assert_eq!(report.diffs[0].added, vec!["choice:Opt-in".to_string()]);
        assert!(report.diffs[0].removed.is_empty());
        assert_eq!(report.practice_flux["choice:Opt-in"], (1, 0));
        assert!((report.churn_rate() - 1.0).abs() < 1e-9);
        assert!(report.render(5).contains("choice:Opt-in"));
    }

    #[test]
    fn identical_snapshots_have_no_churn() {
        let ds = Dataset {
            policies: vec![policy("a.com", vec![dt(), optin()])],
        };
        let report = TrendReport::diff(&ds, &ds);
        assert!(report.diffs.is_empty());
        assert_eq!(report.churn_rate(), 0.0);
    }

    #[test]
    fn appeared_and_disappeared_counted() {
        let old = Dataset {
            policies: vec![policy("gone.com", vec![dt()])],
        };
        let new = Dataset {
            policies: vec![policy("new.com", vec![dt()])],
        };
        let report = TrendReport::diff(&old, &new);
        assert_eq!(report.companies_compared, 0);
        assert_eq!(report.disappeared, 1);
        assert_eq!(report.appeared, 1);
    }

    #[test]
    fn peer_gaps_find_missing_common_practices() {
        let laggard = policy("laggard.com", vec![dt()]);
        let peer1 = policy("p1.com", vec![dt(), optin()]);
        let peer2 = policy("p2.com", vec![dt(), optin()]);
        let ds = Dataset {
            policies: vec![laggard, peer1, peer2],
        };
        let gaps = peer_gaps(&ds, "laggard.com", 0.8).unwrap();
        assert_eq!(gaps, vec!["choice:Opt-in".to_string()]);
        // Peers lack nothing.
        assert!(peer_gaps(&ds, "p1.com", 0.8).unwrap().is_empty());
        assert!(peer_gaps(&ds, "absent.com", 0.8).is_none());
    }

    #[test]
    fn top_trends_ranked_by_net() {
        let old = Dataset {
            policies: vec![
                policy("a.com", vec![dt()]),
                policy("b.com", vec![dt(), optin()]),
            ],
        };
        let new = Dataset {
            policies: vec![
                policy("a.com", vec![dt(), optin()]),
                policy("b.com", vec![dt()]),
            ],
        };
        let report = TrendReport::diff(&old, &new);
        // Opt-in added once, removed once → net 0.
        assert_eq!(report.practice_flux["choice:Opt-in"], (1, 1));
        assert_eq!(report.top_trends(1)[0].1, 0);
    }
}
