//! The §4 validation harness and §6 model comparison.
//!
//! The paper validated by manual inspection; AIPAN-RS validates against the
//! synthetic world's **planted ground truth**, which makes every audit
//! exact and repeatable while keeping the paper's protocol (sample sizes,
//! stratification, and reported metrics).

use aipan_chatbot::prompt::{TaskKind, TaskPrompt};
use aipan_chatbot::{protocol, Chatbot, ModelProfile, SimulatedChatbot};
use aipan_core::dataset::Dataset;
use aipan_crawler::crawl_domain;
use aipan_net::fault::{FaultConfig, FaultInjector};
use aipan_net::Client;
use aipan_taxonomy::normalize::fold;
use aipan_taxonomy::records::{AnnotationPayload, AspectKind};
#[cfg(test)]
use aipan_taxonomy::DataTypeCategory;
use aipan_taxonomy::{ChoiceLabel, Normalizer};
use aipan_webgen::{CompanyFate, GroundTruth, World};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn sample_rng(seed: u64, salt: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(salt))
}

// ---------------------------------------------------------------------------
// Crawl/extraction failure audit (§4, first paragraph)
// ---------------------------------------------------------------------------

/// Classification of an audited failure, following the paper's classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FailureClass {
    /// The site has no privacy policy (paper: 27/50).
    NoPolicy,
    /// Crawler exception/timeout (paper: 6).
    CrawlerException,
    /// Blocked crawl — bot wall (paper: 3, combined with robots below).
    BlockedCrawl,
    /// robots.txt disallows all crawling (honored by the crawler).
    RobotsBlocked,
    /// Dynamic JavaScript-loaded content (paper: 2).
    DynamicContent,
    /// Relevant link without the word "privacy" (paper: 3).
    LinkWithoutPrivacy,
    /// Link triggering a JavaScript action (paper: 1).
    JavaScriptLink,
    /// Link only in a consent box (paper: 1).
    ConsentBoxLink,
    /// PDF policy (paper: 5).
    PdfPolicy,
    /// Non-English website (paper: 2).
    NonEnglish,
    /// Mixed-language policy discarded in pre-processing.
    MixedLanguage,
    /// Policy as an image or behind expandable elements.
    UnextractableContent,
}

/// The audit of a sample of failed domains.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailureAudit {
    /// Total failed domains (crawl or extraction; paper: 244 + 103).
    pub failed_total: usize,
    /// Sample size audited (paper: 50).
    pub sample_size: usize,
    /// Counts per failure class in the sample.
    pub counts: Vec<(FailureClass, usize)>,
}

impl FailureAudit {
    /// Audit `sample_size` randomly selected failed domains.
    pub fn run(world: &World, dataset: &Dataset, sample_size: usize, seed: u64) -> FailureAudit {
        let mut failed: Vec<String> = world
            .universe
            .unique_domains()
            .iter()
            .map(|c| c.domain.clone())
            .filter(|d| dataset.by_domain(d).is_none())
            .collect();
        failed.sort();
        let failed_total = failed.len();
        let mut rng = sample_rng(seed, 0xFA11);
        failed.shuffle(&mut rng);
        failed.truncate(sample_size);

        let injector = FaultInjector::new(world.config.seed, world.config.faults);
        let mut histogram: BTreeMap<FailureClass, usize> = BTreeMap::new();
        for domain in &failed {
            let class = classify_failure(world, &injector, domain);
            *histogram.entry(class).or_insert(0) += 1;
        }
        let mut counts: Vec<(FailureClass, usize)> = histogram.into_iter().collect();
        counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        FailureAudit {
            failed_total,
            sample_size: failed.len(),
            counts,
        }
    }

    /// Render with the paper's reference breakdown.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Failure audit: {} failed domains, {} sampled \
             [paper: 347 failed, 50 sampled → 27 no policy, 11 crawler-related, \
             5 link detection, 5 PDF, 2 non-English]",
            self.failed_total, self.sample_size
        );
        for (class, count) in &self.counts {
            let _ = writeln!(out, "  {:<24} {}", format!("{class:?}"), count);
        }
        out
    }
}

fn classify_failure(world: &World, injector: &FaultInjector, domain: &str) -> FailureClass {
    use aipan_net::fault::FaultKind;
    if aipan_webgen::site::robots_blocks_all(world.config.seed, domain) {
        return FailureClass::RobotsBlocked;
    }
    match injector.fate(domain) {
        FaultKind::ConnectFailure | FaultKind::Timeout => return FailureClass::CrawlerException,
        FaultKind::Blocked => return FailureClass::BlockedCrawl,
        FaultKind::None => {}
    }
    match world.fate(domain) {
        CompanyFate::NoPolicy => FailureClass::NoPolicy,
        CompanyFate::HiddenLegalLink => FailureClass::LinkWithoutPrivacy,
        CompanyFate::JsActionLink => FailureClass::JavaScriptLink,
        CompanyFate::ConsentBoxLink => FailureClass::ConsentBoxLink,
        CompanyFate::PdfPolicy => FailureClass::PdfPolicy,
        CompanyFate::NonEnglish => FailureClass::NonEnglish,
        CompanyFate::MixedLanguage => FailureClass::MixedLanguage,
        CompanyFate::JsLoadedPolicy => FailureClass::DynamicContent,
        CompanyFate::ImagePolicy | CompanyFate::ExpandablePolicy => {
            FailureClass::UnextractableContent
        }
        // A Normal site that still failed: treat as crawler-related.
        CompanyFate::Normal => FailureClass::CrawlerException,
    }
}

// ---------------------------------------------------------------------------
// Missing-aspect audit (§4, second paragraph)
// ---------------------------------------------------------------------------

/// Audit of policies that miss annotations for ≥1 studied aspect.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MissingAspectAudit {
    /// Policies missing ≥1 aspect (paper: 375).
    pub missing_total: usize,
    /// Sample size (paper: 20).
    pub sample_size: usize,
    /// Sampled policies whose missing aspects are genuinely absent from the
    /// planted truth (paper: 16/20).
    pub truly_absent: usize,
    /// Sampled policies where the aspect exists in truth but the pipeline
    /// missed it (paper: 4/20 — extraction artifacts).
    pub pipeline_miss: usize,
}

impl MissingAspectAudit {
    /// Audit a deterministic sample of missing-aspect policies.
    pub fn run(
        world: &World,
        dataset: &Dataset,
        sample_size: usize,
        seed: u64,
    ) -> MissingAspectAudit {
        let mut missing: Vec<&str> = dataset
            .annotated()
            .filter(|p| !p.missing_aspects().is_empty())
            .map(|p| p.domain.as_str())
            .collect();
        missing.sort();
        let missing_total = missing.len();
        let mut rng = sample_rng(seed, 0x3155);
        missing.shuffle(&mut rng);
        missing.truncate(sample_size);

        let mut truly_absent = 0;
        let mut pipeline_miss = 0;
        for domain in &missing {
            let Some(policy) = dataset.by_domain(domain) else {
                continue;
            };
            let Some(truth) = world.truth(domain) else {
                pipeline_miss += 1;
                continue;
            };
            let all_absent = policy.missing_aspects().iter().all(|kind| match kind {
                AspectKind::Types => !truth.has_types(),
                AspectKind::Purposes => !truth.has_purposes(),
                AspectKind::Handling => !truth.has_handling(),
                AspectKind::Rights => !truth.has_rights(),
            });
            if all_absent {
                truly_absent += 1;
            } else {
                pipeline_miss += 1;
            }
        }
        MissingAspectAudit {
            missing_total,
            sample_size: missing.len(),
            truly_absent,
            pipeline_miss,
        }
    }

    /// Render with the paper's reference values.
    pub fn render(&self) -> String {
        format!(
            "Missing-aspect audit: {} policies missing ≥1 aspect [paper: 375]; sampled {}: \
             {} genuinely absent, {} pipeline misses [paper: 16 vs 4 of 20]\n",
            self.missing_total, self.sample_size, self.truly_absent, self.pipeline_miss
        )
    }
}

// ---------------------------------------------------------------------------
// Annotation precision (§4, third paragraph)
// ---------------------------------------------------------------------------

/// Stratified annotation-precision estimates per aspect.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrecisionReport {
    /// (sampled, correct) for data types (paper: 340 sampled, 89.7%).
    pub types: (usize, usize),
    /// (sampled, correct) for purposes (paper: 175 sampled, 94.3%).
    pub purposes: (usize, usize),
    /// (sampled, correct) for handling (paper: 200 sampled, 97.5%).
    pub handling: (usize, usize),
    /// (sampled, correct) for rights (paper: 220 sampled, 90.5%).
    pub rights: (usize, usize),
    /// Of the rights errors, how many are "Do not use" annotations
    /// (paper: ~40% of errors).
    pub rights_errors_do_not_use: usize,
}

impl PrecisionReport {
    /// Sample and grade annotations against the planted ground truth.
    ///
    /// Stratification mirrors the paper: up to `per_type` (10) per data-type
    /// category, `per_purpose` (25) per purpose category, 20 per handling
    /// label, and 20 per rights label.
    pub fn run(world: &World, dataset: &Dataset, seed: u64) -> PrecisionReport {
        Self::run_with(world, dataset, seed, 10, 25, 20, 20)
    }

    /// Like [`PrecisionReport::run`] with explicit strata sizes.
    pub fn run_with(
        world: &World,
        dataset: &Dataset,
        seed: u64,
        per_type: usize,
        per_purpose: usize,
        per_handling: usize,
        per_rights: usize,
    ) -> PrecisionReport {
        // Collect (domain, payload) pools per stratum key.
        let mut pools: BTreeMap<String, Vec<(&str, &AnnotationPayload)>> = BTreeMap::new();
        for policy in dataset.annotated() {
            for ann in &policy.annotations {
                let key = stratum_key(&ann.payload);
                pools
                    .entry(key)
                    .or_default()
                    .push((policy.domain.as_str(), &ann.payload));
            }
        }

        let mut types = (0usize, 0usize);
        let mut purposes = (0usize, 0usize);
        let mut handling = (0usize, 0usize);
        let mut rights = (0usize, 0usize);
        let mut rights_errors_do_not_use = 0usize;

        let mut keys: Vec<&String> = pools.keys().collect();
        keys.sort();
        for key in keys {
            let Some(pool) = pools.get(key) else {
                continue;
            };
            let quota = if key.starts_with("dt:") {
                per_type
            } else if key.starts_with("pu:") {
                per_purpose
            } else if key.starts_with("re:") || key.starts_with("pr:") {
                per_handling
            } else {
                per_rights
            };
            let mut indices: Vec<usize> = (0..pool.len()).collect();
            let mut rng = sample_rng(seed, hash_key(key));
            indices.shuffle(&mut rng);
            for &i in indices.iter().take(quota) {
                let Some(&(domain, payload)) = pool.get(i) else {
                    continue;
                };
                let correct = world
                    .truth(domain)
                    .map(|t| payload_correct(t, payload))
                    .unwrap_or(false);
                match payload.aspect_kind() {
                    AspectKind::Types => bump(&mut types, correct),
                    AspectKind::Purposes => bump(&mut purposes, correct),
                    AspectKind::Handling => bump(&mut handling, correct),
                    AspectKind::Rights => {
                        bump(&mut rights, correct);
                        if !correct
                            && matches!(
                                payload,
                                AnnotationPayload::Choice {
                                    label: ChoiceLabel::DoNotUse
                                }
                            )
                        {
                            rights_errors_do_not_use += 1;
                        }
                    }
                }
            }
        }

        PrecisionReport {
            types,
            purposes,
            handling,
            rights,
            rights_errors_do_not_use,
        }
    }

    /// Precision for one aspect tuple.
    pub fn precision(pair: (usize, usize)) -> f64 {
        if pair.0 == 0 {
            0.0
        } else {
            pair.1 as f64 / pair.0 as f64
        }
    }

    /// Render with the paper's reference values.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Annotation precision vs planted ground truth:");
        let row = |name: &str, pair: (usize, usize), paper: &str| {
            format!(
                "  {:<12} {:>4} sampled, {:>4} correct → {:>5.1}%   [paper: {paper}]\n",
                name,
                pair.0,
                pair.1,
                Self::precision(pair) * 100.0
            )
        };
        out.push_str(&row("types", self.types, "89.7%"));
        out.push_str(&row("purposes", self.purposes, "94.3%"));
        out.push_str(&row("handling", self.handling, "97.5%"));
        out.push_str(&row("rights", self.rights, "90.5%"));
        let rights_errors = self.rights.0 - self.rights.1;
        let share = if rights_errors == 0 {
            0.0
        } else {
            self.rights_errors_do_not_use as f64 / rights_errors as f64 * 100.0
        };
        let _ = writeln!(
            out,
            "  rights errors in 'Do not use': {}/{} ({:.0}%)   [paper: ~40%]",
            self.rights_errors_do_not_use, rights_errors, share
        );
        out
    }
}

fn bump(pair: &mut (usize, usize), correct: bool) {
    pair.0 += 1;
    if correct {
        pair.1 += 1;
    }
}

fn stratum_key(payload: &AnnotationPayload) -> String {
    match payload {
        AnnotationPayload::DataType { category, .. } => format!("dt:{}", category.index()),
        AnnotationPayload::Purpose { category, .. } => format!("pu:{}", category.index()),
        AnnotationPayload::Retention { label, .. } => format!("re:{}", label.index()),
        AnnotationPayload::Protection { label } => format!("pr:{}", label.index()),
        AnnotationPayload::Choice { label } => format!("ch:{}", label.index()),
        AnnotationPayload::Access { label } => format!("ac:{}", label.index()),
    }
}

fn hash_key(key: &str) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// Whether an annotation payload agrees with the planted truth.
pub fn payload_correct(truth: &GroundTruth, payload: &AnnotationPayload) -> bool {
    match payload {
        AnnotationPayload::DataType {
            descriptor,
            category,
        } => truth
            .types
            .iter()
            .any(|m| m.descriptor == *descriptor && m.category == *category),
        AnnotationPayload::Purpose {
            descriptor,
            category,
        } => truth
            .purposes
            .iter()
            .any(|m| m.descriptor == *descriptor && m.category == *category),
        AnnotationPayload::Retention { label, .. } => {
            truth.retention.iter().any(|r| r.label == *label)
        }
        AnnotationPayload::Protection { label } => truth.protection.contains(label),
        AnnotationPayload::Choice { label } => truth.choices.contains(label),
        AnnotationPayload::Access { label } => truth.access.contains(label),
    }
}

// ---------------------------------------------------------------------------
// Model comparison (§6)
// ---------------------------------------------------------------------------

/// Extraction-precision comparison across model profiles on a sample of
/// policies (the paper's 20-policy GPT-4 / GPT-3.5 / Llama-3.1 study).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelComparison {
    /// Policies compared (paper: 20).
    pub policies: usize,
    /// Per model: (id, extractions, correct, negated-context extractions).
    pub results: Vec<(String, usize, usize, usize)>,
}

impl ModelComparison {
    /// Run the comparison over `n` randomly selected Normal-fate domains.
    pub fn run(world: &World, profiles: &[ModelProfile], n: usize, seed: u64) -> ModelComparison {
        let mut candidates: Vec<String> = world
            .fates
            .iter()
            .filter(|(_, f)| f.expect_extraction())
            .map(|(d, _)| d.clone())
            .collect();
        candidates.sort();
        let mut rng = sample_rng(seed, 0x6C39);
        candidates.shuffle(&mut rng);
        candidates.truncate(n);

        // Fetch each policy's extracted text once (fault-free client: the
        // comparison is about the models, not the crawl).
        let client = Client::new(
            world.internet.clone(),
            FaultInjector::new(0, FaultConfig::none()),
        );
        let normalizer = Normalizer::new();
        let mut docs: Vec<(String, String)> = Vec::new(); // (domain, numbered text)
        for domain in &candidates {
            let crawl = crawl_domain(&client, domain);
            let Some(path) = world.policy_paths.get(domain) else {
                continue;
            };
            let Some(page) = crawl
                .privacy_pages()
                .into_iter()
                .find(|p| p.final_url.path == *path)
            else {
                continue;
            };
            let doc = aipan_html::extract(&page.body);
            let input = protocol::number_lines(doc.lines.iter().map(|l| l.text.as_str()));
            docs.push((domain.clone(), input));
        }

        let prompt = TaskPrompt::build(TaskKind::ExtractDataTypes);
        let mut results = Vec::new();
        for profile in profiles {
            let bot = SimulatedChatbot::new(profile.clone(), seed);
            let mut extracted = 0usize;
            let mut correct = 0usize;
            let mut negated = 0usize;
            for (domain, input) in &docs {
                let Some(truth) = world.truth(domain) else {
                    continue;
                };
                let rows = protocol::parse_extractions(&bot.complete(&prompt, input));
                for (_, text) in rows {
                    extracted += 1;
                    let folded = fold(&text);
                    let planted_positive = truth.types.iter().any(|m| {
                        fold(&m.surface) == folded || normalized_matches(&normalizer, &folded, m)
                    });
                    let planted_negated = truth
                        .negated_types
                        .iter()
                        .any(|m| fold(&m.surface) == folded);
                    if planted_positive {
                        correct += 1;
                    } else if planted_negated {
                        negated += 1;
                    }
                }
            }
            results.push((profile.id.clone(), extracted, correct, negated));
        }
        ModelComparison {
            policies: docs.len(),
            results,
        }
    }

    /// Render with the paper's reference values.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Model comparison over {} policies [paper: 20 policies; GPT-4 96.2% vs \
             Llama-3.1 83.2% extraction precision; GPT-3.5 unsatisfactory; Llama extracts \
             negated contexts]",
            self.policies
        );
        for (id, extracted, correct, negated) in &self.results {
            let precision = if *extracted == 0 {
                0.0
            } else {
                *correct as f64 / *extracted as f64 * 100.0
            };
            let _ = writeln!(
                out,
                "  {:<24} {:>5} extracted, {:>5} correct → {:>5.1}% precision \
                 ({} negated-context extractions)",
                id, extracted, correct, precision, negated
            );
        }
        out
    }
}

/// Whether a folded extraction corresponds to `m` after normalization (the
/// extraction may use a different surface of the same descriptor).
fn normalized_matches(
    normalizer: &Normalizer,
    folded: &str,
    m: &aipan_webgen::PlantedMention,
) -> bool {
    normalizer
        .datatype(folded)
        .map(|hit| hit.descriptor == m.descriptor)
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aipan_core::{run_pipeline, PipelineConfig};
    use aipan_webgen::{build_world, WorldConfig};
    use std::sync::OnceLock;

    fn fixture() -> &'static (World, Dataset) {
        static FIX: OnceLock<(World, Dataset)> = OnceLock::new();
        FIX.get_or_init(|| {
            let world = build_world(WorldConfig::small(3, 400));
            let run = run_pipeline(
                &world,
                PipelineConfig {
                    seed: 3,
                    ..Default::default()
                },
            );
            (world, run.dataset)
        })
    }

    #[test]
    fn failure_audit_classifies_sample() {
        let (world, dataset) = fixture();
        let audit = FailureAudit::run(world, dataset, 50, 1);
        assert!(audit.failed_total > 0);
        assert!(audit.sample_size <= 50);
        let total: usize = audit.counts.iter().map(|(_, c)| c).sum();
        assert_eq!(total, audit.sample_size);
        // NoPolicy should dominate, as in the paper.
        assert_eq!(audit.counts[0].0, FailureClass::NoPolicy);
    }

    #[test]
    fn missing_aspect_audit_mostly_truly_absent() {
        let (world, dataset) = fixture();
        let audit = MissingAspectAudit::run(world, dataset, 20, 2);
        assert!(audit.missing_total > 0);
        assert_eq!(audit.truly_absent + audit.pipeline_miss, audit.sample_size);
        assert!(
            audit.truly_absent * 2 >= audit.sample_size,
            "most sampled misses should be genuine: {audit:?}"
        );
    }

    #[test]
    fn precision_in_plausible_band() {
        let (world, dataset) = fixture();
        let report = PrecisionReport::run(world, dataset, 5);
        let types_p = PrecisionReport::precision(report.types);
        let handling_p = PrecisionReport::precision(report.handling);
        assert!(
            report.types.0 > 50,
            "types sample too small: {:?}",
            report.types
        );
        assert!((0.75..=1.0).contains(&types_p), "types precision {types_p}");
        assert!(handling_p >= types_p - 0.1, "handling should be cleaner");
    }

    #[test]
    fn payload_correct_grades_properly() {
        let (world, _) = fixture();
        let (domain, truth) = world.truths.iter().next().unwrap();
        let _ = domain;
        if let Some(m) = truth.types.first() {
            let good = AnnotationPayload::DataType {
                descriptor: m.descriptor.clone(),
                category: m.category,
            };
            assert!(payload_correct(truth, &good));
            let bad = AnnotationPayload::DataType {
                descriptor: m.descriptor.clone(),
                category: if m.category == DataTypeCategory::ContactInfo {
                    DataTypeCategory::DeviceInfo
                } else {
                    DataTypeCategory::ContactInfo
                },
            };
            assert!(!payload_correct(truth, &bad));
        }
    }

    #[test]
    fn model_comparison_orders_models() {
        let (world, _) = fixture();
        let profiles = vec![ModelProfile::gpt4_turbo(), ModelProfile::llama31()];
        let cmp = ModelComparison::run(world, &profiles, 20, 7);
        assert!(cmp.policies >= 10, "not enough policies: {}", cmp.policies);
        let gpt4 = &cmp.results[0];
        let llama = &cmp.results[1];
        let p = |r: &(String, usize, usize, usize)| r.2 as f64 / r.1.max(1) as f64;
        assert!(
            p(gpt4) > p(llama),
            "gpt4 {:.3} should beat llama {:.3}",
            p(gpt4),
            p(llama)
        );
        assert!(
            llama.3 > gpt4.3,
            "llama should extract more negated contexts"
        );
    }

    #[test]
    fn renders_contain_reference_values() {
        let (world, dataset) = fixture();
        let audit = FailureAudit::run(world, dataset, 50, 1).render();
        assert!(audit.contains("paper"));
        let prec = PrecisionReport::run(world, dataset, 5).render();
        assert!(prec.contains("89.7%"));
    }
}
