//! Golden determinism test: two fully independent pipeline runs from the
//! same seed must produce byte-identical rendered artifacts. This is the
//! end-to-end check behind lint rule D2 — no hash-ordered iteration (or
//! wall-clock/entropy input, rule D1) may leak into any emitted table,
//! report, or serialized dataset.

use aipan_analysis::{insights, risk, tables};
use aipan_core::{run_pipeline, PipelineConfig};
use aipan_webgen::{build_world, WorldConfig};

/// Render every artifact the paper reproduction emits into one byte string.
fn render_everything(seed: u64, companies: usize, workers: usize) -> String {
    let world = build_world(WorldConfig::small(seed, companies));
    let run = run_pipeline(
        &world,
        PipelineConfig {
            seed,
            workers,
            ..Default::default()
        },
    );

    let mut out = String::new();
    // Crawl funnel (§3.1) — crates/crawler/src/report.rs counters.
    out.push_str(&format!("{:?}\n", run.crawl_funnel));
    out.push_str(&format!("{:?}\n", run.extraction));
    // Tables 1–6 — crates/analysis/src/tables.rs.
    out.push_str(&tables::render_table1(&tables::table1(&run.dataset, 10)));
    out.push_str(&tables::render_breakdown(
        "Table 2a",
        &tables::table2a(&run.dataset),
    ));
    out.push_str(&tables::render_breakdown(
        "Table 2b",
        &tables::table2b(&run.dataset),
    ));
    out.push_str(&tables::render_table3(&tables::table3(&run.dataset)));
    out.push_str(&tables::render_breakdown(
        "Table 5",
        &tables::table5(&run.dataset),
    ));
    out.push_str(&tables::render_table6(&tables::table6(
        &world,
        &run.dataset,
        3,
        seed,
    )));
    // Risk ranking and narrative insights.
    out.push_str(&risk::render(&risk::rank(&run.dataset), 15));
    out.push_str(&insights::Insights::compute(&run.dataset).render());
    // Serialized dataset (JSON map ordering must be stable too).
    out.push_str(&serde_json::to_string(&run.dataset).unwrap_or_default());
    out
}

#[test]
fn two_runs_are_byte_identical() {
    let a = render_everything(11, 180, 4);
    let b = render_everything(11, 180, 4);
    assert!(
        a == b,
        "two identically-seeded runs diverged; first differing byte at {}",
        a.bytes()
            .zip(b.bytes())
            .position(|(x, y)| x != y)
            .unwrap_or(a.len().min(b.len()))
    );
}

#[test]
fn worker_count_does_not_change_output() {
    let serial = render_everything(12, 120, 1);
    let parallel = render_everything(12, 120, 6);
    assert!(
        serial == parallel,
        "output depends on worker scheduling; first differing byte at {}",
        serial
            .bytes()
            .zip(parallel.bytes())
            .position(|(x, y)| x != y)
            .unwrap_or(serial.len().min(parallel.len()))
    );
}
