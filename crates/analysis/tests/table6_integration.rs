//! Integration test for Table 6 regeneration: every sampled row's verbatim
//! text must appear in its reported context, and the contexts must come
//! from the actual policy pages.

use aipan_analysis::tables;
use aipan_core::{run_pipeline, PipelineConfig};
use aipan_taxonomy::normalize::fold;
use aipan_webgen::{build_world, WorldConfig};

#[test]
fn table6_rows_have_consistent_context() {
    let world = build_world(WorldConfig::small(5, 200));
    let run = run_pipeline(
        &world,
        PipelineConfig {
            seed: 5,
            ..Default::default()
        },
    );
    let rows = tables::table6(&world, &run.dataset, 4, 5);
    assert!(
        rows.len() >= 8,
        "expected rows for several aspects, got {}",
        rows.len()
    );
    let mut aspects = std::collections::HashSet::new();
    for row in &rows {
        aspects.insert(row.aspect.clone());
        assert!(
            fold(&row.context).contains(&fold(&row.text)),
            "context {:?} does not contain text {:?}",
            row.context,
            row.text
        );
        assert!(run.dataset.by_domain(&row.domain).is_some());
        assert!(!row.category.is_empty() && !row.descriptor.is_empty());
    }
    assert!(aspects.len() >= 3, "rows should span aspects: {aspects:?}");
    let rendered = tables::render_table6(&rows);
    assert!(rendered.contains("Table 6"));
}
