//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **Segmentation-first vs whole-text annotation** — the paper argues
//!   sectioning "helps remove unrelated content and minimize token usage";
//!   this ablation measures both wall time and token usage each way.
//! * **Full-text fallback on/off** — the §3.2.2 coverage mechanism.
//! * **Hallucination verification on/off** — the verbatim check's cost.
//! * **Glossary size** — prompt-token cost of attaching larger glossaries.
//!
//! Besides timing, each ablation prints its quality-side effect once
//! (annotation counts / token totals) so the trade-off is visible in the
//! bench log.

use aipan_core::annotate::AnnotateOptions;
use aipan_core::{run_pipeline, PipelineConfig};
use aipan_taxonomy::glossary;
use aipan_webgen::{build_world, WorldConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::OnceLock;

fn world() -> &'static aipan_webgen::World {
    static W: OnceLock<aipan_webgen::World> = OnceLock::new();
    W.get_or_init(|| build_world(WorldConfig::small(17, 200)))
}

fn config(use_segmentation: bool, fallback: bool, verify: bool) -> PipelineConfig {
    PipelineConfig {
        seed: 17,
        use_segmentation,
        annotate: AnnotateOptions {
            fallback,
            verify,
            ..AnnotateOptions::default()
        },
        ..Default::default()
    }
}

fn report_once(name: &str, cfg: &PipelineConfig) {
    let run = run_pipeline(world(), cfg.clone());
    let annotations: usize = run
        .dataset
        .policies
        .iter()
        .map(|p| p.annotations.len())
        .sum();
    let tokens: u64 = run.usage.iter().map(|(_, u)| u.total()).sum();
    eprintln!(
        "[ablation:{name}] policies={} annotations={annotations} tokens={tokens} \
         hallucinations_removed={}",
        run.dataset.len(),
        run.extraction.hallucinations_removed
    );
}

fn bench_segmentation_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_segmentation");
    group.sample_size(10);
    let with = config(true, true, true);
    let without = config(false, true, true);
    report_once("segmentation_on", &with);
    report_once("segmentation_off_whole_text", &without);
    group.bench_function("segmentation_on", |b| {
        b.iter(|| run_pipeline(black_box(world()), with.clone()))
    });
    group.bench_function("segmentation_off_whole_text", |b| {
        b.iter(|| run_pipeline(black_box(world()), without.clone()))
    });
    group.finish();
}

fn bench_fallback_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_fallback");
    group.sample_size(10);
    let with = config(true, true, true);
    let without = config(true, false, true);
    report_once("fallback_on", &with);
    report_once("fallback_off", &without);
    group.bench_function("fallback_on", |b| {
        b.iter(|| run_pipeline(black_box(world()), with.clone()))
    });
    group.bench_function("fallback_off", |b| {
        b.iter(|| run_pipeline(black_box(world()), without.clone()))
    });
    group.finish();
}

fn bench_verification_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_verification");
    group.sample_size(10);
    let with = config(true, true, true);
    let without = config(true, true, false);
    report_once("verification_on", &with);
    report_once("verification_off", &without);
    group.bench_function("verification_on", |b| {
        b.iter(|| run_pipeline(black_box(world()), with.clone()))
    });
    group.bench_function("verification_off", |b| {
        b.iter(|| run_pipeline(black_box(world()), without.clone()))
    });
    group.finish();
}

fn bench_glossary_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_glossary");
    for per_category in [1usize, 4, 8, 100] {
        group.bench_function(format!("datatype_glossary_{per_category}"), |b| {
            b.iter(|| glossary::datatype_glossary(black_box(per_category)))
        });
    }
    // Token cost of each size, reported once.
    for per_category in [1usize, 4, 8, 100] {
        let g = glossary::datatype_glossary(per_category);
        eprintln!(
            "[ablation:glossary_{per_category}] tokens={}",
            aipan_chatbot::tokens::estimate_tokens(&g)
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_segmentation_ablation,
    bench_fallback_ablation,
    bench_verification_ablation,
    bench_glossary_sizes,
);
criterion_main!(benches);
