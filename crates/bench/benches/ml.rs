//! Benchmarks for the offline student models: featurization, training,
//! and inference throughput — the numbers that justify replacing chatbot
//! calls with a local model (the paper's future-work deployment).

use aipan_chatbot::SimulatedChatbot;
use aipan_ml::{build_aspect_corpus, eval, train::split_by_domain, Featurizer};
use aipan_webgen::{build_world, WorldConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use std::sync::OnceLock;

fn corpus() -> &'static Vec<aipan_ml::LabeledLine> {
    static C: OnceLock<Vec<aipan_ml::LabeledLine>> = OnceLock::new();
    C.get_or_init(|| {
        let world = build_world(WorldConfig::small(23, 120));
        let teacher = SimulatedChatbot::gpt4(23);
        build_aspect_corpus(&world, &teacher, 60)
    })
}

fn bench_featurize(c: &mut Criterion) {
    let f = Featurizer::default();
    let line = "We retain your personal information for two (2) years after your last \
                interaction with our services, after which it is destroyed.";
    let mut group = c.benchmark_group("ml_featurize");
    group.throughput(Throughput::Bytes(line.len() as u64));
    group.bench_function("line", |b| b.iter(|| f.featurize(black_box(line))));
    group.finish();
}

fn bench_train(c: &mut Criterion) {
    let f = Featurizer::default();
    let corpus = corpus();
    let (train, _) = split_by_domain(corpus);
    let mut group = c.benchmark_group("ml_train");
    group.sample_size(10);
    group.throughput(Throughput::Elements(train.len() as u64));
    group.bench_function("naive_bayes", |b| {
        b.iter(|| eval::train_student(black_box(&f), black_box(&train)))
    });
    group.finish();
}

fn bench_inference_vs_chatbot(c: &mut Criterion) {
    // The trade the paper's future work contemplates: a trained student
    // labels a line orders of magnitude faster than a chatbot call.
    let f = Featurizer::default();
    let corpus = corpus();
    let (train, test) = split_by_domain(corpus);
    let model = eval::train_student(&f, &train);
    let probe = &test.first().expect("test set non-empty").text;
    let mut group = c.benchmark_group("ml_inference");
    group.bench_function("student_predict", |b| {
        let features = f.featurize(probe);
        b.iter(|| model.predict(black_box(&features)))
    });
    group.bench_function("student_featurize_and_predict", |b| {
        b.iter(|| model.predict(&f.featurize(black_box(probe))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_featurize,
    bench_train,
    bench_inference_vs_chatbot
);
criterion_main!(benches);
