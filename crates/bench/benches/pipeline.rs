//! End-to-end pipeline benchmarks: whole-universe crawl and annotation at
//! several corpus scales, and the analysis/table-regeneration pass.

use aipan_analysis::{insights::Insights, tables};
use aipan_core::{run_pipeline, PipelineConfig};
use aipan_crawler::{crawl_all, PoolConfig};
use aipan_net::fault::FaultInjector;
use aipan_net::Client;
use aipan_webgen::{build_world, WorldConfig};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_world_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("world_build");
    group.sample_size(10);
    for size in [100usize, 400] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| build_world(WorldConfig::small(9, size)))
        });
    }
    group.finish();
}

fn bench_crawl_universe(c: &mut Criterion) {
    let world = build_world(WorldConfig::small(9, 300));
    let client = Client::new(
        world.internet.clone(),
        FaultInjector::new(world.config.seed, world.config.faults),
    );
    let domains: Vec<String> = world
        .universe
        .unique_domains()
        .iter()
        .map(|c| c.domain.clone())
        .collect();
    let mut group = c.benchmark_group("crawl_universe_300");
    group.sample_size(10);
    for workers in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    crawl_all(
                        black_box(&client),
                        black_box(&domains),
                        PoolConfig { workers },
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_end_to_end");
    group.sample_size(10);
    for size in [100usize, 300] {
        let world = build_world(WorldConfig::small(9, size));
        group.bench_with_input(BenchmarkId::from_parameter(size), &world, |b, world| {
            b.iter(|| {
                run_pipeline(
                    black_box(world),
                    PipelineConfig {
                        seed: 9,
                        ..Default::default()
                    },
                )
            })
        });
    }
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let world = build_world(WorldConfig::small(9, 400));
    let run = run_pipeline(
        &world,
        PipelineConfig {
            seed: 9,
            ..Default::default()
        },
    );
    let mut group = c.benchmark_group("analysis");
    group.bench_function("table1", |b| {
        b.iter(|| tables::table1(black_box(&run.dataset), 3))
    });
    group.bench_function("table5", |b| {
        b.iter(|| tables::table5(black_box(&run.dataset)))
    });
    group.bench_function("table3", |b| {
        b.iter(|| tables::table3(black_box(&run.dataset)))
    });
    group.bench_function("insights", |b| {
        b.iter(|| Insights::compute(black_box(&run.dataset)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_world_build,
    bench_crawl_universe,
    bench_full_pipeline,
    bench_analysis,
);
criterion_main!(benches);
