//! Per-stage throughput benchmarks: HTML extraction, segmentation,
//! vocabulary scanning, each chatbot task, and single-domain crawling.

use aipan_chatbot::prompt::{TaskKind, TaskPrompt};
use aipan_chatbot::{protocol, Chatbot, ModelProfile, SimulatedChatbot};
use aipan_core::segment;
use aipan_net::fault::{FaultConfig, FaultInjector};
use aipan_net::Client;
use aipan_taxonomy::{Normalizer, Sector};
use aipan_webgen::policy::{render_policy, PolicyStyle};
use aipan_webgen::{build_world, GroundTruth, WorldConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn fixture_policy_html() -> String {
    let truth = GroundTruth::sample(7, "bench.com", Sector::InformationTechnology);
    let style = PolicyStyle::sample(7, "bench.com");
    render_policy(&truth, &style, "Bench Corp", 7)
}

fn bench_html_extract(c: &mut Criterion) {
    let html = fixture_policy_html();
    let mut group = c.benchmark_group("html");
    group.throughput(Throughput::Bytes(html.len() as u64));
    group.bench_function("extract_policy_page", |b| {
        b.iter(|| aipan_html::extract(black_box(&html)))
    });
    group.finish();
}

fn bench_segmentation(c: &mut Criterion) {
    let html = fixture_policy_html();
    let doc = aipan_html::extract(&html);
    let bot = SimulatedChatbot::gpt4(7);
    c.bench_function("segment_policy", |b| {
        b.iter(|| segment::segment(black_box(&bot), black_box(&doc)))
    });
}

fn bench_chatbot_tasks(c: &mut Criterion) {
    let html = fixture_policy_html();
    let doc = aipan_html::extract(&html);
    let input = protocol::number_lines(doc.lines.iter().map(|l| l.text.as_str()));
    let bot = SimulatedChatbot::gpt4(7);
    let mut group = c.benchmark_group("chatbot");
    group.throughput(Throughput::Bytes(input.len() as u64));
    for kind in [
        TaskKind::ExtractDataTypes,
        TaskKind::AnnotatePurposes,
        TaskKind::AnnotateHandling,
        TaskKind::AnnotateRights,
        TaskKind::SegmentText,
    ] {
        let prompt = TaskPrompt::build(kind);
        group.bench_function(kind.name(), |b| {
            b.iter(|| bot.complete(black_box(&prompt), black_box(&input)))
        });
    }
    group.finish();
}

fn bench_normalizer(c: &mut Criterion) {
    let normalizer = Normalizer::new();
    let surfaces = [
        "mailing address",
        "browsing history",
        "not a real term",
        "gps coordinates",
    ];
    c.bench_function("normalize_lookup", |b| {
        b.iter(|| {
            for s in surfaces {
                black_box(normalizer.datatype(black_box(s)));
            }
        })
    });
    c.bench_function("normalizer_build", |b| b.iter(Normalizer::new));
}

fn bench_crawl_domain(c: &mut Criterion) {
    let world = build_world(WorldConfig::small(7, 64));
    let client = Client::new(
        world.internet.clone(),
        FaultInjector::new(0, FaultConfig::none()),
    );
    let domain = world
        .fates
        .iter()
        .find(|(_, f)| **f == aipan_webgen::CompanyFate::Normal)
        .map(|(d, _)| d.clone())
        .expect("normal domain");
    c.bench_function("crawl_domain", |b| {
        b.iter(|| aipan_crawler::crawl_domain(black_box(&client), black_box(&domain)))
    });
}

fn bench_groundtruth_and_render(c: &mut Criterion) {
    c.bench_function("groundtruth_sample", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            GroundTruth::sample(7, &format!("bench{i}.com"), Sector::Financials)
        })
    });
    let truth = GroundTruth::sample(7, "bench.com", Sector::InformationTechnology);
    let style = PolicyStyle::sample(7, "bench.com");
    c.bench_function("render_policy", |b| {
        b.iter(|| render_policy(black_box(&truth), black_box(&style), "Bench Corp", 7))
    });
}

fn bench_model_profiles(c: &mut Criterion) {
    // §6: per-model extraction cost over the same policy.
    let html = fixture_policy_html();
    let doc = aipan_html::extract(&html);
    let input = protocol::number_lines(doc.lines.iter().map(|l| l.text.as_str()));
    let prompt = TaskPrompt::build(TaskKind::ExtractDataTypes);
    let mut group = c.benchmark_group("models_extract");
    for profile in [
        ModelProfile::gpt4_turbo(),
        ModelProfile::llama31(),
        ModelProfile::gpt35_turbo(),
    ] {
        let bot = SimulatedChatbot::new(profile.clone(), 7);
        group.bench_function(&profile.id, |b| {
            b.iter(|| bot.complete(black_box(&prompt), black_box(&input)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_html_extract,
    bench_segmentation,
    bench_chatbot_tasks,
    bench_normalizer,
    bench_crawl_domain,
    bench_groundtruth_and_render,
    bench_model_profiles,
);
criterion_main!(benches);
