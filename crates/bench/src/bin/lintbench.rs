//! lintbench — cold-vs-warm wall-clock harness for `cargo lint
//! --incremental`.
//!
//! Deletes the lint cache, runs a cold incremental lint over this
//! workspace, immediately runs a warm one, and verifies the incremental
//! contract end to end:
//!
//! * the warm run must *replay* (content hashes all match, no parsing);
//! * its rendered JSON report must be byte-identical to the cold run's;
//! * on an unchanged tree it must be at least [`MIN_SPEEDUP`]× faster.
//!
//! The harness also times the v6 type-index pass in isolation — the
//! workspace-wide struct-field/return-type table every `N1`/`N2`/`A1`
//! check consults. Cold, that pass is paid inside every full scan; warm,
//! the `--incremental` replay skips it entirely (the replay gate above
//! proves no graph pass ran), so its warm cost is zero by construction
//! and the cell records how much work the cache is actually avoiding.
//!
//! The labeled timings are appended to `BENCH_lint.json` so the lint's
//! own perf trajectory accumulates across PRs, mirroring what
//! `perfbench` does for the pipeline in `BENCH_pipeline.json`. Entries
//! written by older harness versions are preserved verbatim (they are
//! re-emitted as raw JSON, not round-tripped through this version's
//! entry struct). Any contract violation exits nonzero — the verify
//! drive runs this as a gate, not just a stopwatch.
//!
//! ```text
//! lintbench                       # gate + append to BENCH_lint.json
//! lintbench --label post-PR7     # tag the appended entry
//! lintbench --out /tmp/l.json    # write somewhere else
//! ```

use aipan_lint::callgraph::CallGraph;
use aipan_lint::graph::Workspace;
use aipan_lint::incremental::{run_incremental, CACHE_REL_PATH};
use aipan_lint::report;
use aipan_lint::scan::{find_workspace_root, read_sources};
use aipan_lint::types::TypeIndex;
use serde::{Serialize, Value};
use std::time::Instant;

/// Minimum cold/warm speedup on an unchanged tree. The warm path only
/// hashes files and re-renders the cached report, so anything below this
/// means the cache is not actually short-circuiting the scan.
const MIN_SPEEDUP: f64 = 3.0;

/// One measured cold/warm pair.
#[derive(Debug, Serialize)]
struct LintBenchEntry {
    /// Caller-supplied tag (e.g. `post-PR7`).
    label: String,
    /// Files in the scan set.
    files: usize,
    /// Findings in the (identical) cold and warm reports.
    findings: usize,
    /// Cold run wall-clock (ms): full lex + parse + graph passes.
    cold_ms: f64,
    /// Warm run wall-clock (ms): hash check + cache replay.
    warm_ms: f64,
    /// `cold_ms / warm_ms`.
    speedup: f64,
    /// Wall-clock (ms) of building the workspace type index alone — the
    /// slice of every cold scan the v6 type-aware rules added.
    type_index_cold_ms: f64,
    /// Type-index cost on the warm path: always `0.0`, because a
    /// replayed run never reaches the graph passes (the replay gate
    /// fails the harness otherwise). Recorded so the trajectory states
    /// the avoided work explicitly rather than by omission.
    type_index_warm_ms: f64,
}

fn ms(since: Instant) -> f64 {
    let d = since.elapsed();
    (d.as_secs_f64() * 1e4).round() / 10.0
}

fn main() {
    let mut label = String::from("run");
    let mut out = String::from("BENCH_lint.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--label" => label = args.next().unwrap_or(label),
            "--out" => out = args.next().unwrap_or(out),
            "--help" | "-h" => {
                println!("usage: lintbench [--label NAME] [--out PATH]");
                return;
            }
            other => {
                eprintln!("lintbench: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let cwd = std::env::current_dir().unwrap_or_else(|e| {
        eprintln!("lintbench: cannot read cwd: {e}");
        std::process::exit(2);
    });
    let Some(root) = find_workspace_root(&cwd) else {
        eprintln!("lintbench: not inside the aipan workspace");
        std::process::exit(2);
    };
    let allow_path = root.join("lint.allow");

    // Cold: drop the cache so the run pays the full scan.
    let _ = std::fs::remove_file(root.join(CACHE_REL_PATH));
    let t0 = Instant::now();
    let cold = run_incremental(&root, &allow_path);
    let cold_ms = ms(t0);
    let (cold_report, cold_stats) = match cold {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("lintbench: cold run failed: {e}");
            std::process::exit(2);
        }
    };

    // Warm: the tree is unchanged, so this must replay the cache.
    let t1 = Instant::now();
    let warm = run_incremental(&root, &allow_path);
    let warm_ms = ms(t1);
    let (warm_report, warm_stats) = match warm {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("lintbench: warm run failed: {e}");
            std::process::exit(2);
        }
    };

    // The type-index pass in isolation, on the same sources the scans
    // saw: workspace build is setup, only `TypeIndex::build` is timed.
    let sources = match read_sources(&root, |_| true) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lintbench: cannot re-read sources: {e}");
            std::process::exit(2);
        }
    };
    let workspace = Workspace::build(&sources);
    let graph = CallGraph::build(&workspace);
    let t2 = Instant::now();
    let index = TypeIndex::build(&workspace);
    let type_index_cold_ms = ms(t2);
    drop((index, graph));

    println!(
        "cold: {cold_ms:.1} ms over {} file(s) ({})",
        cold_stats.total_files,
        cold_stats.summary()
    );
    println!("warm: {warm_ms:.1} ms ({})", warm_stats.summary());
    println!("type index: {type_index_cold_ms:.1} ms cold, skipped on replay");

    let mut failed = false;
    if !warm_stats.replayed {
        eprintln!("lintbench: FAIL — warm run did not replay the cache");
        failed = true;
    }
    let cold_json = report::json(&cold_report);
    let warm_json = report::json(&warm_report);
    if cold_json != warm_json {
        eprintln!("lintbench: FAIL — warm report differs from cold report");
        failed = true;
    }
    let speedup = if warm_ms > 0.0 {
        cold_ms / warm_ms
    } else {
        f64::INFINITY
    };
    if speedup < MIN_SPEEDUP {
        eprintln!("lintbench: FAIL — warm run only {speedup:.2}x faster (need >= {MIN_SPEEDUP}x)");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("speedup: {speedup:.1}x, reports byte-identical");

    // Append without round-tripping prior entries through this version's
    // struct: older entries lack the type-index members and must survive
    // byte-for-byte rather than being silently dropped on a parse miss.
    let mut entries: Vec<Value> = std::fs::read_to_string(root.join(&out))
        .ok()
        .and_then(|text| serde_json::from_str::<Value>(&text).ok())
        .and_then(|v| v.field("entries").ok().and_then(|e| e.as_array().cloned()))
        .unwrap_or_default();
    entries.push(
        LintBenchEntry {
            label,
            files: cold_stats.total_files,
            findings: cold_report.findings.len(),
            cold_ms,
            warm_ms,
            speedup: (speedup * 10.0).round() / 10.0,
            type_index_cold_ms,
            type_index_warm_ms: 0.0,
        }
        .to_value(),
    );
    let file = Value::Object(vec![
        ("harness".to_string(), "lintbench-v1".to_value()),
        ("entries".to_string(), Value::Array(entries)),
    ]);
    match serde_json::to_string_pretty(&file) {
        Ok(json) => {
            if let Err(e) = std::fs::write(root.join(&out), json + "\n") {
                eprintln!("lintbench: cannot write {out}: {e}");
                std::process::exit(2);
            }
            println!("wrote {out}");
        }
        Err(e) => {
            eprintln!("lintbench: serialize failed: {e}");
            std::process::exit(2);
        }
    }
}
