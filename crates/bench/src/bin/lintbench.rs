//! lintbench — cold-vs-warm wall-clock harness for `cargo lint
//! --incremental`.
//!
//! Deletes the lint cache, runs a cold incremental lint over this
//! workspace, immediately runs a warm one, and verifies the incremental
//! contract end to end:
//!
//! * the warm run must *replay* (content hashes all match, no parsing);
//! * its rendered JSON report must be byte-identical to the cold run's;
//! * on an unchanged tree it must be at least [`MIN_SPEEDUP`]× faster.
//!
//! The labeled timings are appended to `BENCH_lint.json` so the lint's
//! own perf trajectory accumulates across PRs, mirroring what
//! `perfbench` does for the pipeline in `BENCH_pipeline.json`. Any
//! contract violation exits nonzero — the verify drive runs this as a
//! gate, not just a stopwatch.
//!
//! ```text
//! lintbench                       # gate + append to BENCH_lint.json
//! lintbench --label post-PR7     # tag the appended entry
//! lintbench --out /tmp/l.json    # write somewhere else
//! ```

use aipan_lint::incremental::{run_incremental, CACHE_REL_PATH};
use aipan_lint::report;
use aipan_lint::scan::find_workspace_root;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Minimum cold/warm speedup on an unchanged tree. The warm path only
/// hashes files and re-renders the cached report, so anything below this
/// means the cache is not actually short-circuiting the scan.
const MIN_SPEEDUP: f64 = 3.0;

/// One measured cold/warm pair.
#[derive(Debug, Serialize, Deserialize)]
struct LintBenchEntry {
    /// Caller-supplied tag (e.g. `post-PR7`).
    label: String,
    /// Files in the scan set.
    files: usize,
    /// Findings in the (identical) cold and warm reports.
    findings: usize,
    /// Cold run wall-clock (ms): full lex + parse + graph passes.
    cold_ms: f64,
    /// Warm run wall-clock (ms): hash check + cache replay.
    warm_ms: f64,
    /// `cold_ms / warm_ms`.
    speedup: f64,
}

/// The committed trajectory file.
#[derive(Debug, Default, Serialize, Deserialize)]
struct LintBenchFile {
    /// Harness identifier, bumped only if the measured workload changes.
    harness: String,
    /// Appended measurements, oldest first.
    entries: Vec<LintBenchEntry>,
}

fn ms(since: Instant) -> f64 {
    let d = since.elapsed();
    (d.as_secs_f64() * 1e4).round() / 10.0
}

fn main() {
    let mut label = String::from("run");
    let mut out = String::from("BENCH_lint.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--label" => label = args.next().unwrap_or(label),
            "--out" => out = args.next().unwrap_or(out),
            "--help" | "-h" => {
                println!("usage: lintbench [--label NAME] [--out PATH]");
                return;
            }
            other => {
                eprintln!("lintbench: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let cwd = std::env::current_dir().unwrap_or_else(|e| {
        eprintln!("lintbench: cannot read cwd: {e}");
        std::process::exit(2);
    });
    let Some(root) = find_workspace_root(&cwd) else {
        eprintln!("lintbench: not inside the aipan workspace");
        std::process::exit(2);
    };
    let allow_path = root.join("lint.allow");

    // Cold: drop the cache so the run pays the full scan.
    let _ = std::fs::remove_file(root.join(CACHE_REL_PATH));
    let t0 = Instant::now();
    let cold = run_incremental(&root, &allow_path);
    let cold_ms = ms(t0);
    let (cold_report, cold_stats) = match cold {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("lintbench: cold run failed: {e}");
            std::process::exit(2);
        }
    };

    // Warm: the tree is unchanged, so this must replay the cache.
    let t1 = Instant::now();
    let warm = run_incremental(&root, &allow_path);
    let warm_ms = ms(t1);
    let (warm_report, warm_stats) = match warm {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("lintbench: warm run failed: {e}");
            std::process::exit(2);
        }
    };

    println!(
        "cold: {cold_ms:.1} ms over {} file(s) ({})",
        cold_stats.total_files,
        cold_stats.summary()
    );
    println!("warm: {warm_ms:.1} ms ({})", warm_stats.summary());

    let mut failed = false;
    if !warm_stats.replayed {
        eprintln!("lintbench: FAIL — warm run did not replay the cache");
        failed = true;
    }
    let cold_json = report::json(&cold_report);
    let warm_json = report::json(&warm_report);
    if cold_json != warm_json {
        eprintln!("lintbench: FAIL — warm report differs from cold report");
        failed = true;
    }
    let speedup = if warm_ms > 0.0 {
        cold_ms / warm_ms
    } else {
        f64::INFINITY
    };
    if speedup < MIN_SPEEDUP {
        eprintln!("lintbench: FAIL — warm run only {speedup:.2}x faster (need >= {MIN_SPEEDUP}x)");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("speedup: {speedup:.1}x, reports byte-identical");

    let mut file: LintBenchFile = std::fs::read_to_string(root.join(&out))
        .ok()
        .and_then(|text| serde_json::from_str(&text).ok())
        .unwrap_or_default();
    file.harness = "lintbench-v1".to_string();
    file.entries.push(LintBenchEntry {
        label,
        files: cold_stats.total_files,
        findings: cold_report.findings.len(),
        cold_ms,
        warm_ms,
        speedup: (speedup * 10.0).round() / 10.0,
    });
    match serde_json::to_string_pretty(&file) {
        Ok(json) => {
            if let Err(e) = std::fs::write(root.join(&out), json + "\n") {
                eprintln!("lintbench: cannot write {out}: {e}");
                std::process::exit(2);
            }
            println!("wrote {out}");
        }
        Err(e) => {
            eprintln!("lintbench: serialize failed: {e}");
            std::process::exit(2);
        }
    }
}
