//! perfbench — deterministic wall-clock harness for the pipeline hot path.
//!
//! Times the three stages that dominate a corpus run — world synthesis,
//! crawling, and the end-to-end annotation pipeline — at fixed sizes and
//! worker counts, and appends the measurements to `BENCH_pipeline.json` so
//! the repository accumulates a perf trajectory across PRs (the workloads
//! are seeded and deterministic; only the wall-clock varies by machine).
//!
//! ```text
//! perfbench                        # full grid: 100/300/1000 × {1,4,8}
//! perfbench --smoke                # tiny grid for CI / verify drive
//! perfbench --chaos-smoke          # 300 domains under FaultConfig::chaotic()
//! perfbench --label post-PR3      # tag the appended entries
//! perfbench --out /tmp/bench.json # write somewhere else
//! ```
//!
//! `--chaos-smoke` runs one elevated-transient cell (flaky 5xx bursts,
//! resets, 429s, latency spikes) so the retry/breaker overhead shows up in
//! the trajectory next to the clean-path numbers; entries are tagged with a
//! `-chaos` label suffix rather than a schema change so old trajectory
//! files keep parsing.
//!
//! Unlike the criterion benches this needs no statistical run: each cell is
//! measured once, which is enough to see the ≥1.5× movements we optimize
//! for, and cheap enough to run on every PR.

use aipan_bench::trajectory;
use aipan_core::{run_pipeline, PipelineConfig};
use aipan_crawler::{crawl_all, PoolConfig};
use aipan_net::fault::{FaultConfig, FaultInjector};
use aipan_net::Client;
use aipan_webgen::{build_world, WorldConfig};
use serde::{Deserialize, Serialize};
use std::time::Instant;

const SEED: u64 = 7;

/// One measured grid cell.
#[derive(Debug, Serialize, Deserialize)]
struct BenchEntry {
    /// Caller-supplied tag (e.g. `pre-PR3-baseline`, `post-PR3`).
    label: String,
    /// Universe size (company domains attempted).
    domains: usize,
    /// Worker-thread count for crawl and annotation pools.
    workers: usize,
    /// World synthesis wall-clock (ms).
    world_build_ms: f64,
    /// Crawl-only wall-clock (ms).
    crawl_ms: f64,
    /// End-to-end pipeline wall-clock (ms) — crawl + extract + segment +
    /// annotate + verify + funnel.
    pipeline_ms: f64,
    /// Annotated-domain count (work-equivalence check across entries).
    annotated: usize,
    /// Total annotations produced (ditto).
    annotations: usize,
}

// The committed trajectory file itself is loaded through
// `aipan_bench::trajectory`, which preserves members this harness
// version does not know about instead of silently dropping them.

fn measure(label: &str, domains: usize, workers: usize, chaos: bool) -> BenchEntry {
    let mut config = WorldConfig::small(SEED, domains);
    if chaos {
        config.faults = FaultConfig::chaotic();
    }
    let t0 = Instant::now();
    let world = build_world(config);
    let world_build_ms = ms(t0);

    let client = Client::new(
        world.internet.clone(),
        FaultInjector::new(world.config.seed, world.config.faults),
    );
    let domain_names: Vec<String> = world
        .universe
        .unique_domains()
        .iter()
        .map(|c| c.domain.clone())
        .collect();
    let t1 = Instant::now();
    let crawls = crawl_all(&client, &domain_names, PoolConfig { workers });
    let crawl_ms = ms(t1);
    drop(crawls);

    let t2 = Instant::now();
    let run = run_pipeline(
        &world,
        PipelineConfig {
            seed: SEED,
            workers,
            ..Default::default()
        },
    );
    let pipeline_ms = ms(t2);

    BenchEntry {
        label: label.to_string(),
        domains,
        workers,
        world_build_ms,
        crawl_ms,
        pipeline_ms,
        annotated: run.extraction.annotated,
        annotations: run
            .dataset
            .policies
            .iter()
            .map(|p| p.annotations.len())
            .sum(),
    }
}

fn ms(since: Instant) -> f64 {
    let d = since.elapsed();
    (d.as_secs_f64() * 1e4).round() / 10.0
}

fn main() {
    let mut label = String::from("run");
    let mut out = String::from("BENCH_pipeline.json");
    let mut smoke = false;
    let mut chaos = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--chaos-smoke" => chaos = true,
            "--label" => label = args.next().unwrap_or(label),
            "--out" => out = args.next().unwrap_or(out),
            "--help" | "-h" => {
                println!("usage: perfbench [--smoke] [--chaos-smoke] [--label NAME] [--out PATH]");
                return;
            }
            other => {
                eprintln!("perfbench: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let (sizes, worker_counts): (&[usize], &[usize]) = if chaos {
        (&[300], &[4])
    } else if smoke {
        (&[40], &[1, 2])
    } else {
        (&[100, 300, 1000], &[1, 4, 8])
    };
    if chaos {
        label.push_str("-chaos");
    }

    let text = std::fs::read_to_string(&out).unwrap_or_default();
    let (mut file, warnings) = trajectory::load(&text);
    for w in &warnings {
        eprintln!("perfbench: {w}");
    }
    file.harness = "perfbench-v1".to_string();

    println!("label={label} grid: {sizes:?} domains x {worker_counts:?} workers");
    println!(
        "{:>8} {:>8} {:>12} {:>10} {:>12} {:>10} {:>12}",
        "domains", "workers", "world ms", "crawl ms", "pipeline ms", "annotated", "annotations"
    );
    for &domains in sizes {
        for &workers in worker_counts {
            let entry = measure(&label, domains, workers, chaos);
            println!(
                "{:>8} {:>8} {:>12.1} {:>10.1} {:>12.1} {:>10} {:>12}",
                entry.domains,
                entry.workers,
                entry.world_build_ms,
                entry.crawl_ms,
                entry.pipeline_ms,
                entry.annotated,
                entry.annotations
            );
            file.entries.push(entry.to_value());
        }
    }

    let json = trajectory::render(&file);
    if let Err(e) = std::fs::write(&out, json + "\n") {
        eprintln!("perfbench: cannot write {out}: {e}");
        std::process::exit(2);
    }
    println!("wrote {out}");
}
