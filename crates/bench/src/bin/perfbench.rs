//! perfbench — deterministic wall-clock harness for the pipeline hot path.
//!
//! Times the three stages that dominate a corpus run — world synthesis,
//! crawling, and the end-to-end annotation pipeline — at fixed sizes and
//! worker counts, and appends the measurements to `BENCH_pipeline.json` so
//! the repository accumulates a perf trajectory across PRs (the workloads
//! are seeded and deterministic; only the wall-clock varies by machine).
//!
//! ```text
//! perfbench                        # standard grid: 100/300/1000 × {1,4,8}
//!                                  #   + streaming 3000/10000 × {8}
//! perfbench --smoke                # small on-grid cells for CI / verify
//! perfbench --chaos-smoke          # 300 domains under FaultConfig::chaotic()
//! perfbench --domains 500 --adhoc  # off-grid exploration (flagged cells)
//! perfbench --label post-PR3       # tag the appended entries
//! perfbench --out /tmp/bench.json  # write somewhere else
//! ```
//!
//! Cells come in two modes. `eager` builds the whole synthetic web up
//! front (the historical measurement; `world_build_ms` covers full site
//! materialization and `crawl_ms` a standalone crawl pass). `streaming`
//! builds a lazy world — sites materialize on first fetch inside the
//! pipeline's worker chain and are released per domain — so `crawl_ms` is
//! folded into `pipeline_ms` and `peak_resident_bytes` (the site
//! generator's high-water mark) stays bounded by in-flight domains rather
//! than the universe. Every entry also records per-stage ms/domain so
//! cells of different sizes compare directly.
//!
//! Sizes off the standard grid {100, 300, 1000, 3000, 10000} are rejected
//! unless `--adhoc` is passed: an earlier PR recorded its "standard" cells
//! at 40 domains and the trajectory lost cross-PR comparability for that
//! label. Ad-hoc cells are fine for exploration — they are just labeled
//! explicitly (`-adhoc` suffix) instead of silently polluting the grid.
//!
//! `--chaos-smoke` runs one elevated-transient cell (flaky 5xx bursts,
//! resets, 429s, latency spikes) so the retry/breaker overhead shows up in
//! the trajectory next to the clean-path numbers, plus one `supervised`
//! streaming cell that layers deterministic disk faults and an injected
//! worker-killing host on top — the cell asserts the supervisor's contract
//! (run completes `degraded` with exactly the injected domain quarantined,
//! every disk fault absorbed by the bounded retries) before it is recorded.
//! Entries are tagged with a `-chaos` label suffix rather than a schema
//! change so old trajectory files keep parsing.
//!
//! Unlike the criterion benches this needs no statistical run: each cell is
//! measured once, which is enough to see the ≥1.5× movements we optimize
//! for, and cheap enough to run on every PR.

use aipan_bench::trajectory;
use aipan_core::{run_pipeline, PipelineConfig};
use aipan_crawler::{crawl_all, PoolConfig};
use aipan_net::fault::{FaultConfig, FaultInjector};
use aipan_net::Client;
use aipan_webgen::{build_world, build_world_lazy, WorldConfig};
use serde::{Deserialize, Serialize};
use std::time::Instant;

const SEED: u64 = 7;

/// Universe sizes with cross-PR comparable history. Other sizes need
/// `--adhoc`.
const STANDARD_SIZES: &[usize] = &[100, 300, 1000, 3000, 10000];

/// One measured grid cell.
#[derive(Debug, Serialize, Deserialize)]
struct BenchEntry {
    /// Caller-supplied tag (e.g. `pre-PR3-baseline`, `post-PR3`).
    label: String,
    /// `eager` (whole web built up front) or `streaming` (lazy per-domain
    /// generation, sites released as domains finish).
    mode: String,
    /// Universe size (company domains attempted).
    domains: usize,
    /// Available hardware parallelism on the measuring host — wall-clock
    /// entries from hosts with different core counts are not comparable.
    host_nproc: usize,
    /// Host operating system (`std::env::consts::OS`), same caveat.
    host_os: String,
    /// Worker-thread count for crawl and annotation pools.
    workers: usize,
    /// World synthesis wall-clock (ms). In streaming mode this is only
    /// universe/fate synthesis — no site materialization.
    world_build_ms: f64,
    /// Crawl-only wall-clock (ms). `0.0` in streaming mode, where the
    /// crawl happens inside the pipeline's per-domain worker chain.
    crawl_ms: f64,
    /// End-to-end pipeline wall-clock (ms) — crawl + extract + segment +
    /// annotate + verify + funnel.
    pipeline_ms: f64,
    /// `world_build_ms / domains` (normalized for cross-size comparison).
    world_ms_per_domain: f64,
    /// `crawl_ms / domains`.
    crawl_ms_per_domain: f64,
    /// `pipeline_ms / domains`.
    pipeline_ms_per_domain: f64,
    /// High-water mark of generated-site residency (bytes) from the world's
    /// memory gauge: the whole universe for eager cells, the in-flight
    /// window for streaming cells. An estimate — site pages only, not
    /// process RSS.
    peak_resident_bytes: usize,
    /// Annotated-domain count (work-equivalence check across entries).
    annotated: usize,
    /// Total annotations produced (ditto).
    annotations: usize,
    /// Domains dead-lettered by the streaming supervisor (always zero for
    /// clean cells; the `--chaos-smoke` supervised cell pins it to its
    /// injected worker-killing domain count).
    quarantined: usize,
}

// The committed trajectory file itself is loaded through
// `aipan_bench::trajectory`, which preserves members this harness
// version does not know about instead of silently dropping them.

fn measure(label: &str, domains: usize, workers: usize, chaos: bool, lazy: bool) -> BenchEntry {
    let mut config = WorldConfig::small(SEED, domains);
    if chaos {
        config.faults = FaultConfig::chaotic();
    }
    let t0 = Instant::now();
    let world = if lazy {
        build_world_lazy(config)
    } else {
        build_world(config)
    };
    let world_build_ms = ms(t0);

    // Standalone crawl pass, eager cells only: on a lazy world it would
    // materialize every site without releasing any, defeating the
    // bounded-memory measurement the streaming cells exist for.
    let crawl_ms = if world.is_lazy() {
        0.0
    } else {
        let client = Client::new(
            world.internet.clone(),
            FaultInjector::new(world.config.seed, world.config.faults),
        );
        let domain_names: Vec<String> = world
            .universe
            .unique_domains()
            .iter()
            .map(|c| c.domain.clone())
            .collect();
        let t1 = Instant::now();
        let crawls = crawl_all(&client, &domain_names, PoolConfig { workers });
        let elapsed = ms(t1);
        drop(crawls);
        elapsed
    };

    let t2 = Instant::now();
    let run = run_pipeline(
        &world,
        PipelineConfig {
            seed: SEED,
            workers,
            ..Default::default()
        },
    );
    let pipeline_ms = ms(t2);

    let per = |stage_ms: f64| {
        if domains == 0 {
            0.0
        } else {
            (stage_ms / domains as f64 * 1e3).round() / 1e3
        }
    };
    BenchEntry {
        label: label.to_string(),
        mode: if lazy { "streaming" } else { "eager" }.to_string(),
        domains,
        host_nproc: std::thread::available_parallelism().map_or(0, |n| n.get()),
        host_os: std::env::consts::OS.to_string(),
        workers,
        world_build_ms,
        crawl_ms,
        pipeline_ms,
        world_ms_per_domain: per(world_build_ms),
        crawl_ms_per_domain: per(crawl_ms),
        pipeline_ms_per_domain: per(pipeline_ms),
        peak_resident_bytes: world.site_memory.peak_bytes(),
        annotated: run.extraction.annotated,
        annotations: run
            .dataset
            .policies
            .iter()
            .map(|p| p.annotations.len())
            .sum(),
        quarantined: run.health.quarantine.len(),
    }
}

/// The `--chaos-smoke` supervised cell: a streaming run with the full
/// fault stack at once — chaotic network transients, deterministic disk
/// faults on the journal's append path, and one injected worker-killing
/// host. Asserts the supervisor's contract (run completes `degraded` with
/// exactly the injected domain quarantined, every disk fault absorbed)
/// before the cell is allowed into the ledger.
fn measure_supervised_chaos(label: &str, domains: usize, workers: usize) -> BenchEntry {
    use aipan_core::{
        run_pipeline_sharded, DiskFaultConfig, DiskFaultInjector, ShardedJournal, DEFAULT_SHARDS,
    };
    use aipan_net::http::{Request, Response};

    let mut config = WorldConfig::small(SEED, domains);
    config.faults = FaultConfig::chaotic();
    let t0 = Instant::now();
    let world = build_world_lazy(config);
    let world_build_ms = ms(t0);

    let victim = world
        .universe
        .unique_domains()
        .first()
        .map(|c| c.domain.clone())
        .unwrap_or_default();
    world
        .internet
        .register(&victim, |_req: &Request| -> Response {
            panic!("perfbench: injected worker-killing host")
        });

    let scratch =
        std::env::temp_dir().join(format!("aipan-perfbench-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    if let Err(e) = std::fs::create_dir_all(&scratch) {
        eprintln!("perfbench: cannot create scratch dir: {e}");
        std::process::exit(2);
    }
    let base = scratch.join("journal.jsonl");
    let journal = ShardedJournal::open_with(
        &base,
        DEFAULT_SHARDS,
        DiskFaultInjector::new(SEED, DiskFaultConfig::chaotic()),
    );

    let t1 = Instant::now();
    let run = run_pipeline_sharded(
        &world,
        PipelineConfig {
            seed: SEED,
            workers,
            ..Default::default()
        },
        &journal,
    );
    let pipeline_ms = ms(t1);
    let _ = std::fs::remove_dir_all(&scratch);

    let quarantine = &run.health.quarantine;
    let mut broken: Vec<String> = Vec::new();
    if run.health.verdict != "degraded" {
        broken.push(format!(
            "verdict {:?}, expected \"degraded\"",
            run.health.verdict
        ));
    }
    if quarantine.len() != 1 || quarantine.first().map(|r| r.domain.as_str()) != Some(&victim) {
        broken.push(format!(
            "quarantine {:?}, expected exactly [{victim}]",
            quarantine.iter().map(|r| &r.domain).collect::<Vec<_>>()
        ));
    }
    if quarantine.first().map(|r| r.kills) != Some(1) {
        broken.push("injected domain must record exactly one kill".to_string());
    }
    if run.health.journal_write_errors != 0 {
        broken.push(format!(
            "{} journal write error(s): bounded retries failed to absorb the disk faults",
            run.health.journal_write_errors
        ));
    }
    if run.health.disk_retries == 0 {
        broken.push("chaotic disk config injected no faults".to_string());
    }
    if !broken.is_empty() {
        for b in &broken {
            eprintln!("perfbench: supervised chaos cell violated its contract: {b}");
        }
        std::process::exit(1);
    }

    let per = |stage_ms: f64| {
        if domains == 0 {
            0.0
        } else {
            (stage_ms / domains as f64 * 1e3).round() / 1e3
        }
    };
    BenchEntry {
        label: label.to_string(),
        mode: "supervised".to_string(),
        domains,
        host_nproc: std::thread::available_parallelism().map_or(0, |n| n.get()),
        host_os: std::env::consts::OS.to_string(),
        workers,
        world_build_ms,
        crawl_ms: 0.0,
        pipeline_ms,
        world_ms_per_domain: per(world_build_ms),
        crawl_ms_per_domain: 0.0,
        pipeline_ms_per_domain: per(pipeline_ms),
        peak_resident_bytes: world.site_memory.peak_bytes(),
        annotated: run.extraction.annotated,
        annotations: run
            .dataset
            .policies
            .iter()
            .map(|p| p.annotations.len())
            .sum(),
        quarantined: quarantine.len(),
    }
}

fn ms(since: Instant) -> f64 {
    let d = since.elapsed();
    (d.as_secs_f64() * 1e4).round() / 10.0
}

/// One cell of the measurement plan.
struct Cell {
    domains: usize,
    workers: usize,
    lazy: bool,
}

fn main() {
    let mut label = String::from("run");
    let mut out = String::from("BENCH_pipeline.json");
    let mut smoke = false;
    let mut chaos = false;
    let mut adhoc = false;
    let mut adhoc_domains: Vec<usize> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--chaos-smoke" => chaos = true,
            "--adhoc" => adhoc = true,
            "--domains" => {
                let list = args.next().unwrap_or_default();
                for part in list.split(',') {
                    match part.trim().parse::<usize>() {
                        Ok(n) if n > 0 => adhoc_domains.push(n),
                        _ => {
                            eprintln!(
                                "perfbench: --domains expects positive integers, got {part:?}"
                            );
                            std::process::exit(2);
                        }
                    }
                }
            }
            "--label" => label = args.next().unwrap_or(label),
            "--out" => out = args.next().unwrap_or(out),
            "--help" | "-h" => {
                println!(
                    "usage: perfbench [--smoke] [--chaos-smoke] [--domains N,M --adhoc] \
                     [--label NAME] [--out PATH]"
                );
                return;
            }
            other => {
                eprintln!("perfbench: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let mut cells: Vec<Cell> = Vec::new();
    if !adhoc_domains.is_empty() {
        for &domains in &adhoc_domains {
            cells.push(Cell {
                domains,
                workers: PoolConfig::default().workers,
                lazy: false,
            });
        }
    } else if chaos {
        cells.push(Cell {
            domains: 300,
            workers: 4,
            lazy: false,
        });
    } else if smoke {
        // On-grid smoke: two eager cells plus one streaming cell so the
        // lazy-generation path is exercised on every verify drive.
        for workers in [1, 2] {
            cells.push(Cell {
                domains: 100,
                workers,
                lazy: false,
            });
        }
        cells.push(Cell {
            domains: 100,
            workers: 2,
            lazy: true,
        });
    } else {
        for &domains in &[100, 300, 1000] {
            for workers in [1, 4, 8] {
                cells.push(Cell {
                    domains,
                    workers,
                    lazy: false,
                });
            }
        }
        // The scale cells run streaming-only: eager materialization of a
        // 10000-domain web is exactly the O(universe) cost they disprove.
        for &domains in &[3000, 10000] {
            cells.push(Cell {
                domains,
                workers: 8,
                lazy: true,
            });
        }
    }

    // Grid guard: off-standard sizes drifted into the ledger once
    // (40-domain "standard" cells) and broke cross-PR comparability.
    let off_grid: Vec<usize> = cells
        .iter()
        .map(|c| c.domains)
        .filter(|d| !STANDARD_SIZES.contains(d))
        .collect();
    if !off_grid.is_empty() {
        if !adhoc {
            eprintln!(
                "perfbench: sizes {off_grid:?} are off the standard grid {STANDARD_SIZES:?}; \
                 pass --adhoc to record them as explicitly ad-hoc cells"
            );
            std::process::exit(2);
        }
        label.push_str("-adhoc");
    }
    if chaos {
        label.push_str("-chaos");
    }

    let text = std::fs::read_to_string(&out).unwrap_or_default();
    let (mut file, warnings) = trajectory::load(&text);
    for w in &warnings {
        eprintln!("perfbench: {w}");
    }
    file.harness = "perfbench-v1".to_string();

    println!("label={label} cells: {}", cells.len());
    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>10} {:>12} {:>10} {:>14} {:>12}",
        "domains",
        "workers",
        "mode",
        "world ms",
        "crawl ms",
        "pipeline ms",
        "annotated",
        "peak site B",
        "ms/domain"
    );
    for cell in &cells {
        let entry = measure(&label, cell.domains, cell.workers, chaos, cell.lazy);
        println!(
            "{:>8} {:>8} {:>10} {:>12.1} {:>10.1} {:>12.1} {:>10} {:>14} {:>12.3}",
            entry.domains,
            entry.workers,
            entry.mode,
            entry.world_build_ms,
            entry.crawl_ms,
            entry.pipeline_ms,
            entry.annotated,
            entry.peak_resident_bytes,
            entry.pipeline_ms_per_domain
        );
        file.entries.push(entry.to_value());
    }
    if chaos {
        // The supervised cell: disk faults + one worker-killing domain on
        // top of the network chaos, contract-checked before recording.
        let entry = measure_supervised_chaos(&label, 100, 4);
        println!(
            "{:>8} {:>8} {:>10} {:>12.1} {:>10.1} {:>12.1} {:>10} {:>14} {:>12.3} (quarantined {})",
            entry.domains,
            entry.workers,
            entry.mode,
            entry.world_build_ms,
            entry.crawl_ms,
            entry.pipeline_ms,
            entry.annotated,
            entry.peak_resident_bytes,
            entry.pipeline_ms_per_domain,
            entry.quarantined
        );
        file.entries.push(entry.to_value());
    }

    let json = trajectory::render(&file);
    if let Err(e) = std::fs::write(&out, json + "\n") {
        eprintln!("perfbench: cannot write {out}: {e}");
        std::process::exit(2);
    }
    println!("wrote {out}");
}
