//! Regenerate every table and figure of the paper from a full simulated-
//! world pipeline run.
//!
//! Usage: `repro [experiment ...]` where experiment is one of
//! `fig1 funnel tab1 tab2a tab2b tab3 tab5 val-crawl val-miss val-prec
//! sec5 sec6 usage all` (default `all`).
//!
//! Optional flags: `--seed N` (default 42), `--size N` (universe size,
//! default 2916).

use aipan_analysis::{insights::Insights, tables, validation};
use aipan_bench::fixtures;
use aipan_chatbot::ModelProfile;
use aipan_core::PipelineRun;
use aipan_taxonomy::normalize::Normalizer;
use aipan_webgen::World;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 42u64;
    let mut size = aipan_webgen::universe::UNIVERSE_SIZE;
    let mut experiments: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seed" => seed = iter.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--size" => size = iter.next().and_then(|v| v.parse().ok()).unwrap_or(size),
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() {
        experiments.push("all".to_string());
    }

    eprintln!("building world (seed {seed}, {size} constituents)...");
    let world = fixtures::world(seed, size);
    eprintln!("running pipeline...");
    let run = fixtures::pipeline_run(&world, seed);
    let vocab = Normalizer::new();
    eprintln!(
        "glossary: {} data-type surfaces, {} purpose surfaces",
        vocab.datatype_surface_count(),
        vocab.purpose_surface_count()
    );
    eprintln!(
        "pipeline done: {} policies annotated\n",
        run.dataset.annotated().count()
    );

    for experiment in &experiments {
        run_experiment(experiment, &world, &run, seed);
    }
}

fn run_experiment(experiment: &str, world: &World, run: &PipelineRun, seed: u64) {
    match experiment {
        "fig1" => fig1(run),
        "funnel" => funnel(run),
        "tab1" => println!(
            "{}",
            tables::render_table1(&tables::table1(&run.dataset, 3))
        ),
        "tab2a" => println!(
            "{}",
            tables::render_breakdown(
                "Table 2a — Collected data types (meta-categories)",
                &tables::table2a(&run.dataset)
            )
        ),
        "tab2b" => println!(
            "{}",
            tables::render_breakdown(
                "Table 2b — Data collection purposes",
                &tables::table2b(&run.dataset)
            )
        ),
        "tab3" => println!("{}", tables::render_table3(&tables::table3(&run.dataset))),
        "tab6" => println!(
            "{}",
            tables::render_table6(&tables::table6(world, &run.dataset, 4, seed))
        ),
        "tab5" => println!(
            "{}",
            tables::render_breakdown(
                "Table 5 — Collected data types (all categories)",
                &tables::table5(&run.dataset)
            )
        ),
        "val-crawl" => println!(
            "{}",
            validation::FailureAudit::run(world, &run.dataset, 50, seed).render()
        ),
        "val-miss" => println!(
            "{}",
            validation::MissingAspectAudit::run(world, &run.dataset, 20, seed).render()
        ),
        "val-prec" => println!(
            "{}",
            validation::PrecisionReport::run(world, &run.dataset, seed).render()
        ),
        "sec5" => println!("{}", Insights::compute(&run.dataset).render()),
        "sec6" => sec6(world, seed),
        "usage" => usage(run),
        "all" => {
            for e in [
                "fig1",
                "funnel",
                "tab1",
                "tab2a",
                "tab2b",
                "tab3",
                "tab5",
                "tab6",
                "val-crawl",
                "val-miss",
                "val-prec",
                "sec5",
                "sec6",
                "usage",
            ] {
                run_experiment(e, world, run, seed);
            }
        }
        other => eprintln!("unknown experiment: {other}"),
    }
}

fn fig1(run: &PipelineRun) {
    let f = &run.crawl_funnel;
    let e = &run.extraction;
    println!("Figure 1 — Pipeline overview (stage counts)");
    println!("  company list        → {} unique domains", f.domains_total);
    println!(
        "  web crawler         → {} domains with ≥1 privacy page",
        f.crawl_success
    );
    println!(
        "  text extraction     → {} policies with aspect text",
        e.extraction_success
    );
    println!(
        "  chatbot annotation  → {} policies with ≥1 annotation",
        e.annotated
    );
    let total: usize = run
        .dataset
        .policies
        .iter()
        .map(|p| p.annotations.len())
        .sum();
    println!("  labeled annotations → {total} unique annotations\n");
}

fn funnel(run: &PipelineRun) {
    let f = &run.crawl_funnel;
    let e = &run.extraction;
    println!("Section 3 funnel (measured vs [paper])");
    println!(
        "  domains                    {:>6}   [2892]",
        f.domains_total
    );
    println!(
        "  crawl success              {:>6} ({:.1}%)   [2648, 91.6%]",
        f.crawl_success,
        100.0 * f.success_rate()
    );
    println!(
        "  /privacy-policy exists      {:>5.1}%   [54.5%]",
        100.0 * f.policy_path_rate()
    );
    println!(
        "  /privacy exists             {:>5.1}%   [48.6%]",
        100.0 * f.privacy_path_rate()
    );
    println!(
        "  avg pages crawled           {:>5.2}   [5.1]",
        f.avg_pages_crawled()
    );
    println!(
        "  privacy pages per domain    {:>5.2}   [1.8]",
        e.avg_english_privacy_pages()
    );
    println!(
        "  extraction success         {:>6} ({:.1}% all, {:.1}% of crawled)   [2545, 88%, 96.1%]",
        e.extraction_success,
        100.0 * e.extraction_rate(),
        100.0 * e.extraction_rate_of_crawled()
    );
    println!("  ≥1 annotation              {:>6}   [2529]", e.annotated);
    println!(
        "  missing ≥1 aspect          {:>6}   [375]",
        e.missing_any_aspect
    );
    println!(
        "  fallback activated         {:>6}   [708]",
        e.policies_with_fallback
    );
    println!(
        "  median core words          {:>6}   [2671]",
        e.median_core_words
    );
    println!(
        "  hallucinations removed     {:>6}",
        e.hallucinations_removed
    );
    println!(
        "  robots: {} fetches skipped, {} domains fully blocked, {:.1} h politeness delay\n",
        f.robots_skipped,
        f.robots_blocked_domains,
        f.politeness_delay_ms as f64 / 3_600_000.0
    );
}

fn sec6(world: &World, seed: u64) {
    let profiles = vec![
        ModelProfile::gpt4_turbo(),
        ModelProfile::llama31(),
        ModelProfile::gpt35_turbo(),
    ];
    println!(
        "{}",
        validation::ModelComparison::run(world, &profiles, 20, seed).render()
    );
}

fn usage(run: &PipelineRun) {
    println!("Token usage per task:");
    let mut total = 0u64;
    for (task, u) in &run.usage {
        println!(
            "  {:<22} calls={:<6} prompt={:<9} input={:<10} output={:<9} total={}",
            task,
            u.calls,
            u.prompt_tokens,
            u.input_tokens,
            u.output_tokens,
            u.total()
        );
        total += u.total();
    }
    println!("  total tokens: {total}\n");
}
