//! # aipan-bench
//!
//! Benchmarks and reproduction harness:
//!
//! * `src/bin/repro.rs` — regenerates every table and figure of the paper
//!   (`cargo run --release -p aipan-bench --bin repro -- all`).
//! * `benches/stages.rs` — criterion throughput benches per pipeline stage.
//! * `benches/pipeline.rs` — end-to-end pipeline benches.
//! * `benches/ablations.rs` — design-choice ablations (segmentation,
//!   fallback, verification, glossary size).

#![warn(missing_docs)]

pub mod trajectory;

/// A small shared helper: build a world and pipeline dataset for benches.
pub mod fixtures {
    use aipan_core::{run_pipeline, PipelineConfig, PipelineRun};
    use aipan_webgen::{build_world, World, WorldConfig};

    /// Build a world of `size` constituents with `seed`.
    pub fn world(seed: u64, size: usize) -> World {
        build_world(WorldConfig {
            seed,
            universe_size: size,
            ..Default::default()
        })
    }

    /// Run the default pipeline over a world.
    pub fn pipeline_run(world: &World, seed: u64) -> PipelineRun {
        run_pipeline(
            world,
            PipelineConfig {
                seed,
                ..Default::default()
            },
        )
    }
}
