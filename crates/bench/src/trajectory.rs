//! Tolerant loader for the committed `BENCH_pipeline.json` trajectory.
//!
//! Earlier harness versions parsed the file straight into the current
//! struct shape, which silently *dropped* any member a newer (or older)
//! harness had written — append once with a mismatched binary and the
//! extra fields were gone. This loader parses the raw JSON object,
//! warns about every member it does not recognize, and carries those
//! members through unchanged so a rewrite preserves them: the file is a
//! shared ledger across PRs, not one binary's private cache.
//!
//! Entries are kept as raw [`Value`]s for the same reason — the harness
//! only ever appends; it has no business normalizing measurements some
//! other version recorded.

use serde::Value;

/// Per-entry members the current harness writes (`BenchEntry`'s shape).
pub const KNOWN_ENTRY_KEYS: &[&str] = &[
    "annotated",
    "annotations",
    "crawl_ms",
    "crawl_ms_per_domain",
    "domains",
    "host_nproc",
    "host_os",
    "label",
    "mode",
    "peak_resident_bytes",
    "pipeline_ms",
    "pipeline_ms_per_domain",
    "quarantined",
    "workers",
    "world_build_ms",
    "world_ms_per_domain",
];

/// The trajectory file, with unknown members preserved verbatim.
#[derive(Debug, Default)]
pub struct Trajectory {
    /// Harness identifier (`perfbench-v1`).
    pub harness: String,
    /// Measurement entries, oldest first, as raw JSON objects.
    pub entries: Vec<Value>,
    /// Unrecognized top-level members, preserved through rewrites.
    pub extras: Vec<(String, Value)>,
}

/// Parse a trajectory file leniently. Returns the trajectory plus one
/// warning line per tolerated irregularity (unknown member, malformed
/// section, or unparseable file); unknown members are *preserved*, not
/// dropped — the warning is informational.
pub fn load(text: &str) -> (Trajectory, Vec<String>) {
    let mut warnings = Vec::new();
    let mut out = Trajectory::default();
    let parsed: Result<Value, _> = serde_json::from_str(text);
    let Ok(Value::Object(members)) = parsed else {
        warnings.push("trajectory is not a JSON object; starting a fresh file".to_string());
        return (out, warnings);
    };
    for (key, value) in members {
        match key.as_str() {
            "harness" => match value.as_str() {
                Some(name) => out.harness = name.to_string(),
                None => warnings.push("member `harness` is not a string; resetting it".to_string()),
            },
            "entries" => match value {
                Value::Array(items) => {
                    for (i, item) in items.iter().enumerate() {
                        if let Value::Object(fields) = item {
                            for (fk, _) in fields {
                                if !KNOWN_ENTRY_KEYS.contains(&fk.as_str()) {
                                    warnings.push(format!(
                                        "entry {i}: unknown member `{fk}` preserved"
                                    ));
                                }
                            }
                        } else {
                            warnings.push(format!("entry {i}: not an object; preserved as-is"));
                        }
                    }
                    out.entries = items;
                }
                _ => warnings.push("member `entries` is not an array; dropping it".to_string()),
            },
            _ => {
                warnings.push(format!("unknown top-level member `{key}` preserved"));
                out.extras.push((key, value));
            }
        }
    }
    (out, warnings)
}

/// Render the trajectory back to pretty JSON: the known members first,
/// then every preserved extra in its original order.
pub fn render(t: &Trajectory) -> String {
    let mut members: Vec<(String, Value)> = vec![
        ("harness".to_string(), Value::String(t.harness.clone())),
        ("entries".to_string(), Value::Array(t.entries.clone())),
    ];
    members.extend(t.extras.iter().cloned());
    let obj = Value::Object(members);
    serde_json::to_string_pretty(&obj).unwrap_or_else(|_| obj.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const FORWARD_FILE: &str = r#"{
  "harness": "perfbench-v1",
  "entries": [
    {
      "label": "run",
      "domains": 40,
      "workers": 1,
      "world_build_ms": 1.0,
      "crawl_ms": 2.0,
      "pipeline_ms": 3.0,
      "annotated": 40,
      "annotations": 99,
      "rss_peak_mb": 120.5
    }
  ],
  "schema_note": "written by a newer harness"
}"#;

    #[test]
    fn unknown_members_warn_and_survive_a_round_trip() {
        let (t, warnings) = load(FORWARD_FILE);
        assert_eq!(t.harness, "perfbench-v1");
        assert_eq!(t.entries.len(), 1);
        assert_eq!(t.extras.len(), 1, "{t:?}");
        assert!(
            warnings.iter().any(|w| w.contains("`rss_peak_mb`")),
            "{warnings:?}"
        );
        assert!(
            warnings.iter().any(|w| w.contains("`schema_note`")),
            "{warnings:?}"
        );

        // Rewrite, reload: both unknown members are still there.
        let rendered = render(&t);
        assert!(rendered.contains("rss_peak_mb"), "{rendered}");
        assert!(rendered.contains("schema_note"), "{rendered}");
        let (again, _) = load(&rendered);
        assert_eq!(render(&again), rendered, "round-trip must be stable");
    }

    #[test]
    fn appending_keeps_existing_entries_and_extras() {
        let (mut t, _) = load(FORWARD_FILE);
        t.entries.push(Value::Object(vec![(
            "label".to_string(),
            Value::String("new-run".to_string()),
        )]));
        let rendered = render(&t);
        let (again, _) = load(&rendered);
        assert_eq!(again.entries.len(), 2);
        assert!(rendered.contains("rss_peak_mb"), "{rendered}");
        assert!(rendered.contains("new-run"), "{rendered}");
    }

    #[test]
    fn malformed_file_degrades_to_fresh_with_a_warning() {
        let (t, warnings) = load("not json at all");
        assert!(t.entries.is_empty() && t.extras.is_empty());
        assert_eq!(warnings.len(), 1, "{warnings:?}");

        let (t, warnings) = load(r#"{"harness": 7, "entries": {}}"#);
        assert!(t.harness.is_empty());
        assert!(t.entries.is_empty());
        assert_eq!(warnings.len(), 2, "{warnings:?}");
    }
}
