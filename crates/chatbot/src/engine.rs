//! The simulated chatbot: dispatches task prompts to the task
//! implementations, applies the instruction-following error model, and
//! accounts tokens.

use crate::profile::{decide, ModelProfile};
use crate::prompt::{TaskKind, TaskPrompt};
use crate::tasks;
use crate::tokens::{TokenUsage, UsageLedger};
use crate::{protocol, Chatbot};

/// A deterministic simulated chatbot with a given error profile.
///
/// Cheap to clone; clones share the usage ledger.
///
/// ```
/// use aipan_chatbot::prompt::{TaskKind, TaskPrompt};
/// use aipan_chatbot::{protocol, Chatbot, ModelProfile, SimulatedChatbot};
///
/// let bot = SimulatedChatbot::new(ModelProfile::oracle(), 7);
/// let prompt = TaskPrompt::build(TaskKind::ExtractDataTypes);
/// let input = protocol::number_lines(["We collect your email address."]);
/// let rows = protocol::parse_extractions(&bot.complete(&prompt, &input));
/// assert_eq!(rows, vec![(1, "email address".to_string())]);
/// ```
#[derive(Clone)]
pub struct SimulatedChatbot {
    profile: ModelProfile,
    seed: u64,
    ledger: UsageLedger,
}

impl SimulatedChatbot {
    /// Create a chatbot with `profile`, seeded by `seed`.
    pub fn new(profile: ModelProfile, seed: u64) -> SimulatedChatbot {
        SimulatedChatbot {
            profile,
            seed,
            ledger: UsageLedger::new(),
        }
    }

    /// GPT-4-Turbo-profile chatbot (the paper's production configuration).
    pub fn gpt4(seed: u64) -> SimulatedChatbot {
        SimulatedChatbot::new(ModelProfile::gpt4_turbo(), seed)
    }

    /// The error profile in effect.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    /// Per-task usage ledger.
    pub fn ledger(&self) -> &UsageLedger {
        &self.ledger
    }

    /// Simulate a mid-stream cutoff: drop the tail of the completion at a
    /// hash-derived point, yielding unparsable JSON a re-prompt can redraw.
    fn maybe_truncate(&self, prompt: &TaskPrompt, doc: &str, tag: &str, output: String) -> String {
        use crate::profile::unit;
        let parts = [
            self.profile.id.as_str(),
            "truncate",
            prompt.kind.name(),
            doc,
            tag,
        ];
        if output.len() < 4 || !decide(self.seed, &parts, self.profile.truncation_rate) {
            return output;
        }
        let frac = 0.25 + 0.5 * unit(self.seed, &[&parts[..], &["cut"]].concat());
        let cut = fractional_cut(output.len(), frac).max(2);
        let cut = (0..=cut).rev().find(|&i| output.is_char_boundary(i));
        output[..cut.unwrap_or(0)].to_string()
    }
}

/// Deterministic cut index for the truncation fault: `floor(n * frac)`.
///
/// The float round-trip is the intended semantics — the fault model drops
/// a hash-derived *fraction* of the completion — and `n` is one
/// response's byte length, bounded per document (f64 is exact far beyond
/// it), so the truncating conversion cannot wrap.
fn fractional_cut(n: usize, frac: f64) -> usize {
    (n as f64 * frac) as usize
}

impl Chatbot for SimulatedChatbot {
    fn complete(&self, prompt: &TaskPrompt, input: &str) -> String {
        self.complete_attempt(prompt, input, 0)
    }

    fn complete_attempt(&self, prompt: &TaskPrompt, input: &str, attempt: u32) -> String {
        // LLM-side transient faults, keyed on (task, doc, attempt) so a
        // re-prompt redraws them: refusals, malformed output (GPT-3.5
        // exhibits these; GPT-4 effectively never), and mid-stream
        // truncation.
        let doc = tasks::doc_key(input);
        let tag = attempt.to_string();
        let output =
            if decide(
                self.seed,
                &[&self.profile.id, "refuse", prompt.kind.name(), &doc, &tag],
                self.profile.refusal_rate,
            ) {
                "I cannot assist with analyzing this document.".to_string()
            } else if !decide(
                self.seed,
                &[&self.profile.id, "follow", prompt.kind.name(), &doc, &tag],
                self.profile.instruction_following,
            ) {
                "I'm sorry, here are the results you asked for:\n[[1, \"".to_string()
            } else {
                match prompt.kind {
                    TaskKind::LabelHeadings => protocol::encode_labels(&tasks::run_label_headings(
                        &self.profile,
                        self.seed,
                        input,
                    )),
                    TaskKind::SegmentText => protocol::encode_labels(&tasks::run_segment_text(
                        &self.profile,
                        self.seed,
                        input,
                    )),
                    TaskKind::ExtractDataTypes => protocol::encode_extractions(
                        &tasks::run_extract_datatypes(&self.profile, self.seed, input),
                    ),
                    TaskKind::NormalizeDataTypes => protocol::encode_normalizations(
                        &tasks::run_normalize_datatypes(&self.profile, self.seed, input),
                    ),
                    TaskKind::AnnotatePurposes => protocol::encode_purposes(
                        &tasks::run_annotate_purposes(&self.profile, self.seed, input),
                    ),
                    TaskKind::AnnotateHandling => protocol::encode_handling(
                        &tasks::run_annotate_handling(&self.profile, self.seed, input),
                    ),
                    TaskKind::AnnotateRights => protocol::encode_rights(
                        &tasks::run_annotate_rights(&self.profile, self.seed, input),
                    ),
                }
            };
        let output = self.maybe_truncate(prompt, &doc, &tag, output);
        self.ledger
            .record(prompt.kind.name(), &prompt.text, input, &output);
        output
    }

    fn model_id(&self) -> &str {
        &self.profile.id
    }

    fn usage(&self) -> TokenUsage {
        self.ledger.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{number_lines, parse_extractions};

    #[test]
    fn completes_extraction_task_via_trait() {
        let bot = SimulatedChatbot::new(ModelProfile::oracle(), 1);
        let prompt = TaskPrompt::build(TaskKind::ExtractDataTypes);
        let input = number_lines(["We collect your email address."]);
        let output = bot.complete(&prompt, &input);
        let rows = parse_extractions(&output);
        assert_eq!(rows, vec![(1, "email address".to_string())]);
    }

    #[test]
    fn usage_accounted_per_task() {
        let bot = SimulatedChatbot::gpt4(2);
        let input = number_lines(["We collect your name."]);
        bot.complete(&TaskPrompt::build(TaskKind::ExtractDataTypes), &input);
        bot.complete(&TaskPrompt::build(TaskKind::AnnotateRights), &input);
        let usage = bot.usage();
        assert_eq!(usage.calls, 2);
        assert!(usage.prompt_tokens > 0);
        assert!(bot.ledger().task_usage("extract_data_types").calls == 1);
        assert_eq!(bot.model_id(), "gpt-4-turbo-2024-04-09");
    }

    #[test]
    fn gpt35_sometimes_returns_malformed_output() {
        let bot = SimulatedChatbot::new(ModelProfile::gpt35_turbo(), 3);
        let prompt = TaskPrompt::build(TaskKind::ExtractDataTypes);
        let mut malformed = 0;
        for i in 0..200 {
            let input = number_lines([format!("We collect your name, case {i}.").as_str()]);
            let out = bot.complete(&prompt, &input);
            if serde_json::from_str::<serde_json::Value>(&out).is_err() {
                malformed += 1;
            }
        }
        let rate = malformed as f64 / 200.0;
        assert!((rate - 0.15).abs() < 0.08, "malformed rate {rate}");
    }

    #[test]
    fn transient_llm_faults_redraw_across_attempts() {
        // With aggressive fault rates, some call fails on attempt 0 but
        // recovers within a few re-prompts — faults are keyed on attempt.
        let mut profile = ModelProfile::gpt35_turbo();
        profile.refusal_rate = 0.3;
        profile.truncation_rate = 0.3;
        profile.instruction_following = 0.7;
        let bot = SimulatedChatbot::new(profile, 11);
        let prompt = TaskPrompt::build(TaskKind::ExtractDataTypes);
        let mut failed_then_recovered = 0;
        for i in 0..60 {
            let input = number_lines([format!("We collect your email, case {i}.").as_str()]);
            let first = bot.complete_attempt(&prompt, &input, 0);
            if crate::protocol::is_well_formed(&first) {
                continue;
            }
            if (1..4)
                .any(|a| crate::protocol::is_well_formed(&bot.complete_attempt(&prompt, &input, a)))
            {
                failed_then_recovered += 1;
            }
        }
        assert!(
            failed_then_recovered > 5,
            "re-prompts should recover transient faults, got {failed_then_recovered}"
        );
    }

    #[test]
    fn refusals_and_truncations_are_deterministic_and_malformed() {
        let mut profile = ModelProfile::oracle();
        profile.refusal_rate = 1.0;
        let bot = SimulatedChatbot::new(profile, 5);
        let prompt = TaskPrompt::build(TaskKind::ExtractDataTypes);
        let input = number_lines(["We collect your name."]);
        let out = bot.complete(&prompt, &input);
        assert!(out.starts_with("I cannot assist"));
        assert!(!crate::protocol::is_well_formed(&out));
        assert_eq!(out, bot.complete(&prompt, &input));

        let mut profile = ModelProfile::oracle();
        profile.truncation_rate = 1.0;
        let bot = SimulatedChatbot::new(profile, 5);
        let full_bot = SimulatedChatbot::new(ModelProfile::oracle(), 5);
        let full = full_bot.complete(&prompt, &input);
        let cut = bot.complete(&prompt, &input);
        assert!(cut.len() < full.len(), "cut={cut:?} full={full:?}");
        assert!(full.starts_with(&cut), "truncation must be a prefix");
        assert!(!crate::protocol::is_well_formed(&cut));
    }

    #[test]
    fn clones_share_ledger() {
        let bot = SimulatedChatbot::gpt4(4);
        let clone = bot.clone();
        clone.complete(
            &TaskPrompt::build(TaskKind::ExtractDataTypes),
            &number_lines(["We collect your name."]),
        );
        assert_eq!(bot.usage().calls, 1);
    }

    #[test]
    fn deterministic_completions() {
        let a = SimulatedChatbot::gpt4(5);
        let b = SimulatedChatbot::gpt4(5);
        let prompt = TaskPrompt::build(TaskKind::AnnotateHandling);
        let input = number_lines(["We retain your data for two (2) years."]);
        assert_eq!(a.complete(&prompt, &input), b.complete(&prompt, &input));
    }
}
