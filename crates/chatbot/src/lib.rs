//! # aipan-chatbot
//!
//! The AI-chatbot annotation engine — AIPAN-RS's stand-in for the OpenAI
//! `gpt-4-turbo-2024-04-09` chatbot the paper drives with task prompts.
//!
//! The paper's protocol is preserved end to end:
//!
//! * every task is a **prompt** (role statement + numbered instructions +
//!   glossary + input/output example, as in Figure 2) built by [`prompt`];
//! * the model consumes **numbered text lines** (`[123] …`) and returns a
//!   **JSON-formatted string** of tuples, parsed by [`protocol`];
//! * prompt/input/output **token usage** is accounted per task by
//!   [`tokens`].
//!
//! The model itself is simulated: [`engine::SimulatedChatbot`] implements
//! the [`Chatbot`] trait with a deterministic glossary/knowledge-based
//! annotator whose *error models* ([`profile::ModelProfile`]) are calibrated
//! to the paper's measurements — GPT-4-Turbo's per-aspect precision
//! (89.7% / 94.3% / 97.5% / 90.5%, §4), Llama-3.1's negated-context
//! mistakes and 83.2% extraction precision, and GPT-3.5-Turbo's failure to
//! cope with policy text (§6). The simulated model "knows" more vocabulary
//! than the prompt glossary (the [`aipan_taxonomy::zeroshot`] terms),
//! reproducing the pipeline's open-vocabulary (zero-shot) annotations.
//!
//! Task implementations live in [`tasks`]: heading labeling and full-text
//! segmentation (Appendix B), data-type extraction + normalization,
//! purpose annotation, and handling/rights labeling.

#![warn(missing_docs)]

pub mod engine;
pub mod matcher;
pub mod profile;
pub mod prompt;
pub mod protocol;
pub mod tasks;
pub mod tokens;

pub use engine::SimulatedChatbot;
pub use profile::ModelProfile;
pub use prompt::{TaskKind, TaskPrompt};
pub use tokens::{TokenUsage, UsageLedger};

/// A chatbot that completes task prompts.
///
/// `complete` receives the rendered [`TaskPrompt`] and the task input (the
/// numbered-line document) and returns the model's raw text output — for
/// well-behaved models, a JSON-formatted string per the task instructions.
pub trait Chatbot: Send + Sync {
    /// Complete `prompt` against `input`, returning raw model output.
    fn complete(&self, prompt: &TaskPrompt, input: &str) -> String;

    /// Complete `prompt` against `input` as re-prompt attempt `attempt`
    /// (0-based). Implementations with transient failure modes (refusals,
    /// truncation, malformed output) key those on the attempt so a bounded
    /// re-prompt loop can recover; the default ignores the attempt.
    fn complete_attempt(&self, prompt: &TaskPrompt, input: &str, attempt: u32) -> String {
        let _ = attempt;
        self.complete(prompt, input)
    }

    /// The model identifier (e.g. `"gpt-4-turbo-2024-04-09"`).
    fn model_id(&self) -> &str;

    /// Cumulative token usage.
    fn usage(&self) -> TokenUsage;
}
