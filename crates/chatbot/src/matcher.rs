//! Vocabulary scanning: the simulated model's "reading" of policy text.
//!
//! A [`VocabMatcher`] covers every surface form the model knows — the
//! glossary vocabulary *plus* the zero-shot terms of
//! [`aipan_taxonomy::zeroshot`] (an LLM's world knowledge exceeds the
//! prompt glossary) — with longest-match precedence, recording the verbatim
//! matched text (for the pipeline's hallucination verification) and whether
//! the mention sits in a negated context ("we do not collect …").
//!
//! Since PR 3 the scanning runs on a single shared Aho–Corasick automaton
//! ([`aipan_textindex::AcAutomaton`]) built once over *both* vocabularies
//! with per-pattern vocabulary tags: one pass over a line's tokens yields
//! every data-type and purpose occurrence at once ([`scan_line_dual`]),
//! which the task layer uses to avoid scanning each line twice. The
//! original token-walk scanner is preserved under `#[cfg(test)]` as the
//! oracle for a differential property test: both scanners must agree
//! exactly — text, target, span, and negation — on arbitrary lines.

use aipan_taxonomy::datatypes::DATA_TYPE_DESCRIPTORS;
use aipan_taxonomy::purposes::PURPOSE_DESCRIPTORS;
use aipan_taxonomy::zeroshot::{ZERO_SHOT_DATA_TYPES, ZERO_SHOT_PURPOSES};
use aipan_taxonomy::{DataTypeCategory, PurposeCategory};
use aipan_textindex::{AcAutomaton, AcBuilder};
use std::collections::HashMap;
use std::sync::OnceLock;

/// What a matched surface form refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchTarget {
    /// A collected data type.
    DataType {
        /// Normalized descriptor.
        descriptor: &'static str,
        /// Category.
        category: DataTypeCategory,
        /// Whether the term is outside the prompt glossary.
        zero_shot: bool,
    },
    /// A data-collection purpose.
    Purpose {
        /// Normalized descriptor.
        descriptor: &'static str,
        /// Category.
        category: PurposeCategory,
        /// Whether the term is outside the prompt glossary.
        zero_shot: bool,
    },
}

/// One vocabulary hit on a line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VocabMatch {
    /// The verbatim matched text, sliced from the original line.
    pub text: String,
    /// What it refers to.
    pub target: MatchTarget,
    /// Whether the mention is in a negated context on this line.
    pub negated: bool,
    /// Byte span of the match within the line.
    pub span: (usize, usize),
}

impl VocabMatch {
    /// Whether this match's span is strictly contained in `other`'s span.
    pub fn contained_in(&self, other: &(usize, usize)) -> bool {
        self.span.0 >= other.0
            && self.span.1 <= other.1
            && (self.span.1 - self.span.0) < (other.1 - other.0)
    }
}

/// Which vocabulary a pattern (or a matcher view) belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Vocab {
    DataTypes,
    Purposes,
}

/// Both vocabularies' hits from one pass over a line.
#[derive(Debug, Clone, Default)]
pub struct DualScan {
    /// Data-type hits, in line order.
    pub datatypes: Vec<VocabMatch>,
    /// Purpose hits, in line order.
    pub purposes: Vec<VocabMatch>,
}

/// Scan a line against both vocabularies in a single tokenization and
/// automaton pass. Equivalent to
/// `(for_datatypes().scan_line(line), for_purposes().scan_line(line))` but
/// roughly half the work — the task layer's per-line classify/extract
/// paths always need both sides (each side suppresses hits nested inside
/// the other's longer phrases).
pub fn scan_line_dual(line: &str) -> DualScan {
    engine().scan(line)
}

/// Longest-match vocabulary scanner (one vocabulary view over the shared
/// engine).
pub struct VocabMatcher {
    vocab: Vocab,
}

impl VocabMatcher {
    /// Matcher over all data-type surface forms (glossary + zero-shot).
    pub fn for_datatypes() -> VocabMatcher {
        VocabMatcher {
            vocab: Vocab::DataTypes,
        }
    }

    /// Matcher over all purpose surface forms (glossary + zero-shot).
    pub fn for_purposes() -> VocabMatcher {
        VocabMatcher {
            vocab: Vocab::Purposes,
        }
    }

    /// Scan one line; matches do not overlap (longest match consumes its
    /// tokens).
    ///
    /// Negation scope is line-granular: once a negation cue appears, the
    /// remainder of the line is treated as negated context. The synthetic
    /// corpus renders negated statements as their own paragraphs, so this
    /// never clips a positive mention there; external HTML that packs a
    /// negated sentence and a positive one into a single block could lose
    /// the positive mention to the stricter reading.
    pub fn scan_line(&self, line: &str) -> Vec<VocabMatch> {
        let dual = engine().scan(line);
        match self.vocab {
            Vocab::DataTypes => dual.datatypes,
            Vocab::Purposes => dual.purposes,
        }
    }
}

// ---------------------------------------------------------------------------
// Shared engine
// ---------------------------------------------------------------------------

/// Token symbol for words outside every vocabulary pattern.
const NO_SYM: u32 = u32::MAX;

/// The shared automaton: every surface form of both vocabularies, one
/// pattern per insertion (duplicates keep distinct ids so insertion order
/// still breaks ties exactly like the legacy stable longest-first sort).
struct Engine {
    ac: AcAutomaton,
    /// Lower-cased word token → interned symbol.
    symbols: HashMap<String, u32>,
    /// Per-pattern vocabulary tag and match target, indexed by pattern id.
    targets: Vec<(Vocab, MatchTarget)>,
}

fn engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(Engine::build)
}

/// One scanned token: byte span in the line, interned symbol (or
/// [`NO_SYM`]), and whether it is a negation cue.
struct Tok {
    start: u32,
    end: u32,
    sym: u32,
    neg: bool,
}

impl Engine {
    fn build() -> Engine {
        let mut symbols = HashMap::new();
        let mut builder = AcBuilder::new();
        let mut targets = Vec::new();
        // Insertion order per vocabulary mirrors the legacy matcher's
        // (glossary names, glossary surfaces, then zero-shot terms) so
        // pattern-id order reproduces its tie-breaking.
        for spec in DATA_TYPE_DESCRIPTORS {
            let target = MatchTarget::DataType {
                descriptor: spec.name,
                category: spec.category,
                zero_shot: false,
            };
            add_pattern(
                &mut builder,
                &mut symbols,
                &mut targets,
                spec.name,
                Vocab::DataTypes,
                target,
            );
            for s in spec.surfaces {
                add_pattern(
                    &mut builder,
                    &mut symbols,
                    &mut targets,
                    s,
                    Vocab::DataTypes,
                    target,
                );
            }
        }
        for z in ZERO_SHOT_DATA_TYPES {
            add_pattern(
                &mut builder,
                &mut symbols,
                &mut targets,
                z.term,
                Vocab::DataTypes,
                MatchTarget::DataType {
                    descriptor: z.term,
                    category: z.category,
                    zero_shot: true,
                },
            );
        }
        for spec in PURPOSE_DESCRIPTORS {
            let target = MatchTarget::Purpose {
                descriptor: spec.name,
                category: spec.category,
                zero_shot: false,
            };
            add_pattern(
                &mut builder,
                &mut symbols,
                &mut targets,
                spec.name,
                Vocab::Purposes,
                target,
            );
            for s in spec.surfaces {
                add_pattern(
                    &mut builder,
                    &mut symbols,
                    &mut targets,
                    s,
                    Vocab::Purposes,
                    target,
                );
            }
        }
        for z in ZERO_SHOT_PURPOSES {
            add_pattern(
                &mut builder,
                &mut symbols,
                &mut targets,
                z.term,
                Vocab::Purposes,
                MatchTarget::Purpose {
                    descriptor: z.term,
                    category: z.category,
                    zero_shot: true,
                },
            );
        }
        Engine {
            ac: builder.build(),
            symbols,
            targets,
        }
    }

    fn scan(&self, line: &str) -> DualScan {
        let toks = self.tokenize(line);
        if toks.is_empty() {
            return DualScan::default();
        }
        // Best (longest, then first-inserted) pattern starting at each
        // token index, per vocabulary: (length, pattern id).
        let mut best = [
            vec![(0u32, 0u32); toks.len()],
            vec![(0u32, 0u32); toks.len()],
        ];
        self.ac.scan(toks.iter().map(|t| t.sym), &mut |end, pat| {
            let len = u32::try_from(self.ac.pattern_len(pat)).unwrap_or(u32::MAX);
            let start = end + 1 - len as usize;
            let slot = &mut best[vocab_index(self.targets[pat as usize].0)][start];
            if len > slot.0 {
                *slot = (len, pat);
            }
            true
        });
        DualScan {
            datatypes: self.resolve(line, &toks, &best[vocab_index(Vocab::DataTypes)]),
            purposes: self.resolve(line, &toks, &best[vocab_index(Vocab::Purposes)]),
        }
    }

    /// Replay the legacy token walk over the occurrence table: visit tokens
    /// left to right, track negation cues on *visited* tokens only, emit
    /// the longest match starting at each visited token, and skip the
    /// tokens it consumed.
    fn resolve(&self, line: &str, toks: &[Tok], best: &[(u32, u32)]) -> Vec<VocabMatch> {
        let mut out = Vec::new();
        let mut i = 0usize;
        let mut negation_seen = false;
        while i < toks.len() {
            if toks[i].neg {
                negation_seen = true;
            }
            let (len, pat) = best[i];
            if len > 0 {
                let start = toks[i].start as usize;
                let end = toks[i + len as usize - 1].end as usize;
                out.push(VocabMatch {
                    text: line[start..end].to_string(),
                    target: self.targets[pat as usize].1,
                    negated: negation_seen,
                    span: (start, end),
                });
                i += len as usize;
            } else {
                i += 1;
            }
        }
        out
    }

    /// Tokenize with the legacy character classes and Unicode lowercasing,
    /// interning each token to its symbol without allocating per token
    /// (the common all-ASCII-lowercase token is looked up as a line slice).
    fn tokenize(&self, line: &str) -> Vec<Tok> {
        let mut toks = Vec::new();
        let mut scratch = String::new();
        let mut start = 0usize;
        let mut in_token = false;
        let mut needs_fold = false;
        for (idx, ch) in line.char_indices() {
            let keep = ch.is_alphanumeric() || ch == '-' || ch == '/' || ch == '&' || ch == '\'';
            if keep {
                if !in_token {
                    start = idx;
                    in_token = true;
                    needs_fold = false;
                }
                if ch.is_ascii_uppercase() || !ch.is_ascii() {
                    needs_fold = true;
                }
            } else if in_token {
                self.push_token(line, start, idx, needs_fold, &mut scratch, &mut toks);
                in_token = false;
            }
        }
        if in_token {
            self.push_token(line, start, line.len(), needs_fold, &mut scratch, &mut toks);
        }
        toks
    }

    fn push_token(
        &self,
        line: &str,
        start: usize,
        end: usize,
        needs_fold: bool,
        scratch: &mut String,
        toks: &mut Vec<Tok>,
    ) {
        let word: &str = if needs_fold {
            scratch.clear();
            for ch in line[start..end].chars() {
                for lc in ch.to_lowercase() {
                    scratch.push(lc);
                }
            }
            scratch
        } else {
            &line[start..end]
        };
        toks.push(Tok {
            start: start as u32,
            end: end as u32,
            sym: self.symbols.get(word).copied().unwrap_or(NO_SYM),
            neg: is_negation_token(word),
        });
    }
}

fn vocab_index(vocab: Vocab) -> usize {
    match vocab {
        Vocab::DataTypes => 0,
        Vocab::Purposes => 1,
    }
}

fn add_pattern(
    builder: &mut AcBuilder,
    symbols: &mut HashMap<String, u32>,
    targets: &mut Vec<(Vocab, MatchTarget)>,
    surface: &str,
    vocab: Vocab,
    target: MatchTarget,
) {
    let tokens = tokenize_words(surface);
    if tokens.is_empty() {
        return;
    }
    let syms: Vec<u32> = tokens
        .into_iter()
        .map(|t| {
            let next = u32::try_from(symbols.len()).unwrap_or(u32::MAX);
            *symbols.entry(t).or_insert(next)
        })
        .collect();
    if builder.add(syms).is_some() {
        targets.push((vocab, target));
    }
}

fn is_negation_token(word: &str) -> bool {
    matches!(
        word,
        "not" | "never" | "don't" | "doesn't" | "won't" | "neither" | "nor"
    )
}

/// Lower-cased word tokens (same character classes as the taxonomy fold).
fn tokenize_words(s: &str) -> Vec<String> {
    tokenize_with_spans(s)
        .into_iter()
        .map(|(w, _, _)| w)
        .collect()
}

/// Tokens with byte spans `(word, start, end)` into the original string.
fn tokenize_with_spans(s: &str) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut start = 0usize;
    for (idx, ch) in s.char_indices() {
        let keep = ch.is_alphanumeric() || ch == '-' || ch == '/' || ch == '&' || ch == '\'';
        if keep {
            if current.is_empty() {
                start = idx;
            }
            for lc in ch.to_lowercase() {
                current.push(lc);
            }
        } else if !current.is_empty() {
            out.push((std::mem::take(&mut current), start, idx));
        }
    }
    if !current.is_empty() {
        out.push((current, start, s.len()));
    }
    out
}

// ---------------------------------------------------------------------------
// Legacy oracle (tests only)
// ---------------------------------------------------------------------------

/// The pre-automaton token-walk scanner, kept verbatim as the differential
/// oracle: `tests::automaton_matches_legacy_oracle_*` require the automaton
/// scan to reproduce its output exactly on arbitrary lines.
#[cfg(test)]
mod legacy {
    use super::*;

    struct Entry {
        tokens: Vec<String>,
        target: MatchTarget,
    }

    /// Token-indexed longest-match scanner (HashMap-bucketed by first
    /// token, longest-first stable order within a bucket).
    pub struct LegacyMatcher {
        by_first: HashMap<String, Vec<Entry>>,
    }

    impl LegacyMatcher {
        pub fn for_datatypes() -> LegacyMatcher {
            let mut m = LegacyMatcher {
                by_first: HashMap::new(),
            };
            for spec in DATA_TYPE_DESCRIPTORS {
                let target = MatchTarget::DataType {
                    descriptor: spec.name,
                    category: spec.category,
                    zero_shot: false,
                };
                m.add(spec.name, target);
                for s in spec.surfaces {
                    m.add(s, target);
                }
            }
            for z in ZERO_SHOT_DATA_TYPES {
                m.add(
                    z.term,
                    MatchTarget::DataType {
                        descriptor: z.term,
                        category: z.category,
                        zero_shot: true,
                    },
                );
            }
            m.sort_entries();
            m
        }

        pub fn for_purposes() -> LegacyMatcher {
            let mut m = LegacyMatcher {
                by_first: HashMap::new(),
            };
            for spec in PURPOSE_DESCRIPTORS {
                let target = MatchTarget::Purpose {
                    descriptor: spec.name,
                    category: spec.category,
                    zero_shot: false,
                };
                m.add(spec.name, target);
                for s in spec.surfaces {
                    m.add(s, target);
                }
            }
            for z in ZERO_SHOT_PURPOSES {
                m.add(
                    z.term,
                    MatchTarget::Purpose {
                        descriptor: z.term,
                        category: z.category,
                        zero_shot: true,
                    },
                );
            }
            m.sort_entries();
            m
        }

        fn add(&mut self, surface: &str, target: MatchTarget) {
            let tokens = tokenize_words(surface);
            if tokens.is_empty() {
                return;
            }
            self.by_first
                .entry(tokens[0].clone())
                .or_default()
                .push(Entry { tokens, target });
        }

        fn sort_entries(&mut self) {
            for entries in self.by_first.values_mut() {
                // Longest first for longest-match precedence.
                entries.sort_by_key(|e| std::cmp::Reverse(e.tokens.len()));
            }
        }

        pub fn scan_line(&self, line: &str) -> Vec<VocabMatch> {
            let tokens = tokenize_with_spans(line);
            let mut out: Vec<VocabMatch> = Vec::new();
            let mut i = 0;
            let mut negation_seen = false;
            while i < tokens.len() {
                let word = &tokens[i].0;
                if is_negation_token(word) {
                    negation_seen = true;
                }
                if let Some(entries) = self.by_first.get(word.as_str()) {
                    let mut matched = false;
                    for entry in entries {
                        let n = entry.tokens.len();
                        if i + n <= tokens.len()
                            && tokens[i..i + n]
                                .iter()
                                .map(|(w, _, _)| w)
                                .eq(entry.tokens.iter())
                        {
                            let start = tokens[i].1;
                            let end = tokens[i + n - 1].2;
                            out.push(VocabMatch {
                                text: line[start..end].to_string(),
                                target: entry.target,
                                negated: negation_seen,
                                span: (start, end),
                            });
                            i += n;
                            matched = true;
                            break;
                        }
                    }
                    if matched {
                        continue;
                    }
                }
                i += 1;
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::legacy::LegacyMatcher;
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matches_simple_surface() {
        let m = VocabMatcher::for_datatypes();
        let hits = m.scan_line("We may collect your email address and phone number.");
        let descs: Vec<&str> = hits
            .iter()
            .map(|h| match h.target {
                MatchTarget::DataType { descriptor, .. } => descriptor,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(descs, vec!["email address", "phone number"]);
        assert!(hits.iter().all(|h| !h.negated));
    }

    #[test]
    fn synonym_maps_to_descriptor_with_verbatim_text() {
        let m = VocabMatcher::for_datatypes();
        let hits = m.scan_line("Please provide your Mailing Address for delivery.");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].text, "Mailing Address");
        match hits[0].target {
            MatchTarget::DataType {
                descriptor,
                category,
                ..
            } => {
                assert_eq!(descriptor, "postal address");
                assert_eq!(category, DataTypeCategory::ContactInfo);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn longest_match_wins() {
        let m = VocabMatcher::for_datatypes();
        // "health insurance" (InsuranceInfo) must beat any shorter overlap.
        let hits = m.scan_line("We collect health insurance details.");
        assert_eq!(hits.len(), 1);
        match hits[0].target {
            MatchTarget::DataType { descriptor, .. } => assert_eq!(descriptor, "health insurance"),
            _ => panic!(),
        }
    }

    #[test]
    fn negated_context_flagged() {
        let m = VocabMatcher::for_datatypes();
        let hits = m.scan_line("We do not collect biometric data from users.");
        assert_eq!(hits.len(), 1);
        assert!(hits[0].negated);
        let hits2 = m.scan_line("This privacy notice does not apply to medical info we may hold.");
        assert!(hits2.iter().all(|h| h.negated));
    }

    #[test]
    fn negation_only_applies_after_cue() {
        let m = VocabMatcher::for_datatypes();
        let hits = m.scan_line("We collect your name. We do not collect fingerprint data.");
        let by_desc: Vec<(bool, &str)> = hits
            .iter()
            .map(|h| match h.target {
                MatchTarget::DataType { descriptor, .. } => (h.negated, descriptor),
                _ => unreachable!(),
            })
            .collect();
        assert!(by_desc.contains(&(false, "name")));
        assert!(by_desc.contains(&(true, "fingerprint")));
    }

    #[test]
    fn zero_shot_terms_matched() {
        let m = VocabMatcher::for_datatypes();
        let hits = m.scan_line("We analyze podcast listening habits to improve audio.");
        assert_eq!(hits.len(), 1);
        match hits[0].target {
            MatchTarget::DataType {
                descriptor,
                zero_shot,
                ..
            } => {
                assert_eq!(descriptor, "podcast listening habits");
                assert!(zero_shot);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn purposes_matcher_works() {
        let m = VocabMatcher::for_purposes();
        let hits = m.scan_line("We use your information to prevent fraud and for analytics.");
        let descs: Vec<&str> = hits
            .iter()
            .map(|h| match h.target {
                MatchTarget::Purpose { descriptor, .. } => descriptor,
                _ => unreachable!(),
            })
            .collect();
        assert!(descs.contains(&"fraud prevention"));
        assert!(descs.contains(&"analytics"));
    }

    #[test]
    fn no_matches_on_clean_boilerplate() {
        let m = VocabMatcher::for_datatypes();
        let hits = m.scan_line(
            "Please read this policy carefully and reach out with any concerns you have.",
        );
        assert!(hits.is_empty(), "unexpected hits: {hits:?}");
    }

    #[test]
    fn word_boundaries_respected() {
        let m = VocabMatcher::for_datatypes();
        // "aged" must not match "age"; "names" must not match "name".
        let hits = m.scan_line("Well-aged processes and filenames are irrelevant here.");
        assert!(hits.is_empty(), "unexpected: {hits:?}");
    }

    #[test]
    fn matches_do_not_overlap() {
        let m = VocabMatcher::for_datatypes();
        // "bank account info" contains "account info" — only one hit.
        let hits = m.scan_line("We store your bank account info securely.");
        assert_eq!(hits.len(), 1);
        match hits[0].target {
            MatchTarget::DataType { descriptor, .. } => {
                assert_eq!(descriptor, "bank account info");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn dual_scan_equals_both_single_scans() {
        let line = "We do not use your email address for direct marketing or analytics.";
        let dual = scan_line_dual(line);
        assert_eq!(
            dual.datatypes,
            VocabMatcher::for_datatypes().scan_line(line)
        );
        assert_eq!(dual.purposes, VocabMatcher::for_purposes().scan_line(line));
        assert!(!dual.datatypes.is_empty());
        assert!(!dual.purposes.is_empty());
    }

    /// Word pool for stitched lines: real vocabulary surfaces, negation
    /// cues, near-miss noise, punctuation, and the occasional arbitrary
    /// chunk — dense enough that longest-match, consumption, and negation
    /// interplay all trigger.
    const WORD_POOL: &str =
        "(email address|bank account info|account info|ip address|health insurance|\
          insurance|phone number|name|names|fingerprint|biometric data|analytics|\
          fraud prevention|direct marketing|access control|media access control address|\
          podcast listening habits|not|never|don't|doesn't|nor|we|do|collect|your|and|\
          for|the|of|to|WE|Email Address|ANALYTICS|Not|[a-z]{1,7}|[ -~]{0,10}|\
          [,.;:!?()\"]{1,3}|é|ß|中文)";

    proptest! {
        #[test]
        fn automaton_matches_legacy_oracle_datatypes(
            words in proptest::collection::vec(WORD_POOL, 0..20)
        ) {
            let line = words.join(" ");
            let oracle = LegacyMatcher::for_datatypes();
            prop_assert_eq!(
                VocabMatcher::for_datatypes().scan_line(&line),
                oracle.scan_line(&line),
                "line={:?}", line
            );
        }

        #[test]
        fn automaton_matches_legacy_oracle_purposes(
            words in proptest::collection::vec(WORD_POOL, 0..20)
        ) {
            let line = words.join(" ");
            let oracle = LegacyMatcher::for_purposes();
            prop_assert_eq!(
                VocabMatcher::for_purposes().scan_line(&line),
                oracle.scan_line(&line),
                "line={:?}", line
            );
        }

        #[test]
        fn automaton_matches_legacy_oracle_arbitrary(line in ".{0,160}") {
            let dual = scan_line_dual(&line);
            prop_assert_eq!(
                dual.datatypes,
                LegacyMatcher::for_datatypes().scan_line(&line),
                "dt line={:?}", line
            );
            prop_assert_eq!(
                dual.purposes,
                LegacyMatcher::for_purposes().scan_line(&line),
                "p line={:?}", line
            );
        }
    }
}
