//! Vocabulary scanning: the simulated model's "reading" of policy text.
//!
//! A [`VocabMatcher`] indexes every surface form the model knows — the
//! glossary vocabulary *plus* the zero-shot terms of
//! [`aipan_taxonomy::zeroshot`] (an LLM's world knowledge exceeds the
//! prompt glossary) — and scans lines token-by-token with longest-match
//! precedence, recording the verbatim matched text (for the pipeline's
//! hallucination verification) and whether the mention sits in a negated
//! context ("we do not collect …").

use aipan_taxonomy::datatypes::DATA_TYPE_DESCRIPTORS;
use aipan_taxonomy::purposes::PURPOSE_DESCRIPTORS;
use aipan_taxonomy::zeroshot::{ZERO_SHOT_DATA_TYPES, ZERO_SHOT_PURPOSES};
use aipan_taxonomy::{DataTypeCategory, PurposeCategory};
use std::collections::HashMap;

/// What a matched surface form refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchTarget {
    /// A collected data type.
    DataType {
        /// Normalized descriptor.
        descriptor: &'static str,
        /// Category.
        category: DataTypeCategory,
        /// Whether the term is outside the prompt glossary.
        zero_shot: bool,
    },
    /// A data-collection purpose.
    Purpose {
        /// Normalized descriptor.
        descriptor: &'static str,
        /// Category.
        category: PurposeCategory,
        /// Whether the term is outside the prompt glossary.
        zero_shot: bool,
    },
}

/// One vocabulary hit on a line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VocabMatch {
    /// The verbatim matched text, sliced from the original line.
    pub text: String,
    /// What it refers to.
    pub target: MatchTarget,
    /// Whether the mention is in a negated context on this line.
    pub negated: bool,
    /// Byte span of the match within the line.
    pub span: (usize, usize),
}

impl VocabMatch {
    /// Whether this match's span is strictly contained in `other`'s span.
    pub fn contained_in(&self, other: &(usize, usize)) -> bool {
        self.span.0 >= other.0
            && self.span.1 <= other.1
            && (self.span.1 - self.span.0) < (other.1 - other.0)
    }
}

struct Entry {
    tokens: Vec<String>,
    target: MatchTarget,
}

/// Token-indexed longest-match scanner.
pub struct VocabMatcher {
    by_first: HashMap<String, Vec<Entry>>,
}

impl VocabMatcher {
    /// Matcher over all data-type surface forms (glossary + zero-shot).
    pub fn for_datatypes() -> VocabMatcher {
        let mut m = VocabMatcher {
            by_first: HashMap::new(),
        };
        for spec in DATA_TYPE_DESCRIPTORS {
            let target = MatchTarget::DataType {
                descriptor: spec.name,
                category: spec.category,
                zero_shot: false,
            };
            m.add(spec.name, target);
            for s in spec.surfaces {
                m.add(s, target);
            }
        }
        for z in ZERO_SHOT_DATA_TYPES {
            m.add(
                z.term,
                MatchTarget::DataType {
                    descriptor: z.term,
                    category: z.category,
                    zero_shot: true,
                },
            );
        }
        m.sort_entries();
        m
    }

    /// Matcher over all purpose surface forms (glossary + zero-shot).
    pub fn for_purposes() -> VocabMatcher {
        let mut m = VocabMatcher {
            by_first: HashMap::new(),
        };
        for spec in PURPOSE_DESCRIPTORS {
            let target = MatchTarget::Purpose {
                descriptor: spec.name,
                category: spec.category,
                zero_shot: false,
            };
            m.add(spec.name, target);
            for s in spec.surfaces {
                m.add(s, target);
            }
        }
        for z in ZERO_SHOT_PURPOSES {
            m.add(
                z.term,
                MatchTarget::Purpose {
                    descriptor: z.term,
                    category: z.category,
                    zero_shot: true,
                },
            );
        }
        m.sort_entries();
        m
    }

    fn add(&mut self, surface: &str, target: MatchTarget) {
        let tokens = tokenize_words(surface);
        if tokens.is_empty() {
            return;
        }
        self.by_first
            .entry(tokens[0].clone())
            .or_default()
            .push(Entry { tokens, target });
    }

    fn sort_entries(&mut self) {
        for entries in self.by_first.values_mut() {
            // Longest first for longest-match precedence.
            entries.sort_by_key(|e| std::cmp::Reverse(e.tokens.len()));
        }
    }

    /// Scan one line; matches do not overlap (longest match consumes its
    /// tokens).
    ///
    /// Negation scope is line-granular: once a negation cue appears, the
    /// remainder of the line is treated as negated context. The synthetic
    /// corpus renders negated statements as their own paragraphs, so this
    /// never clips a positive mention there; external HTML that packs a
    /// negated sentence and a positive one into a single block could lose
    /// the positive mention to the stricter reading.
    pub fn scan_line(&self, line: &str) -> Vec<VocabMatch> {
        let tokens = tokenize_with_spans(line);
        let mut out: Vec<VocabMatch> = Vec::new();
        let mut i = 0;
        let mut negation_seen = false;
        while i < tokens.len() {
            let word = &tokens[i].0;
            if is_negation_token(word) {
                negation_seen = true;
            }
            if let Some(entries) = self.by_first.get(word.as_str()) {
                let mut matched = false;
                for entry in entries {
                    let n = entry.tokens.len();
                    if i + n <= tokens.len()
                        && tokens[i..i + n]
                            .iter()
                            .map(|(w, _, _)| w)
                            .eq(entry.tokens.iter())
                    {
                        let start = tokens[i].1;
                        let end = tokens[i + n - 1].2;
                        out.push(VocabMatch {
                            text: line[start..end].to_string(),
                            target: entry.target,
                            negated: negation_seen,
                            span: (start, end),
                        });
                        i += n;
                        matched = true;
                        break;
                    }
                }
                if matched {
                    continue;
                }
            }
            i += 1;
        }
        out
    }
}

fn is_negation_token(word: &str) -> bool {
    matches!(
        word,
        "not" | "never" | "don't" | "doesn't" | "won't" | "neither" | "nor"
    )
}

/// Lower-cased word tokens (same character classes as the taxonomy fold).
fn tokenize_words(s: &str) -> Vec<String> {
    tokenize_with_spans(s)
        .into_iter()
        .map(|(w, _, _)| w)
        .collect()
}

/// Tokens with byte spans `(word, start, end)` into the original string.
fn tokenize_with_spans(s: &str) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut start = 0usize;
    for (idx, ch) in s.char_indices() {
        let keep = ch.is_alphanumeric() || ch == '-' || ch == '/' || ch == '&' || ch == '\'';
        if keep {
            if current.is_empty() {
                start = idx;
            }
            for lc in ch.to_lowercase() {
                current.push(lc);
            }
        } else if !current.is_empty() {
            out.push((std::mem::take(&mut current), start, idx));
        }
    }
    if !current.is_empty() {
        out.push((current, start, s.len()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_simple_surface() {
        let m = VocabMatcher::for_datatypes();
        let hits = m.scan_line("We may collect your email address and phone number.");
        let descs: Vec<&str> = hits
            .iter()
            .map(|h| match h.target {
                MatchTarget::DataType { descriptor, .. } => descriptor,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(descs, vec!["email address", "phone number"]);
        assert!(hits.iter().all(|h| !h.negated));
    }

    #[test]
    fn synonym_maps_to_descriptor_with_verbatim_text() {
        let m = VocabMatcher::for_datatypes();
        let hits = m.scan_line("Please provide your Mailing Address for delivery.");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].text, "Mailing Address");
        match hits[0].target {
            MatchTarget::DataType {
                descriptor,
                category,
                ..
            } => {
                assert_eq!(descriptor, "postal address");
                assert_eq!(category, DataTypeCategory::ContactInfo);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn longest_match_wins() {
        let m = VocabMatcher::for_datatypes();
        // "health insurance" (InsuranceInfo) must beat any shorter overlap.
        let hits = m.scan_line("We collect health insurance details.");
        assert_eq!(hits.len(), 1);
        match hits[0].target {
            MatchTarget::DataType { descriptor, .. } => assert_eq!(descriptor, "health insurance"),
            _ => panic!(),
        }
    }

    #[test]
    fn negated_context_flagged() {
        let m = VocabMatcher::for_datatypes();
        let hits = m.scan_line("We do not collect biometric data from users.");
        assert_eq!(hits.len(), 1);
        assert!(hits[0].negated);
        let hits2 = m.scan_line("This privacy notice does not apply to medical info we may hold.");
        assert!(hits2.iter().all(|h| h.negated));
    }

    #[test]
    fn negation_only_applies_after_cue() {
        let m = VocabMatcher::for_datatypes();
        let hits = m.scan_line("We collect your name. We do not collect fingerprint data.");
        let by_desc: Vec<(bool, &str)> = hits
            .iter()
            .map(|h| match h.target {
                MatchTarget::DataType { descriptor, .. } => (h.negated, descriptor),
                _ => unreachable!(),
            })
            .collect();
        assert!(by_desc.contains(&(false, "name")));
        assert!(by_desc.contains(&(true, "fingerprint")));
    }

    #[test]
    fn zero_shot_terms_matched() {
        let m = VocabMatcher::for_datatypes();
        let hits = m.scan_line("We analyze podcast listening habits to improve audio.");
        assert_eq!(hits.len(), 1);
        match hits[0].target {
            MatchTarget::DataType {
                descriptor,
                zero_shot,
                ..
            } => {
                assert_eq!(descriptor, "podcast listening habits");
                assert!(zero_shot);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn purposes_matcher_works() {
        let m = VocabMatcher::for_purposes();
        let hits = m.scan_line("We use your information to prevent fraud and for analytics.");
        let descs: Vec<&str> = hits
            .iter()
            .map(|h| match h.target {
                MatchTarget::Purpose { descriptor, .. } => descriptor,
                _ => unreachable!(),
            })
            .collect();
        assert!(descs.contains(&"fraud prevention"));
        assert!(descs.contains(&"analytics"));
    }

    #[test]
    fn no_matches_on_clean_boilerplate() {
        let m = VocabMatcher::for_datatypes();
        let hits = m.scan_line(
            "Please read this policy carefully and reach out with any concerns you have.",
        );
        assert!(hits.is_empty(), "unexpected hits: {hits:?}");
    }

    #[test]
    fn word_boundaries_respected() {
        let m = VocabMatcher::for_datatypes();
        // "aged" must not match "age"; "names" must not match "name".
        let hits = m.scan_line("Well-aged processes and filenames are irrelevant here.");
        assert!(hits.is_empty(), "unexpected: {hits:?}");
    }

    #[test]
    fn matches_do_not_overlap() {
        let m = VocabMatcher::for_datatypes();
        // "bank account info" contains "account info" — only one hit.
        let hits = m.scan_line("We store your bank account info securely.");
        assert_eq!(hits.len(), 1);
        match hits[0].target {
            MatchTarget::DataType { descriptor, .. } => {
                assert_eq!(descriptor, "bank account info");
            }
            _ => panic!(),
        }
    }
}
