//! Model error profiles.
//!
//! Each profile parameterizes the simulated model's failure modes, with
//! values calibrated so the pipeline's measured quality reproduces the
//! paper: GPT-4-Turbo's per-aspect annotation precision (§4: 89.7% types /
//! 94.3% purposes / 97.5% handling / 90.5% rights, with ~40% of rights
//! errors in "Do not use"), the §6 extraction-precision comparison
//! (GPT-4 96.2% vs Llama-3.1 83.2%, Llama extracting negated contexts),
//! and GPT-3.5-Turbo's overall unsuitability.

use serde::{Deserialize, Serialize};

/// Error-model parameters for a simulated chatbot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Model identifier string.
    pub id: String,
    /// Probability a true mention is extracted (per mention).
    pub extraction_recall: f64,
    /// Probability a *negated* mention is wrongly extracted anyway.
    pub negation_error: f64,
    /// Probability (per input line) of extracting a spurious non-data-type
    /// span ("context confusion", e.g. GPT-3.5 mistaking ActiveCampaign for
    /// a data type).
    pub spurious_rate: f64,
    /// Probability (per extraction call) of emitting a fabricated mention
    /// not present in the text at all — removed by the pipeline's
    /// hallucination verification.
    pub hallucination_rate: f64,
    /// Probability a data-type normalization is assigned a wrong category.
    pub type_confusion: f64,
    /// Probability a purpose annotation is assigned a wrong
    /// descriptor/category.
    pub purpose_confusion: f64,
    /// Probability a handling label is wrong.
    pub handling_confusion: f64,
    /// Probability a rights label is wrong (excluding the "Do not use"
    /// special case).
    pub rights_confusion: f64,
    /// Probability (per candidate boilerplate line) of a spurious
    /// "Do not use" annotation — the category the paper found hardest.
    pub spurious_do_not_use: f64,
    /// Probability a heading/segment label is corrupted to `other`.
    pub segmentation_noise: f64,
    /// Probability (per aspect per document) that whole-text segmentation
    /// consistently fails to recognize an aspect's lines, leaving its
    /// section empty (this drives the paper's 708-policy full-text fallback
    /// rate).
    pub line_label_noise: f64,
    /// Probability a completion is well-formed JSON (below 1.0, the model
    /// sometimes returns malformed output the pipeline must tolerate).
    pub instruction_following: f64,
    /// Probability (per call) the model refuses the task outright
    /// ("I cannot assist…") — the LLM-side analogue of a bot wall.
    pub refusal_rate: f64,
    /// Probability (per call) the completion is cut off mid-stream,
    /// yielding truncated (hence unparsable) JSON.
    pub truncation_rate: f64,
}

impl ModelProfile {
    /// OpenAI `gpt-4-turbo-2024-04-09`, the paper's production model.
    pub fn gpt4_turbo() -> ModelProfile {
        ModelProfile {
            id: "gpt-4-turbo-2024-04-09".to_string(),
            extraction_recall: 0.97,
            negation_error: 0.04,
            spurious_rate: 0.012,
            hallucination_rate: 0.01,
            type_confusion: 0.062,
            purpose_confusion: 0.040,
            handling_confusion: 0.012,
            rights_confusion: 0.055,
            spurious_do_not_use: 0.005,
            segmentation_noise: 0.08,
            line_label_noise: 0.25,
            instruction_following: 1.0,
            refusal_rate: 0.01,
            truncation_rate: 0.01,
        }
    }

    /// OpenAI GPT-3.5-Turbo (§6: "unsatisfactory performance").
    pub fn gpt35_turbo() -> ModelProfile {
        ModelProfile {
            id: "gpt-3.5-turbo".to_string(),
            extraction_recall: 0.55,
            negation_error: 0.40,
            spurious_rate: 0.30,
            hallucination_rate: 0.08,
            type_confusion: 0.35,
            purpose_confusion: 0.30,
            handling_confusion: 0.20,
            rights_confusion: 0.25,
            spurious_do_not_use: 0.20,
            segmentation_noise: 0.15,
            line_label_noise: 0.50,
            instruction_following: 0.85,
            refusal_rate: 0.02,
            truncation_rate: 0.02,
        }
    }

    /// Llama-3.1 (§6: comparable to GPT-4 but extracts negated contexts;
    /// 83.2% extraction precision vs GPT-4's 96.2%).
    pub fn llama31() -> ModelProfile {
        ModelProfile {
            id: "llama-3.1".to_string(),
            extraction_recall: 0.93,
            negation_error: 0.70,
            spurious_rate: 0.048,
            hallucination_rate: 0.02,
            type_confusion: 0.12,
            purpose_confusion: 0.10,
            handling_confusion: 0.05,
            rights_confusion: 0.10,
            spurious_do_not_use: 0.12,
            segmentation_noise: 0.05,
            line_label_noise: 0.40,
            instruction_following: 0.97,
            refusal_rate: 0.02,
            truncation_rate: 0.01,
        }
    }

    /// A perfect oracle (no errors) — used by tests and the ablation
    /// benches to isolate pipeline behaviour from model noise.
    pub fn oracle() -> ModelProfile {
        ModelProfile {
            id: "oracle".to_string(),
            extraction_recall: 1.0,
            negation_error: 0.0,
            spurious_rate: 0.0,
            hallucination_rate: 0.0,
            type_confusion: 0.0,
            purpose_confusion: 0.0,
            handling_confusion: 0.0,
            rights_confusion: 0.0,
            spurious_do_not_use: 0.0,
            segmentation_noise: 0.0,
            line_label_noise: 0.0,
            instruction_following: 1.0,
            refusal_rate: 0.0,
            truncation_rate: 0.0,
        }
    }
}

/// Deterministic error decision: uniform hash of `(seed, parts…)` compared
/// against `p`. Stable across runs, threads, and call order.
pub fn decide(seed: u64, parts: &[&str], p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    unit(seed, parts) < p
}

/// Uniform float in [0,1) from `(seed, parts…)`.
pub fn unit(seed: u64, parts: &[&str]) -> f64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    seed.hash(&mut h);
    for p in parts {
        p.hash(&mut h);
    }
    (h.finish() >> 11) as f64 / (1u64 << 53) as f64
}

/// Pick a deterministic index in `0..n` from `(seed, parts…)`.
pub fn pick(seed: u64, parts: &[&str], n: usize) -> usize {
    debug_assert!(n > 0);
    (unit(seed, parts) * n as f64) as usize % n.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_ordered_by_quality() {
        let gpt4 = ModelProfile::gpt4_turbo();
        let llama = ModelProfile::llama31();
        let gpt35 = ModelProfile::gpt35_turbo();
        assert!(gpt4.extraction_recall > gpt35.extraction_recall);
        assert!(gpt4.negation_error < llama.negation_error);
        assert!(
            llama.negation_error > 0.5,
            "llama must extract negated contexts"
        );
        assert!(gpt4.spurious_rate < llama.spurious_rate);
        assert!(llama.spurious_rate < gpt35.spurious_rate);
    }

    #[test]
    fn oracle_is_perfect() {
        let o = ModelProfile::oracle();
        assert_eq!(o.extraction_recall, 1.0);
        assert_eq!(o.type_confusion, 0.0);
        assert_eq!(o.instruction_following, 1.0);
    }

    #[test]
    fn decide_deterministic_and_rate_accurate() {
        let n = 20_000;
        let hits = (0..n)
            .filter(|i| decide(9, &["test", &i.to_string()], 0.25))
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert_eq!(decide(9, &["a", "b"], 0.5), decide(9, &["a", "b"], 0.5));
    }

    #[test]
    fn decide_extremes() {
        assert!(!decide(1, &["x"], 0.0));
        assert!(decide(1, &["x"], 1.0));
    }

    #[test]
    fn pick_in_range() {
        for i in 0..100 {
            let k = pick(3, &["p", &i.to_string()], 7);
            assert!(k < 7);
        }
    }
}
