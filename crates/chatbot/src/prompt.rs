//! Task prompts (Figure 2 of the paper).
//!
//! Each prompt follows the paper's structure: a role statement ("Assume the
//! role of a data privacy expert…"), numbered instructions, an attached
//! glossary compiled from the taxonomy, and an input/output example. The
//! rendered text is what gets token-accounted and handed to the model; the
//! [`TaskKind`] tag is what a simulated model dispatches on (a real LLM
//! would read the instructions).

use aipan_taxonomy::glossary;
use serde::{Deserialize, Serialize};

/// The seven chatbot tasks of §3.2 and Appendix B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// Label a table of contents' headings with aspects (Appendix B step 1).
    LabelHeadings,
    /// Divide raw text into labeled sections (Appendix B step 2).
    SegmentText,
    /// Extract verbatim mentions of collected data types (Figure 2b).
    ExtractDataTypes,
    /// Normalize extracted data-type mentions into descriptors+categories.
    NormalizeDataTypes,
    /// Extract and normalize data-collection purposes.
    AnnotatePurposes,
    /// Label data retention/protection practices.
    AnnotateHandling,
    /// Label user choices/access practices.
    AnnotateRights,
}

impl TaskKind {
    /// All tasks.
    pub const ALL: [TaskKind; 7] = [
        TaskKind::LabelHeadings,
        TaskKind::SegmentText,
        TaskKind::ExtractDataTypes,
        TaskKind::NormalizeDataTypes,
        TaskKind::AnnotatePurposes,
        TaskKind::AnnotateHandling,
        TaskKind::AnnotateRights,
    ];

    /// Stable name used for usage accounting.
    pub fn name(self) -> &'static str {
        match self {
            TaskKind::LabelHeadings => "label_headings",
            TaskKind::SegmentText => "segment_text",
            TaskKind::ExtractDataTypes => "extract_data_types",
            TaskKind::NormalizeDataTypes => "normalize_data_types",
            TaskKind::AnnotatePurposes => "annotate_purposes",
            TaskKind::AnnotateHandling => "annotate_handling",
            TaskKind::AnnotateRights => "annotate_rights",
        }
    }
}

/// A rendered task prompt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskPrompt {
    /// The task this prompt instructs.
    pub kind: TaskKind,
    /// The full rendered prompt text.
    pub text: String,
}

impl TaskPrompt {
    /// Build the prompt for `kind` with the standard glossaries attached.
    pub fn build(kind: TaskKind) -> TaskPrompt {
        let text = match kind {
            TaskKind::LabelHeadings => label_headings_prompt(),
            TaskKind::SegmentText => segment_text_prompt(),
            TaskKind::ExtractDataTypes => extract_data_types_prompt(),
            TaskKind::NormalizeDataTypes => normalize_data_types_prompt(),
            TaskKind::AnnotatePurposes => annotate_purposes_prompt(),
            TaskKind::AnnotateHandling => annotate_handling_prompt(),
            TaskKind::AnnotateRights => annotate_rights_prompt(),
        };
        TaskPrompt { kind, text }
    }
}

const ROLE: &str =
    "Task: Assume the role of a data privacy expert tasked with analyzing website privacy \
     policies.";

const LINE_FORMAT: &str =
    "The input is formatted with each line starting with a line number enclosed in \
     brackets (e.g., \"[123]\").";

const JSON_ONLY: &str =
    "Print only the JSON-formatted string in your output without adding any extra \
     information.";

fn label_headings_prompt() -> String {
    format!(
        "{ROLE} Use the provided glossary to label a list of section headings according to \
         the nine aspect categories.\n\
         \n### Instructions:\n\
         (1) Carefully and thoroughly read the section headings provided in the next \
         message. {LINE_FORMAT} The headings are indented to reflect the hierarchy of \
         sections.\n\
         (2) Label each heading according to the aspect categories. Use the glossary below \
         as examples of terms relevant to each category. If multiple categories apply to a \
         section, report all of them.\n\
         (3) Report labels for all headings as a JSON string containing a list of tuples, \
         each tuple holding the heading's line number and its assigned label(s). {JSON_ONLY}\n\
         \n### Glossary:\n{}\n\
         \n### Example:\n\
         Input:\n[1] Information We Collect\n[8] How We Use Data\n\
         Output:\n[[1, [\"types\"]], [8, [\"purposes\"]]]\n",
        glossary::heading_glossary()
    )
}

fn segment_text_prompt() -> String {
    format!(
        "{ROLE} Divide the provided privacy policy text into sections and label each \
         section according to the nine aspect categories.\n\
         \n### Instructions:\n\
         (1) Carefully and thoroughly read the privacy policy text provided in the next \
         message. {LINE_FORMAT}\n\
         (2) Divide the text into contiguous sections discussing the same aspect, and \
         label each section. Use the glossary below as a guide.\n\
         (3) Report the output as a JSON string containing a list of tuples, each tuple \
         holding a line number and the aspect label(s) applying from that line onward. \
         {JSON_ONLY}\n\
         \n### Glossary:\n{}\n\
         \n### Example:\n\
         Input:\n[1] We collect your contact details.\n[2] We use them to provide service.\n\
         Output:\n[[1, [\"types\"]], [2, [\"purposes\"]]]\n",
        glossary::heading_glossary()
    )
}

fn extract_data_types_prompt() -> String {
    format!(
        "{ROLE} Meticulously extract and catalog specific data types that are mentioned as \
         being collected.\n\
         \n### Instructions:\n\
         (1) Carefully and thoroughly read the privacy policy text provided in the next \
         message. {LINE_FORMAT}\n\
         (2) Identify all explicit mentions of specific data types or categories that are \
         potentially collected (see the glossary for examples). Identify all mentions \
         regardless of how many times they are repeated throughout the text. Focus on \
         identifying the collected data types and not how they are collected and/or used. \
         Ignore mentions in hypothetical or negated contexts, e.g., \"we do not collect \
         ...\". Separate lists into individual items. Pinpoint the exact word(s) used in \
         the text to describe each data type.\n\
         (3) Report the identified data types as a JSON string containing a list of \
         tuples, each tuple holding the line number where the data type is mentioned and \
         the exact word(s) used to describe it. {JSON_ONLY}\n\
         \n### Glossary:\n{}\n\
         \n### Example:\n\
         Input:\n[4] We collect your email address and browsing history.\n\
         Output:\n[[4, \"email address\"], [4, \"browsing history\"]]\n",
        glossary::datatype_glossary(8)
    )
}

fn normalize_data_types_prompt() -> String {
    format!(
        "{ROLE} Categorize extracted data-type mentions and generate normalized \
         descriptors.\n\
         \n### Instructions:\n\
         (1) Read the list of extracted data-type mentions provided in the next message, \
         one per line. {LINE_FORMAT}\n\
         (2) For each mention, produce a normalized descriptor (e.g., map both \"mailing \
         address\" and \"home address\" to \"postal address\") and assign one of the 34 \
         categories from the glossary. For data types not listed in the glossary, \
         generate an appropriate descriptor of your own and assign the closest category.\n\
         (3) Report the output as a JSON string containing a list of tuples, each tuple \
         holding the line number, the normalized descriptor, and the category name. \
         {JSON_ONLY}\n\
         \n### Glossary:\n{}\n\
         \n### Example:\n\
         Input:\n[1] mailing address\n\
         Output:\n[[1, \"postal address\", \"Contact info\"]]\n",
        glossary::datatype_glossary(8)
    )
}

fn annotate_purposes_prompt() -> String {
    format!(
        "{ROLE} Extract specific purposes for which data is collected or used, and \
         normalize them.\n\
         \n### Instructions:\n\
         (1) Carefully read the privacy policy text provided in the next message. \
         {LINE_FORMAT}\n\
         (2) Identify all explicit mentions of purposes for data collection or use. \
         Ignore hypothetical or negated contexts. For each mention, produce a normalized \
         descriptor and assign one of the 7 categories from the glossary; generate your \
         own descriptor for purposes not listed.\n\
         (3) Report the output as a JSON string containing a list of tuples, each tuple \
         holding the line number, the exact words used, the normalized descriptor, and \
         the category name. {JSON_ONLY}\n\
         \n### Glossary:\n{}\n\
         \n### Example:\n\
         Input:\n[2] We use your information to prevent fraud.\n\
         Output:\n[[2, \"prevent fraud\", \"fraud prevention\", \"Security\"]]\n",
        glossary::purpose_glossary(6)
    )
}

fn annotate_handling_prompt() -> String {
    format!(
        "{ROLE} Identify and label data retention and data protection practices.\n\
         \n### Instructions:\n\
         (1) Carefully read the privacy policy text provided in the next message. \
         {LINE_FORMAT}\n\
         (2) Identify mentions of data retention periods and label them Limited (limited \
         but unspecified), Stated (a concrete period is given — also extract the period), \
         or Indefinitely. Identify mentions of data protection measures and label them \
         with one of: Generic, Access limit, Secure transfer, Secure storage, Privacy \
         program, Privacy review, Secure authentication.\n\
         (3) Report the output as a JSON string containing a list of tuples, each tuple \
         holding the line number, the exact words used, the label, and (for Stated \
         retention) the period. {JSON_ONLY}\n\
         \n### Example:\n\
         Input:\n[3] We retain your data for two (2) years.\n\
         Output:\n[[3, \"retain your data for two (2) years\", \"Stated\", \"2 years\"]]\n"
    )
}

fn annotate_rights_prompt() -> String {
    format!(
        "{ROLE} Identify and label user choices and user access practices.\n\
         \n### Instructions:\n\
         (1) Carefully read the privacy policy text provided in the next message. \
         {LINE_FORMAT}\n\
         (2) Identify mentions of user choices and label them with one of: Opt-out via \
         contact, Opt-out via link, Privacy settings, Opt-in, Do not use. Identify \
         mentions of user access and label them with one of: Edit, Full delete, View, \
         Export, Partial delete, Deactivate.\n\
         (3) Report the output as a JSON string containing a list of tuples, each tuple \
         holding the line number, the exact words used, and the label. {JSON_ONLY}\n\
         \n### Example:\n\
         Input:\n[5] You may update or correct your information at any time.\n\
         Output:\n[[5, \"update or correct your information\", \"Edit\"]]\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_prompts_render_nonempty() {
        for kind in TaskKind::ALL {
            let p = TaskPrompt::build(kind);
            assert_eq!(p.kind, kind);
            assert!(p.text.len() > 200, "{kind:?} prompt too short");
            assert!(p.text.contains("data privacy expert"));
            assert!(p.text.contains("JSON"));
        }
    }

    #[test]
    fn extraction_prompt_contains_negation_instruction() {
        let p = TaskPrompt::build(TaskKind::ExtractDataTypes);
        assert!(p.text.contains("negated contexts"));
        assert!(p.text.contains("we do not collect"));
    }

    #[test]
    fn glossaries_attached() {
        assert!(TaskPrompt::build(TaskKind::ExtractDataTypes)
            .text
            .contains("email address"));
        assert!(TaskPrompt::build(TaskKind::NormalizeDataTypes)
            .text
            .contains("postal address"));
        assert!(TaskPrompt::build(TaskKind::AnnotatePurposes)
            .text
            .contains("fraud prevention"));
        assert!(TaskPrompt::build(TaskKind::LabelHeadings)
            .text
            .contains("Information we collect"));
    }

    #[test]
    fn task_names_unique() {
        let mut names: Vec<_> = TaskKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), TaskKind::ALL.len());
    }
}
