//! The JSON tuple protocol between the pipeline and the chatbot.
//!
//! Task inputs are numbered-line documents (`[123] text…`); task outputs are
//! JSON-formatted strings containing lists of tuples, exactly as the
//! paper's prompts dictate. This module renders inputs and parses outputs —
//! tolerantly, since models occasionally emit malformed rows (such rows are
//! dropped, not fatal).

use aipan_taxonomy::Aspect;
use serde_json::Value;

/// Render lines as a numbered-line document (1-based).
pub fn number_lines<'a>(lines: impl IntoIterator<Item = &'a str>) -> String {
    let mut out = String::new();
    number_lines_into(&mut out, lines);
    out
}

/// [`number_lines`], rendered into a caller-owned buffer (cleared first).
/// A worker annotating many policies reuses one buffer across all of them
/// instead of allocating a fresh full-text document per policy.
pub fn number_lines_into<'a>(out: &mut String, lines: impl IntoIterator<Item = &'a str>) {
    let lines = lines.into_iter();
    out.clear();
    // ~6 bytes of numbering overhead plus a short line per row; a no-op on
    // a reused buffer that is already large enough.
    out.reserve(lines.size_hint().0.saturating_mul(48));
    for (i, line) in lines.enumerate() {
        out.push_str(&format!("[{}] {}\n", i + 1, line));
    }
}

/// Render (line-number, text) pairs as a numbered document, preserving the
/// given numbers (used when feeding a subset of a document, e.g. one
/// section, so the model reports original line numbers).
pub fn number_lines_with<'a>(lines: impl IntoIterator<Item = (usize, &'a str)>) -> String {
    let lines = lines.into_iter();
    let mut out = String::with_capacity(lines.size_hint().0.saturating_mul(48));
    for (n, line) in lines {
        out.push_str(&format!("[{n}] {line}\n"));
    }
    out
}

/// A heading/segment label row: line number + aspects.
pub type LabelRow = (usize, Vec<Aspect>);
/// An extraction row: line number + verbatim text.
pub type ExtractRow = (usize, String);
/// A normalization row: line number + descriptor + category name.
pub type NormalizeRow = (usize, String, String);
/// A purpose row: line, verbatim text, descriptor, category name.
pub type PurposeRow = (usize, String, String, String);
/// A handling row: line, verbatim text, label, optional period text.
pub type HandlingRow = (usize, String, String, Option<String>);
/// A rights row: line, verbatim text, label.
pub type RightsRow = (usize, String, String);

/// Encode label rows (`[[1, ["types"]], …]`).
pub fn encode_labels(rows: &[LabelRow]) -> String {
    let v: Vec<Value> = rows
        .iter()
        .map(|(n, aspects)| {
            Value::Array(vec![
                Value::from(*n),
                Value::Array(aspects.iter().map(|a| Value::from(a.key())).collect()),
            ])
        })
        .collect();
    Value::Array(v).to_string()
}

/// Parse label rows; malformed rows are skipped.
pub fn parse_labels(output: &str) -> Vec<LabelRow> {
    parse_rows(output, |row| {
        let n = row.first()?.as_u64()? as usize;
        let aspects = row
            .get(1)?
            .as_array()?
            .iter()
            .filter_map(|v| v.as_str().and_then(Aspect::from_key))
            .collect::<Vec<_>>();
        Some((n, aspects))
    })
}

/// Encode extraction rows (`[[4, "email address"], …]`).
pub fn encode_extractions(rows: &[ExtractRow]) -> String {
    let v: Vec<Value> = rows
        .iter()
        .map(|(n, text)| Value::Array(vec![Value::from(*n), Value::from(text.as_str())]))
        .collect();
    Value::Array(v).to_string()
}

/// Parse extraction rows.
pub fn parse_extractions(output: &str) -> Vec<ExtractRow> {
    parse_rows(output, |row| {
        let n = row.first()?.as_u64()? as usize;
        let text = row.get(1)?.as_str()?.to_string();
        Some((n, text))
    })
}

/// Encode normalization rows (`[[1, "postal address", "Contact info"], …]`).
pub fn encode_normalizations(rows: &[NormalizeRow]) -> String {
    let v: Vec<Value> = rows
        .iter()
        .map(|(n, d, c)| {
            Value::Array(vec![
                Value::from(*n),
                Value::from(d.as_str()),
                Value::from(c.as_str()),
            ])
        })
        .collect();
    Value::Array(v).to_string()
}

/// Parse normalization rows.
pub fn parse_normalizations(output: &str) -> Vec<NormalizeRow> {
    parse_rows(output, |row| {
        Some((
            row.first()?.as_u64()? as usize,
            row.get(1)?.as_str()?.to_string(),
            row.get(2)?.as_str()?.to_string(),
        ))
    })
}

/// Encode purpose rows.
pub fn encode_purposes(rows: &[PurposeRow]) -> String {
    let v: Vec<Value> = rows
        .iter()
        .map(|(n, t, d, c)| {
            Value::Array(vec![
                Value::from(*n),
                Value::from(t.as_str()),
                Value::from(d.as_str()),
                Value::from(c.as_str()),
            ])
        })
        .collect();
    Value::Array(v).to_string()
}

/// Parse purpose rows.
pub fn parse_purposes(output: &str) -> Vec<PurposeRow> {
    parse_rows(output, |row| {
        Some((
            row.first()?.as_u64()? as usize,
            row.get(1)?.as_str()?.to_string(),
            row.get(2)?.as_str()?.to_string(),
            row.get(3)?.as_str()?.to_string(),
        ))
    })
}

/// Encode handling rows (period is `null` when absent).
pub fn encode_handling(rows: &[HandlingRow]) -> String {
    let v: Vec<Value> = rows
        .iter()
        .map(|(n, t, l, p)| {
            Value::Array(vec![
                Value::from(*n),
                Value::from(t.as_str()),
                Value::from(l.as_str()),
                p.as_deref().map(Value::from).unwrap_or(Value::Null),
            ])
        })
        .collect();
    Value::Array(v).to_string()
}

/// Parse handling rows.
pub fn parse_handling(output: &str) -> Vec<HandlingRow> {
    parse_rows(output, |row| {
        Some((
            row.first()?.as_u64()? as usize,
            row.get(1)?.as_str()?.to_string(),
            row.get(2)?.as_str()?.to_string(),
            row.get(3).and_then(|v| v.as_str()).map(str::to_string),
        ))
    })
}

/// Encode rights rows.
pub fn encode_rights(rows: &[RightsRow]) -> String {
    let v: Vec<Value> = rows
        .iter()
        .map(|(n, t, l)| {
            Value::Array(vec![
                Value::from(*n),
                Value::from(t.as_str()),
                Value::from(l.as_str()),
            ])
        })
        .collect();
    Value::Array(v).to_string()
}

/// Parse rights rows.
pub fn parse_rights(output: &str) -> Vec<RightsRow> {
    parse_rows(output, |row| {
        Some((
            row.first()?.as_u64()? as usize,
            row.get(1)?.as_str()?.to_string(),
            row.get(2)?.as_str()?.to_string(),
        ))
    })
}

/// Whether `output` is structurally well-formed protocol output: a
/// top-level JSON array. Distinguishes a *valid empty result* (`[]`) from
/// refusals, malformed prefixes, and truncated completions, which a
/// bounded re-prompt loop should retry.
pub fn is_well_formed(output: &str) -> bool {
    matches!(
        serde_json::from_str::<Value>(output.trim()),
        Ok(Value::Array(_))
    )
}

/// Shared tolerant parser: top-level array of arrays; rows that fail `f`
/// are dropped. Non-JSON output yields an empty vec.
fn parse_rows<T>(output: &str, f: impl Fn(&[Value]) -> Option<T>) -> Vec<T> {
    let Ok(value) = serde_json::from_str::<Value>(output.trim()) else {
        return Vec::new();
    };
    let Some(rows) = value.as_array() else {
        return Vec::new();
    };
    rows.iter()
        .filter_map(|row| row.as_array().and_then(|r| f(r)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_lines_formats() {
        let doc = number_lines(["alpha", "beta"]);
        assert_eq!(doc, "[1] alpha\n[2] beta\n");
        let sub = number_lines_with([(7, "x"), (12, "y")]);
        assert_eq!(sub, "[7] x\n[12] y\n");
    }

    #[test]
    fn number_lines_into_clears_and_matches() {
        let mut buf = String::from("stale contents from the previous policy");
        number_lines_into(&mut buf, ["alpha", "beta"]);
        assert_eq!(buf, number_lines(["alpha", "beta"]));
        number_lines_into(&mut buf, std::iter::empty());
        assert_eq!(buf, "");
    }

    #[test]
    fn labels_roundtrip() {
        let rows = vec![
            (1, vec![Aspect::Types]),
            (8, vec![Aspect::Purposes, Aspect::Other]),
        ];
        let parsed = parse_labels(&encode_labels(&rows));
        assert_eq!(parsed, rows);
    }

    #[test]
    fn extractions_roundtrip() {
        let rows = vec![
            (4, "email address".to_string()),
            (9, "ip address".to_string()),
        ];
        assert_eq!(parse_extractions(&encode_extractions(&rows)), rows);
    }

    #[test]
    fn normalizations_roundtrip() {
        let rows = vec![(1, "postal address".to_string(), "Contact info".to_string())];
        assert_eq!(parse_normalizations(&encode_normalizations(&rows)), rows);
    }

    #[test]
    fn purposes_roundtrip() {
        let rows = vec![(
            2,
            "prevent fraud".to_string(),
            "fraud prevention".to_string(),
            "Security".to_string(),
        )];
        assert_eq!(parse_purposes(&encode_purposes(&rows)), rows);
    }

    #[test]
    fn handling_roundtrip_with_and_without_period() {
        let rows = vec![
            (
                3,
                "retain for two (2) years".to_string(),
                "Stated".to_string(),
                Some("2 years".to_string()),
            ),
            (
                5,
                "as long as necessary".to_string(),
                "Limited".to_string(),
                None,
            ),
        ];
        assert_eq!(parse_handling(&encode_handling(&rows)), rows);
    }

    #[test]
    fn rights_roundtrip() {
        let rows = vec![(5, "update or correct".to_string(), "Edit".to_string())];
        assert_eq!(parse_rights(&encode_rights(&rows)), rows);
    }

    #[test]
    fn malformed_output_tolerated() {
        assert!(parse_labels("not json at all").is_empty());
        assert!(parse_extractions("{\"a\": 1}").is_empty());
        // Bad rows dropped, good rows kept.
        let mixed = "[[1, \"ok\"], [\"bad\"], 42, [2, \"also ok\"]]";
        let parsed = parse_extractions(mixed);
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn unknown_aspect_keys_dropped() {
        let parsed = parse_labels("[[1, [\"types\", \"bogus\"]]]");
        assert_eq!(parsed, vec![(1, vec![Aspect::Types])]);
    }
}
