//! Simulated implementations of the seven chatbot tasks.
//!
//! Each function consumes a numbered-line input document and produces
//! protocol rows, applying the [`ModelProfile`]'s error models. All error
//! decisions are keyed by `(seed, model, task, document-hash, line, item)`
//! so runs are deterministic but errors are uncorrelated across policies
//! (the same boilerplate sentence can be mislabeled for one company and
//! labeled correctly for another, as with a real sampled model).

use crate::matcher::{scan_line_dual, MatchTarget};
use crate::profile::{decide, pick, ModelProfile};
use crate::protocol::{ExtractRow, HandlingRow, LabelRow, NormalizeRow, PurposeRow, RightsRow};
use aipan_taxonomy::zeroshot::{ZeroShotDataType, ZERO_SHOT_DATA_TYPES};
use aipan_taxonomy::{
    AccessLabel, Aspect, ChoiceLabel, DataTypeCategory, Normalizer, ProtectionLabel, RetentionLabel,
};
use std::collections::HashMap;
use std::sync::OnceLock;

fn normalizer() -> &'static Normalizer {
    static N: OnceLock<Normalizer> = OnceLock::new();
    N.get_or_init(Normalizer::new)
}

/// Parse a numbered-line document (`[n] text`).
pub fn parse_numbered(input: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for line in input.lines() {
        let line = line.trim_end();
        let Some(rest) = line.strip_prefix('[') else {
            continue;
        };
        let Some((num, text)) = rest.split_once(']') else {
            continue;
        };
        let Ok(n) = num.trim().parse::<usize>() else {
            continue;
        };
        out.push((n, text.trim_start().to_string()));
    }
    out
}

/// Short stable key for a document (decision keying).
pub fn doc_key(input: &str) -> String {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    input.hash(&mut h);
    format!("{:016x}", h.finish())
}

// ---------------------------------------------------------------------------
// Heading labeling and text segmentation (Appendix B)
// ---------------------------------------------------------------------------

/// Classify a section heading into aspects (keyword rules standing in for
/// the LLM's reading of the heading glossary).
pub fn classify_heading(text: &str) -> Vec<Aspect> {
    let t = text.to_lowercase();
    let mut aspects = Vec::new();
    let has = |needle: &str| t.contains(needle);

    if has("how we collect") || has("collection method") || has("sources of") {
        aspects.push(Aspect::Methods);
    } else if has("we collect")
        || has("information collected")
        || has("data collected")
        || has("categories of personal")
        || has("what information")
    {
        aspects.push(Aspect::Types);
    }
    if has("how we use") || has("use of ") || has("why we") || has("purposes") {
        aspects.push(Aspect::Purposes);
    }
    if has("retention")
        || has("security")
        || has("how long")
        || has("protect")
        || has("storage")
        || has("safeguard")
    {
        aspects.push(Aspect::Handling);
    }
    if has("share") || has("sharing") || has("disclos") || has("third part") {
        aspects.push(Aspect::Sharing);
    }
    if has("rights")
        || has("choices")
        || has("opt-out")
        || has("opt out")
        || has("access and correction")
    {
        aspects.push(Aspect::Rights);
    }
    if has("california")
        || has("children")
        || has("minors")
        || has("european")
        || has("audiences")
        || has("nevada")
        || has("gdpr")
        || has("ccpa")
    {
        aspects.push(Aspect::Audiences);
    }
    if has("changes") || has("updates to") || has("amendment") {
        aspects.push(Aspect::Changes);
    }
    if aspects.is_empty() {
        aspects.push(Aspect::Other);
    }
    aspects
}

/// Label a table of contents (input lines are headings).
pub fn run_label_headings(profile: &ModelProfile, seed: u64, input: &str) -> Vec<LabelRow> {
    let doc = doc_key(input);
    parse_numbered(input)
        .into_iter()
        .map(|(n, text)| {
            let mut aspects = classify_heading(&text);
            if decide(
                seed,
                &[&profile.id, "seg-noise", &doc, &n.to_string()],
                profile.segmentation_noise,
            ) {
                aspects = vec![Aspect::Other];
            }
            (n, aspects)
        })
        .collect()
}

/// Classify one body line into aspects (the whole-text segmentation rules).
pub fn classify_line(text: &str) -> Vec<Aspect> {
    let t = text.to_lowercase();
    let has = |needle: &str| t.contains(needle);
    let mut aspects = Vec::new();

    if has("retain")
        || has("retention")
        || has("indefinitely")
        || has("safeguard")
        || has("encrypt")
        || has("need to know")
        || has("privacy program")
        || has("two-factor")
        || has("audited")
    {
        aspects.push(Aspect::Handling);
    }
    if has("opt out")
        || has("opt-out")
        || has("consent")
        || has("update or correct")
        || has("delete your account")
        || has("access to review")
        || has("copy of your")
        || has("deactivate")
        || has("privacy settings")
        || has("deletion of certain")
        || has("discontinue use")
    {
        aspects.push(Aspect::Rights);
    }
    if has("share") || has("disclos") || has("unaffiliated") || has("third part") {
        aspects.push(Aspect::Sharing);
    }
    if has("update this policy")
        || has("changes to this")
        || has("revise the date")
        || has("material update")
    {
        aspects.push(Aspect::Changes);
    }
    if has("california") || has("minors") || has("children") || has("european") {
        aspects.push(Aspect::Audiences);
    }
    if has("how we collect") || has("obtain information directly") || has("automated technolog") {
        aspects.push(Aspect::Methods);
    }
    // One combined automaton pass covers both vocabularies (the legacy
    // code scanned the line once per matcher).
    let vocab = scan_line_dual(text);
    if !vocab.datatypes.is_empty()
        || has("we collect")
        || has("we may collect")
        || has("categories of personal information")
        || has("information we collect includes")
    {
        aspects.push(Aspect::Types);
    }
    if !vocab.purposes.is_empty() || has("we use the information") || has("following purposes") {
        aspects.push(Aspect::Purposes);
    }
    if aspects.is_empty() {
        aspects.push(Aspect::Other);
    }
    aspects
}

/// Segment whole text into labeled lines (Appendix B step 2).
///
/// Whole-text labeling is noisy: with probability `line_label_noise` *per
/// aspect per document*, the model consistently fails to recognize that
/// aspect's lines (they fall to `other`). A wiped aspect leaves its section
/// empty, which is what later forces the §3.2.2 full-text annotation
/// fallback on real models. The wipe is per-aspect-consistent rather than
/// per-line so that sections are either intact or empty — mirroring how a
/// model that misreads a topic misreads all of it.
pub fn run_segment_text(profile: &ModelProfile, seed: u64, input: &str) -> Vec<LabelRow> {
    let doc = doc_key(input);
    let wiped: Vec<Aspect> = Aspect::ALL
        .iter()
        .copied()
        .filter(|a| {
            decide(
                seed,
                &[&profile.id, "seg2-wipe", &doc, a.key()],
                profile.line_label_noise,
            )
        })
        .collect();
    parse_numbered(input)
        .into_iter()
        .map(|(n, text)| {
            let mut aspects = classify_line(&text);
            aspects.retain(|a| !wiped.contains(a));
            if aspects.is_empty() {
                aspects.push(Aspect::Other);
            }
            (n, aspects)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Data-type extraction and normalization
// ---------------------------------------------------------------------------

/// Extract verbatim data-type mentions (Figure 2b task).
pub fn run_extract_datatypes(profile: &ModelProfile, seed: u64, input: &str) -> Vec<ExtractRow> {
    let doc = doc_key(input);
    let mut rows = Vec::new();
    for (n, text) in parse_numbered(input) {
        // Suppress data-type hits strictly inside a longer purpose phrase
        // (e.g. "email" inside "email newsletters"): a competent reader
        // attributes the span to the larger unit. One dual scan yields
        // both sides.
        let scan = scan_line_dual(&text);
        let purpose_spans: Vec<(usize, usize)> =
            scan.purposes.into_iter().map(|h| h.span).collect();
        let hits = scan
            .datatypes
            .into_iter()
            .filter(|h| !purpose_spans.iter().any(|s| h.contained_in(s)));
        for (idx, hit) in hits.enumerate() {
            let item = format!("{n}:{idx}:{}", hit.text);
            if hit.negated {
                // The prompt says to ignore negated contexts; weaker models
                // extract them anyway (the Llama-3.1 failure of §6).
                if !decide(
                    seed,
                    &[&profile.id, "neg", &doc, &item],
                    profile.negation_error,
                ) {
                    continue;
                }
            } else if !decide(
                seed,
                &[&profile.id, "recall", &doc, &item],
                profile.extraction_recall,
            ) {
                continue;
            }
            rows.push((n, hit.text));
        }
        // Context confusion: a span that is not a data type.
        if decide(
            seed,
            &[&profile.id, "spurious", &doc, &n.to_string()],
            profile.spurious_rate,
        ) {
            if let Some(span) = spurious_span(seed, profile, &doc, n, &text) {
                rows.push((n, span));
            }
        }
    }
    // Hallucination: fabricated text absent from the document (caught by
    // the pipeline's verbatim verification).
    if decide(
        seed,
        &[&profile.id, "hallucinate", &doc],
        profile.hallucination_rate,
    ) {
        rows.push((1, "telepathic preference signals".to_string()));
    }
    rows
}

/// Pick a plausible-looking non-vocabulary span from a line.
fn spurious_span(
    seed: u64,
    profile: &ModelProfile,
    doc: &str,
    n: usize,
    text: &str,
) -> Option<String> {
    let words: Vec<&str> = text
        .split_whitespace()
        .filter(|w| w.len() >= 5 && w.chars().all(|c| c.is_alphabetic()))
        .collect();
    if words.is_empty() {
        return None;
    }
    let idx = pick(
        seed,
        &[&profile.id, "span", doc, &n.to_string()],
        words.len(),
    );
    words.get(idx).map(|w| w.to_string())
}

/// Normalize extracted mentions into descriptors + categories.
pub fn run_normalize_datatypes(
    profile: &ModelProfile,
    seed: u64,
    input: &str,
) -> Vec<NormalizeRow> {
    let doc = doc_key(input);
    let norm = normalizer();
    let mut rows = Vec::new();
    for (n, text) in parse_numbered(input) {
        let (descriptor, category) = if let Some(hit) = norm.datatype(&text) {
            (hit.descriptor.to_string(), hit.category)
        } else if let Some(z) = lookup_zero_shot(&text) {
            // The model's world knowledge exceeds the glossary: it can
            // still categorize and emits the term as an open descriptor.
            (z.term.to_string(), z.category)
        } else {
            // Fully unknown span: generate an open descriptor and guess a
            // plausible (prior-weighted) category.
            let guess = weighted_pick(
                seed,
                &[&profile.id, "guess-cat", &doc, &text],
                &DataTypeCategory::ALL,
                category_prior,
            );
            (text.to_lowercase(), guess)
        };
        let category = if decide(
            seed,
            &[&profile.id, "confuse", &doc, &n.to_string(), &text],
            profile.type_confusion,
        ) {
            confuse_category(seed, profile, &doc, &text, category)
        } else {
            category
        };
        rows.push((n, descriptor, category.name().to_string()));
    }
    rows
}

/// Approximate prevalence prior for each data-type category (fraction of
/// policies mentioning it, per the paper's Table 5) — the simulated model's
/// prior when guessing a category for an unknown term or when it confuses
/// categories. Real models err toward *plausible* categories, not uniformly.
pub fn category_prior(cat: DataTypeCategory) -> f64 {
    use DataTypeCategory::*;
    match cat {
        ContactInfo => 0.864,
        PersonalIdentifier => 0.895,
        ProfessionalInfo => 0.590,
        DemographicInfo => 0.499,
        EducationalInfo => 0.279,
        VehicleInfo => 0.050,
        DeviceInfo => 0.744,
        OnlineIdentifier => 0.809,
        AccountInfo => 0.500,
        NetworkConnectivity => 0.295,
        SocialMediaData => 0.233,
        ExternalData => 0.124,
        MedicalInfo => 0.283,
        BiometricData => 0.164,
        PhysicalCharacteristic => 0.112,
        FitnessHealth => 0.035,
        FinancialInfo => 0.539,
        LegalInfo => 0.287,
        FinancialCapability => 0.215,
        InsuranceInfo => 0.148,
        PreciseLocation => 0.509,
        ApproximateLocation => 0.333,
        TravelData => 0.066,
        PhysicalInteraction => 0.028,
        InternetUsage => 0.728,
        TrackingData => 0.467,
        ProductServiceUsage => 0.508,
        TransactionInfo => 0.439,
        Preferences => 0.491,
        ContentGeneration => 0.328,
        CommunicationData => 0.338,
        FeedbackData => 0.253,
        ContentConsumption => 0.267,
        DiagnosticData => 0.143,
    }
}

/// Prevalence prior for purpose categories (Table 2b coverage).
pub fn purpose_prior(cat: aipan_taxonomy::PurposeCategory) -> f64 {
    use aipan_taxonomy::PurposeCategory::*;
    match cat {
        BasicFunctioning => 0.951,
        UserExperience => 0.865,
        AnalyticsResearch => 0.813,
        LegalCompliance => 0.732,
        Security => 0.725,
        AdvertisingSales => 0.780,
        DataSharing => 0.261,
    }
}

/// Prior-weighted pick among candidates, keyed deterministically.
fn weighted_pick<T: Copy>(
    seed: u64,
    parts: &[&str],
    candidates: &[T],
    weight: impl Fn(T) -> f64,
) -> T {
    debug_assert!(!candidates.is_empty());
    let total: f64 = candidates.iter().map(|&c| weight(c)).sum();
    let mut target = crate::profile::unit(seed, parts) * total;
    for &c in candidates {
        target -= weight(c);
        if target <= 0.0 {
            return c;
        }
    }
    candidates[candidates.len() - 1]
}

/// Folded-term index over [`ZERO_SHOT_DATA_TYPES`], built once. First
/// occurrence wins on duplicate terms, matching the linear scan this
/// replaces.
fn zero_shot_index() -> &'static HashMap<&'static str, &'static ZeroShotDataType> {
    static IDX: OnceLock<HashMap<&'static str, &'static ZeroShotDataType>> = OnceLock::new();
    IDX.get_or_init(|| {
        let mut idx = HashMap::new();
        for z in ZERO_SHOT_DATA_TYPES {
            idx.entry(z.term).or_insert(z);
        }
        idx
    })
}

fn lookup_zero_shot(text: &str) -> Option<&'static ZeroShotDataType> {
    let folded = aipan_taxonomy::normalize::fold(text);
    zero_shot_index().get(folded.as_str()).copied()
}

fn confuse_category(
    seed: u64,
    profile: &ModelProfile,
    doc: &str,
    text: &str,
    correct: DataTypeCategory,
) -> DataTypeCategory {
    // Models confuse a category with a *plausible sibling* (same
    // meta-category, prior-weighted), not with an arbitrary one.
    let siblings: Vec<DataTypeCategory> = correct
        .meta()
        .categories()
        .iter()
        .copied()
        .filter(|&c| c != correct)
        .collect();
    weighted_pick(
        seed,
        &[&profile.id, "confuse-pick", doc, text],
        &siblings,
        category_prior,
    )
}

// ---------------------------------------------------------------------------
// Purposes
// ---------------------------------------------------------------------------

/// Extract and normalize data-collection purposes.
pub fn run_annotate_purposes(profile: &ModelProfile, seed: u64, input: &str) -> Vec<PurposeRow> {
    let doc = doc_key(input);
    let mut rows = Vec::new();
    for (n, text) in parse_numbered(input) {
        // Suppress purpose hits strictly inside a longer data-type phrase
        // (e.g. "access control" inside "media access control address").
        let scan = scan_line_dual(&text);
        let dt_spans: Vec<(usize, usize)> = scan.datatypes.into_iter().map(|h| h.span).collect();
        let hits = scan
            .purposes
            .into_iter()
            .filter(|h| !dt_spans.iter().any(|s| h.contained_in(s)));
        for (idx, hit) in hits.enumerate() {
            let item = format!("{n}:{idx}:{}", hit.text);
            if hit.negated {
                if !decide(
                    seed,
                    &[&profile.id, "pneg", &doc, &item],
                    profile.negation_error,
                ) {
                    continue;
                }
            } else if !decide(
                seed,
                &[&profile.id, "precall", &doc, &item],
                profile.extraction_recall,
            ) {
                continue;
            }
            let MatchTarget::Purpose {
                descriptor,
                category,
                ..
            } = hit.target
            else {
                continue;
            };
            let category = if decide(
                seed,
                &[&profile.id, "pconfuse", &doc, &item],
                profile.purpose_confusion,
            ) {
                let others: Vec<aipan_taxonomy::PurposeCategory> =
                    aipan_taxonomy::PurposeCategory::ALL
                        .iter()
                        .copied()
                        .filter(|&c| c != category)
                        .collect();
                weighted_pick(
                    seed,
                    &[&profile.id, "pconfuse-pick", &doc, &item],
                    &others,
                    purpose_prior,
                )
            } else {
                category
            };
            rows.push((
                n,
                hit.text,
                descriptor.to_string(),
                category.name().to_string(),
            ));
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Handling (retention + protection)
// ---------------------------------------------------------------------------

/// Classify one line's retention practice, if any.
pub fn classify_retention(text: &str) -> Option<(RetentionLabel, Option<String>)> {
    let t = text.to_lowercase();
    if !(t.contains("retain") || t.contains("retention") || t.contains("we keep")) {
        return None;
    }
    if t.contains("indefinitely") {
        return Some((RetentionLabel::Indefinitely, None));
    }
    if let Some(period) = parse_period(&t) {
        return Some((RetentionLabel::Stated, Some(period)));
    }
    if t.contains("as long as necessary") || t.contains("no longer than necessary") {
        return Some((RetentionLabel::Limited, None));
    }
    None
}

/// Find a stated period like "two (2) years", "90 days", "six months".
/// Returns a normalized "N unit" string.
pub fn parse_period(lower: &str) -> Option<String> {
    let tokens: Vec<&str> = lower
        .split(|c: char| !(c.is_alphanumeric() || c == '-'))
        .filter(|s| !s.is_empty())
        .collect();
    for window in tokens.windows(2) {
        let [a, b] = window else { continue };
        let unit = match *b {
            "day" | "days" => "days",
            "month" | "months" => "months",
            "year" | "years" => "years",
            _ => continue,
        };
        if let Ok(n) = a.parse::<u32>() {
            return Some(format!("{n} {unit}"));
        }
    }
    None
}

/// Classify one line's protection practices (possibly several).
pub fn classify_protection(text: &str) -> Vec<ProtectionLabel> {
    let t = text.to_lowercase();
    let has = |needle: &str| t.contains(needle);
    let mut out = Vec::new();
    if has("need to know") || has("need-to-know") {
        out.push(ProtectionLabel::AccessLimit);
    }
    if has("in transit") || has("ssl") || has("tls") || has("secure socket") {
        out.push(ProtectionLabel::SecureTransfer);
    }
    if has("encrypted database") || has("at rest") || has("encrypted format") {
        out.push(ProtectionLabel::SecureStorage);
    }
    if has("privacy program") || has("data protection officer") {
        out.push(ProtectionLabel::PrivacyProgram);
    }
    if has("audited") || has("regularly reviewed") {
        out.push(ProtectionLabel::PrivacyReview);
    }
    if has("two-factor") || has("2fa") || has("multi-factor") || has("encrypted credentials") {
        out.push(ProtectionLabel::SecureAuthentication);
    }
    if out.is_empty() && (has("safeguard") || has("commercially reasonable")) {
        out.push(ProtectionLabel::Generic);
    }
    out
}

/// Annotate data retention/protection practices.
pub fn run_annotate_handling(profile: &ModelProfile, seed: u64, input: &str) -> Vec<HandlingRow> {
    let doc = doc_key(input);
    let mut rows = Vec::new();
    for (n, text) in parse_numbered(input) {
        if let Some((label, period)) = classify_retention(&text) {
            let label = maybe_confuse_retention(profile, seed, &doc, n, label);
            let period = if label == RetentionLabel::Stated {
                period
            } else {
                None
            };
            rows.push((n, text.clone(), label.name().to_string(), period));
        }
        for (idx, label) in classify_protection(&text).into_iter().enumerate() {
            let label = maybe_confuse_protection(profile, seed, &doc, n, idx, label);
            rows.push((n, text.clone(), label.name().to_string(), None));
        }
    }
    rows
}

fn maybe_confuse_retention(
    profile: &ModelProfile,
    seed: u64,
    doc: &str,
    n: usize,
    label: RetentionLabel,
) -> RetentionLabel {
    if decide(
        seed,
        &[&profile.id, "hconfuse-r", doc, &n.to_string()],
        profile.handling_confusion,
    ) {
        let mut i = pick(seed, &[&profile.id, "hpick-r", doc, &n.to_string()], 3);
        if RetentionLabel::ALL.get(i) == Some(&label) {
            i = (i + 1) % 3;
        }
        RetentionLabel::ALL.get(i).copied().unwrap_or(label)
    } else {
        label
    }
}

fn maybe_confuse_protection(
    profile: &ModelProfile,
    seed: u64,
    doc: &str,
    n: usize,
    idx: usize,
    label: ProtectionLabel,
) -> ProtectionLabel {
    if decide(
        seed,
        &[&profile.id, "hconfuse-p", doc, &format!("{n}:{idx}")],
        profile.handling_confusion,
    ) {
        let mut i = pick(
            seed,
            &[&profile.id, "hpick-p", doc, &format!("{n}:{idx}")],
            ProtectionLabel::ALL.len(),
        );
        if ProtectionLabel::ALL.get(i) == Some(&label) {
            i = (i + 1) % ProtectionLabel::ALL.len().max(1);
        }
        ProtectionLabel::ALL.get(i).copied().unwrap_or(label)
    } else {
        label
    }
}

// ---------------------------------------------------------------------------
// Rights (choices + access)
// ---------------------------------------------------------------------------

/// Classify one line's user-choice practices.
pub fn classify_choices(text: &str) -> Vec<ChoiceLabel> {
    let t = text.to_lowercase();
    let has = |needle: &str| t.contains(needle);
    let mut out = Vec::new();
    let opt_out = has("opt out") || has("opt-out");
    if opt_out && (has("contact us") || has("privacy@") || has("email us")) {
        out.push(ChoiceLabel::OptOutViaContact);
    } else if opt_out && (has("unsubscribe") || has("click") || has("link")) {
        out.push(ChoiceLabel::OptOutViaLink);
    }
    if has("privacy settings") || has("through your account settings") {
        out.push(ChoiceLabel::PrivacySettings);
    }
    if has("obtain your consent") || has("prior consent") || has("with your consent before") {
        out.push(ChoiceLabel::OptIn);
    }
    if has("discontinue use") || (has("do not agree") && has("use")) || has("not use our services")
    {
        out.push(ChoiceLabel::DoNotUse);
    }
    out
}

/// Classify one line's user-access practices.
pub fn classify_access(text: &str) -> Vec<AccessLabel> {
    let t = text.to_lowercase();
    let has = |needle: &str| t.contains(needle);
    let mut out = Vec::new();
    if has("update or correct")
        || has("modify, correct")
        || has("correct your personal")
        || has("update certain of your personal")
        || has("update your personal information through")
    {
        out.push(AccessLabel::Edit);
    }
    if has("delete your account and all") || (has("delete") && has("all associated")) {
        out.push(AccessLabel::FullDelete);
    }
    if has("access to review") || has("access to view") || has("request access to") {
        out.push(AccessLabel::View);
    }
    if has("copy of your personal information") || has("machine-readable") || has("portable") {
        out.push(AccessLabel::Export);
    }
    if has("deletion of certain") || (has("delete") && has("retain some")) {
        out.push(AccessLabel::PartialDelete);
    }
    if has("deactivate") {
        out.push(AccessLabel::Deactivate);
    }
    out
}

/// Annotate user choices/access practices.
pub fn run_annotate_rights(profile: &ModelProfile, seed: u64, input: &str) -> Vec<RightsRow> {
    let doc = doc_key(input);
    let mut rows = Vec::new();
    for (n, text) in parse_numbered(input) {
        let mut produced = false;
        for (idx, label) in classify_choices(&text).into_iter().enumerate() {
            produced = true;
            let label = maybe_confuse_choice(profile, seed, &doc, n, idx, label);
            rows.push((n, text.clone(), label.name().to_string()));
        }
        for (idx, label) in classify_access(&text).into_iter().enumerate() {
            produced = true;
            let label = maybe_confuse_access(profile, seed, &doc, n, idx, label);
            rows.push((n, text.clone(), label.name().to_string()));
        }
        // Spurious "Do not use": boilerplate containing negations is the
        // category the paper found hardest to annotate accurately.
        let lower = text.to_lowercase();
        if !produced
            && (lower.contains("not ") || lower.contains("only "))
            && decide(
                seed,
                &[&profile.id, "spur-dnu", &doc, &n.to_string()],
                profile.spurious_do_not_use,
            )
        {
            rows.push((n, text.clone(), ChoiceLabel::DoNotUse.name().to_string()));
        }
    }
    rows
}

fn maybe_confuse_choice(
    profile: &ModelProfile,
    seed: u64,
    doc: &str,
    n: usize,
    idx: usize,
    label: ChoiceLabel,
) -> ChoiceLabel {
    if decide(
        seed,
        &[&profile.id, "rconfuse-c", doc, &format!("{n}:{idx}")],
        profile.rights_confusion,
    ) {
        let mut i = pick(
            seed,
            &[&profile.id, "rpick-c", doc, &format!("{n}:{idx}")],
            ChoiceLabel::ALL.len(),
        );
        if ChoiceLabel::ALL.get(i) == Some(&label) {
            i = (i + 1) % ChoiceLabel::ALL.len().max(1);
        }
        ChoiceLabel::ALL.get(i).copied().unwrap_or(label)
    } else {
        label
    }
}

fn maybe_confuse_access(
    profile: &ModelProfile,
    seed: u64,
    doc: &str,
    n: usize,
    idx: usize,
    label: AccessLabel,
) -> AccessLabel {
    if decide(
        seed,
        &[&profile.id, "rconfuse-a", doc, &format!("{n}:{idx}")],
        profile.rights_confusion,
    ) {
        let mut i = pick(
            seed,
            &[&profile.id, "rpick-a", doc, &format!("{n}:{idx}")],
            AccessLabel::ALL.len(),
        );
        if AccessLabel::ALL.get(i) == Some(&label) {
            i = (i + 1) % AccessLabel::ALL.len().max(1);
        }
        AccessLabel::ALL.get(i).copied().unwrap_or(label)
    } else {
        label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::number_lines;

    fn oracle() -> ModelProfile {
        ModelProfile::oracle()
    }

    #[test]
    fn parse_numbered_roundtrip() {
        let doc = number_lines(["alpha", "beta"]);
        assert_eq!(
            parse_numbered(&doc),
            vec![(1, "alpha".to_string()), (2, "beta".to_string())]
        );
        assert!(parse_numbered("no brackets here").is_empty());
        assert_eq!(parse_numbered("[7] seven\njunk\n[9] nine").len(), 2);
    }

    #[test]
    fn heading_classification() {
        assert_eq!(
            classify_heading("Information We Collect"),
            vec![Aspect::Types]
        );
        assert_eq!(
            classify_heading("How We Collect Information"),
            vec![Aspect::Methods]
        );
        assert_eq!(
            classify_heading("How We Use Your Information"),
            vec![Aspect::Purposes]
        );
        assert_eq!(
            classify_heading("Data Retention and Security"),
            vec![Aspect::Handling]
        );
        assert_eq!(
            classify_heading("How We Share Your Information"),
            vec![Aspect::Sharing]
        );
        assert_eq!(
            classify_heading("Your Rights and Choices"),
            vec![Aspect::Rights]
        );
        assert_eq!(
            classify_heading("Specific Audiences"),
            vec![Aspect::Audiences]
        );
        assert_eq!(
            classify_heading("Changes to This Policy"),
            vec![Aspect::Changes]
        );
        assert_eq!(classify_heading("Contact Us"), vec![Aspect::Other]);
        assert_eq!(
            classify_heading("Additional Information"),
            vec![Aspect::Other]
        );
    }

    #[test]
    fn oracle_extraction_finds_planted_and_skips_negated() {
        let doc = number_lines([
            "We may collect your email address and browsing history.",
            "We do not collect biometric data.",
        ]);
        let rows = run_extract_datatypes(&oracle(), 1, &doc);
        let texts: Vec<&str> = rows.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, vec!["email address", "browsing history"]);
    }

    #[test]
    fn llama_profile_extracts_negated_more_often() {
        let mut negated_hits = 0;
        let llama = ModelProfile::llama31();
        for i in 0..200 {
            let doc = format!("[1] policy {i}\n[2] We do not collect biometric data.\n");
            let rows = run_extract_datatypes(&llama, 5, &doc);
            if rows.iter().any(|(_, t)| t == "biometric data") {
                negated_hits += 1;
            }
        }
        let rate = negated_hits as f64 / 200.0;
        assert!((rate - llama.negation_error).abs() < 0.12, "rate {rate}");
    }

    #[test]
    fn normalization_maps_synonyms_and_zero_shot() {
        let input = number_lines(["mailing address", "podcast listening habits", "blorfable"]);
        let rows = run_normalize_datatypes(&oracle(), 2, &input);
        assert_eq!(rows[0].1, "postal address");
        assert_eq!(rows[0].2, "Contact info");
        assert_eq!(rows[1].1, "podcast listening habits");
        assert_eq!(rows[1].2, "Content consumption");
        // Unknown term: open descriptor, some category guessed.
        assert_eq!(rows[2].1, "blorfable");
        assert!(aipan_taxonomy::DataTypeCategory::from_name(&rows[2].2).is_some());
    }

    #[test]
    fn purposes_annotated_with_categories() {
        let doc = number_lines(["We use your information to prevent fraud and for analytics."]);
        let rows = run_annotate_purposes(&oracle(), 3, &doc);
        assert_eq!(rows.len(), 2);
        assert!(rows
            .iter()
            .any(|r| r.2 == "fraud prevention" && r.3 == "Security"));
        assert!(rows
            .iter()
            .any(|r| r.2 == "analytics" && r.3 == "Analytics & research"));
    }

    #[test]
    fn retention_classification() {
        assert_eq!(
            classify_retention(
                "We retain your personal information only for as long as necessary to fulfill."
            ),
            Some((RetentionLabel::Limited, None))
        );
        assert_eq!(
            classify_retention("We retain your personal information for two (2) years after."),
            Some((RetentionLabel::Stated, Some("2 years".to_string())))
        );
        assert_eq!(
            classify_retention("Certain records may be retained indefinitely where permitted."),
            Some((RetentionLabel::Indefinitely, None))
        );
        assert_eq!(classify_retention("We like dogs."), None);
    }

    #[test]
    fn period_parsing_forms() {
        assert_eq!(
            parse_period("for two (2) years after"),
            Some("2 years".to_string())
        );
        assert_eq!(parse_period("for 90 days"), Some("90 days".to_string()));
        assert_eq!(parse_period("six (6) months"), Some("6 months".to_string()));
        assert_eq!(
            parse_period("fifty (50) years"),
            Some("50 years".to_string())
        );
        assert_eq!(parse_period("for a while"), None);
    }

    #[test]
    fn protection_classification() {
        use ProtectionLabel::*;
        let cases: [(&str, ProtectionLabel); 7] = [
            (
                "We maintain commercially reasonable safeguards designed to protect.",
                Generic,
            ),
            (
                "Access restricted to personnel with a need to know.",
                AccessLimit,
            ),
            (
                "Protected in transit using Secure Socket Layer (SSL) encryption.",
                SecureTransfer,
            ),
            (
                "Stored in encrypted databases in controlled facilities.",
                SecureStorage,
            ),
            (
                "We maintain a comprehensive privacy program.",
                PrivacyProgram,
            ),
            (
                "Practices are regularly reviewed and audited.",
                PrivacyReview,
            ),
            ("We offer two-factor authentication.", SecureAuthentication),
        ];
        for (text, expected) in cases {
            let got = classify_protection(text);
            assert!(
                got.contains(&expected),
                "{text:?} → {got:?}, want {expected:?}"
            );
        }
        assert!(classify_protection("We like dogs.").is_empty());
    }

    #[test]
    fn choices_and_access_classification() {
        assert_eq!(
            classify_choices("To opt out of marketing, please contact us at privacy@x.com."),
            vec![ChoiceLabel::OptOutViaContact]
        );
        assert_eq!(
            classify_choices("You may opt out by clicking the unsubscribe link."),
            vec![ChoiceLabel::OptOutViaLink]
        );
        assert_eq!(
            classify_choices("Manage your choices through the privacy settings page."),
            vec![ChoiceLabel::PrivacySettings]
        );
        assert_eq!(
            classify_choices("We will obtain your consent before we collect."),
            vec![ChoiceLabel::OptIn]
        );
        assert_eq!(
            classify_choices("Your sole remedy is to discontinue use of the feature."),
            vec![ChoiceLabel::DoNotUse]
        );
        assert_eq!(
            classify_access("You may update or correct your personal information."),
            vec![AccessLabel::Edit]
        );
        assert_eq!(
            classify_access("Request that we delete your account and all associated data."),
            vec![AccessLabel::FullDelete]
        );
        assert_eq!(
            classify_access("You may request access to review the information we hold."),
            vec![AccessLabel::View]
        );
        assert_eq!(
            classify_access("Request a copy of your personal information in a portable format."),
            vec![AccessLabel::Export]
        );
        assert_eq!(
            classify_access(
                "Request deletion of certain personal information; we may retain some."
            ),
            vec![AccessLabel::PartialDelete]
        );
        assert_eq!(
            classify_access("You may deactivate your account at any time."),
            vec![AccessLabel::Deactivate]
        );
    }

    #[test]
    fn oracle_rights_has_no_spurious_do_not_use() {
        let doc = number_lines([
            "We will not discriminate against you for exercising any right.",
            "Our services are not directed to minors.",
        ]);
        let rows = run_annotate_rights(&oracle(), 7, &doc);
        assert!(
            rows.is_empty(),
            "oracle must not produce spurious rows: {rows:?}"
        );
    }

    #[test]
    fn gpt4_produces_spurious_do_not_use_at_low_rate() {
        let gpt4 = ModelProfile::gpt4_turbo();
        let mut spurious = 0;
        for i in 0..300 {
            let doc = format!(
                "[1] policy variant {i}\n[2] We will not discriminate against you for exercising any right.\n"
            );
            let rows = run_annotate_rights(&gpt4, 11, &doc);
            if rows.iter().any(|r| r.2 == "Do not use") {
                spurious += 1;
            }
        }
        let rate = spurious as f64 / 300.0;
        assert!(
            (rate - gpt4.spurious_do_not_use).abs() < 0.06,
            "spurious do-not-use rate {rate}"
        );
    }

    #[test]
    fn segmentation_classifies_core_lines() {
        let lines = [
            (
                "We retain your data for as long as necessary.",
                Aspect::Handling,
            ),
            ("You may opt out by contacting us.", Aspect::Rights),
            ("We may collect your email address.", Aspect::Types),
            ("We use data for fraud prevention.", Aspect::Purposes),
            ("We may share records with third parties.", Aspect::Sharing),
            (
                "California residents have additional rights.",
                Aspect::Audiences,
            ),
            (
                "We may update this policy from time to time.",
                Aspect::Changes,
            ),
            ("Thank you for visiting.", Aspect::Other),
        ];
        for (text, expected) in lines {
            let got = classify_line(text);
            assert!(
                got.contains(&expected),
                "{text:?} → {got:?}, want {expected:?}"
            );
        }
    }

    #[test]
    fn deterministic_outputs() {
        let doc = number_lines(["We collect your name and ip address for analytics."]);
        let gpt4 = ModelProfile::gpt4_turbo();
        assert_eq!(
            run_extract_datatypes(&gpt4, 13, &doc),
            run_extract_datatypes(&gpt4, 13, &doc)
        );
        assert_eq!(
            run_annotate_purposes(&gpt4, 13, &doc),
            run_annotate_purposes(&gpt4, 13, &doc)
        );
    }
}
