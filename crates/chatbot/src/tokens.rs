//! Token accounting.
//!
//! The paper notes that sectioning the policy "helps … minimize token usage
//! for subsequent annotation tasks"; the ablation benches quantify that
//! claim, so usage must be tracked per task. Tokens are estimated with the
//! standard ~4-characters-per-token heuristic for English text.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Estimate the token count of `text` (≈ 4 characters per token, with a
/// floor of the whitespace word count — legal text is word-dense).
pub fn estimate_tokens(text: &str) -> u64 {
    let chars = text.chars().count() as u64;
    let words = text.split_whitespace().count() as u64;
    (chars / 4).max(words)
}

/// Cumulative token usage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenUsage {
    /// Tokens in rendered prompts.
    pub prompt_tokens: u64,
    /// Tokens in task inputs (the numbered documents).
    pub input_tokens: u64,
    /// Tokens in model outputs.
    pub output_tokens: u64,
    /// Number of completions issued.
    pub calls: u64,
}

impl TokenUsage {
    /// Total tokens across prompt, input, and output.
    pub fn total(&self) -> u64 {
        self.prompt_tokens + self.input_tokens + self.output_tokens
    }

    /// Accumulate another usage record.
    pub fn add(&mut self, other: TokenUsage) {
        self.prompt_tokens += other.prompt_tokens;
        self.input_tokens += other.input_tokens;
        self.output_tokens += other.output_tokens;
        self.calls += other.calls;
    }
}

/// Thread-safe per-task usage ledger, shared across clones.
#[derive(Debug, Clone, Default)]
pub struct UsageLedger {
    inner: Arc<Mutex<HashMap<String, TokenUsage>>>,
}

impl UsageLedger {
    /// New empty ledger.
    pub fn new() -> UsageLedger {
        UsageLedger::default()
    }

    /// Record one completion for `task`.
    pub fn record(&self, task: &str, prompt: &str, input: &str, output: &str) {
        let usage = TokenUsage {
            prompt_tokens: estimate_tokens(prompt),
            input_tokens: estimate_tokens(input),
            output_tokens: estimate_tokens(output),
            calls: 1,
        };
        self.inner
            .lock()
            .entry(task.to_string())
            .or_default()
            .add(usage);
    }

    /// Usage for one task.
    pub fn task_usage(&self, task: &str) -> TokenUsage {
        self.inner.lock().get(task).copied().unwrap_or_default()
    }

    /// Total usage across tasks.
    pub fn total(&self) -> TokenUsage {
        let mut total = TokenUsage::default();
        for usage in self.inner.lock().values() {
            total.add(*usage);
        }
        total
    }

    /// Per-task usage snapshot, sorted by task name.
    pub fn breakdown(&self) -> Vec<(String, TokenUsage)> {
        let mut v: Vec<(String, TokenUsage)> = self
            .inner
            .lock()
            .iter()
            .map(|(k, u)| (k.clone(), *u))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_scale_with_length() {
        assert_eq!(estimate_tokens(""), 0);
        let short = estimate_tokens("hello world");
        let long = estimate_tokens(&"hello world ".repeat(100));
        assert!(long > short * 50);
    }

    #[test]
    fn word_floor_applies() {
        // Many tiny words: word count exceeds chars/4.
        let text = "a b c d e f g h";
        assert_eq!(estimate_tokens(text), 8);
    }

    #[test]
    fn ledger_accumulates_per_task() {
        let ledger = UsageLedger::new();
        ledger.record("extract", "prompt text here", "input body", "output");
        ledger.record("extract", "prompt text here", "more input", "out");
        ledger.record("segment", "p", "i", "o");
        assert_eq!(ledger.task_usage("extract").calls, 2);
        assert_eq!(ledger.task_usage("segment").calls, 1);
        assert_eq!(ledger.total().calls, 3);
        assert!(ledger.total().total() > 0);
        assert_eq!(ledger.breakdown().len(), 2);
    }

    #[test]
    fn ledger_shared_across_clones() {
        let ledger = UsageLedger::new();
        let clone = ledger.clone();
        clone.record("t", "p", "i", "o");
        assert_eq!(ledger.task_usage("t").calls, 1);
    }

    #[test]
    fn usage_total_and_add() {
        let mut a = TokenUsage {
            prompt_tokens: 1,
            input_tokens: 2,
            output_tokens: 3,
            calls: 1,
        };
        a.add(TokenUsage {
            prompt_tokens: 10,
            input_tokens: 20,
            output_tokens: 30,
            calls: 2,
        });
        assert_eq!(a.total(), 66);
        assert_eq!(a.calls, 3);
    }
}
