//! Token accounting.
//!
//! The paper notes that sectioning the policy "helps … minimize token usage
//! for subsequent annotation tasks"; the ablation benches quantify that
//! claim, so usage must be tracked per task. Tokens are estimated with the
//! standard ~4-characters-per-token heuristic for English text.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Estimate the token count of `text` (≈ 4 characters per token, with a
/// floor of the whitespace word count — legal text is word-dense).
pub fn estimate_tokens(text: &str) -> u64 {
    let chars = text.chars().count() as u64;
    let words = text.split_whitespace().count() as u64;
    (chars / 4).max(words)
}

/// Cumulative token usage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenUsage {
    /// Tokens in rendered prompts.
    pub prompt_tokens: u64,
    /// Tokens in task inputs (the numbered documents).
    pub input_tokens: u64,
    /// Tokens in model outputs.
    pub output_tokens: u64,
    /// Number of completions issued.
    pub calls: u64,
}

impl TokenUsage {
    /// Total tokens across prompt, input, and output.
    pub fn total(&self) -> u64 {
        self.prompt_tokens + self.input_tokens + self.output_tokens
    }

    /// Accumulate another usage record.
    pub fn add(&mut self, other: TokenUsage) {
        self.prompt_tokens += other.prompt_tokens;
        self.input_tokens += other.input_tokens;
        self.output_tokens += other.output_tokens;
        self.calls += other.calls;
    }
}

/// Lock-free per-task counter slot: each field accumulates with relaxed
/// atomic adds, which are commutative, so totals are deterministic for any
/// worker interleaving.
#[derive(Debug, Default)]
struct TaskCounters {
    prompt_tokens: AtomicU64,
    input_tokens: AtomicU64,
    output_tokens: AtomicU64,
    calls: AtomicU64,
}

impl TaskCounters {
    fn add(&self, usage: TokenUsage) {
        self.prompt_tokens
            .fetch_add(usage.prompt_tokens, Ordering::Relaxed);
        self.input_tokens
            .fetch_add(usage.input_tokens, Ordering::Relaxed);
        self.output_tokens
            .fetch_add(usage.output_tokens, Ordering::Relaxed);
        self.calls.fetch_add(usage.calls, Ordering::Relaxed);
    }

    fn snapshot(&self) -> TokenUsage {
        TokenUsage {
            prompt_tokens: self.prompt_tokens.load(Ordering::Relaxed),
            input_tokens: self.input_tokens.load(Ordering::Relaxed),
            output_tokens: self.output_tokens.load(Ordering::Relaxed),
            calls: self.calls.load(Ordering::Relaxed),
        }
    }
}

/// Thread-safe per-task usage ledger, shared across clones.
///
/// The hot path — [`UsageLedger::record`], called once per chatbot
/// completion by every annotate worker — takes only a read lock on the
/// task index and then accumulates into per-task atomic counters, so
/// concurrent workers never serialize on a shared mutex. The write lock is
/// taken once per *task name* (a handful per run) to install the slot.
/// Snapshots read with relaxed ordering: they are exact once recording has
/// quiesced (end of run), which is when the pipeline reads them.
#[derive(Debug, Clone, Default)]
pub struct UsageLedger {
    tasks: Arc<RwLock<BTreeMap<String, Arc<TaskCounters>>>>,
}

impl UsageLedger {
    /// New empty ledger.
    pub fn new() -> UsageLedger {
        UsageLedger::default()
    }

    /// Record one completion for `task`.
    pub fn record(&self, task: &str, prompt: &str, input: &str, output: &str) {
        let usage = TokenUsage {
            prompt_tokens: estimate_tokens(prompt),
            input_tokens: estimate_tokens(input),
            output_tokens: estimate_tokens(output),
            calls: 1,
        };
        if let Some(counters) = self.tasks.read().get(task).cloned() {
            counters.add(usage);
            return;
        }
        // Slow path, once per task name: allocate the key before taking
        // the write lock so the held region is just the map insert.
        let key = task.to_string();
        let mut tasks = self.tasks.write();
        let counters = Arc::clone(tasks.entry(key).or_default());
        drop(tasks);
        counters.add(usage);
    }

    /// Usage for one task.
    pub fn task_usage(&self, task: &str) -> TokenUsage {
        self.tasks
            .read()
            .get(task)
            .map(|c| c.snapshot())
            .unwrap_or_default()
    }

    /// Total usage across tasks.
    pub fn total(&self) -> TokenUsage {
        let mut total = TokenUsage::default();
        for counters in self.tasks.read().values() {
            total.add(counters.snapshot());
        }
        total
    }

    /// Per-task usage snapshot, sorted by task name (the index is a
    /// `BTreeMap`, so iteration order is already deterministic).
    pub fn breakdown(&self) -> Vec<(String, TokenUsage)> {
        let tasks = self.tasks.read();
        let mut out = Vec::with_capacity(tasks.len());
        for (task, counters) in tasks.iter() {
            out.push((task.clone(), counters.snapshot()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_scale_with_length() {
        assert_eq!(estimate_tokens(""), 0);
        let short = estimate_tokens("hello world");
        let long = estimate_tokens(&"hello world ".repeat(100));
        assert!(long > short * 50);
    }

    #[test]
    fn word_floor_applies() {
        // Many tiny words: word count exceeds chars/4.
        let text = "a b c d e f g h";
        assert_eq!(estimate_tokens(text), 8);
    }

    #[test]
    fn ledger_accumulates_per_task() {
        let ledger = UsageLedger::new();
        ledger.record("extract", "prompt text here", "input body", "output");
        ledger.record("extract", "prompt text here", "more input", "out");
        ledger.record("segment", "p", "i", "o");
        assert_eq!(ledger.task_usage("extract").calls, 2);
        assert_eq!(ledger.task_usage("segment").calls, 1);
        assert_eq!(ledger.total().calls, 3);
        assert!(ledger.total().total() > 0);
        assert_eq!(ledger.breakdown().len(), 2);
    }

    #[test]
    fn ledger_shared_across_clones() {
        let ledger = UsageLedger::new();
        let clone = ledger.clone();
        clone.record("t", "p", "i", "o");
        assert_eq!(ledger.task_usage("t").calls, 1);
    }

    #[test]
    fn concurrent_records_sum_exactly() {
        // Worker-count invariance of the sharded ledger: interleaved
        // records from many threads must sum to exactly the serial total
        // (atomic adds are commutative).
        let ledger = UsageLedger::new();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let ledger = ledger.clone();
                scope.spawn(move || {
                    for i in 0..50 {
                        let task = if (t + i) % 2 == 0 {
                            "extract"
                        } else {
                            "segment"
                        };
                        ledger.record(task, "prompt words here", "input body", "out");
                    }
                });
            }
        });
        assert_eq!(ledger.total().calls, 400);
        assert_eq!(
            ledger.task_usage("extract").calls + ledger.task_usage("segment").calls,
            400
        );
        let breakdown = ledger.breakdown();
        assert_eq!(breakdown.len(), 2);
        assert!(breakdown[0].0 < breakdown[1].0, "breakdown sorted");
    }

    #[test]
    fn usage_total_and_add() {
        let mut a = TokenUsage {
            prompt_tokens: 1,
            input_tokens: 2,
            output_tokens: 3,
            calls: 1,
        };
        a.add(TokenUsage {
            prompt_tokens: 10,
            input_tokens: 20,
            output_tokens: 30,
            calls: 2,
        });
        assert_eq!(a.total(), 66);
        assert_eq!(a.calls, 3);
    }
}
