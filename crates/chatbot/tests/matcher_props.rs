//! Property-based tests for the vocabulary matcher and task layer.

use aipan_chatbot::matcher::VocabMatcher;
use aipan_chatbot::tasks::{classify_heading, classify_line, parse_numbered};
use aipan_chatbot::{protocol, ModelProfile};
use proptest::prelude::*;

proptest! {
    #[test]
    fn scan_never_panics_and_spans_valid(line in ".{0,200}") {
        let m = VocabMatcher::for_datatypes();
        for hit in m.scan_line(&line) {
            prop_assert!(hit.span.0 <= hit.span.1);
            prop_assert!(hit.span.1 <= line.len());
            // The reported text is exactly the span slice.
            prop_assert_eq!(hit.text.as_str(), &line[hit.span.0..hit.span.1]);
        }
    }

    #[test]
    fn purpose_scan_never_panics_and_spans_valid(line in ".{0,200}") {
        let m = VocabMatcher::for_purposes();
        for hit in m.scan_line(&line) {
            prop_assert!(hit.span.0 <= hit.span.1);
            prop_assert!(hit.span.1 <= line.len());
            prop_assert_eq!(hit.text.as_str(), &line[hit.span.0..hit.span.1]);
        }
    }

    #[test]
    fn matches_never_overlap(words in proptest::collection::vec(
        "(email address|bank account info|account info|ip address|the|we|collect|your)",
        0..25
    )) {
        let line = words.join(" ");
        let m = VocabMatcher::for_datatypes();
        let hits = m.scan_line(&line);
        for pair in hits.windows(2) {
            prop_assert!(pair[0].span.1 <= pair[1].span.0, "overlap in {:?}", line);
        }
    }

    #[test]
    fn classifiers_never_panic(text in ".{0,200}") {
        let _ = classify_heading(&text);
        let aspects = classify_line(&text);
        prop_assert!(!aspects.is_empty(), "every line gets at least one label");
    }

    #[test]
    fn extraction_is_deterministic_under_profile(
        lines in proptest::collection::vec("[ -~&&[^\\[\\]]]{0,60}", 1..6),
        seed in 0u64..100,
    ) {
        let doc = protocol::number_lines(lines.iter().map(String::as_str));
        let profile = ModelProfile::gpt4_turbo();
        let a = aipan_chatbot::tasks::run_extract_datatypes(&profile, seed, &doc);
        let b = aipan_chatbot::tasks::run_extract_datatypes(&profile, seed, &doc);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn parse_numbered_tolerates_arbitrary_input(input in ".{0,300}") {
        let _ = parse_numbered(&input);
    }
}
