//! Per-aspect annotation with full-text fallback and hallucination
//! verification (§3.2.2).
//!
//! Each studied aspect is annotated from its own section text; if that
//! yields nothing, the task re-runs over the **entire** text (the fallback
//! the paper activates for 708 of 2545 policies). Every resulting
//! annotation then passes the programmatic check that its verbatim text is
//! actually present in the policy — fabricated (hallucinated) mentions are
//! dropped and counted.

use crate::segment::SegmentedPolicy;
use aipan_chatbot::prompt::{TaskKind, TaskPrompt};
use aipan_chatbot::{protocol, Chatbot};
use aipan_html::ExtractedDoc;
use aipan_taxonomy::records::{Annotation, AnnotationPayload, AspectKind};
use aipan_taxonomy::{
    AccessLabel, Aspect, ChoiceLabel, DataTypeCategory, ProtectionLabel, PurposeCategory,
    RetentionLabel,
};
use aipan_textindex::{fold_into, FoldArena, FoldedDoc};

/// Annotation options (used by the ablation benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnnotateOptions {
    /// Whether to fall back to the full text when a section yields nothing
    /// (§3.2.2; ablation `ablate_fallback` turns this off).
    pub fallback: bool,
    /// Whether to run the verbatim hallucination check (ablation
    /// `ablate_verification` turns this off).
    pub verify: bool,
    /// Bounded re-prompt budget: how many times a task is re-issued when
    /// the completion is not well-formed JSON (refusal, truncation,
    /// malformed prefix). `0` disables re-prompting.
    pub reprompt_retries: u32,
}

impl Default for AnnotateOptions {
    fn default() -> Self {
        AnnotateOptions {
            fallback: true,
            verify: true,
            reprompt_retries: 2,
        }
    }
}

/// The result of annotating one policy.
#[derive(Debug, Clone)]
pub struct AnnotationOutcome {
    /// Verified annotations (all aspects), deduplicated per §3.2's
    /// "unique annotations" rule.
    pub annotations: Vec<Annotation>,
    /// Aspects for which the full-text fallback was activated.
    pub fallbacks: Vec<AspectKind>,
    /// Hallucinated annotations removed by the verbatim check.
    pub hallucinations_removed: usize,
    /// Re-prompts issued because a completion was not well-formed JSON
    /// (each is one extra chatbot call within the bounded retry budget).
    pub reprompts: usize,
}

impl AnnotationOutcome {
    /// Annotations belonging to one aspect stream.
    pub fn for_aspect(&self, kind: AspectKind) -> impl Iterator<Item = &Annotation> {
        self.annotations
            .iter()
            .filter(move |a| a.aspect_kind() == kind)
    }

    /// Whether any annotation exists for `kind`.
    pub fn has_aspect(&self, kind: AspectKind) -> bool {
        self.for_aspect(kind).next().is_some()
    }
}

/// Annotate a segmented policy with default options.
pub fn annotate_policy(
    chatbot: &dyn Chatbot,
    doc: &ExtractedDoc,
    seg: &SegmentedPolicy,
) -> AnnotationOutcome {
    annotate_policy_with(chatbot, doc, seg, AnnotateOptions::default())
}

/// Reusable per-worker scratch for [`annotate_policy_in`]: the rendered
/// full-text prompt input and the [`FoldArena`] backing the policy's
/// [`FoldedDoc`]. One arena threaded through a worker's policies means the
/// two largest per-policy allocations happen once per worker, sized by the
/// largest policy, instead of once per policy.
#[derive(Debug, Default)]
pub struct AnnotateArena {
    full_text: String,
    fold: FoldArena,
}

impl AnnotateArena {
    /// An empty arena (first use allocates like [`annotate_policy_with`]).
    pub fn new() -> AnnotateArena {
        AnnotateArena::default()
    }
}

/// Annotate a segmented policy with explicit options.
pub fn annotate_policy_with(
    chatbot: &dyn Chatbot,
    doc: &ExtractedDoc,
    seg: &SegmentedPolicy,
    options: AnnotateOptions,
) -> AnnotationOutcome {
    annotate_policy_in(chatbot, doc, seg, options, &mut AnnotateArena::new())
}

/// [`annotate_policy_with`], with the scratch buffers drawn from (and
/// returned to) `arena`. The outcome is identical; only the allocation
/// pattern differs.
pub fn annotate_policy_in(
    chatbot: &dyn Chatbot,
    doc: &ExtractedDoc,
    seg: &SegmentedPolicy,
    options: AnnotateOptions,
    arena: &mut AnnotateArena,
) -> AnnotationOutcome {
    // Rough upper bound: a handful of annotations per document line.
    let mut annotations = Vec::with_capacity(doc.lines.len());
    let mut fallbacks = Vec::new();
    let mut reprompts = 0usize;

    protocol::number_lines_into(
        &mut arena.full_text,
        doc.lines.iter().map(|l| l.text.as_str()),
    );
    let full_text_input: &str = &arena.full_text;
    // Fold the policy exactly once; every verbatim-presence check below is
    // a batched automaton scan over this buffer (no per-row fold).
    let folded_policy =
        FoldedDoc::from_lines_in(&mut arena.fold, doc.lines.iter().map(|l| l.text.as_str()));

    // --- Data types: extract (section → fallback), then normalize. ---
    let (mut rows, used_fallback) = extract_with_fallback(
        chatbot,
        TaskKind::ExtractDataTypes,
        seg.text_for(Aspect::Types, doc),
        full_text_input,
        &options,
        &mut reprompts,
        protocol::parse_extractions,
    );
    if used_fallback {
        fallbacks.push(AspectKind::Types);
    }
    // Verify verbatim presence before normalization (the paper's
    // hallucination check).
    let before = rows.len();
    if options.verify {
        let present = folded_policy.verify_batch(rows.iter().map(|(_, text)| text.as_str()));
        let mut idx = 0;
        rows.retain(|_| {
            let keep = present.get(idx).copied().unwrap_or(false);
            idx += 1;
            keep
        });
    }
    let mut hallucinations_removed = before - rows.len();

    if !rows.is_empty() {
        // Unique mention texts, order-preserving (hash-set guarded; the
        // index also serves the descriptor join below).
        let mut unique: Vec<String> = Vec::with_capacity(rows.len());
        let mut unique_index: std::collections::HashMap<String, usize> = Default::default();
        for (_, text) in &rows {
            if !unique_index.contains_key(text.as_str()) {
                unique_index.insert(text.clone(), unique.len());
                unique.push(text.clone());
            }
        }
        let norm_input = protocol::number_lines(unique.iter().map(String::as_str));
        let norm_out = complete_checked(
            chatbot,
            &TaskPrompt::build(TaskKind::NormalizeDataTypes),
            &norm_input,
            options.reprompt_retries,
            &mut reprompts,
        );
        let norm_rows = protocol::parse_normalizations(&norm_out);
        // index (1-based) → (descriptor, category)
        let mut normalized: Vec<Option<(String, DataTypeCategory)>> = vec![None; unique.len()];
        for (idx, descriptor, category_name) in norm_rows {
            if idx >= 1 && idx <= unique.len() {
                if let Some(cat) = DataTypeCategory::from_name(&category_name) {
                    normalized[idx - 1] = Some((descriptor, cat));
                }
            }
        }
        for (line, text) in rows {
            let Some(idx) = unique_index.get(text.as_str()).copied() else {
                continue;
            };
            if let Some(Some((descriptor, category))) = normalized.get(idx) {
                annotations.push(Annotation::new(
                    AnnotationPayload::DataType {
                        descriptor: descriptor.clone(),
                        category: *category,
                    },
                    text,
                    line,
                ));
            }
        }
    }

    // --- Purposes. ---
    let (purpose_rows, used_fallback) = extract_with_fallback(
        chatbot,
        TaskKind::AnnotatePurposes,
        seg.text_for(Aspect::Purposes, doc),
        full_text_input,
        &options,
        &mut reprompts,
        protocol::parse_purposes,
    );
    if used_fallback {
        fallbacks.push(AspectKind::Purposes);
    }
    let present = options.verify.then(|| {
        folded_policy.verify_batch(purpose_rows.iter().map(|(_, text, _, _)| text.as_str()))
    });
    for (i, (line, text, descriptor, category_name)) in purpose_rows.into_iter().enumerate() {
        if let Some(p) = &present {
            if !p.get(i).copied().unwrap_or(false) {
                hallucinations_removed = hallucinations_removed.saturating_add(1);
                continue;
            }
        }
        if let Some(category) = PurposeCategory::from_name(&category_name) {
            annotations.push(Annotation::new(
                AnnotationPayload::Purpose {
                    descriptor,
                    category,
                },
                text,
                line,
            ));
        }
    }

    // --- Handling. ---
    let (handling_rows, used_fallback) = extract_with_fallback(
        chatbot,
        TaskKind::AnnotateHandling,
        seg.text_for(Aspect::Handling, doc),
        full_text_input,
        &options,
        &mut reprompts,
        protocol::parse_handling,
    );
    if used_fallback {
        fallbacks.push(AspectKind::Handling);
    }
    let present = options.verify.then(|| {
        folded_policy.verify_batch(handling_rows.iter().map(|(_, text, _, _)| text.as_str()))
    });
    for (i, (line, text, label_name, period)) in handling_rows.into_iter().enumerate() {
        if let Some(p) = &present {
            if !p.get(i).copied().unwrap_or(false) {
                hallucinations_removed = hallucinations_removed.saturating_add(1);
                continue;
            }
        }
        if let Some(label) = RetentionLabel::from_name(&label_name) {
            let period_days = period.as_deref().and_then(parse_period_days);
            annotations.push(Annotation::new(
                AnnotationPayload::Retention { label, period_days },
                text,
                line,
            ));
        } else if let Some(label) = ProtectionLabel::from_name(&label_name) {
            annotations.push(Annotation::new(
                AnnotationPayload::Protection { label },
                text,
                line,
            ));
        }
    }

    // --- Rights. ---
    let (rights_rows, used_fallback) = extract_with_fallback(
        chatbot,
        TaskKind::AnnotateRights,
        seg.text_for(Aspect::Rights, doc),
        full_text_input,
        &options,
        &mut reprompts,
        protocol::parse_rights,
    );
    if used_fallback {
        fallbacks.push(AspectKind::Rights);
    }
    let present = options
        .verify
        .then(|| folded_policy.verify_batch(rights_rows.iter().map(|(_, text, _)| text.as_str())));
    for (i, (line, text, label_name)) in rights_rows.into_iter().enumerate() {
        if let Some(p) = &present {
            if !p.get(i).copied().unwrap_or(false) {
                hallucinations_removed = hallucinations_removed.saturating_add(1);
                continue;
            }
        }
        if let Some(label) = ChoiceLabel::from_name(&label_name) {
            annotations.push(Annotation::new(
                AnnotationPayload::Choice { label },
                text,
                line,
            ));
        } else if let Some(label) = AccessLabel::from_name(&label_name) {
            annotations.push(Annotation::new(
                AnnotationPayload::Access { label },
                text,
                line,
            ));
        }
    }

    // Dedup repeated mentions of the same term (Table 1's "unique
    // annotations" rule), keeping the first mention. Data types and
    // purposes dedup by normalized descriptor; handling and rights labels
    // dedup by (label, mention text), since the paper counts each distinct
    // phrasing of a practice.
    let mut seen = std::collections::HashSet::new();
    annotations.retain(|a| {
        let mut key = a.payload.dedup_key();
        if !matches!(
            &a.payload,
            AnnotationPayload::DataType { .. } | AnnotationPayload::Purpose { .. }
        ) {
            key.push('|');
            fold_into(&mut key, &a.text);
        }
        seen.insert(key)
    });

    // Hand the folded buffers back so the next document on this worker
    // reuses their capacity.
    arena.fold.recycle(folded_policy);

    AnnotationOutcome {
        annotations,
        fallbacks,
        hallucinations_removed,
        reprompts,
    }
}

/// Complete `prompt` with a bounded re-prompt loop: when the completion is
/// not well-formed protocol output (refusal, truncation, malformed JSON),
/// re-issue the task with an incremented attempt number — up to `retries`
/// extra attempts — so transient LLM faults are redrawn. The last output is
/// returned either way; the tolerant parsers downstream handle a completion
/// that is still malformed after the budget is spent.
fn complete_checked(
    chatbot: &dyn Chatbot,
    prompt: &TaskPrompt,
    input: &str,
    retries: u32,
    reprompts: &mut usize,
) -> String {
    let mut output = chatbot.complete_attempt(prompt, input, 0);
    for attempt in 1..=retries {
        if protocol::is_well_formed(&output) {
            break;
        }
        *reprompts += 1;
        output = chatbot.complete_attempt(prompt, input, attempt);
    }
    output
}

/// Run `task` on the aspect's section text; if it parses to nothing, run it
/// again over the full text. Returns the rows and whether fallback fired.
/// Both calls go through the bounded re-prompt loop, so a transient
/// refusal or truncation does not masquerade as an empty section and
/// needlessly trigger the (much more expensive) full-text fallback.
fn extract_with_fallback<T>(
    chatbot: &dyn Chatbot,
    task: TaskKind,
    section: Vec<(usize, &str)>,
    full_text_input: &str,
    options: &AnnotateOptions,
    reprompts: &mut usize,
    parse: impl Fn(&str) -> Vec<T>,
) -> (Vec<T>, bool) {
    let prompt = TaskPrompt::build(task);
    if !section.is_empty() {
        let input = protocol::number_lines_with(section);
        let rows = parse(&complete_checked(
            chatbot,
            &prompt,
            &input,
            options.reprompt_retries,
            reprompts,
        ));
        if !rows.is_empty() || !options.fallback {
            return (rows, false);
        }
    } else if !options.fallback {
        return (Vec::new(), false);
    }
    let rows = parse(&complete_checked(
        chatbot,
        &prompt,
        full_text_input,
        options.reprompt_retries,
        reprompts,
    ));
    (rows, true)
}

/// Convert a normalized "N unit" period string to days.
pub fn parse_period_days(period: &str) -> Option<u32> {
    let mut parts = period.split_whitespace();
    let n: u32 = parts.next()?.parse().ok()?;
    let unit = parts.next()?;
    match unit {
        "day" | "days" => Some(n),
        "month" | "months" => Some(n * 30),
        "year" | "years" => Some(n * 365),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::segment;
    use aipan_chatbot::{ModelProfile, SimulatedChatbot};
    use aipan_html::extract;

    fn oracle() -> SimulatedChatbot {
        SimulatedChatbot::new(ModelProfile::oracle(), 1)
    }

    fn annotate_html(html: &str) -> AnnotationOutcome {
        let bot = oracle();
        let doc = extract(html);
        let seg = segment(&bot, &doc);
        annotate_policy(&bot, &doc, &seg)
    }

    #[test]
    fn full_policy_annotated_across_aspects() {
        let out = annotate_html(
            "<h2>Overview</h2><p>Hello.</p>\
             <h2>Information We Collect</h2>\
             <p>We may collect your email address and mailing address.</p>\
             <h2>How We Use Your Information</h2>\
             <p>We use the information for fraud prevention and analytics.</p>\
             <h2>Data Retention and Security</h2>\
             <p>We retain your personal information for two (2) years after your last visit.</p>\
             <h2>Your Rights and Choices</h2>\
             <p>You may update or correct your personal information.</p>\
             <h2>Changes to This Policy</h2><p>We may revise this.</p>\
             <h2>Contact Us</h2><p>Say hi.</p>",
        );
        assert!(out.has_aspect(AspectKind::Types));
        assert!(out.has_aspect(AspectKind::Purposes));
        assert!(out.has_aspect(AspectKind::Handling));
        assert!(out.has_aspect(AspectKind::Rights));
        assert!(
            out.fallbacks.is_empty(),
            "no fallback expected: {:?}",
            out.fallbacks
        );

        // Normalization: "mailing address" → "postal address".
        let descriptors: Vec<String> = out
            .for_aspect(AspectKind::Types)
            .filter_map(|a| match &a.payload {
                AnnotationPayload::DataType { descriptor, .. } => Some(descriptor.clone()),
                _ => None,
            })
            .collect();
        assert!(descriptors.contains(&"email address".to_string()));
        assert!(descriptors.contains(&"postal address".to_string()));

        // Retention period extracted.
        let period = out
            .for_aspect(AspectKind::Handling)
            .find_map(|a| match a.payload {
                AnnotationPayload::Retention { period_days, .. } => period_days,
                _ => None,
            });
        assert_eq!(period, Some(730));
    }

    #[test]
    fn fallback_fires_when_aspect_inline() {
        // No handling section; retention sentence hides under a generic
        // heading — but enough headings exist for the heading path. The
        // merged segmentation finds it via text analysis; if the section
        // were mislabeled entirely, the annotate fallback would still
        // recover it from the full text.
        let out = annotate_html(
            "<h2>Introduction</h2><p>Hi there.</p>\
             <h2>Information We Collect</h2><p>We collect your name.</p>\
             <h2>How We Use Your Information</h2><p>We use data for analytics.</p>\
             <h2>How We Share Your Information</h2><p>Nothing shared.</p>\
             <h2>Specific Audiences</h2><p>California residents have rights.</p>\
             <h2>Changes to This Policy</h2><p>We may revise the date.</p>\
             <h2>Contact Us</h2>\
             <p>We retain your personal information for as long as necessary to operate.</p>\
             <p>You may update or correct your personal information.</p>",
        );
        assert!(out.has_aspect(AspectKind::Handling));
        assert!(out.has_aspect(AspectKind::Rights));
    }

    #[test]
    fn negated_mentions_not_annotated_by_oracle() {
        let out = annotate_html(
            "<p>We collect your email address.</p>\
             <p>We do not collect biometric data.</p>\
             <p>We use data for analytics.</p>\
             <p>We retain data as long as necessary; we retain it carefully.</p>",
        );
        let descriptors: Vec<String> = out
            .for_aspect(AspectKind::Types)
            .filter_map(|a| match &a.payload {
                AnnotationPayload::DataType { descriptor, .. } => Some(descriptor.clone()),
                _ => None,
            })
            .collect();
        assert!(descriptors.contains(&"email address".to_string()));
        assert!(!descriptors.contains(&"biometric data".to_string()));
    }

    #[test]
    fn hallucinations_removed_by_verification() {
        // A model that fabricates every extraction: verification must strip
        // them all.
        struct Liar;
        impl Chatbot for Liar {
            fn complete(&self, prompt: &TaskPrompt, _input: &str) -> String {
                match prompt.kind {
                    TaskKind::ExtractDataTypes => {
                        protocol::encode_extractions(&[(1, "made up mention".to_string())])
                    }
                    TaskKind::NormalizeDataTypes => protocol::encode_normalizations(&[(
                        1,
                        "made up mention".to_string(),
                        "Contact info".to_string(),
                    )]),
                    _ => "[]".to_string(),
                }
            }
            fn model_id(&self) -> &str {
                "liar"
            }
            fn usage(&self) -> aipan_chatbot::TokenUsage {
                aipan_chatbot::TokenUsage::default()
            }
        }
        let doc = extract("<p>We collect your email address.</p>");
        let seg = segment(&oracle(), &doc);
        let out = annotate_policy(&Liar, &doc, &seg);
        assert!(out.annotations.is_empty());
        assert!(out.hallucinations_removed >= 1);
    }

    #[test]
    fn reprompt_recovers_transient_refusals() {
        // A model that refuses every first attempt but answers correctly on
        // re-prompt: the bounded retry loop must recover every task, and
        // the outcome must record how many re-prompts were spent.
        struct FlakyOracle(SimulatedChatbot);
        impl Chatbot for FlakyOracle {
            fn complete(&self, prompt: &TaskPrompt, input: &str) -> String {
                self.complete_attempt(prompt, input, 0)
            }
            fn complete_attempt(&self, prompt: &TaskPrompt, input: &str, attempt: u32) -> String {
                if attempt == 0 {
                    "I cannot assist with analyzing this document.".to_string()
                } else {
                    self.0.complete(prompt, input)
                }
            }
            fn model_id(&self) -> &str {
                self.0.model_id()
            }
            fn usage(&self) -> aipan_chatbot::TokenUsage {
                self.0.usage()
            }
        }
        let html = "<p>We collect your email address.</p>\
             <p>We use data for analytics.</p>\
             <p>We retain data for two (2) years.</p>\
             <p>You may update or correct your personal information.</p>";
        let flaky = FlakyOracle(oracle());
        let doc = extract(html);
        let seg = segment(&oracle(), &doc);
        let out = annotate_policy(&flaky, &doc, &seg);
        let baseline = annotate_html(html);
        assert_eq!(out.annotations, baseline.annotations);
        assert!(out.reprompts > 0, "retries must be accounted");

        // With the budget disabled, every task sees only the refusal.
        let none = annotate_policy_with(
            &flaky,
            &doc,
            &seg,
            AnnotateOptions {
                reprompt_retries: 0,
                ..AnnotateOptions::default()
            },
        );
        assert!(none.annotations.is_empty());
        assert_eq!(none.reprompts, 0);
    }

    #[test]
    fn repeated_mentions_deduplicated() {
        let out = annotate_html(
            "<p>We collect your email address when you register.</p>\
             <p>Your email address is also collected at checkout.</p>",
        );
        let emails = out
            .for_aspect(AspectKind::Types)
            .filter(|a| matches!(&a.payload, AnnotationPayload::DataType { descriptor, .. } if descriptor == "email address"))
            .count();
        assert_eq!(emails, 1, "same term must be deduplicated");
    }

    #[test]
    fn period_days_parsing() {
        assert_eq!(parse_period_days("2 years"), Some(730));
        assert_eq!(parse_period_days("90 days"), Some(90));
        assert_eq!(parse_period_days("6 months"), Some(180));
        assert_eq!(parse_period_days("soon"), None);
        assert_eq!(parse_period_days(""), None);
    }

    #[test]
    fn zero_shot_terms_flow_through_open_vocabulary() {
        let out = annotate_html(
            "<p>We collect your email address and analyze podcast listening habits.</p>",
        );
        let descriptors: Vec<String> = out
            .for_aspect(AspectKind::Types)
            .filter_map(|a| match &a.payload {
                AnnotationPayload::DataType { descriptor, .. } => Some(descriptor.clone()),
                _ => None,
            })
            .collect();
        assert!(descriptors.contains(&"podcast listening habits".to_string()));
    }
}
