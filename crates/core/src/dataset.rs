//! The structured dataset produced by the pipeline (the AIPAN-3k-like
//! artifact).

use aipan_taxonomy::records::{Annotation, AspectKind};
use aipan_taxonomy::Sector;
use serde::{Deserialize, Serialize};

/// How the policy was segmented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegmentationMethod {
    /// Appendix B step 1 (heading-based).
    Headings,
    /// Appendix B step 2 (whole-text analysis, possibly merged).
    TextAnalysis,
}

/// One company's annotated privacy policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnotatedPolicy {
    /// Company domain.
    pub domain: String,
    /// S&P sector.
    pub sector: Sector,
    /// Unique verified annotations.
    pub annotations: Vec<Annotation>,
    /// Aspects for which the full-text fallback fired.
    pub fallbacks: Vec<AspectKind>,
    /// Hallucinated annotations removed by verification.
    pub hallucinations_removed: usize,
    /// Words in the policy's core aspects (excludes audiences/changes/other).
    pub core_word_count: usize,
    /// Segmentation path used.
    pub segmentation: SegmentationMethod,
    /// URL path of the annotated policy page.
    pub policy_path: String,
}

impl AnnotatedPolicy {
    /// Annotations in one aspect stream.
    pub fn for_aspect(&self, kind: AspectKind) -> impl Iterator<Item = &Annotation> {
        self.annotations
            .iter()
            .filter(move |a| a.aspect_kind() == kind)
    }

    /// Whether the policy has any annotation for `kind`.
    pub fn has_aspect(&self, kind: AspectKind) -> bool {
        self.for_aspect(kind).next().is_some()
    }

    /// Aspect kinds with no annotations (the §4 missing-aspect audit).
    pub fn missing_aspects(&self) -> Vec<AspectKind> {
        AspectKind::ALL
            .iter()
            .copied()
            .filter(|k| !self.has_aspect(*k))
            .collect()
    }
}

/// The full dataset: one record per successfully annotated domain.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// Annotated policies, sorted by domain.
    pub policies: Vec<AnnotatedPolicy>,
}

impl Dataset {
    /// Number of policies.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }

    /// Policies with at least one annotation (the paper's 2529-company
    /// analysis population).
    pub fn annotated(&self) -> impl Iterator<Item = &AnnotatedPolicy> {
        self.policies.iter().filter(|p| !p.annotations.is_empty())
    }

    /// Total annotation count for one aspect stream.
    pub fn annotation_count(&self, kind: AspectKind) -> usize {
        self.policies
            .iter()
            .map(|p| p.for_aspect(kind).count())
            .sum()
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserialize from JSON.
    pub fn from_json(json: &str) -> serde_json::Result<Dataset> {
        serde_json::from_str(json)
    }

    /// Look up a policy by domain.
    pub fn by_domain(&self, domain: &str) -> Option<&AnnotatedPolicy> {
        self.policies.iter().find(|p| p.domain == domain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aipan_taxonomy::records::AnnotationPayload;
    use aipan_taxonomy::{DataTypeCategory, RetentionLabel};

    fn policy(domain: &str, annotations: Vec<Annotation>) -> AnnotatedPolicy {
        AnnotatedPolicy {
            domain: domain.to_string(),
            sector: Sector::InformationTechnology,
            annotations,
            fallbacks: vec![],
            hallucinations_removed: 0,
            core_word_count: 1000,
            segmentation: SegmentationMethod::Headings,
            policy_path: "/privacy-policy".to_string(),
        }
    }

    fn dt_annotation() -> Annotation {
        Annotation::new(
            AnnotationPayload::DataType {
                descriptor: "email address".into(),
                category: DataTypeCategory::ContactInfo,
            },
            "email address",
            3,
        )
    }

    #[test]
    fn aspect_queries() {
        let p = policy(
            "a.com",
            vec![
                dt_annotation(),
                Annotation::new(
                    AnnotationPayload::Retention {
                        label: RetentionLabel::Limited,
                        period_days: None,
                    },
                    "as long as necessary",
                    9,
                ),
            ],
        );
        assert!(p.has_aspect(AspectKind::Types));
        assert!(p.has_aspect(AspectKind::Handling));
        assert_eq!(
            p.missing_aspects(),
            vec![AspectKind::Purposes, AspectKind::Rights]
        );
    }

    #[test]
    fn dataset_counts_and_lookup() {
        let ds = Dataset {
            policies: vec![
                policy("a.com", vec![dt_annotation()]),
                policy("b.com", vec![]),
            ],
        };
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.annotated().count(), 1);
        assert_eq!(ds.annotation_count(AspectKind::Types), 1);
        assert_eq!(ds.annotation_count(AspectKind::Rights), 0);
        assert!(ds.by_domain("b.com").is_some());
        assert!(ds.by_domain("c.com").is_none());
    }

    #[test]
    fn json_roundtrip() {
        let ds = Dataset {
            policies: vec![policy("a.com", vec![dt_annotation()])],
        };
        let json = ds.to_json().unwrap();
        let back = Dataset::from_json(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.policies[0].domain, "a.com");
        assert_eq!(back.policies[0].annotations.len(), 1);
    }
}
