//! The supervisor's self-report: what went wrong during a run, how much
//! of it was absorbed, and whether the result can be trusted.
//!
//! A [`RunHealth`] folds the per-stage error taxonomy, the quarantine
//! list, the transport-resilience rollups, and the journal's durability
//! counters into one verdict: `ok` (nothing lost), `degraded` (the run
//! completed but some domains were quarantined, skipped as poisoned, or
//! journaled memory-only), or `failed` (no domain produced a usable
//! crawl). Serialization is byte-stable — fields are declared in sorted
//! member order, maps are `BTreeMap`s, and lists are sorted — so a health
//! report is as diffable and goldens-friendly as the dataset itself.

use crate::pipeline::ExtractionFunnel;
use crate::shard::QuarantineRecord;
use aipan_crawler::CrawlFunnel;
use aipan_net::TransportMetrics;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Version stamp of the health JSON schema: bumped whenever a member is
/// added, removed, or changes meaning.
pub const HEALTH_SCHEMA_VERSION: u32 = 1;

/// The overall verdict, as an inspectable enum (see
/// [`RunHealth::classify`]; the serialized form is the lowercase `verdict`
/// string plus the sorted `reasons` list).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Every attempted domain ran clean: nothing quarantined, nothing
    /// skipped, every journal append durable.
    Ok,
    /// The run completed, but the listed reasons cost coverage or
    /// durability (quarantined domains, poisoned skips, memory-only
    /// journal entries).
    Degraded {
        /// Human-readable, deterministic explanations, sorted.
        reasons: Vec<String>,
    },
    /// No attempted domain produced a usable crawl — the output is empty
    /// or meaningless.
    Failed {
        /// Human-readable, deterministic explanations, sorted.
        reasons: Vec<String>,
    },
}

impl Verdict {
    /// The lowercase label stored in the `verdict` member.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Degraded { .. } => "degraded",
            Verdict::Failed { .. } => "failed",
        }
    }

    /// The reasons behind a non-`ok` verdict (empty for `ok`).
    pub fn reasons(&self) -> &[String] {
        match self {
            Verdict::Ok => &[],
            Verdict::Degraded { reasons } | Verdict::Failed { reasons } => reasons,
        }
    }
}

/// Retry/breaker/budget rollup folded from [`TransportMetrics`]: the
/// resilience-relevant slice of the transport counters, in sorted member
/// order. Worker-count invariant, like the metrics it is folded from.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportRollup {
    /// Times a per-host circuit breaker tripped open.
    pub breaker_opens: u64,
    /// Retries denied because a domain's retry budget was spent.
    pub budget_exhausted: u64,
    /// 429 rate-limit rejections.
    pub rate_limited: u64,
    /// Requests issued (including each redirect hop).
    pub requests: u64,
    /// Successful fetches (a response was delivered, any status).
    pub responses: u64,
    /// Retries issued by the guarded fetch path.
    pub retries: u64,
    /// 5xx responses delivered (a subset of `responses`).
    pub server_errors: u64,
    /// Timeouts.
    pub timeouts: u64,
}

impl TransportRollup {
    /// Fold the resilience counters out of a metrics snapshot.
    pub fn from_metrics(metrics: &TransportMetrics) -> TransportRollup {
        TransportRollup {
            breaker_opens: metrics.breaker_opens,
            budget_exhausted: metrics.budget_exhausted,
            rate_limited: metrics.rate_limited,
            requests: metrics.requests,
            responses: metrics.responses,
            retries: metrics.retries,
            server_errors: metrics.server_errors,
            timeouts: metrics.timeouts,
        }
    }
}

/// Everything [`RunHealth::assess`] folds into a report; gathered by the
/// pipeline at the end of a run.
pub struct HealthInputs {
    /// The §3.1 crawl funnel of the surviving (non-quarantined) domains.
    pub crawl: CrawlFunnel,
    /// The §3.2 extraction/annotation funnel.
    pub extraction: ExtractionFunnel,
    /// Every quarantined domain's record (cumulative across resumes).
    pub quarantine: Vec<QuarantineRecord>,
    /// Domains skipped outright because they reached the poison threshold.
    pub poisoned_skipped: Vec<String>,
    /// Times a worker stalled at admission on the memory cap.
    pub backpressure_stalls: u64,
    /// Journal appends that exhausted the write-retry budget.
    pub journal_write_errors: usize,
    /// Journal append attempts that were retried (and absorbed).
    pub disk_retries: usize,
    /// Transport metrics snapshot of the run's shared client.
    pub transport: TransportMetrics,
}

/// The serialized health report. Members are declared in sorted order and
/// every collection is sorted, so rendering is byte-stable for a given
/// run — health reports golden-test like datasets do.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunHealth {
    /// Times a worker stalled at admission on the memory cap
    /// (scheduling-dependent under a cap; always zero without one).
    pub backpressure_stalls: u64,
    /// Journal append attempts that were retried and absorbed.
    pub disk_retries: u64,
    /// Domains whose chain ran to completion (the funnel's attempt count;
    /// crawl-stage quarantined domains never reach the funnel).
    pub domains_total: u64,
    /// Per-stage error taxonomy. Every key is always present (zeros
    /// included) so reports diff structurally.
    pub errors: BTreeMap<String, u64>,
    /// Journal appends that exhausted the write-retry budget (affected
    /// domains re-process on resume).
    pub journal_write_errors: u64,
    /// Domains skipped outright at the poison threshold, sorted.
    pub poisoned_skipped: Vec<String>,
    /// Every quarantined domain's record, sorted by domain.
    pub quarantine: Vec<QuarantineRecord>,
    /// Deterministic explanations behind a non-`ok` verdict, sorted.
    pub reasons: Vec<String>,
    /// [`HEALTH_SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Retry/breaker/budget rollups from the transport layer.
    pub transport: TransportRollup,
    /// `"ok"`, `"degraded"`, or `"failed"` (see [`RunHealth::classify`]).
    pub verdict: String,
}

impl RunHealth {
    /// Fold the run's counters into a report and derive the verdict.
    pub fn assess(inputs: HealthInputs) -> RunHealth {
        let HealthInputs {
            crawl,
            extraction,
            mut quarantine,
            mut poisoned_skipped,
            backpressure_stalls,
            journal_write_errors,
            disk_retries,
            transport,
        } = inputs;
        quarantine.sort_by(|a, b| a.domain.cmp(&b.domain));
        poisoned_skipped.sort();

        let mut errors: BTreeMap<String, u64> = BTreeMap::new();
        errors.insert(
            "annotate/hallucinations_removed".to_string(),
            extraction.hallucinations_removed as u64,
        );
        errors.insert(
            "annotate/missing_aspect".to_string(),
            extraction.missing_any_aspect as u64,
        );
        errors.insert(
            "crawl/no_privacy_page".to_string(),
            crawl.no_privacy_page as u64,
        );
        errors.insert(
            "crawl/transport_failure".to_string(),
            crawl.transport_failures as u64,
        );
        errors.insert(
            "extract/failed".to_string(),
            extraction
                .crawl_success
                .saturating_sub(extraction.extraction_success) as u64,
        );
        errors.insert(
            "journal/write_errors".to_string(),
            journal_write_errors as u64,
        );
        let stage_count =
            |stage: &str| -> u64 { quarantine.iter().filter(|r| r.stage == stage).count() as u64 };
        errors.insert("panic/crawl".to_string(), stage_count("crawl"));
        errors.insert("panic/process".to_string(), stage_count("process"));

        let mut reasons: Vec<String> = Vec::new();
        if !quarantine.is_empty() {
            reasons.push(format!(
                "{} domain(s) quarantined after worker panics",
                quarantine.len()
            ));
        }
        if !poisoned_skipped.is_empty() {
            reasons.push(format!(
                "{} poisoned domain(s) skipped",
                poisoned_skipped.len()
            ));
        }
        if journal_write_errors > 0 {
            reasons.push(format!(
                "{journal_write_errors} journal append(s) exhausted the write-retry budget"
            ));
        }
        let attempted_anything = crawl.domains_total > 0 || !quarantine.is_empty();
        let failed = attempted_anything && crawl.crawl_success == 0;
        if failed {
            reasons.push("no domain crawled successfully".to_string());
        }
        reasons.sort();
        let verdict = if failed {
            "failed"
        } else if reasons.is_empty() {
            "ok"
        } else {
            "degraded"
        };

        RunHealth {
            backpressure_stalls,
            disk_retries: disk_retries as u64,
            domains_total: crawl.domains_total as u64,
            errors,
            journal_write_errors: journal_write_errors as u64,
            poisoned_skipped,
            quarantine,
            reasons,
            schema_version: HEALTH_SCHEMA_VERSION,
            transport: TransportRollup::from_metrics(&transport),
            verdict: verdict.to_string(),
        }
    }

    /// The verdict as an inspectable enum.
    pub fn classify(&self) -> Verdict {
        match self.verdict.as_str() {
            "failed" => Verdict::Failed {
                reasons: self.reasons.clone(),
            },
            "degraded" => Verdict::Degraded {
                reasons: self.reasons.clone(),
            },
            _ => Verdict::Ok,
        }
    }

    /// Render the report as pretty-printed JSON with a trailing newline —
    /// byte-stable for a given run (sorted members, sorted collections).
    pub fn to_json(&self) -> String {
        let mut json = serde_json::to_string_pretty(self).unwrap_or_default();
        json.push('\n');
        json
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_inputs() -> HealthInputs {
        HealthInputs {
            crawl: CrawlFunnel {
                domains_total: 10,
                crawl_success: 9,
                transport_failures: 1,
                ..Default::default()
            },
            extraction: ExtractionFunnel {
                domains_total: 10,
                crawl_success: 9,
                extraction_success: 8,
                ..Default::default()
            },
            quarantine: Vec::new(),
            poisoned_skipped: Vec::new(),
            backpressure_stalls: 0,
            journal_write_errors: 0,
            disk_retries: 0,
            transport: TransportMetrics::default(),
        }
    }

    #[test]
    fn clean_run_is_ok_with_full_taxonomy() {
        let health = RunHealth::assess(clean_inputs());
        assert_eq!(health.classify(), Verdict::Ok);
        assert_eq!(health.verdict, "ok");
        assert!(health.reasons.is_empty());
        assert_eq!(health.schema_version, HEALTH_SCHEMA_VERSION);
        // Every taxonomy key present even when zero.
        for key in [
            "annotate/hallucinations_removed",
            "annotate/missing_aspect",
            "crawl/no_privacy_page",
            "crawl/transport_failure",
            "extract/failed",
            "journal/write_errors",
            "panic/crawl",
            "panic/process",
        ] {
            assert!(health.errors.contains_key(key), "missing {key}");
        }
        assert_eq!(health.errors["crawl/transport_failure"], 1);
        assert_eq!(health.errors["extract/failed"], 1);
    }

    #[test]
    fn quarantine_and_write_errors_degrade() {
        let mut inputs = clean_inputs();
        inputs.quarantine = vec![QuarantineRecord {
            domain: "boom.com".to_string(),
            kills: 1,
            stage: "crawl".to_string(),
            message: "host exploded".to_string(),
        }];
        inputs.journal_write_errors = 2;
        let health = RunHealth::assess(inputs);
        assert_eq!(health.verdict, "degraded");
        assert_eq!(health.classify().label(), "degraded");
        assert_eq!(health.classify().reasons().len(), 2);
        assert_eq!(health.errors["panic/crawl"], 1);
        assert_eq!(health.errors["panic/process"], 0);
    }

    #[test]
    fn zero_crawl_success_fails() {
        let mut inputs = clean_inputs();
        inputs.crawl.crawl_success = 0;
        inputs.extraction.crawl_success = 0;
        inputs.extraction.extraction_success = 0;
        let health = RunHealth::assess(inputs);
        assert_eq!(health.verdict, "failed");
        assert!(matches!(health.classify(), Verdict::Failed { .. }));
    }

    #[test]
    fn empty_universe_is_ok_not_failed() {
        let mut inputs = clean_inputs();
        inputs.crawl = CrawlFunnel::default();
        inputs.extraction = ExtractionFunnel::default();
        let health = RunHealth::assess(inputs);
        assert_eq!(health.verdict, "ok");
    }

    #[test]
    fn json_roundtrips() {
        let health = RunHealth::assess(clean_inputs());
        let json = health.to_json();
        let back: RunHealth = serde_json::from_str(json.trim_end()).expect("parse health");
        assert_eq!(back, health);
    }
}
