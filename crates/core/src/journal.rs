//! Checkpoint/resume journal for pipeline runs.
//!
//! [`run_pipeline_resumable`](crate::run_pipeline_resumable) records every
//! processed domain's [`DomainOutcome`](crate::pipeline::DomainOutcome) in a
//! [`RunJournal`]. The journal serializes to sorted JSONL (one domain per
//! line, ordered by domain), so an interrupted run can be resumed: domains
//! already journaled are replayed from their recorded outcome instead of
//! re-annotated, and — because every per-domain outcome is a pure function
//! of `(world, config)` — the resumed run's dataset is byte-identical to an
//! uninterrupted one.
//!
//! Loading is tolerant of a torn tail: a process killed mid-write leaves a
//! truncated final line, which parses as garbage and is simply dropped
//! (that domain is re-processed on resume).

use crate::dataset::AnnotatedPolicy;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One journaled domain outcome: the domain's §3.2 funnel contribution and
/// its annotated policy (if extraction succeeded).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalEntry {
    /// The crawled domain.
    pub domain: String,
    /// English, HTML, deduplicated privacy pages found on the domain.
    pub english_privacy_pages: usize,
    /// The annotated policy, when one was extracted.
    pub policy: Option<AnnotatedPolicy>,
}

/// A checkpoint journal: domain → outcome, kept sorted by domain.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunJournal {
    entries: BTreeMap<String, JournalEntry>,
}

impl RunJournal {
    /// An empty journal (a fresh, non-resumed run).
    pub fn new() -> RunJournal {
        RunJournal::default()
    }

    /// Parse a journal from JSONL text. Malformed lines — including a
    /// truncated final line from an interrupted write — are dropped, not
    /// fatal: the affected domains are simply re-processed.
    pub fn from_jsonl(text: &str) -> RunJournal {
        let mut journal = RunJournal::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Ok(entry) = serde_json::from_str::<JournalEntry>(line) {
                journal.insert(entry);
            }
        }
        journal
    }

    /// Serialize to JSONL, one entry per line, sorted by domain.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for entry in self.entries.values() {
            // JournalEntry contains no map types, so to_string cannot fail;
            // an empty line (dropped on load) is the safe degradation.
            if let Ok(line) = serde_json::to_string(entry) {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }

    /// Whether `domain` has a journaled outcome.
    pub fn contains(&self, domain: &str) -> bool {
        self.entries.contains_key(domain)
    }

    /// The journaled outcome for `domain`, if any.
    pub fn get(&self, domain: &str) -> Option<&JournalEntry> {
        self.entries.get(domain)
    }

    /// Record (or overwrite) an outcome.
    pub fn insert(&mut self, entry: JournalEntry) {
        self.entries.insert(entry.domain.clone(), entry);
    }

    /// Number of journaled domains.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in domain order.
    pub fn iter(&self) -> impl Iterator<Item = &JournalEntry> {
        self.entries.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(domain: &str, pages: usize) -> JournalEntry {
        JournalEntry {
            domain: domain.to_string(),
            english_privacy_pages: pages,
            policy: None,
        }
    }

    #[test]
    fn jsonl_roundtrip_is_sorted_and_lossless() {
        let mut j = RunJournal::new();
        j.insert(entry("zeta.com", 2));
        j.insert(entry("alpha.com", 1));
        j.insert(entry("mid.com", 0));
        let text = j.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("alpha.com"));
        assert!(lines[2].contains("zeta.com"));
        assert_eq!(RunJournal::from_jsonl(&text), j);
    }

    #[test]
    fn torn_tail_dropped_not_fatal() {
        let mut j = RunJournal::new();
        j.insert(entry("a.com", 1));
        j.insert(entry("b.com", 2));
        let text = j.to_jsonl();
        // Simulate a kill mid-write: truncate inside the last line.
        let cut = text.len() - 7;
        let torn = &text[..cut];
        let loaded = RunJournal::from_jsonl(torn);
        assert_eq!(loaded.len(), 1);
        assert!(loaded.contains("a.com"));
        assert!(!loaded.contains("b.com"));
    }

    #[test]
    fn insert_overwrites() {
        let mut j = RunJournal::new();
        j.insert(entry("a.com", 1));
        j.insert(entry("a.com", 5));
        assert_eq!(j.len(), 1);
        assert_eq!(j.get("a.com").unwrap().english_privacy_pages, 5);
    }

    #[test]
    fn empty_and_blank_lines_ignored() {
        let j = RunJournal::from_jsonl("\n\n   \nnot json\n");
        assert!(j.is_empty());
    }
}
