//! # aipan-core
//!
//! The end-to-end AIPAN pipeline (Figure 1 of the paper): acquisition →
//! crawl → text extraction → segmentation → chatbot annotation →
//! hallucination verification → structured dataset.
//!
//! * [`mod@segment`] — the two-step segmentation of Appendix B: heading-based
//!   (when a page has more than five detected headings) with labeled
//!   tables of contents, falling back to whole-text analysis.
//! * [`annotate`] — per-aspect annotation (§3.2.2): each of the four
//!   studied aspects is annotated from its own section text, **falling back
//!   to the entire text** when the section yields nothing; includes the
//!   programmatic verbatim-presence check that removes hallucinations.
//! * [`dataset`] — [`dataset::AnnotatedPolicy`] records and the
//!   serializable [`dataset::Dataset`] (the AIPAN-3k-like artifact).
//! * [`pipeline`] — whole-universe orchestration over a
//!   [`aipan_webgen::World`]: crawl funnel, per-domain processing, and the
//!   §3.1/§3.2 funnel statistics.
//! * [`journal`] — the sorted-JSONL checkpoint journal behind
//!   [`pipeline::run_pipeline_resumable`]: interrupted runs resume from
//!   their journaled per-domain outcomes and produce byte-identical
//!   datasets.
//! * [`shard`] — that journal split into independently locked,
//!   incrementally appended JSONL segments: the checkpoint store of the
//!   streaming engine ([`pipeline::run_pipeline_sharded`]), durable at
//!   per-domain granularity, with a quarantine segment for dead-lettered
//!   domains and deterministic disk-fault injection on the append path.
//! * [`health`] — the supervisor's self-report ([`health::RunHealth`]):
//!   per-stage error taxonomy, quarantine list, transport rollups, and an
//!   `ok | degraded | failed` verdict, serialized to byte-stable JSON.

#![warn(missing_docs)]

pub mod annotate;
pub mod dataset;
pub mod health;
pub mod journal;
pub mod pipeline;
pub mod segment;
pub mod shard;

pub use annotate::{annotate_policy, AnnotateArena, AnnotationOutcome};
pub use dataset::{AnnotatedPolicy, Dataset, SegmentationMethod};
pub use health::{RunHealth, TransportRollup, Verdict, HEALTH_SCHEMA_VERSION};
pub use journal::{JournalEntry, RunJournal};
pub use pipeline::{
    run_pipeline, run_pipeline_resumable, run_pipeline_sharded, ExtractionFunnel, Pipeline,
    PipelineConfig, PipelineRun, SupervisorPolicy,
};
pub use segment::{segment, SegmentedPolicy};
pub use shard::{
    quarantine_path, segment_path, shard_of, ConsolidateStep, DiskFaultConfig, DiskFaultInjector,
    QuarantineRecord, ShardedJournal, DEFAULT_SHARDS,
};
