//! Whole-universe pipeline orchestration (Figure 1).

use crate::annotate::{annotate_policy_in, AnnotateArena, AnnotateOptions};
use crate::dataset::{AnnotatedPolicy, Dataset, SegmentationMethod};
use crate::health::{HealthInputs, RunHealth};
use crate::journal::{JournalEntry, RunJournal};
use crate::segment::{self, Method, SegmentedPolicy};
use crate::shard::{ShardedJournal, DEFAULT_SHARDS};
use aipan_chatbot::{ModelProfile, SimulatedChatbot, TokenUsage};
use aipan_crawler::{
    stream_all_supervised, CrawlFunnel, CrawlOptions, DeadLetter, DomainCrawl, PoolConfig,
    SupervisorOptions,
};
use aipan_html::{extract, lang, ExtractedDoc};
use aipan_net::fault::FaultInjector;
use aipan_net::http::ContentType;
use aipan_net::Client;
use aipan_taxonomy::Sector;
use aipan_webgen::World;
use serde::{Deserialize, Serialize};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Seed for the chatbot's error models.
    pub seed: u64,
    /// Crawler/annotation worker threads.
    pub workers: usize,
    /// Chatbot error profile.
    pub profile: ModelProfile,
    /// Annotation options (fallback/verification ablations).
    pub annotate: AnnotateOptions,
    /// Whether to segment before annotating (ablation: `false` feeds the
    /// whole text to every aspect's task).
    pub use_segmentation: bool,
    /// Crawl resilience options: retry/backoff policy, fetch-session seed,
    /// and the optional per-domain crawl deadline.
    pub crawl: CrawlOptions,
    /// Streaming-supervisor policy: poison threshold and memory
    /// backpressure cap.
    pub supervisor: SupervisorPolicy,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            seed: 42,
            workers: PoolConfig::default().workers,
            profile: ModelProfile::gpt4_turbo(),
            annotate: AnnotateOptions::default(),
            use_segmentation: true,
            crawl: CrawlOptions::default(),
            supervisor: SupervisorPolicy::default(),
        }
    }
}

/// Fault-isolation and backpressure policy of the streaming supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorPolicy {
    /// Cumulative worker kills after which a domain is poisoned — skipped
    /// outright by [`run_pipeline_sharded`] when resuming from a journal
    /// that quarantined it. The default of 2 gives every panicking domain
    /// exactly one retry on resume before it is written off.
    pub max_kills: u32,
    /// Site-memory cap (bytes, against the world's
    /// [`aipan_webgen::MemoryGauge`]) above which admission of new domains
    /// blocks until in-flight domains release. `None` disables
    /// backpressure.
    pub memory_cap_bytes: Option<usize>,
}

impl Default for SupervisorPolicy {
    fn default() -> SupervisorPolicy {
        SupervisorPolicy {
            max_kills: 2,
            memory_cap_bytes: None,
        }
    }
}

/// The §3.2 extraction/annotation funnel.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExtractionFunnel {
    /// Domains attempted.
    pub domains_total: usize,
    /// Domains with a successful crawl.
    pub crawl_success: usize,
    /// Domains with a successful text extraction (§3.2.1 definition).
    pub extraction_success: usize,
    /// Domains receiving at least one annotation (the paper's 2529).
    pub annotated: usize,
    /// Domains missing annotations for ≥1 studied aspect (the paper's 375).
    pub missing_any_aspect: usize,
    /// Policies where the full-text fallback fired at least once (708).
    pub policies_with_fallback: usize,
    /// English, deduplicated potential privacy pages (drives the 1.8/domain
    /// average).
    pub english_privacy_pages: usize,
    /// Median core word count of extracted policies (paper: 2671).
    pub median_core_words: usize,
    /// Hallucinated annotations removed by verification.
    pub hallucinations_removed: usize,
}

impl ExtractionFunnel {
    /// Extraction success over all domains (paper: 88%).
    pub fn extraction_rate(&self) -> f64 {
        ratio(self.extraction_success, self.domains_total)
    }

    /// Extraction success over crawled domains (paper: 96.1%).
    pub fn extraction_rate_of_crawled(&self) -> f64 {
        ratio(self.extraction_success, self.crawl_success)
    }

    /// English privacy pages per successful domain (paper: 1.8).
    pub fn avg_english_privacy_pages(&self) -> f64 {
        ratio(self.english_privacy_pages, self.crawl_success)
    }
}

fn ratio(n: usize, d: usize) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64
    }
}

/// Result of a full pipeline run.
pub struct PipelineRun {
    /// Crawl funnel (§3.1).
    pub crawl_funnel: CrawlFunnel,
    /// Extraction/annotation funnel (§3.2).
    pub extraction: ExtractionFunnel,
    /// The structured dataset.
    pub dataset: Dataset,
    /// Per-task token usage.
    pub usage: Vec<(String, TokenUsage)>,
    /// The supervisor's health report: error taxonomy, quarantine list,
    /// transport rollups, and the overall verdict.
    pub health: RunHealth,
}

/// The pipeline: a configured chatbot plus processing logic.
pub struct Pipeline {
    config: PipelineConfig,
    chatbot: SimulatedChatbot,
}

impl Pipeline {
    /// Build a pipeline from `config`.
    pub fn new(config: PipelineConfig) -> Pipeline {
        let chatbot = SimulatedChatbot::new(config.profile.clone(), config.seed);
        Pipeline { config, chatbot }
    }

    /// The chatbot in use.
    pub fn chatbot(&self) -> &SimulatedChatbot {
        &self.chatbot
    }

    /// Process one crawled domain into an annotated policy.
    ///
    /// Returns `None` when the crawl failed, when no page survives the
    /// content/language filters, or when text extraction fails per the
    /// §3.2.1 success definition.
    pub fn process_domain(&self, crawl: &DomainCrawl, sector: Sector) -> Option<AnnotatedPolicy> {
        self.process_domain_full(crawl, sector).policy
    }

    /// Process one crawled domain, returning its funnel contributions
    /// alongside the policy: the pages are extracted exactly once and both
    /// the `english_privacy_pages` count and the policy-page selection come
    /// from that single pass (`run_pipeline` previously re-extracted the
    /// whole corpus a second time just to count pages).
    pub fn process_domain_full(&self, crawl: &DomainCrawl, sector: Sector) -> DomainOutcome {
        self.process_domain_arena(crawl, sector, &mut AnnotateArena::new())
    }

    /// [`Pipeline::process_domain_full`], with annotation scratch buffers
    /// drawn from `arena`. A streaming worker threads one arena through
    /// every domain it processes, so the per-policy full-text and fold
    /// allocations happen once per worker instead of once per policy.
    pub fn process_domain_arena(
        &self,
        crawl: &DomainCrawl,
        sector: Sector,
        arena: &mut AnnotateArena,
    ) -> DomainOutcome {
        if !crawl.is_success() {
            return DomainOutcome {
                english_privacy_pages: 0,
                policy: None,
            };
        }
        let pages = self.english_privacy_pages(crawl);
        let english_privacy_pages = pages.len();
        // Choose the main policy page: the English privacy page with the
        // most words (privacy centers and supplemental notices are shorter
        // than the policy itself).
        let policy = pages
            .into_iter()
            .max_by_key(|(doc, _)| doc.word_count())
            .and_then(|(doc, path)| self.annotate_page(crawl, sector, &doc, path, arena));
        DomainOutcome {
            english_privacy_pages,
            policy,
        }
    }

    fn annotate_page(
        &self,
        crawl: &DomainCrawl,
        sector: Sector,
        doc: &ExtractedDoc,
        path: String,
        arena: &mut AnnotateArena,
    ) -> Option<AnnotatedPolicy> {
        let seg = if self.config.use_segmentation {
            segment::segment(&self.chatbot, doc)
        } else {
            SegmentedPolicy::whole_text(doc)
        };
        if !seg.is_successful_extraction(doc) {
            return None;
        }
        let outcome = annotate_policy_in(&self.chatbot, doc, &seg, self.config.annotate, arena);
        Some(AnnotatedPolicy {
            domain: crawl.domain.clone(),
            sector,
            annotations: outcome.annotations,
            fallbacks: outcome.fallbacks,
            hallucinations_removed: outcome.hallucinations_removed,
            core_word_count: seg.core_word_count(doc),
            segmentation: match seg.method {
                Method::Headings => SegmentationMethod::Headings,
                Method::TextAnalysis => SegmentationMethod::TextAnalysis,
            },
            policy_path: path,
        })
    }

    /// English, HTML, deduplicated privacy pages of a crawl.
    pub fn english_privacy_pages(&self, crawl: &DomainCrawl) -> Vec<(ExtractedDoc, String)> {
        crawl
            .privacy_pages()
            .into_iter()
            .filter(|p| p.content_type == ContentType::Html)
            .filter_map(|p| {
                let doc = extract(&p.body);
                let text = doc.text();
                if text.trim().is_empty() || !lang::is_english(&text) {
                    None
                } else {
                    Some((doc, p.final_url.path.clone()))
                }
            })
            .collect()
    }
}

/// One domain's contribution to the §3.2 funnel, from a single extraction
/// pass (see [`Pipeline::process_domain_full`]).
#[derive(Debug)]
pub struct DomainOutcome {
    /// English, HTML, deduplicated privacy pages found on the domain.
    pub english_privacy_pages: usize,
    /// The annotated policy, if one was extracted.
    pub policy: Option<AnnotatedPolicy>,
}

/// Run the full pipeline over a simulated world.
pub fn run_pipeline(world: &World, config: PipelineConfig) -> PipelineRun {
    run_pipeline_resumable(world, config, &mut RunJournal::new())
}

/// Run the full pipeline, checkpointing into (and resuming from) `journal`.
///
/// Domains already present in `journal` are replayed from their recorded
/// [`JournalEntry`] instead of re-annotated; every newly processed domain
/// is journaled. Because each per-domain outcome is a pure deterministic
/// function of `(world, config)`, a run resumed from any prefix of a prior
/// run's journal produces a byte-identical dataset and funnel — only token
/// usage differs (replayed domains cost no chatbot calls). Crawling is
/// always re-run: it is cheap, deterministic, and its transport metrics
/// are not part of the journaled state.
///
/// This is a thin wrapper over [`run_pipeline_sharded`] with an in-memory
/// sharded journal; callers that want durable incremental checkpoints use
/// [`run_pipeline_sharded`] with [`ShardedJournal::open`] directly.
pub fn run_pipeline_resumable(
    world: &World,
    config: PipelineConfig,
    journal: &mut RunJournal,
) -> PipelineRun {
    let sharded = ShardedJournal::in_memory(DEFAULT_SHARDS);
    for entry in journal.iter() {
        sharded.record(entry.clone());
    }
    let run = run_pipeline_sharded(world, config, &sharded);
    *journal = sharded.merged();
    run
}

/// The streaming pipeline engine: every domain flows through
/// generate → crawl → extract → segment → annotate → journal inside **one**
/// worker task ([`stream_all_with`]), instead of crawling the whole
/// universe first and annotating it second.
///
/// Streaming is what bounds memory: a crawl's page bodies are dropped the
/// moment its domain is journaled, and on a lazy world
/// ([`aipan_webgen::build_world_lazy`]) the generated site itself is
/// released again ([`World::release_site`]), so peak residency scales with
/// in-flight domains — O(workers + shard) — rather than with the universe.
/// Each worker carries a private [`AnnotateArena`] (scratch buffers reused
/// across its policies) and a private [`CrawlFunnel`] (merged commutatively
/// afterwards, so the totals match a serial run exactly).
///
/// Already-journaled domains are re-crawled (cheap, and the crawl funnel is
/// not journaled state) but not re-annotated. Results are deterministic and
/// worker-count-invariant: the dataset, funnels, and journal contents are
/// byte-identical for any `config.workers`.
///
/// The drive is *supervised* ([`stream_all_supervised`]): a panic anywhere
/// in one domain's chain is caught, dead-lettered into the journal's
/// quarantine segment, and the run continues — the panicking domain simply
/// produces no journal entry (so a resume retries it), and a domain whose
/// cumulative kill count reaches [`SupervisorPolicy::max_kills`] is
/// poisoned: filtered out of the dispatch list entirely, making the
/// resumed run byte-identical to a clean run over the universe minus the
/// poisoned domains. When [`SupervisorPolicy::memory_cap_bytes`] is set,
/// admission of new domains additionally blocks on the world's site-memory
/// gauge (deadlock-free: an over-cap run degrades to one domain at a
/// time). The run's [`RunHealth`] report is returned on the
/// [`PipelineRun`].
pub fn run_pipeline_sharded(
    world: &World,
    config: PipelineConfig,
    journal: &ShardedJournal,
) -> PipelineRun {
    let pipeline = Pipeline::new(config.clone());
    let client = Client::new(
        world.internet.clone(),
        FaultInjector::new(world.config.seed, world.config.faults),
    );
    let poisoned = journal.poisoned_domains(config.supervisor.max_kills);
    let unique = world.universe.unique_domains();
    let mut domains: Vec<String> = Vec::with_capacity(unique.len());
    let mut poisoned_skipped: Vec<String> = Vec::with_capacity(poisoned.len());
    for company in unique {
        let domain = company.domain.clone();
        if poisoned.binary_search(&domain).is_ok() {
            poisoned_skipped.push(domain);
        } else {
            domains.push(domain);
        }
    }

    struct WorkerState {
        arena: AnnotateArena,
        funnel: CrawlFunnel,
    }

    let probe = || world.site_memory.current_bytes();
    let supervisor = SupervisorOptions {
        memory_cap_bytes: config.supervisor.memory_cap_bytes,
        memory_probe: Some(&probe),
    };

    let pipeline_ref = &pipeline;
    let outcome = stream_all_supervised(
        &client,
        &domains,
        PoolConfig {
            workers: config.workers,
        },
        &config.crawl,
        &supervisor,
        || WorkerState {
            arena: AnnotateArena::new(),
            funnel: CrawlFunnel::default(),
        },
        |state: &mut WorkerState, crawl: DomainCrawl| {
            state.funnel.absorb(&crawl);
            if !journal.contains(&crawl.domain) {
                let sector = world
                    .company(&crawl.domain)
                    .map(|c| c.sector)
                    .unwrap_or(Sector::Industrials);
                let outcome = pipeline_ref.process_domain_arena(&crawl, sector, &mut state.arena);
                journal.record(JournalEntry {
                    domain: crawl.domain.clone(),
                    english_privacy_pages: outcome.english_privacy_pages,
                    policy: outcome.policy,
                });
            }
            // Lazily generated sites are released once the domain is done;
            // `crawl` (and its page bodies) drops here.
            world.release_site(&crawl.domain);
        },
        // Repair, don't rebuild: the annotation arena may be mid-mutation
        // from the panic, so it is replaced; the crawl funnel is kept —
        // it only ever advances by whole-domain `absorb` calls, which
        // complete before any panic-prone annotate work begins, so its
        // tallies stay exactly what a clean worker would have counted.
        |state: &mut WorkerState| {
            state.arena = AnnotateArena::new();
        },
        |letter: &DeadLetter| {
            let _kills =
                journal.record_dead_letter(&letter.domain, letter.stage.as_str(), &letter.message);
            // The chain died before its release step; release here so the
            // all-sites-released invariant survives quarantined domains.
            world.release_site(&letter.domain);
        },
    );
    let (processed, states) = (outcome.results, outcome.states);

    let mut crawl_funnel = CrawlFunnel::default();
    for state in &states {
        crawl_funnel.merge(&state.funnel);
    }

    // Assemble from the journal in crawl order (sorted by domain), using
    // only entries for domains in this run — a stale journal from another
    // world cannot leak extra policies in.
    let mut english_privacy_pages = 0usize;
    let mut policies: Vec<AnnotatedPolicy> = Vec::with_capacity(processed.len());
    for (domain, ()) in &processed {
        if let Some(entry) = journal.get(domain) {
            english_privacy_pages += entry.english_privacy_pages;
            if let Some(policy) = entry.policy {
                policies.push(policy);
            }
        }
    }

    let mut extraction = ExtractionFunnel {
        domains_total: crawl_funnel.domains_total,
        crawl_success: crawl_funnel.crawl_success,
        english_privacy_pages,
        ..Default::default()
    };
    let mut words: Vec<usize> = Vec::with_capacity(policies.len());
    for policy in &policies {
        extraction.extraction_success += 1;
        if !policy.annotations.is_empty() {
            extraction.annotated += 1;
        }
        if !policy.missing_aspects().is_empty() {
            extraction.missing_any_aspect += 1;
        }
        if !policy.fallbacks.is_empty() {
            extraction.policies_with_fallback += 1;
        }
        extraction.hallucinations_removed += policy.hallucinations_removed;
        words.push(policy.core_word_count);
    }
    words.sort_unstable();
    extraction.median_core_words = words.get(words.len() / 2).copied().unwrap_or(0);

    let health = RunHealth::assess(HealthInputs {
        crawl: crawl_funnel.clone(),
        extraction: extraction.clone(),
        quarantine: journal.quarantine_records(),
        poisoned_skipped,
        backpressure_stalls: outcome.backpressure_stalls,
        journal_write_errors: journal.write_errors(),
        disk_retries: journal.disk_retries(),
        transport: client.metrics(),
    });

    PipelineRun {
        crawl_funnel,
        extraction,
        dataset: Dataset { policies },
        usage: pipeline.chatbot.ledger().breakdown(),
        health,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aipan_webgen::{build_world, CompanyFate, WorldConfig};

    fn small_run(seed: u64, n: usize) -> (PipelineRun, aipan_webgen::World) {
        let world = build_world(WorldConfig::small(seed, n));
        let run = run_pipeline(
            &world,
            PipelineConfig {
                seed,
                ..Default::default()
            },
        );
        (run, world)
    }

    #[test]
    fn small_world_end_to_end() {
        let (run, world) = small_run(5, 120);
        assert!(run.crawl_funnel.crawl_success > 0);
        assert!(run.extraction.extraction_success > 0);
        assert!(run.extraction.annotated > 0);
        assert!(!run.dataset.is_empty());
        assert!(run
            .usage
            .iter()
            .any(|(task, u)| task == "extract_data_types" && u.calls > 0));
        // Every annotated domain must be a real domain of the world.
        for p in &run.dataset.policies {
            assert!(world.fates.contains_key(&p.domain));
        }
    }

    #[test]
    fn normal_sites_generally_annotated() {
        let (run, world) = small_run(7, 150);
        let normal_domains: Vec<&String> = world
            .fates
            .iter()
            .filter(|(_, f)| **f == CompanyFate::Normal)
            .map(|(d, _)| d)
            .collect();
        let annotated: usize = normal_domains
            .iter()
            .filter(|d| run.dataset.by_domain(d).is_some())
            .count();
        let rate = annotated as f64 / normal_domains.len() as f64;
        assert!(rate > 0.9, "only {rate} of normal sites annotated");
    }

    #[test]
    fn failure_fates_not_annotated() {
        let (run, world) = small_run(9, 400);
        for (domain, fate) in &world.fates {
            let bad = matches!(
                fate,
                CompanyFate::NoPolicy
                    | CompanyFate::PdfPolicy
                    | CompanyFate::NonEnglish
                    | CompanyFate::MixedLanguage
                    | CompanyFate::JsLoadedPolicy
                    | CompanyFate::ImagePolicy
                    | CompanyFate::HiddenLegalLink
                    | CompanyFate::JsActionLink
                    | CompanyFate::ConsentBoxLink
            );
            if bad {
                assert!(
                    run.dataset.by_domain(domain).is_none(),
                    "{domain} ({fate:?}) should not be annotated"
                );
            }
        }
    }

    #[test]
    fn deterministic_runs() {
        let (a, _) = small_run(11, 80);
        let (b, _) = small_run(11, 80);
        assert_eq!(a.dataset.len(), b.dataset.len());
        for (x, y) in a.dataset.policies.iter().zip(&b.dataset.policies) {
            assert_eq!(x.domain, y.domain);
            assert_eq!(x.annotations, y.annotations);
        }
        assert_eq!(a.extraction, b.extraction);
    }

    #[test]
    fn policy_page_selection_prefers_longest_english_page() {
        use aipan_net::fault::{FaultConfig, FaultInjector};
        use aipan_net::host::StaticSite;
        use aipan_net::http::Response;
        use aipan_net::{Client, Internet};

        let net = Internet::new();
        net.register(
            "pick.com",
            StaticSite::new()
                .page(
                    "/",
                    Response::html(
                        "<footer><a href=\"/privacy\">Privacy Center</a>\
                         <a href=\"/privacy-notice-full\">Privacy Policy</a></footer>",
                    ),
                )
                // Short hub page.
                .page("/privacy", Response::html("<p>Short privacy hub page.</p>"))
                // Long real policy.
                .page(
                    "/privacy-notice-full",
                    Response::html(
                        "<h2>Information We Collect</h2>\
                         <p>We collect your email address and phone number when you register \
                         for the services and when you communicate with our team.</p>\
                         <p>We retain records for as long as necessary to provide support.</p>",
                    ),
                ),
        );
        let client = Client::new(net, FaultInjector::new(0, FaultConfig::none()));
        let crawl = aipan_crawler::crawl_domain(&client, "pick.com");
        let pipeline = Pipeline::new(PipelineConfig::default());
        let policy = pipeline
            .process_domain(&crawl, Sector::InformationTechnology)
            .expect("policy extracted");
        assert_eq!(policy.policy_path, "/privacy-notice-full");
    }

    #[test]
    fn non_english_pages_filtered_before_selection() {
        use aipan_net::fault::{FaultConfig, FaultInjector};
        use aipan_net::host::StaticSite;
        use aipan_net::http::Response;
        use aipan_net::{Client, Internet};

        // The only privacy page is German → extraction must fail.
        let net = Internet::new();
        net.register(
            "de.com",
            StaticSite::new()
                .page(
                    "/",
                    Response::html("<footer><a href=\"/privacy\">Privacy Policy</a></footer>"),
                )
                .page(
                    "/privacy",
                    Response::html(aipan_webgen::policy::render_policy_german("Müller AG")),
                ),
        );
        let client = Client::new(net, FaultInjector::new(0, FaultConfig::none()));
        let crawl = aipan_crawler::crawl_domain(&client, "de.com");
        assert!(crawl.is_success(), "crawl itself succeeds");
        let pipeline = Pipeline::new(PipelineConfig::default());
        assert!(pipeline.process_domain(&crawl, Sector::Energy).is_none());
    }

    #[test]
    fn pdf_pages_never_selected() {
        use aipan_net::fault::{FaultConfig, FaultInjector};
        use aipan_net::host::StaticSite;
        use aipan_net::http::Response;
        use aipan_net::{Client, Internet};

        let net = Internet::new();
        net.register(
            "pdf.com",
            StaticSite::new()
                .page(
                    "/",
                    Response::html(
                        "<footer><a href=\"/privacy-policy.pdf\">Privacy Policy</a></footer>",
                    ),
                )
                .page(
                    "/privacy-policy.pdf",
                    Response::pdf("%PDF-1.7 long policy text here"),
                ),
        );
        let client = Client::new(net, FaultInjector::new(0, FaultConfig::none()));
        let crawl = aipan_crawler::crawl_domain(&client, "pdf.com");
        assert!(
            crawl.is_success(),
            "PDF still counts as a potential privacy page"
        );
        let pipeline = Pipeline::new(PipelineConfig::default());
        assert!(pipeline.process_domain(&crawl, Sector::Materials).is_none());
    }

    #[test]
    fn sector_attached_from_universe() {
        let (run, world) = small_run(13, 100);
        for p in &run.dataset.policies {
            let company = world.company(&p.domain).unwrap();
            assert_eq!(p.sector, company.sector);
        }
    }
}
