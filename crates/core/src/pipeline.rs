//! Whole-universe pipeline orchestration (Figure 1).

use crate::annotate::{annotate_policy_with, AnnotateOptions};
use crate::dataset::{AnnotatedPolicy, Dataset, SegmentationMethod};
use crate::journal::{JournalEntry, RunJournal};
use crate::segment::{self, Method, SegmentedPolicy};
use aipan_chatbot::{ModelProfile, SimulatedChatbot, TokenUsage};
use aipan_crawler::{
    crawl_all_with, CrawlFunnel, CrawlOptions, CrawlReport, DomainCrawl, PoolConfig,
};
use aipan_html::{extract, lang, ExtractedDoc};
use aipan_net::fault::FaultInjector;
use aipan_net::http::ContentType;
use aipan_net::Client;
use aipan_taxonomy::Sector;
use aipan_webgen::World;
use serde::{Deserialize, Serialize};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Seed for the chatbot's error models.
    pub seed: u64,
    /// Crawler/annotation worker threads.
    pub workers: usize,
    /// Chatbot error profile.
    pub profile: ModelProfile,
    /// Annotation options (fallback/verification ablations).
    pub annotate: AnnotateOptions,
    /// Whether to segment before annotating (ablation: `false` feeds the
    /// whole text to every aspect's task).
    pub use_segmentation: bool,
    /// Crawl resilience options: retry/backoff policy, fetch-session seed,
    /// and the optional per-domain crawl deadline.
    pub crawl: CrawlOptions,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            seed: 42,
            workers: PoolConfig::default().workers,
            profile: ModelProfile::gpt4_turbo(),
            annotate: AnnotateOptions::default(),
            use_segmentation: true,
            crawl: CrawlOptions::default(),
        }
    }
}

/// The §3.2 extraction/annotation funnel.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExtractionFunnel {
    /// Domains attempted.
    pub domains_total: usize,
    /// Domains with a successful crawl.
    pub crawl_success: usize,
    /// Domains with a successful text extraction (§3.2.1 definition).
    pub extraction_success: usize,
    /// Domains receiving at least one annotation (the paper's 2529).
    pub annotated: usize,
    /// Domains missing annotations for ≥1 studied aspect (the paper's 375).
    pub missing_any_aspect: usize,
    /// Policies where the full-text fallback fired at least once (708).
    pub policies_with_fallback: usize,
    /// English, deduplicated potential privacy pages (drives the 1.8/domain
    /// average).
    pub english_privacy_pages: usize,
    /// Median core word count of extracted policies (paper: 2671).
    pub median_core_words: usize,
    /// Hallucinated annotations removed by verification.
    pub hallucinations_removed: usize,
}

impl ExtractionFunnel {
    /// Extraction success over all domains (paper: 88%).
    pub fn extraction_rate(&self) -> f64 {
        ratio(self.extraction_success, self.domains_total)
    }

    /// Extraction success over crawled domains (paper: 96.1%).
    pub fn extraction_rate_of_crawled(&self) -> f64 {
        ratio(self.extraction_success, self.crawl_success)
    }

    /// English privacy pages per successful domain (paper: 1.8).
    pub fn avg_english_privacy_pages(&self) -> f64 {
        ratio(self.english_privacy_pages, self.crawl_success)
    }
}

fn ratio(n: usize, d: usize) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64
    }
}

/// Result of a full pipeline run.
pub struct PipelineRun {
    /// Crawl funnel (§3.1).
    pub crawl_funnel: CrawlFunnel,
    /// Extraction/annotation funnel (§3.2).
    pub extraction: ExtractionFunnel,
    /// The structured dataset.
    pub dataset: Dataset,
    /// Per-task token usage.
    pub usage: Vec<(String, TokenUsage)>,
}

/// The pipeline: a configured chatbot plus processing logic.
pub struct Pipeline {
    config: PipelineConfig,
    chatbot: SimulatedChatbot,
}

impl Pipeline {
    /// Build a pipeline from `config`.
    pub fn new(config: PipelineConfig) -> Pipeline {
        let chatbot = SimulatedChatbot::new(config.profile.clone(), config.seed);
        Pipeline { config, chatbot }
    }

    /// The chatbot in use.
    pub fn chatbot(&self) -> &SimulatedChatbot {
        &self.chatbot
    }

    /// Process one crawled domain into an annotated policy.
    ///
    /// Returns `None` when the crawl failed, when no page survives the
    /// content/language filters, or when text extraction fails per the
    /// §3.2.1 success definition.
    pub fn process_domain(&self, crawl: &DomainCrawl, sector: Sector) -> Option<AnnotatedPolicy> {
        self.process_domain_full(crawl, sector).policy
    }

    /// Process one crawled domain, returning its funnel contributions
    /// alongside the policy: the pages are extracted exactly once and both
    /// the `english_privacy_pages` count and the policy-page selection come
    /// from that single pass (`run_pipeline` previously re-extracted the
    /// whole corpus a second time just to count pages).
    pub fn process_domain_full(&self, crawl: &DomainCrawl, sector: Sector) -> DomainOutcome {
        if !crawl.is_success() {
            return DomainOutcome {
                english_privacy_pages: 0,
                policy: None,
            };
        }
        let pages = self.english_privacy_pages(crawl);
        let english_privacy_pages = pages.len();
        // Choose the main policy page: the English privacy page with the
        // most words (privacy centers and supplemental notices are shorter
        // than the policy itself).
        let policy = pages
            .into_iter()
            .max_by_key(|(doc, _)| doc.word_count())
            .and_then(|(doc, path)| self.annotate_page(crawl, sector, &doc, path));
        DomainOutcome {
            english_privacy_pages,
            policy,
        }
    }

    fn annotate_page(
        &self,
        crawl: &DomainCrawl,
        sector: Sector,
        doc: &ExtractedDoc,
        path: String,
    ) -> Option<AnnotatedPolicy> {
        let seg = if self.config.use_segmentation {
            segment::segment(&self.chatbot, doc)
        } else {
            SegmentedPolicy::whole_text(doc)
        };
        if !seg.is_successful_extraction(doc) {
            return None;
        }
        let outcome = annotate_policy_with(&self.chatbot, doc, &seg, self.config.annotate);
        Some(AnnotatedPolicy {
            domain: crawl.domain.clone(),
            sector,
            annotations: outcome.annotations,
            fallbacks: outcome.fallbacks,
            hallucinations_removed: outcome.hallucinations_removed,
            core_word_count: seg.core_word_count(doc),
            segmentation: match seg.method {
                Method::Headings => SegmentationMethod::Headings,
                Method::TextAnalysis => SegmentationMethod::TextAnalysis,
            },
            policy_path: path,
        })
    }

    /// English, HTML, deduplicated privacy pages of a crawl.
    pub fn english_privacy_pages(&self, crawl: &DomainCrawl) -> Vec<(ExtractedDoc, String)> {
        crawl
            .privacy_pages()
            .into_iter()
            .filter(|p| p.content_type == ContentType::Html)
            .filter_map(|p| {
                let doc = extract(&p.body);
                let text = doc.text();
                if text.trim().is_empty() || !lang::is_english(&text) {
                    None
                } else {
                    Some((doc, p.final_url.path.clone()))
                }
            })
            .collect()
    }
}

/// One domain's contribution to the §3.2 funnel, from a single extraction
/// pass (see [`Pipeline::process_domain_full`]).
#[derive(Debug)]
pub struct DomainOutcome {
    /// English, HTML, deduplicated privacy pages found on the domain.
    pub english_privacy_pages: usize,
    /// The annotated policy, if one was extracted.
    pub policy: Option<AnnotatedPolicy>,
}

/// Run the full pipeline over a simulated world.
pub fn run_pipeline(world: &World, config: PipelineConfig) -> PipelineRun {
    run_pipeline_resumable(world, config, &mut RunJournal::new())
}

/// Run the full pipeline, checkpointing into (and resuming from) `journal`.
///
/// Domains already present in `journal` are replayed from their recorded
/// [`JournalEntry`] instead of re-annotated; every newly processed domain
/// is journaled. Because each per-domain outcome is a pure deterministic
/// function of `(world, config)`, a run resumed from any prefix of a prior
/// run's journal produces a byte-identical dataset and funnel — only token
/// usage differs (replayed domains cost no chatbot calls). Crawling is
/// always re-run: it is cheap, deterministic, and its transport metrics
/// are not part of the journaled state.
pub fn run_pipeline_resumable(
    world: &World,
    config: PipelineConfig,
    journal: &mut RunJournal,
) -> PipelineRun {
    let pipeline = Pipeline::new(config.clone());
    let client = Client::new(
        world.internet.clone(),
        FaultInjector::new(world.config.seed, world.config.faults),
    );
    let domains: Vec<String> = world
        .universe
        .unique_domains()
        .iter()
        .map(|c| c.domain.clone())
        .collect();
    let crawls = crawl_all_with(
        &client,
        &domains,
        PoolConfig {
            workers: config.workers,
        },
        &config.crawl,
    );
    let report = CrawlReport::new(crawls);

    // Process domains in parallel (the chatbot is Send + Sync and clones
    // share the usage ledger). Each outcome carries the domain's funnel
    // contribution so the corpus is extracted exactly once. Domains with a
    // journaled outcome are skipped and replayed from the journal below.
    let todo: Vec<&DomainCrawl> = report
        .crawls
        .iter()
        .filter(|c| !journal.contains(&c.domain))
        .collect();
    for (crawl, outcome) in
        todo.iter()
            .zip(parallel_process(&pipeline, world, &todo, config.workers))
    {
        journal.insert(JournalEntry {
            domain: crawl.domain.clone(),
            english_privacy_pages: outcome.english_privacy_pages,
            policy: outcome.policy,
        });
    }

    // Assemble from the journal in crawl order (sorted by domain), using
    // only entries for domains in this run — a stale journal from another
    // world cannot leak extra policies in.
    let mut english_privacy_pages = 0usize;
    let mut policies: Vec<AnnotatedPolicy> = Vec::with_capacity(report.crawls.len());
    for crawl in &report.crawls {
        if let Some(entry) = journal.get(&crawl.domain) {
            english_privacy_pages += entry.english_privacy_pages;
            if let Some(policy) = &entry.policy {
                policies.push(policy.clone());
            }
        }
    }

    let mut extraction = ExtractionFunnel {
        domains_total: report.funnel.domains_total,
        crawl_success: report.funnel.crawl_success,
        english_privacy_pages,
        ..Default::default()
    };
    let mut words: Vec<usize> = Vec::with_capacity(policies.len());
    for policy in &policies {
        extraction.extraction_success += 1;
        if !policy.annotations.is_empty() {
            extraction.annotated += 1;
        }
        if !policy.missing_aspects().is_empty() {
            extraction.missing_any_aspect += 1;
        }
        if !policy.fallbacks.is_empty() {
            extraction.policies_with_fallback += 1;
        }
        extraction.hallucinations_removed += policy.hallucinations_removed;
        words.push(policy.core_word_count);
    }
    words.sort_unstable();
    extraction.median_core_words = words.get(words.len() / 2).copied().unwrap_or(0);

    PipelineRun {
        crawl_funnel: report.funnel,
        extraction,
        dataset: Dataset { policies },
        usage: pipeline.chatbot.ledger().breakdown(),
    }
}

fn parallel_process(
    pipeline: &Pipeline,
    world: &World,
    crawls: &[&DomainCrawl],
    workers: usize,
) -> Vec<DomainOutcome> {
    use work_queue::run_indexed;
    let sector_of = |domain: &str| {
        world
            .company(domain)
            .map(|c| c.sector)
            .unwrap_or(Sector::Industrials)
    };
    run_indexed(crawls, workers.max(1), |crawl| {
        pipeline.process_domain_full(crawl, sector_of(&crawl.domain))
    })
}

/// Minimal indexed parallel-map over a slice using scoped threads (avoids
/// pulling a full thread-pool dependency; work items are chunked by index
/// stride so output order is reconstructible).
mod work_queue {
    pub fn run_indexed<T: Sync, R: Send>(
        items: &[T],
        workers: usize,
        f: impl Fn(&T) -> R + Sync,
    ) -> Vec<R> {
        let n = items.len();
        if workers <= 1 || n <= 1 {
            // Serial fast path: no threads, no locks.
            return items.iter().map(f).collect();
        }
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let results = std::sync::Mutex::new(Vec::<(usize, R)>::with_capacity(n));
        // Worker closures never panic while holding the lock with interesting
        // state half-written, so recovering from poisoning is sound here.
        let _ = crossbeam::scope(|scope| {
            for _ in 0..workers.min(n) {
                scope.spawn(|_| {
                    // Each worker accumulates its results locally and takes
                    // the lock once at the end instead of once per item.
                    let mut batch = Vec::<(usize, R)>::with_capacity(n / workers.max(1) + 1);
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        batch.push((i, f(&items[i])));
                    }
                    results
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .extend(batch);
                });
            }
        });
        let collected = results
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        for (i, r) in collected {
            if let Some(slot) = out.get_mut(i) {
                *slot = Some(r);
            }
        }
        // If a worker died mid-item (spawn failure, panic), repair the gaps
        // serially rather than aborting the whole run.
        out.iter_mut().enumerate().for_each(|(i, slot)| {
            if slot.is_none() {
                if let Some(item) = items.get(i) {
                    *slot = Some(f(item));
                }
            }
        });
        out.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aipan_webgen::{build_world, CompanyFate, WorldConfig};

    fn small_run(seed: u64, n: usize) -> (PipelineRun, aipan_webgen::World) {
        let world = build_world(WorldConfig::small(seed, n));
        let run = run_pipeline(
            &world,
            PipelineConfig {
                seed,
                ..Default::default()
            },
        );
        (run, world)
    }

    #[test]
    fn small_world_end_to_end() {
        let (run, world) = small_run(5, 120);
        assert!(run.crawl_funnel.crawl_success > 0);
        assert!(run.extraction.extraction_success > 0);
        assert!(run.extraction.annotated > 0);
        assert!(!run.dataset.is_empty());
        assert!(run
            .usage
            .iter()
            .any(|(task, u)| task == "extract_data_types" && u.calls > 0));
        // Every annotated domain must be a real domain of the world.
        for p in &run.dataset.policies {
            assert!(world.fates.contains_key(&p.domain));
        }
    }

    #[test]
    fn normal_sites_generally_annotated() {
        let (run, world) = small_run(7, 150);
        let normal_domains: Vec<&String> = world
            .fates
            .iter()
            .filter(|(_, f)| **f == CompanyFate::Normal)
            .map(|(d, _)| d)
            .collect();
        let annotated: usize = normal_domains
            .iter()
            .filter(|d| run.dataset.by_domain(d).is_some())
            .count();
        let rate = annotated as f64 / normal_domains.len() as f64;
        assert!(rate > 0.9, "only {rate} of normal sites annotated");
    }

    #[test]
    fn failure_fates_not_annotated() {
        let (run, world) = small_run(9, 400);
        for (domain, fate) in &world.fates {
            let bad = matches!(
                fate,
                CompanyFate::NoPolicy
                    | CompanyFate::PdfPolicy
                    | CompanyFate::NonEnglish
                    | CompanyFate::MixedLanguage
                    | CompanyFate::JsLoadedPolicy
                    | CompanyFate::ImagePolicy
                    | CompanyFate::HiddenLegalLink
                    | CompanyFate::JsActionLink
                    | CompanyFate::ConsentBoxLink
            );
            if bad {
                assert!(
                    run.dataset.by_domain(domain).is_none(),
                    "{domain} ({fate:?}) should not be annotated"
                );
            }
        }
    }

    #[test]
    fn deterministic_runs() {
        let (a, _) = small_run(11, 80);
        let (b, _) = small_run(11, 80);
        assert_eq!(a.dataset.len(), b.dataset.len());
        for (x, y) in a.dataset.policies.iter().zip(&b.dataset.policies) {
            assert_eq!(x.domain, y.domain);
            assert_eq!(x.annotations, y.annotations);
        }
        assert_eq!(a.extraction, b.extraction);
    }

    #[test]
    fn policy_page_selection_prefers_longest_english_page() {
        use aipan_net::fault::{FaultConfig, FaultInjector};
        use aipan_net::host::StaticSite;
        use aipan_net::http::Response;
        use aipan_net::{Client, Internet};

        let net = Internet::new();
        net.register(
            "pick.com",
            StaticSite::new()
                .page(
                    "/",
                    Response::html(
                        "<footer><a href=\"/privacy\">Privacy Center</a>\
                         <a href=\"/privacy-notice-full\">Privacy Policy</a></footer>",
                    ),
                )
                // Short hub page.
                .page("/privacy", Response::html("<p>Short privacy hub page.</p>"))
                // Long real policy.
                .page(
                    "/privacy-notice-full",
                    Response::html(
                        "<h2>Information We Collect</h2>\
                         <p>We collect your email address and phone number when you register \
                         for the services and when you communicate with our team.</p>\
                         <p>We retain records for as long as necessary to provide support.</p>",
                    ),
                ),
        );
        let client = Client::new(net, FaultInjector::new(0, FaultConfig::none()));
        let crawl = aipan_crawler::crawl_domain(&client, "pick.com");
        let pipeline = Pipeline::new(PipelineConfig::default());
        let policy = pipeline
            .process_domain(&crawl, Sector::InformationTechnology)
            .expect("policy extracted");
        assert_eq!(policy.policy_path, "/privacy-notice-full");
    }

    #[test]
    fn non_english_pages_filtered_before_selection() {
        use aipan_net::fault::{FaultConfig, FaultInjector};
        use aipan_net::host::StaticSite;
        use aipan_net::http::Response;
        use aipan_net::{Client, Internet};

        // The only privacy page is German → extraction must fail.
        let net = Internet::new();
        net.register(
            "de.com",
            StaticSite::new()
                .page(
                    "/",
                    Response::html("<footer><a href=\"/privacy\">Privacy Policy</a></footer>"),
                )
                .page(
                    "/privacy",
                    Response::html(aipan_webgen::policy::render_policy_german("Müller AG")),
                ),
        );
        let client = Client::new(net, FaultInjector::new(0, FaultConfig::none()));
        let crawl = aipan_crawler::crawl_domain(&client, "de.com");
        assert!(crawl.is_success(), "crawl itself succeeds");
        let pipeline = Pipeline::new(PipelineConfig::default());
        assert!(pipeline.process_domain(&crawl, Sector::Energy).is_none());
    }

    #[test]
    fn pdf_pages_never_selected() {
        use aipan_net::fault::{FaultConfig, FaultInjector};
        use aipan_net::host::StaticSite;
        use aipan_net::http::Response;
        use aipan_net::{Client, Internet};

        let net = Internet::new();
        net.register(
            "pdf.com",
            StaticSite::new()
                .page(
                    "/",
                    Response::html(
                        "<footer><a href=\"/privacy-policy.pdf\">Privacy Policy</a></footer>",
                    ),
                )
                .page(
                    "/privacy-policy.pdf",
                    Response::pdf("%PDF-1.7 long policy text here"),
                ),
        );
        let client = Client::new(net, FaultInjector::new(0, FaultConfig::none()));
        let crawl = aipan_crawler::crawl_domain(&client, "pdf.com");
        assert!(
            crawl.is_success(),
            "PDF still counts as a potential privacy page"
        );
        let pipeline = Pipeline::new(PipelineConfig::default());
        assert!(pipeline.process_domain(&crawl, Sector::Materials).is_none());
    }

    #[test]
    fn sector_attached_from_universe() {
        let (run, world) = small_run(13, 100);
        for p in &run.dataset.policies {
            let company = world.company(&p.domain).unwrap();
            assert_eq!(p.sector, company.sector);
        }
    }
}
