//! Two-step policy segmentation (Appendix B).
//!
//! **Step 1 — heading-based.** Headings are detected from the extracted
//! lines (`<h1>`–`<h6>` plus bold-on-own-line, via `aipan-html`). If a page
//! has more than five headings, a table of contents (indented by heading
//! rank) is labeled by the chatbot, and every body line is assigned the
//! aspects of its nearest preceding heading.
//!
//! **Step 2 — text analysis.** If step 1 is inapplicable (five or fewer
//! headings) or yields no text for one of the four studied aspects, the
//! entire text is fed to the chatbot's segmentation task and the per-line
//! labels are merged in (step-1 assignments keep priority for the aspects
//! they found).

use aipan_chatbot::prompt::{TaskKind, TaskPrompt};
use aipan_chatbot::{protocol, Chatbot};
use aipan_html::{ExtractedDoc, LineKind};
use aipan_taxonomy::records::AspectKind;
use aipan_taxonomy::Aspect;
use std::collections::BTreeMap;

/// Minimum heading count for the heading-based path ("If a page contains
/// more than five headings…").
pub const MIN_HEADINGS: usize = 6;

/// How a policy was segmented.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Heading-based (Appendix B step 1).
    Headings,
    /// Whole-text analysis (Appendix B step 2), possibly merged on top of a
    /// partial heading-based result.
    TextAnalysis,
}

/// A segmented policy: per-aspect line assignments over the extracted doc.
#[derive(Debug, Clone)]
pub struct SegmentedPolicy {
    /// For each aspect, the (1-based) line numbers assigned to it,
    /// ascending.
    pub aspect_lines: BTreeMap<Aspect, Vec<usize>>,
    /// Which path produced the segmentation.
    pub method: Method,
}

impl SegmentedPolicy {
    /// A degenerate segmentation assigning every line to every studied
    /// aspect (the no-segmentation ablation: each task reads the whole
    /// text).
    pub fn whole_text(doc: &ExtractedDoc) -> SegmentedPolicy {
        let all: Vec<usize> = (1..=doc.lines.len()).collect();
        let mut aspect_lines = BTreeMap::new();
        for aspect in [
            Aspect::Types,
            Aspect::Purposes,
            Aspect::Handling,
            Aspect::Rights,
        ] {
            aspect_lines.insert(aspect, all.clone());
        }
        SegmentedPolicy {
            aspect_lines,
            method: Method::TextAnalysis,
        }
    }

    /// Line numbers for `aspect` (empty if none).
    pub fn lines_for(&self, aspect: Aspect) -> &[usize] {
        self.aspect_lines
            .get(&aspect)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Non-heading text lines for `aspect`, as (line number, text) pairs.
    pub fn text_for<'d>(&self, aspect: Aspect, doc: &'d ExtractedDoc) -> Vec<(usize, &'d str)> {
        self.lines_for(aspect)
            .iter()
            .filter_map(|&n| {
                let line = doc.lines.get(n - 1)?;
                if matches!(line.kind, LineKind::Heading(_)) {
                    None
                } else {
                    Some((n, line.text.as_str()))
                }
            })
            .collect()
    }

    /// Whether the extraction is *successful* per §3.2.1: text exists for
    /// some aspect other than audiences, changes, or other.
    pub fn is_successful_extraction(&self, doc: &ExtractedDoc) -> bool {
        [
            Aspect::Types,
            Aspect::Methods,
            Aspect::Purposes,
            Aspect::Handling,
            Aspect::Sharing,
            Aspect::Rights,
        ]
        .iter()
        .any(|&a| !self.text_for(a, doc).is_empty())
    }

    /// Word count over the policy's core aspects (excluding audiences,
    /// changes, other — the measure behind the paper's 2671-word median).
    pub fn core_word_count(&self, doc: &ExtractedDoc) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut words = 0usize;
        for &aspect in &[
            Aspect::Types,
            Aspect::Methods,
            Aspect::Purposes,
            Aspect::Handling,
            Aspect::Sharing,
            Aspect::Rights,
        ] {
            for &n in self.lines_for(aspect) {
                if seen.insert(n) {
                    if let Some(line) = doc.lines.get(n - 1) {
                        words += line.text.split_whitespace().count();
                    }
                }
            }
        }
        words
    }

    /// Whether any of the four annotated aspects has no text.
    pub fn missing_studied_aspect(&self, doc: &ExtractedDoc) -> bool {
        [
            AspectKind::Types,
            AspectKind::Purposes,
            AspectKind::Handling,
            AspectKind::Rights,
        ]
        .iter()
        .any(|k| self.text_for(aspect_of(*k), doc).is_empty())
    }
}

fn aspect_of(kind: AspectKind) -> Aspect {
    match kind {
        AspectKind::Types => Aspect::Types,
        AspectKind::Purposes => Aspect::Purposes,
        AspectKind::Handling => Aspect::Handling,
        AspectKind::Rights => Aspect::Rights,
    }
}

/// Segment `doc` using the two-step process.
pub fn segment(chatbot: &dyn Chatbot, doc: &ExtractedDoc) -> SegmentedPolicy {
    let heading_lines: Vec<(usize, &aipan_html::Line)> = doc
        .lines
        .iter()
        .enumerate()
        .filter_map(|(i, l)| match l.kind {
            LineKind::Heading(_) => Some((i + 1, l)),
            LineKind::Text => None,
        })
        .collect();

    let heading_seg = if heading_lines.len() >= MIN_HEADINGS {
        Some(segment_by_headings(chatbot, doc, &heading_lines))
    } else {
        None
    };

    match heading_seg {
        Some(seg) if !seg.missing_studied_aspect(doc) => seg,
        Some(seg) => merge(seg, segment_by_text(chatbot, doc), doc),
        None => segment_by_text(chatbot, doc),
    }
}

/// Step 1: label the table of contents, assign body lines to the nearest
/// preceding heading.
fn segment_by_headings(
    chatbot: &dyn Chatbot,
    doc: &ExtractedDoc,
    headings: &[(usize, &aipan_html::Line)],
) -> SegmentedPolicy {
    // Build the TOC preserving original line numbers (the hierarchy implied
    // by heading ranks is cosmetic for the simulated model).
    let toc_input =
        protocol::number_lines_with(headings.iter().map(|(n, line)| (*n, line.text.as_str())));
    let prompt = TaskPrompt::build(TaskKind::LabelHeadings);
    let output = chatbot.complete(&prompt, &toc_input);
    let labels = protocol::parse_labels(&output);
    let label_map: BTreeMap<usize, Vec<Aspect>> = labels.into_iter().collect();

    let mut aspect_lines: BTreeMap<Aspect, Vec<usize>> = BTreeMap::new();
    let mut current: &[Aspect] = &[Aspect::Other];
    for (idx, line) in doc.lines.iter().enumerate() {
        let n = idx + 1;
        if matches!(line.kind, LineKind::Heading(_)) {
            current = label_map
                .get(&n)
                .map(Vec::as_slice)
                .unwrap_or(&[Aspect::Other]);
        }
        for &aspect in current {
            aspect_lines.entry(aspect).or_default().push(n);
        }
    }
    SegmentedPolicy {
        aspect_lines,
        method: Method::Headings,
    }
}

/// Step 2: whole-text line labeling.
fn segment_by_text(chatbot: &dyn Chatbot, doc: &ExtractedDoc) -> SegmentedPolicy {
    let input = protocol::number_lines(doc.lines.iter().map(|l| l.text.as_str()));
    let prompt = TaskPrompt::build(TaskKind::SegmentText);
    let output = chatbot.complete(&prompt, &input);
    let mut aspect_lines: BTreeMap<Aspect, Vec<usize>> = BTreeMap::new();
    for (n, aspects) in protocol::parse_labels(&output) {
        for aspect in aspects {
            aspect_lines.entry(aspect).or_default().push(n);
        }
    }
    for lines in aspect_lines.values_mut() {
        lines.sort_unstable();
        lines.dedup();
    }
    SegmentedPolicy {
        aspect_lines,
        method: Method::TextAnalysis,
    }
}

/// Merge: keep the heading-based assignment for aspects it found; take the
/// text-analysis assignment for aspects it missed.
fn merge(
    heading_seg: SegmentedPolicy,
    text_seg: SegmentedPolicy,
    doc: &ExtractedDoc,
) -> SegmentedPolicy {
    let mut merged = heading_seg;
    for (aspect, lines) in text_seg.aspect_lines {
        if merged.text_for(aspect, doc).is_empty() {
            merged.aspect_lines.insert(aspect, lines);
        }
    }
    merged.method = Method::TextAnalysis;
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use aipan_chatbot::{ModelProfile, SimulatedChatbot};
    use aipan_html::extract;

    fn oracle() -> SimulatedChatbot {
        SimulatedChatbot::new(ModelProfile::oracle(), 1)
    }

    fn heading_policy_html() -> String {
        "<h2>Introduction</h2><p>Welcome to our policy.</p>\
         <h2>Information We Collect</h2><p>We collect your email address.</p>\
         <h2>How We Use Your Information</h2><p>We use data for analytics.</p>\
         <h2>Data Retention and Security</h2><p>We retain data for as long as necessary.</p>\
         <h2>Your Rights and Choices</h2><p>You may update or correct your information.</p>\
         <h2>Changes to This Policy</h2><p>We may update this policy.</p>\
         <h2>Contact Us</h2><p>Reach out any time.</p>"
            .to_string()
    }

    #[test]
    fn heading_segmentation_assigns_bodies() {
        let doc = extract(&heading_policy_html());
        assert!(doc.heading_count() >= MIN_HEADINGS);
        let seg = segment(&oracle(), &doc);
        assert_eq!(seg.method, Method::Headings);
        let types = seg.text_for(Aspect::Types, &doc);
        assert_eq!(types.len(), 1);
        assert!(types[0].1.contains("email address"));
        let rights = seg.text_for(Aspect::Rights, &doc);
        assert!(rights[0].1.contains("update or correct"));
        assert!(seg.is_successful_extraction(&doc));
    }

    #[test]
    fn short_policy_uses_text_analysis() {
        let doc = extract(
            "<p>We collect your email address.</p>\
             <p>We use data for analytics.</p>\
             <p>We retain data for as long as necessary.</p>\
             <p>You may update or correct your information.</p>",
        );
        assert!(doc.heading_count() < MIN_HEADINGS);
        let seg = segment(&oracle(), &doc);
        assert_eq!(seg.method, Method::TextAnalysis);
        assert!(!seg.text_for(Aspect::Types, &doc).is_empty());
        assert!(!seg.text_for(Aspect::Handling, &doc).is_empty());
        assert!(seg.is_successful_extraction(&doc));
    }

    #[test]
    fn heading_segmentation_falls_back_for_missing_aspects() {
        // Headings exist, but handling/rights content hides under a generic
        // "Additional Information" heading → step 2 must recover it.
        let html = "<h2>Introduction</h2><p>Welcome.</p>\
             <h2>Information We Collect</h2><p>We collect your email address.</p>\
             <h2>How We Use Your Information</h2><p>We use data for analytics.</p>\
             <h2>How We Share Your Information</h2><p>We do not sell records.</p>\
             <h2>Changes to This Policy</h2><p>We may update this policy.</p>\
             <h2>Additional Information</h2>\
             <p>We retain your data for as long as necessary.</p>\
             <p>You may update or correct your information.</p>\
             <h2>Contact Us</h2><p>Write to us.</p>";
        let doc = extract(html);
        let seg = segment(&oracle(), &doc);
        assert_eq!(seg.method, Method::TextAnalysis, "merged result");
        assert!(!seg.text_for(Aspect::Handling, &doc).is_empty());
        assert!(!seg.text_for(Aspect::Rights, &doc).is_empty());
        // Heading-based assignment retained for types.
        assert!(seg
            .text_for(Aspect::Types, &doc)
            .iter()
            .any(|(_, t)| t.contains("email address")));
    }

    #[test]
    fn empty_doc_fails_extraction() {
        let doc = extract("<div id=\"root\"></div><script>app()</script>");
        let seg = segment(&oracle(), &doc);
        assert!(!seg.is_successful_extraction(&doc));
    }

    #[test]
    fn core_word_count_excludes_changes_and_other() {
        let doc = extract(&heading_policy_html());
        let seg = segment(&oracle(), &doc);
        let core = seg.core_word_count(&doc);
        let total = doc.word_count();
        assert!(core > 0 && core < total, "core {core} vs total {total}");
    }
}
