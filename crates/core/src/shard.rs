//! Sharded, incrementally-written journal segments.
//!
//! The single-file [`RunJournal`](crate::RunJournal) is rewritten in full
//! at the end of a run; a process killed mid-run loses every domain since
//! the last rewrite. A [`ShardedJournal`] instead assigns each domain to
//! one of `N` segments by a stable hash of its name and **appends** the
//! domain's entry to that segment's JSONL file the moment it is processed.
//! Streaming workers touch disjoint locks most of the time (different
//! domains usually hash to different shards), and a kill at any instant
//! costs at most the one torn line per segment that
//! [`RunJournal::from_jsonl`]'s tolerant parser already drops.
//!
//! The shard assignment is a pure function of the domain name, so segment
//! contents are deterministic and worker-count-invariant; the merged view
//! ([`ShardedJournal::merged`]) is the same sorted journal a serial run
//! would have produced.

use crate::journal::{JournalEntry, RunJournal};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default segment count: enough that eight streaming workers rarely
/// collide on one shard lock, few enough that a run directory stays tidy.
pub const DEFAULT_SHARDS: usize = 8;

/// Stable shard assignment for `domain` (FNV-1a over the name). A pure
/// function of the domain, so segment contents do not depend on worker
/// count or scheduling.
pub fn shard_of(domain: &str, shards: usize) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in domain.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % shards.max(1) as u64) as usize
}

/// Path of segment `index` for journal base path `base`
/// (`<base>.shard007.jsonl`).
pub fn segment_path(base: &Path, index: usize) -> PathBuf {
    let mut name = base.as_os_str().to_os_string();
    name.push(format!(".shard{index:03}.jsonl"));
    PathBuf::from(name)
}

struct Shard {
    entries: std::collections::BTreeMap<String, JournalEntry>,
    writer: Option<File>,
}

/// A journal split into independently locked, incrementally appended
/// segments. Thread-safe: streaming workers record finished domains
/// concurrently through `&self`.
pub struct ShardedJournal {
    shards: Vec<Mutex<Shard>>,
    write_errors: AtomicUsize,
}

impl ShardedJournal {
    /// An in-memory sharded journal (no segment files): the checkpoint
    /// store for callers that only want resume-from-a-prior-`RunJournal`
    /// semantics without durability.
    pub fn in_memory(shards: usize) -> ShardedJournal {
        let shards = shards.max(1);
        ShardedJournal {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: Default::default(),
                        writer: None,
                    })
                })
                .collect(),
            write_errors: AtomicUsize::new(0),
        }
    }

    /// Open (or create) a durable sharded journal rooted at `base`.
    ///
    /// Seeds the in-memory state from the legacy single-file journal at
    /// `base` (if present) and from every existing segment file — both
    /// through the torn-tail-tolerant JSONL parser — then opens each
    /// segment for append. Segment entries override legacy ones. A segment
    /// that cannot be opened for writing degrades to memory-only (counted
    /// in [`ShardedJournal::write_errors`]); the run still completes.
    pub fn open(base: &Path, shards: usize) -> ShardedJournal {
        let journal = ShardedJournal::in_memory(shards);
        if let Ok(text) = std::fs::read_to_string(base) {
            for entry in RunJournal::from_jsonl(&text).iter() {
                journal.insert_in_memory(entry.clone());
            }
        }
        for (index, shard) in journal.shards.iter().enumerate() {
            let path = segment_path(base, index);
            let mut shard = shard.lock();
            if let Ok(text) = std::fs::read_to_string(&path) {
                for entry in RunJournal::from_jsonl(&text).iter() {
                    shard.entries.insert(entry.domain.clone(), entry.clone());
                }
            }
            match OpenOptions::new().create(true).append(true).open(&path) {
                Ok(file) => shard.writer = Some(file),
                Err(_) => {
                    journal.write_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        journal
    }

    /// Record a finished domain: insert it into its shard and append one
    /// JSONL line to the shard's segment file (if durable). The line is
    /// serialized *before* the shard lock is taken; a failed append leaves
    /// the entry in memory (the current run is unaffected, the domain is
    /// re-processed on a future resume) and bumps
    /// [`ShardedJournal::write_errors`].
    pub fn record(&self, entry: JournalEntry) {
        let index = shard_of(&entry.domain, self.shards.len());
        // JournalEntry contains no map types, so to_string cannot fail.
        let line = serde_json::to_string(&entry).unwrap_or_default();
        let Some(shard) = self.shards.get(index) else {
            return;
        };
        let mut shard = shard.lock();
        let mut failed = false;
        if let Some(writer) = shard.writer.as_mut() {
            failed = writer
                .write_all(line.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .is_err();
        }
        shard.entries.insert(entry.domain.clone(), entry);
        drop(shard);
        if failed {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn insert_in_memory(&self, entry: JournalEntry) {
        let index = shard_of(&entry.domain, self.shards.len());
        if let Some(shard) = self.shards.get(index) {
            shard.lock().entries.insert(entry.domain.clone(), entry);
        }
    }

    /// Whether `domain` has a journaled outcome.
    pub fn contains(&self, domain: &str) -> bool {
        let index = shard_of(domain, self.shards.len());
        self.shards
            .get(index)
            .is_some_and(|shard| shard.lock().entries.contains_key(domain))
    }

    /// The journaled outcome for `domain`, if any (cloned out of the
    /// shard's lock).
    pub fn get(&self, domain: &str) -> Option<JournalEntry> {
        let index = shard_of(domain, self.shards.len());
        self.shards
            .get(index)
            .and_then(|shard| shard.lock().entries.get(domain).cloned())
    }

    /// Total journaled domains across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.lock().entries.len())
            .sum()
    }

    /// Whether no domain is journaled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of segments.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Appends that failed (plus segments that could not be opened for
    /// writing). Non-zero means durability is degraded — affected domains
    /// will re-process on resume — but never that the current run's
    /// results are wrong.
    pub fn write_errors(&self) -> usize {
        self.write_errors.load(Ordering::Relaxed)
    }

    /// Merge every shard into one sorted [`RunJournal`] — identical to the
    /// journal a serial, single-file run would have produced.
    pub fn merged(&self) -> RunJournal {
        let mut merged = RunJournal::new();
        for shard in &self.shards {
            for entry in shard.lock().entries.values() {
                merged.insert(entry.clone());
            }
        }
        merged
    }

    /// Rewrite the merged journal to the legacy single file at `base` and
    /// delete the segment files: the end-of-run consolidation that keeps
    /// the on-disk artifact format of pre-sharding runs.
    pub fn consolidate(&self, base: &Path) -> std::io::Result<()> {
        std::fs::write(base, self.merged().to_jsonl())?;
        for index in 0..self.shards.len() {
            let path = segment_path(base, index);
            if path.exists() {
                std::fs::remove_file(&path)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(domain: &str, pages: usize) -> JournalEntry {
        JournalEntry {
            domain: domain.to_string(),
            english_privacy_pages: pages,
            policy: None,
        }
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aipan-shard-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        for n in [1usize, 2, 8, 13] {
            for domain in ["a.com", "b.com", "walmart.com", ""] {
                let s = shard_of(domain, n);
                assert!(s < n);
                assert_eq!(s, shard_of(domain, n), "must be deterministic");
            }
        }
        // FNV actually spreads: 100 domains over 8 shards hit every shard.
        let mut seen = [false; 8];
        for i in 0..100 {
            seen[shard_of(&format!("company{i}.com"), 8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn in_memory_roundtrip_matches_runjournal() {
        let journal = ShardedJournal::in_memory(4);
        assert!(journal.is_empty());
        for (i, domain) in ["z.com", "a.com", "m.com"].iter().enumerate() {
            journal.record(entry(domain, i));
        }
        assert_eq!(journal.len(), 3);
        assert!(journal.contains("a.com"));
        assert!(!journal.contains("q.com"));
        assert_eq!(journal.get("m.com").unwrap().english_privacy_pages, 2);
        let merged = journal.merged();
        let domains: Vec<&str> = merged.iter().map(|e| e.domain.as_str()).collect();
        assert_eq!(domains, vec!["a.com", "m.com", "z.com"]);
        assert_eq!(journal.write_errors(), 0);
    }

    #[test]
    fn durable_segments_survive_reopen_and_tolerate_torn_tail() {
        let dir = scratch_dir("reopen");
        let base = dir.join("run.jsonl");
        {
            let journal = ShardedJournal::open(&base, 4);
            for i in 0..20 {
                journal.record(entry(&format!("site{i}.com"), i));
            }
            assert_eq!(journal.write_errors(), 0);
        }
        // Simulate a kill mid-append: truncate one non-empty segment
        // inside its final line.
        let victim = (0..4)
            .map(|i| segment_path(&base, i))
            .find(|p| std::fs::metadata(p).map(|m| m.len() > 0).unwrap_or(false))
            .expect("some non-empty segment");
        let bytes = std::fs::read(&victim).unwrap();
        let torn_entry_domain = {
            let text = String::from_utf8(bytes.clone()).unwrap();
            let last = text.trim_end().lines().last().unwrap();
            serde_json::from_str::<JournalEntry>(last).unwrap().domain
        };
        std::fs::write(&victim, &bytes[..bytes.len() - 5]).unwrap();

        let reopened = ShardedJournal::open(&base, 4);
        assert_eq!(reopened.len(), 19, "torn line dropped, rest recovered");
        assert!(!reopened.contains(&torn_entry_domain));
        // Re-recording the torn domain completes the journal again.
        reopened.record(entry(&torn_entry_domain, 99));
        assert_eq!(reopened.len(), 20);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_seeds_from_legacy_single_file() {
        let dir = scratch_dir("legacy");
        let base = dir.join("run.jsonl");
        let mut legacy = RunJournal::new();
        legacy.insert(entry("old.com", 3));
        legacy.insert(entry("older.com", 1));
        std::fs::write(&base, legacy.to_jsonl()).unwrap();

        let journal = ShardedJournal::open(&base, 4);
        assert_eq!(journal.len(), 2);
        assert_eq!(journal.get("old.com").unwrap().english_privacy_pages, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn consolidate_rewrites_single_file_and_removes_segments() {
        let dir = scratch_dir("consolidate");
        let base = dir.join("run.jsonl");
        let journal = ShardedJournal::open(&base, 4);
        for i in 0..10 {
            journal.record(entry(&format!("d{i}.com"), i));
        }
        journal.consolidate(&base).expect("consolidate");
        for i in 0..4 {
            assert!(!segment_path(&base, i).exists());
        }
        let text = std::fs::read_to_string(&base).unwrap();
        assert_eq!(RunJournal::from_jsonl(&text), journal.merged());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_records_from_many_threads() {
        let journal = ShardedJournal::in_memory(DEFAULT_SHARDS);
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let journal = &journal;
                scope.spawn(move || {
                    for i in 0..25usize {
                        journal.record(entry(&format!("t{t}-d{i}.com"), i));
                    }
                });
            }
        });
        assert_eq!(journal.len(), 200);
    }
}
