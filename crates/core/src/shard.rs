//! Sharded, incrementally-written journal segments.
//!
//! The single-file [`RunJournal`](crate::RunJournal) is rewritten in full
//! at the end of a run; a process killed mid-run loses every domain since
//! the last rewrite. A [`ShardedJournal`] instead assigns each domain to
//! one of `N` segments by a stable hash of its name and **appends** the
//! domain's entry to that segment's JSONL file the moment it is processed.
//! Streaming workers touch disjoint locks most of the time (different
//! domains usually hash to different shards), and a kill at any instant
//! costs at most the one torn line per segment that
//! [`RunJournal::from_jsonl`]'s tolerant parser already drops.
//!
//! The shard assignment is a pure function of the domain name, so segment
//! contents are deterministic and worker-count-invariant; the merged view
//! ([`ShardedJournal::merged`]) is the same sorted journal a serial run
//! would have produced.

use crate::journal::{JournalEntry, RunJournal};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default segment count: enough that eight streaming workers rarely
/// collide on one shard lock, few enough that a run directory stays tidy.
pub const DEFAULT_SHARDS: usize = 8;

/// Stable shard assignment for `domain` (FNV-1a over the name). A pure
/// function of the domain, so segment contents do not depend on worker
/// count or scheduling.
pub fn shard_of(domain: &str, shards: usize) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in domain.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % shards.max(1) as u64) as usize
}

/// Path of segment `index` for journal base path `base`
/// (`<base>.shard007.jsonl`).
pub fn segment_path(base: &Path, index: usize) -> PathBuf {
    let mut name = base.as_os_str().to_os_string();
    name.push(format!(".shard{index:03}.jsonl"));
    PathBuf::from(name)
}

/// Path of the quarantine segment for journal base path `base`
/// (`<base>.quarantine.jsonl`): one JSONL line per dead letter, each the
/// full cumulative [`QuarantineRecord`] for its domain (last line per
/// domain wins on load, torn tails tolerated like any segment).
pub fn quarantine_path(base: &Path) -> PathBuf {
    let mut name = base.as_os_str().to_os_string();
    name.push(".quarantine.jsonl");
    PathBuf::from(name)
}

/// One quarantined domain: how many times its chain has killed a worker,
/// and the stage/message of the most recent panic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineRecord {
    /// The quarantined domain.
    pub domain: String,
    /// Cumulative worker kills attributed to this domain (across resumes).
    pub kills: u32,
    /// Rendered panic message of the most recent panic.
    pub message: String,
    /// Chain stage of the most recent panic (`"crawl"` or `"process"`).
    pub stage: String,
}

/// Deterministic fault model for the journal's append path: short (torn)
/// writes and transient ENOSPC-style rejections, keyed on
/// `(seed, stream, record_index)` so every run — and every retry schedule —
/// sees the same faults at the same records regardless of worker count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskFaultConfig {
    /// Probability a record's first append tears mid-line.
    pub short_write: f64,
    /// Probability a record's first append is rejected outright
    /// (no-space-style: nothing reaches the file).
    pub enospc: f64,
    /// Maximum consecutive faulty attempts per record. Keep `<=`
    /// `write_retries` and every episode is absorbed by the retry path.
    pub burst_max: u32,
    /// Bounded retry budget per record append.
    pub write_retries: u32,
}

impl DiskFaultConfig {
    /// No injected faults; appends still retry real transient errors.
    pub fn none() -> DiskFaultConfig {
        DiskFaultConfig {
            short_write: 0.0,
            enospc: 0.0,
            burst_max: 0,
            write_retries: 3,
        }
    }

    /// Elevated fault rates whose episodes still fit the retry budget —
    /// a run under this config degrades nothing, it just works harder.
    pub fn chaotic() -> DiskFaultConfig {
        DiskFaultConfig {
            short_write: 0.15,
            enospc: 0.10,
            burst_max: 2,
            write_retries: 3,
        }
    }
}

impl Default for DiskFaultConfig {
    fn default() -> DiskFaultConfig {
        DiskFaultConfig::none()
    }
}

/// What the injector does to one append attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DiskFault {
    /// Write a torn prefix of the line (no trailing newline) and fail.
    ShortWrite,
    /// Reject the attempt before anything reaches the file.
    NoSpace,
}

/// Seeded decision function for [`DiskFaultConfig`]: a pure function of
/// `(seed, stream, record_index, attempt)`, so fault placement is
/// reproducible and independent of scheduling.
#[derive(Debug, Clone, Copy)]
pub struct DiskFaultInjector {
    seed: u64,
    config: DiskFaultConfig,
}

impl DiskFaultInjector {
    /// An injector for `seed` under `config`.
    pub fn new(seed: u64, config: DiskFaultConfig) -> DiskFaultInjector {
        DiskFaultInjector { seed, config }
    }

    /// An inert injector (no faults ever fire).
    pub fn none() -> DiskFaultInjector {
        DiskFaultInjector::new(0, DiskFaultConfig::none())
    }

    /// Uniform draw in `[0, 1)` keyed on the fault coordinates (FNV-1a
    /// over the little-endian words, like the shard hash above).
    fn unit(&self, stream: u64, record_index: u64, salt: u64) -> f64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for word in [self.seed, stream, record_index, salt] {
            for byte in word.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        (hash >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The fault (if any) injected into `attempt` of appending record
    /// `record_index` to `stream`. Episodes are transient: a faulted
    /// record fails its first `burst` attempts (`1..=burst_max`, drawn
    /// from the same key) and then succeeds.
    fn fault(&self, stream: u64, record_index: u64, attempt: u32) -> Option<DiskFault> {
        if self.config.burst_max == 0 {
            return None;
        }
        let roll = self.unit(stream, record_index, 0);
        let kind = if roll < self.config.short_write {
            DiskFault::ShortWrite
        } else if roll < self.config.short_write + self.config.enospc {
            DiskFault::NoSpace
        } else {
            return None;
        };
        let span = self.unit(stream, record_index, 1);
        let burst = 1 + (span * f64::from(self.config.burst_max)) as u32;
        let burst = burst.min(self.config.burst_max);
        if attempt < burst {
            Some(kind)
        } else {
            None
        }
    }
}

struct Shard {
    entries: BTreeMap<String, JournalEntry>,
    writer: Option<File>,
    /// Records appended to this segment so far — the `record_index` key of
    /// the disk-fault injector.
    appended: u64,
}

/// In-memory quarantine state plus its (lazily created) segment writer.
struct QuarantineStore {
    records: BTreeMap<String, QuarantineRecord>,
    writer: Option<File>,
    /// Segment path for durable journals; `None` for in-memory ones. The
    /// writer is only created on the first dead letter, so fault-free runs
    /// leave no empty quarantine file behind.
    path: Option<PathBuf>,
    /// Dead letters appended so far (the injector's `record_index`).
    appended: u64,
}

/// A journal split into independently locked, incrementally appended
/// segments. Thread-safe: streaming workers record finished domains
/// concurrently through `&self`.
pub struct ShardedJournal {
    shards: Vec<Mutex<Shard>>,
    quarantine: Mutex<QuarantineStore>,
    faults: DiskFaultInjector,
    write_errors: AtomicUsize,
    disk_retries: AtomicUsize,
}

impl ShardedJournal {
    /// An in-memory sharded journal (no segment files): the checkpoint
    /// store for callers that only want resume-from-a-prior-`RunJournal`
    /// semantics without durability.
    pub fn in_memory(shards: usize) -> ShardedJournal {
        let shards = shards.max(1);
        ShardedJournal {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: Default::default(),
                        writer: None,
                        appended: 0,
                    })
                })
                .collect(),
            quarantine: Mutex::new(QuarantineStore {
                records: BTreeMap::new(),
                writer: None,
                path: None,
                appended: 0,
            }),
            faults: DiskFaultInjector::none(),
            write_errors: AtomicUsize::new(0),
            disk_retries: AtomicUsize::new(0),
        }
    }

    /// Open (or create) a durable sharded journal rooted at `base`.
    ///
    /// Seeds the in-memory state from the legacy single-file journal at
    /// `base` (if present), from every existing segment file, and from the
    /// quarantine segment — all through torn-tail-tolerant line parsers —
    /// then opens each segment for append. Segment entries override legacy
    /// ones. A segment that cannot be opened for writing degrades to
    /// memory-only (counted in [`ShardedJournal::write_errors`]); the run
    /// still completes.
    pub fn open(base: &Path, shards: usize) -> ShardedJournal {
        ShardedJournal::open_with(base, shards, DiskFaultInjector::none())
    }

    /// [`ShardedJournal::open`], with appends filtered through a
    /// deterministic disk-fault injector (chaos testing: torn writes and
    /// transient no-space rejections absorbed by the bounded retry path).
    pub fn open_with(base: &Path, shards: usize, faults: DiskFaultInjector) -> ShardedJournal {
        let mut journal = ShardedJournal::in_memory(shards);
        journal.faults = faults;
        if let Ok(text) = std::fs::read_to_string(base) {
            for entry in RunJournal::from_jsonl(&text).iter() {
                journal.insert_in_memory(entry.clone());
            }
        }
        for (index, shard) in journal.shards.iter().enumerate() {
            let path = segment_path(base, index);
            let mut shard = shard.lock();
            if let Ok(text) = std::fs::read_to_string(&path) {
                for entry in RunJournal::from_jsonl(&text).iter() {
                    shard.entries.insert(entry.domain.clone(), entry.clone());
                }
            }
            match OpenOptions::new().create(true).append(true).open(&path) {
                Ok(file) => shard.writer = Some(file),
                Err(_) => {
                    journal.write_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        {
            let mut store = journal.quarantine.lock();
            let path = quarantine_path(base);
            if let Ok(text) = std::fs::read_to_string(&path) {
                // Cumulative records: the last well-formed line per domain
                // is the newest; torn tails drop like any segment line.
                for line in text.lines() {
                    if let Ok(record) = serde_json::from_str::<QuarantineRecord>(line) {
                        store.records.insert(record.domain.clone(), record);
                    }
                }
            }
            store.path = Some(path);
        }
        journal
    }

    /// Record a finished domain: insert it into its shard and append one
    /// JSONL line to the shard's segment file (if durable). The line is
    /// serialized *before* the shard lock is taken; transient append
    /// failures (injected or real) are retried within the bounded
    /// [`DiskFaultConfig::write_retries`] budget, and a record that
    /// exhausts it stays memory-only (the current run is unaffected, the
    /// domain re-processes on a future resume) and bumps
    /// [`ShardedJournal::write_errors`].
    pub fn record(&self, entry: JournalEntry) {
        let index = shard_of(&entry.domain, self.shards.len());
        // JournalEntry contains no map types, so to_string cannot fail.
        let line = serde_json::to_string(&entry).unwrap_or_default();
        let Some(shard) = self.shards.get(index) else {
            return;
        };
        let mut shard = shard.lock();
        let record_index = shard.appended;
        shard.appended = shard.appended.saturating_add(1);
        let mut failed = false;
        if let Some(writer) = shard.writer.as_mut() {
            failed = !self.append_with_retry(writer, index as u64, record_index, &line);
        }
        shard.entries.insert(entry.domain.clone(), entry);
        drop(shard);
        if failed {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Append `line` + newline to `writer`, absorbing injected and real
    /// transient failures within the bounded retry budget. After a torn
    /// attempt the garbage prefix is terminated with a lone newline before
    /// the whole line is retried, so the tolerant JSONL parser sees one
    /// droppable malformed line instead of the prefix glued onto the
    /// retried record. Returns whether the full line landed.
    fn append_with_retry(
        &self,
        writer: &mut File,
        stream: u64,
        record_index: u64,
        line: &str,
    ) -> bool {
        let mut torn = false;
        for attempt in 0..=self.faults.config.write_retries {
            if attempt > 0 {
                self.disk_retries.fetch_add(1, Ordering::Relaxed);
            }
            if torn {
                if writer.write_all(b"\n").is_err() {
                    continue;
                }
                torn = false;
            }
            match self.faults.fault(stream, record_index, attempt) {
                Some(DiskFault::ShortWrite) => {
                    let half = line.as_bytes().get(..line.len() / 2).unwrap_or(b"");
                    let _short = writer.write_all(half);
                    torn = true;
                    continue;
                }
                Some(DiskFault::NoSpace) => continue,
                None => {}
            }
            match writer
                .write_all(line.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
            {
                Ok(()) => return true,
                Err(_) => {
                    // A failed write_all may have landed a prefix; treat
                    // it as torn so the next attempt terminates it.
                    torn = true;
                }
            }
        }
        false
    }

    /// Record one dead letter against `domain`: bump its cumulative kill
    /// count, remember the panicking stage and message, and append the
    /// updated [`QuarantineRecord`] to the quarantine segment (created
    /// lazily on the first dead letter). Returns the new kill count —
    /// callers compare it against their poison threshold.
    pub fn record_dead_letter(&self, domain: &str, stage: &str, message: &str) -> u32 {
        let mut store = self.quarantine.lock();
        let record = store
            .records
            .entry(domain.to_string())
            .or_insert_with(|| QuarantineRecord {
                domain: domain.to_string(),
                kills: 0,
                stage: String::new(),
                message: String::new(),
            });
        record.kills = record.kills.saturating_add(1);
        record.stage = stage.to_string();
        record.message = message.to_string();
        let kills = record.kills;
        let line = serde_json::to_string(record).unwrap_or_default();
        let mut open_failed = false;
        if store.writer.is_none() {
            if let Some(path) = store.path.clone() {
                match OpenOptions::new().create(true).append(true).open(&path) {
                    Ok(file) => store.writer = Some(file),
                    Err(_) => open_failed = true,
                }
            }
        }
        let record_index = store.appended;
        store.appended = store.appended.saturating_add(1);
        let mut failed = false;
        if let Some(writer) = store.writer.as_mut() {
            // The quarantine is one more append stream; give it the
            // stream id just past the shard segments.
            failed = !self.append_with_retry(writer, self.shards.len() as u64, record_index, &line);
        }
        drop(store);
        if open_failed || failed {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
        kills
    }

    /// Every quarantined domain's record, sorted by domain.
    pub fn quarantine_records(&self) -> Vec<QuarantineRecord> {
        self.quarantine.lock().records.values().cloned().collect()
    }

    /// Domains whose cumulative kill count has reached `min_kills`, sorted:
    /// the set a resuming run skips outright.
    pub fn poisoned_domains(&self, min_kills: u32) -> Vec<String> {
        self.quarantine
            .lock()
            .records
            .values()
            .filter(|r| r.kills >= min_kills)
            .map(|r| r.domain.clone())
            .collect()
    }

    /// Append attempts that had to be retried (injected faults plus real
    /// transient errors). Purely informational: a non-zero count with zero
    /// [`ShardedJournal::write_errors`] means every fault was absorbed.
    pub fn disk_retries(&self) -> usize {
        self.disk_retries.load(Ordering::Relaxed)
    }

    fn insert_in_memory(&self, entry: JournalEntry) {
        let index = shard_of(&entry.domain, self.shards.len());
        if let Some(shard) = self.shards.get(index) {
            shard.lock().entries.insert(entry.domain.clone(), entry);
        }
    }

    /// Whether `domain` has a journaled outcome.
    pub fn contains(&self, domain: &str) -> bool {
        let index = shard_of(domain, self.shards.len());
        self.shards
            .get(index)
            .is_some_and(|shard| shard.lock().entries.contains_key(domain))
    }

    /// The journaled outcome for `domain`, if any (cloned out of the
    /// shard's lock).
    pub fn get(&self, domain: &str) -> Option<JournalEntry> {
        let index = shard_of(domain, self.shards.len());
        self.shards
            .get(index)
            .and_then(|shard| shard.lock().entries.get(domain).cloned())
    }

    /// Total journaled domains across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.lock().entries.len())
            .sum()
    }

    /// Whether no domain is journaled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of segments.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Appends that failed (plus segments that could not be opened for
    /// writing). Non-zero means durability is degraded — affected domains
    /// will re-process on resume — but never that the current run's
    /// results are wrong.
    pub fn write_errors(&self) -> usize {
        self.write_errors.load(Ordering::Relaxed)
    }

    /// Merge every shard into one sorted [`RunJournal`] — identical to the
    /// journal a serial, single-file run would have produced.
    pub fn merged(&self) -> RunJournal {
        let mut merged = RunJournal::new();
        for shard in &self.shards {
            for entry in shard.lock().entries.values() {
                merged.insert(entry.clone());
            }
        }
        merged
    }

    /// Rewrite the merged journal to the legacy single file at `base` and
    /// delete the segment files: the end-of-run consolidation that keeps
    /// the on-disk artifact format of pre-sharding runs. The quarantine
    /// segment is compacted, not deleted — poisoned domains must stay
    /// skipped on resume.
    pub fn consolidate(&self, base: &Path) -> std::io::Result<()> {
        self.consolidate_until(base, ConsolidateStep::Complete)
    }

    /// [`ShardedJournal::consolidate`], stopping at `stop` — the kill-point
    /// hook for crash-window tests. The consolidated file is written *and
    /// fsynced* before any segment is deleted, so a crash between the two
    /// steps finds either the old segments or a durable consolidated file,
    /// never neither (the original implementation deleted segments against
    /// an unsynced file, and a crash in that window could lose every
    /// acknowledged outcome).
    pub fn consolidate_until(&self, base: &Path, stop: ConsolidateStep) -> std::io::Result<()> {
        let mut file = File::create(base)?;
        file.write_all(self.merged().to_jsonl().as_bytes())?;
        file.sync_all()?;
        drop(file);
        if stop == ConsolidateStep::AfterSync {
            return Ok(());
        }
        for index in 0..self.shards.len() {
            let path = segment_path(base, index);
            if path.exists() {
                std::fs::remove_file(&path)?;
            }
        }
        self.compact_quarantine()
    }

    /// Rewrite the quarantine segment to one line per domain (the run
    /// appends a cumulative record per dead letter), or remove it when no
    /// domain is quarantined.
    fn compact_quarantine(&self) -> std::io::Result<()> {
        let mut store = self.quarantine.lock();
        let Some(path) = store.path.clone() else {
            return Ok(());
        };
        store.writer = None;
        if store.records.is_empty() {
            if path.exists() {
                std::fs::remove_file(&path)?;
            }
            return Ok(());
        }
        let mut text = String::new();
        for record in store.records.values() {
            text.push_str(&serde_json::to_string(record).unwrap_or_default());
            text.push('\n');
        }
        let mut file = File::create(&path)?;
        file.write_all(text.as_bytes())?;
        file.sync_all()?;
        drop(file);
        store.writer = OpenOptions::new().append(true).open(&path).ok();
        store.appended = 0;
        Ok(())
    }
}

/// Where [`ShardedJournal::consolidate_until`] stops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsolidateStep {
    /// Stop after the consolidated file is written and fsynced, before any
    /// segment is deleted: the crash window the durability ordering
    /// protects.
    AfterSync,
    /// Run consolidation to completion.
    Complete,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(domain: &str, pages: usize) -> JournalEntry {
        JournalEntry {
            domain: domain.to_string(),
            english_privacy_pages: pages,
            policy: None,
        }
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aipan-shard-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        for n in [1usize, 2, 8, 13] {
            for domain in ["a.com", "b.com", "walmart.com", ""] {
                let s = shard_of(domain, n);
                assert!(s < n);
                assert_eq!(s, shard_of(domain, n), "must be deterministic");
            }
        }
        // FNV actually spreads: 100 domains over 8 shards hit every shard.
        let mut seen = [false; 8];
        for i in 0..100 {
            seen[shard_of(&format!("company{i}.com"), 8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn in_memory_roundtrip_matches_runjournal() {
        let journal = ShardedJournal::in_memory(4);
        assert!(journal.is_empty());
        for (i, domain) in ["z.com", "a.com", "m.com"].iter().enumerate() {
            journal.record(entry(domain, i));
        }
        assert_eq!(journal.len(), 3);
        assert!(journal.contains("a.com"));
        assert!(!journal.contains("q.com"));
        assert_eq!(journal.get("m.com").unwrap().english_privacy_pages, 2);
        let merged = journal.merged();
        let domains: Vec<&str> = merged.iter().map(|e| e.domain.as_str()).collect();
        assert_eq!(domains, vec!["a.com", "m.com", "z.com"]);
        assert_eq!(journal.write_errors(), 0);
    }

    #[test]
    fn durable_segments_survive_reopen_and_tolerate_torn_tail() {
        let dir = scratch_dir("reopen");
        let base = dir.join("run.jsonl");
        {
            let journal = ShardedJournal::open(&base, 4);
            for i in 0..20 {
                journal.record(entry(&format!("site{i}.com"), i));
            }
            assert_eq!(journal.write_errors(), 0);
        }
        // Simulate a kill mid-append: truncate one non-empty segment
        // inside its final line.
        let victim = (0..4)
            .map(|i| segment_path(&base, i))
            .find(|p| std::fs::metadata(p).map(|m| m.len() > 0).unwrap_or(false))
            .expect("some non-empty segment");
        let bytes = std::fs::read(&victim).unwrap();
        let torn_entry_domain = {
            let text = String::from_utf8(bytes.clone()).unwrap();
            let last = text.trim_end().lines().last().unwrap();
            serde_json::from_str::<JournalEntry>(last).unwrap().domain
        };
        std::fs::write(&victim, &bytes[..bytes.len() - 5]).unwrap();

        let reopened = ShardedJournal::open(&base, 4);
        assert_eq!(reopened.len(), 19, "torn line dropped, rest recovered");
        assert!(!reopened.contains(&torn_entry_domain));
        // Re-recording the torn domain completes the journal again.
        reopened.record(entry(&torn_entry_domain, 99));
        assert_eq!(reopened.len(), 20);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_seeds_from_legacy_single_file() {
        let dir = scratch_dir("legacy");
        let base = dir.join("run.jsonl");
        let mut legacy = RunJournal::new();
        legacy.insert(entry("old.com", 3));
        legacy.insert(entry("older.com", 1));
        std::fs::write(&base, legacy.to_jsonl()).unwrap();

        let journal = ShardedJournal::open(&base, 4);
        assert_eq!(journal.len(), 2);
        assert_eq!(journal.get("old.com").unwrap().english_privacy_pages, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn consolidate_rewrites_single_file_and_removes_segments() {
        let dir = scratch_dir("consolidate");
        let base = dir.join("run.jsonl");
        let journal = ShardedJournal::open(&base, 4);
        for i in 0..10 {
            journal.record(entry(&format!("d{i}.com"), i));
        }
        journal.consolidate(&base).expect("consolidate");
        for i in 0..4 {
            assert!(!segment_path(&base, i).exists());
        }
        let text = std::fs::read_to_string(&base).unwrap();
        assert_eq!(RunJournal::from_jsonl(&text), journal.merged());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn consolidate_kill_point_after_sync_loses_nothing() {
        let dir = scratch_dir("killpoint");
        let base = dir.join("run.jsonl");
        let journal = ShardedJournal::open(&base, 4);
        for i in 0..15 {
            journal.record(entry(&format!("d{i}.com"), i));
        }
        // Crash in the durability window: the consolidated file is synced
        // but no segment has been deleted yet.
        journal
            .consolidate_until(&base, ConsolidateStep::AfterSync)
            .expect("consolidate to kill point");
        drop(journal);

        // The window is benign in *both* directions: the consolidated file
        // already holds everything, and the segments still exist, so a
        // reopen (which seeds from the legacy file and the segments) sees
        // every domain exactly once.
        let reopened = ShardedJournal::open(&base, 4);
        assert_eq!(reopened.len(), 15, "no loss, no duplication");
        for i in 0..15 {
            assert!(reopened.contains(&format!("d{i}.com")));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_disk_faults_absorbed_by_bounded_retries() {
        let dir = scratch_dir("diskchaos");
        let base = dir.join("run.jsonl");
        let chaos = DiskFaultInjector::new(11, DiskFaultConfig::chaotic());
        let retries_first = {
            let journal = ShardedJournal::open_with(&base, 4, chaos);
            for i in 0..60 {
                journal.record(entry(&format!("site{i}.com"), i));
            }
            assert_eq!(journal.write_errors(), 0, "every episode fits the budget");
            assert!(
                journal.disk_retries() > 0,
                "chaotic config must actually fire"
            );
            journal.disk_retries()
        };
        // Everything survives reopen: torn prefixes were terminated into
        // droppable lines, every record eventually landed whole.
        let reopened = ShardedJournal::open(&base, 4);
        assert_eq!(reopened.len(), 60);
        // And the fault schedule is a pure function of its key: a second
        // run under the same seed retries exactly as often.
        let dir2 = scratch_dir("diskchaos2");
        let base2 = dir2.join("run.jsonl");
        let journal2 = ShardedJournal::open_with(&base2, 4, chaos);
        for i in 0..60 {
            journal2.record(entry(&format!("site{i}.com"), i));
        }
        assert_eq!(journal2.disk_retries(), retries_first);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn quarantine_accumulates_persists_and_survives_consolidation() {
        let dir = scratch_dir("quarantine");
        let base = dir.join("run.jsonl");
        {
            let journal = ShardedJournal::open(&base, 4);
            assert!(
                !quarantine_path(&base).exists(),
                "no dead letters, no quarantine file"
            );
            assert_eq!(
                journal.record_dead_letter("boom.com", "crawl", "host exploded"),
                1
            );
            assert_eq!(
                journal.record_dead_letter("fizzle.com", "process", "oom"),
                1
            );
            assert_eq!(
                journal.record_dead_letter("boom.com", "crawl", "host exploded"),
                2
            );
            journal.record(entry("ok.com", 1));
        }
        let journal = ShardedJournal::open(&base, 4);
        let records = journal.quarantine_records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].domain, "boom.com");
        assert_eq!(records[0].kills, 2);
        assert_eq!(records[0].stage, "crawl");
        assert_eq!(records[1].domain, "fizzle.com");
        assert_eq!(records[1].kills, 1);
        assert_eq!(journal.poisoned_domains(2), vec!["boom.com".to_string()]);
        assert_eq!(
            journal.poisoned_domains(1),
            vec!["boom.com".to_string(), "fizzle.com".to_string()]
        );

        // Consolidation compacts the quarantine (3 appended lines → 2
        // records) but must not delete it: the poison set survives.
        journal.consolidate(&base).expect("consolidate");
        let text = std::fs::read_to_string(quarantine_path(&base)).expect("quarantine kept");
        assert_eq!(text.lines().count(), 2);
        let reopened = ShardedJournal::open(&base, 4);
        assert_eq!(reopened.poisoned_domains(2), vec!["boom.com".to_string()]);
        // ...and further dead letters keep accumulating after compaction.
        assert_eq!(
            reopened.record_dead_letter("fizzle.com", "process", "oom"),
            2
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_memory_quarantine_counts_without_files() {
        let journal = ShardedJournal::in_memory(4);
        assert_eq!(journal.record_dead_letter("boom.com", "crawl", "x"), 1);
        assert_eq!(journal.record_dead_letter("boom.com", "process", "y"), 2);
        let records = journal.quarantine_records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].stage, "process", "latest stage wins");
        assert_eq!(journal.write_errors(), 0);
    }

    #[test]
    fn concurrent_records_from_many_threads() {
        let journal = ShardedJournal::in_memory(DEFAULT_SHARDS);
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let journal = &journal;
                scope.spawn(move || {
                    for i in 0..25usize {
                        journal.record(entry(&format!("t{t}-d{i}.com"), i));
                    }
                });
            }
        });
        assert_eq!(journal.len(), 200);
    }
}
