//! Chaos harness for the pipeline's checkpoint/resume layer: under
//! elevated transient fault rates, an interrupted `run_pipeline` resumed
//! from any prefix of its journal — including a journal torn mid-write —
//! produces a byte-identical dataset and identical funnels, at any worker
//! count.

use aipan_core::{run_pipeline, run_pipeline_resumable, PipelineConfig, PipelineRun, RunJournal};
use aipan_net::fault::FaultConfig;
use aipan_webgen::{build_world, WorldConfig};

fn chaos_world(seed: u64, n: usize) -> aipan_webgen::World {
    let mut config = WorldConfig::small(seed, n);
    config.faults = FaultConfig {
        flaky_5xx: 0.10,
        conn_reset: 0.06,
        rate_limit: 0.04,
        latency_spike: 0.08,
        ..config.faults
    };
    build_world(config)
}

fn pipeline_config(seed: u64, workers: usize) -> PipelineConfig {
    PipelineConfig {
        seed,
        workers,
        ..Default::default()
    }
}

fn dataset_bytes(run: &PipelineRun) -> String {
    serde_json::to_string(&run.dataset).expect("dataset serializes")
}

#[test]
fn resume_is_byte_identical_at_every_kill_point() {
    let world = chaos_world(23, 60);
    let config = pipeline_config(23, 4);
    let reference = run_pipeline(&world, config.clone());
    let reference_bytes = dataset_bytes(&reference);
    assert!(
        !reference.dataset.is_empty(),
        "chaos world must still yield policies"
    );

    // A journaled uninterrupted run matches the plain run and journals
    // every crawled domain.
    let mut journal = RunJournal::new();
    let journaled = run_pipeline_resumable(&world, config.clone(), &mut journal);
    assert_eq!(dataset_bytes(&journaled), reference_bytes);
    assert_eq!(journal.len(), reference.crawl_funnel.domains_total);
    let jsonl = journal.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();

    // Kill the run at three different points (journal prefixes), then at a
    // torn final line (process died mid-write). Every resume must produce
    // the same dataset bytes and the same funnels.
    let kill_points = [lines.len() / 4, lines.len() / 2, lines.len() * 9 / 10];
    for &k in &kill_points {
        let partial = lines[..k].join("\n");
        let mut resumed_journal = RunJournal::from_jsonl(&partial);
        assert_eq!(resumed_journal.len(), k, "prefix journal loads losslessly");
        let resumed = run_pipeline_resumable(&world, config.clone(), &mut resumed_journal);
        assert_eq!(
            dataset_bytes(&resumed),
            reference_bytes,
            "resume from kill point {k} diverged"
        );
        assert_eq!(resumed.extraction, reference.extraction);
        assert_eq!(resumed.crawl_funnel, reference.crawl_funnel);
        assert_eq!(resumed_journal.len(), journal.len());
        assert_eq!(resumed_journal.to_jsonl(), jsonl, "journal must converge");
    }

    // Torn tail: keep half the bytes of the final journaled line.
    let keep = lines[..lines.len() - 1].join("\n");
    let last = lines[lines.len() - 1];
    let half = (0..=last.len() / 2)
        .rev()
        .find(|&i| last.is_char_boundary(i))
        .unwrap_or(0);
    let torn = format!("{keep}\n{}", &last[..half]);
    let mut torn_journal = RunJournal::from_jsonl(&torn);
    assert_eq!(torn_journal.len(), lines.len() - 1, "torn line dropped");
    let resumed = run_pipeline_resumable(&world, config.clone(), &mut torn_journal);
    assert_eq!(dataset_bytes(&resumed), reference_bytes);
    assert_eq!(torn_journal.to_jsonl(), jsonl);
}

#[test]
fn chaos_pipeline_identical_across_worker_counts() {
    let world = chaos_world(31, 40);
    let serial = run_pipeline(&world, pipeline_config(31, 1));
    let parallel = run_pipeline(&world, pipeline_config(31, 6));
    assert_eq!(dataset_bytes(&serial), dataset_bytes(&parallel));
    assert_eq!(serial.extraction, parallel.extraction);
    assert_eq!(serial.crawl_funnel, parallel.crawl_funnel);
}

#[test]
fn stale_journal_domains_do_not_leak_into_the_run() {
    use aipan_core::JournalEntry;
    let world = chaos_world(37, 20);
    let config = pipeline_config(37, 2);
    let reference = run_pipeline(&world, config.clone());

    let mut journal = RunJournal::new();
    journal.insert(JournalEntry {
        domain: "not-in-this-world.example".to_string(),
        english_privacy_pages: 9,
        policy: None,
    });
    let run = run_pipeline_resumable(&world, config, &mut journal);
    assert_eq!(dataset_bytes(&run), dataset_bytes(&reference));
    assert_eq!(run.extraction, reference.extraction);
}
