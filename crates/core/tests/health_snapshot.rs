//! Snapshot of the `RunHealth` JSON surface (`aipan run --health-out`).
//! Operators diff health reports across runs and CI parses the verdict,
//! so the schema — sorted member order, the always-present error-taxonomy
//! keys, verdict spelling, pretty-printing, `schema_version` — is a
//! compatibility contract. A diff here is an intentional schema change:
//! bump [`aipan_core::HEALTH_SCHEMA_VERSION`], update the snapshot, and
//! update whatever consumes the JSON.

use aipan_core::health::HealthInputs;
use aipan_core::pipeline::ExtractionFunnel;
use aipan_core::{QuarantineRecord, RunHealth, HEALTH_SCHEMA_VERSION};
use aipan_crawler::CrawlFunnel;
use aipan_net::TransportMetrics;

/// A representative degraded run: one domain quarantined at each stage,
/// one poisoned skip, absorbed disk retries, a couple of backpressure
/// stalls, and non-trivial transport resilience counters.
fn sample_health() -> RunHealth {
    RunHealth::assess(HealthInputs {
        crawl: CrawlFunnel {
            domains_total: 12,
            crawl_success: 10,
            transport_failures: 1,
            no_privacy_page: 1,
            ..Default::default()
        },
        extraction: ExtractionFunnel {
            domains_total: 12,
            crawl_success: 10,
            extraction_success: 9,
            annotated: 8,
            missing_any_aspect: 2,
            hallucinations_removed: 3,
            ..Default::default()
        },
        quarantine: vec![
            QuarantineRecord {
                domain: "unwind.example".to_string(),
                kills: 1,
                message: "injected: annotation arena poisoned".to_string(),
                stage: "process".to_string(),
            },
            QuarantineRecord {
                domain: "meltdown.example".to_string(),
                kills: 2,
                message: "injected: host melted mid-request".to_string(),
                stage: "crawl".to_string(),
            },
        ],
        poisoned_skipped: vec!["meltdown.example".to_string()],
        backpressure_stalls: 2,
        journal_write_errors: 1,
        disk_retries: 4,
        transport: TransportMetrics {
            requests: 140,
            responses: 131,
            timeouts: 2,
            rate_limited: 3,
            server_errors: 5,
            retries: 9,
            breaker_opens: 1,
            budget_exhausted: 1,
            ..Default::default()
        },
    })
}

/// The full rendered document, byte for byte — `schema_version` 1.
const SNAPSHOT: &str = r#"{
  "backpressure_stalls": 2,
  "disk_retries": 4,
  "domains_total": 12,
  "errors": {
    "annotate/hallucinations_removed": 3,
    "annotate/missing_aspect": 2,
    "crawl/no_privacy_page": 1,
    "crawl/transport_failure": 1,
    "extract/failed": 1,
    "journal/write_errors": 1,
    "panic/crawl": 1,
    "panic/process": 1
  },
  "journal_write_errors": 1,
  "poisoned_skipped": [
    "meltdown.example"
  ],
  "quarantine": [
    {
      "domain": "meltdown.example",
      "kills": 2,
      "message": "injected: host melted mid-request",
      "stage": "crawl"
    },
    {
      "domain": "unwind.example",
      "kills": 1,
      "message": "injected: annotation arena poisoned",
      "stage": "process"
    }
  ],
  "reasons": [
    "1 journal append(s) exhausted the write-retry budget",
    "1 poisoned domain(s) skipped",
    "2 domain(s) quarantined after worker panics"
  ],
  "schema_version": 1,
  "transport": {
    "breaker_opens": 1,
    "budget_exhausted": 1,
    "rate_limited": 3,
    "requests": 140,
    "responses": 131,
    "retries": 9,
    "server_errors": 5,
    "timeouts": 2
  },
  "verdict": "degraded"
}
"#;

#[test]
fn health_report_renders_byte_identically() {
    assert_eq!(sample_health().to_json(), SNAPSHOT);
}

#[test]
fn snapshot_version_matches_schema_constant() {
    assert_eq!(HEALTH_SCHEMA_VERSION, 1, "schema bumped: refresh SNAPSHOT");
    assert!(SNAPSHOT.contains("\"schema_version\": 1"));
}

#[test]
fn snapshot_parses_back_to_the_same_report() {
    let parsed: RunHealth = serde_json::from_str(SNAPSHOT.trim_end()).expect("parse snapshot");
    assert_eq!(parsed, sample_health());
}
