//! Properties of the streaming engine: a lazy world driven through
//! `run_pipeline_sharded` is byte-identical to the eager monolithic run at
//! every worker count and seed, releases every materialized site, and
//! resumes from a mid-shard kill point (torn segment tail, lost segment)
//! without diverging.

use aipan_core::{
    run_pipeline, run_pipeline_sharded, segment_path, DiskFaultConfig, DiskFaultInjector,
    PipelineConfig, PipelineRun, ShardedJournal, DEFAULT_SHARDS,
};
use aipan_net::fault::FaultConfig;
use aipan_net::http::{Request, Response};
use aipan_webgen::{build_world, build_world_lazy, World, WorldConfig};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;

fn world_config(seed: u64, domains: usize, chaos: bool) -> WorldConfig {
    let mut config = WorldConfig::small(seed, domains);
    if chaos {
        config.faults = FaultConfig {
            flaky_5xx: 0.10,
            conn_reset: 0.06,
            rate_limit: 0.04,
            latency_spike: 0.08,
            ..config.faults
        };
    }
    config
}

fn pipeline_config(seed: u64, workers: usize) -> PipelineConfig {
    PipelineConfig {
        seed,
        workers,
        ..Default::default()
    }
}

fn dataset_bytes(run: &PipelineRun) -> String {
    serde_json::to_string(&run.dataset).expect("dataset serializes")
}

fn streaming_run(world: &World, config: PipelineConfig) -> PipelineRun {
    let journal = ShardedJournal::in_memory(DEFAULT_SHARDS);
    run_pipeline_sharded(world, config, &journal)
}

/// Every materialized site must have been released by the time the run
/// returns: resident memory is bounded by in-flight domains, not the
/// universe.
fn assert_all_sites_released(world: &World) {
    assert_eq!(
        world.site_memory.current_bytes(),
        0,
        "streaming run left sites resident"
    );
    assert!(
        world.lazy_hosts.values().all(|host| !host.is_built()),
        "streaming run left a lazy site materialized"
    );
}

// The headline determinism contract of the streaming refactor: lazy
// generation + per-worker domain chains + sharded journal produce exactly
// the bytes of the eager monolithic run, for any seed, any universe size,
// and any worker count 1..=8. Cases are drawn from the deterministic
// proptest generator, but the loop is hand-rolled so the worker count
// sweeps 1..=8 exhaustively (twice) instead of being sampled — and so the
// case count stays proportional to the cost of a full double pipeline run.
#[test]
fn streaming_equals_eager_bytes_for_any_seed_and_worker_count() {
    let mut gen = Gen::from_name("streaming_equals_eager_bytes");
    for case in 0..16usize {
        let seed = Strategy::generate(&(0u64..1000), &mut gen);
        let domains = Strategy::generate(&(8usize..20), &mut gen);
        let workers = case % 8 + 1;

        let eager_world = build_world(world_config(seed, domains, false));
        let reference = run_pipeline(&eager_world, pipeline_config(seed, 1));
        let reference_bytes = dataset_bytes(&reference);

        let lazy_world = build_world_lazy(world_config(seed, domains, false));
        let streamed = streaming_run(&lazy_world, pipeline_config(seed, workers));

        let tag = format!("case {case}: seed {seed}, {domains} domains, {workers} worker(s)");
        assert_eq!(dataset_bytes(&streamed), reference_bytes, "{tag}");
        assert_eq!(streamed.extraction, reference.extraction, "{tag}");
        assert_eq!(streamed.crawl_funnel, reference.crawl_funnel, "{tag}");
        assert_all_sites_released(&lazy_world);
    }
}

#[test]
fn streaming_matches_eager_under_chaos_at_every_worker_count() {
    let seed = 47;
    let eager_world = build_world(world_config(seed, 50, true));
    let reference = run_pipeline(&eager_world, pipeline_config(seed, 4));
    let reference_bytes = dataset_bytes(&reference);
    assert!(
        !reference.dataset.is_empty(),
        "chaos world must still yield policies"
    );

    for workers in 1..=8 {
        let lazy_world = build_world_lazy(world_config(seed, 50, true));
        let streamed = streaming_run(&lazy_world, pipeline_config(seed, workers));
        assert_eq!(
            dataset_bytes(&streamed),
            reference_bytes,
            "streaming run with {workers} worker(s) diverged"
        );
        assert_eq!(streamed.extraction, reference.extraction);
        assert_eq!(streamed.crawl_funnel, reference.crawl_funnel);
        assert_all_sites_released(&lazy_world);
    }
}

/// Scratch directory for durable-segment tests; callers pick a unique tag.
fn scratch_base(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aipan-streaming-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join("journal.jsonl")
}

#[test]
fn resume_from_mid_shard_kill_point_is_byte_identical() {
    let seed = 53;
    let config = pipeline_config(seed, 4);
    let eager_world = build_world(world_config(seed, 60, true));
    let reference = run_pipeline(&eager_world, config.clone());
    let reference_bytes = dataset_bytes(&reference);

    // Complete streaming run with durable segments: this is the on-disk
    // state an interrupted process would have been appending to.
    let base = scratch_base("kill");
    let lazy_world = build_world_lazy(world_config(seed, 60, true));
    {
        let journal = ShardedJournal::open(&base, DEFAULT_SHARDS);
        let full = run_pipeline_sharded(&lazy_world, config.clone(), &journal);
        assert_eq!(journal.write_errors(), 0);
        assert_eq!(dataset_bytes(&full), reference_bytes);
    }

    // Simulate the kill: one segment loses half a line (the write the
    // process died inside), another segment is gone entirely (never
    // flushed past creation), a third is truncated to a prefix of whole
    // lines (that shard's workers were behind).
    let seg0 = segment_path(&base, 0);
    let torn = fs::read_to_string(&seg0).expect("segment 0 exists");
    assert!(!torn.is_empty(), "segment 0 journaled at least one domain");
    let cut = torn.len() - torn.len() / 3;
    let cut = (0..=cut).rev().find(|&i| torn.is_char_boundary(i)).unwrap();
    fs::write(&seg0, &torn[..cut]).expect("tear segment 0");

    let seg1 = segment_path(&base, 1);
    fs::remove_file(&seg1).expect("segment 1 exists");

    let seg2 = segment_path(&base, 2);
    let behind = fs::read_to_string(&seg2).expect("segment 2 exists");
    let lines: Vec<&str> = behind.lines().collect();
    let keep = lines.len() / 2;
    let prefix: String = lines[..keep].iter().map(|l| format!("{l}\n")).collect();
    fs::write(&seg2, prefix).expect("truncate segment 2");

    // Resume: the reopened journal tolerates the torn tail, re-processes
    // everything the dead segments lost, and converges to the reference.
    let resumed_world = build_world_lazy(world_config(seed, 60, true));
    let journal = ShardedJournal::open(&base, DEFAULT_SHARDS);
    assert!(
        journal.len() < reference.crawl_funnel.domains_total,
        "kill point must actually lose checkpoints"
    );
    let resumed = run_pipeline_sharded(&resumed_world, config, &journal);
    assert_eq!(dataset_bytes(&resumed), reference_bytes);
    assert_eq!(resumed.extraction, reference.extraction);
    assert_eq!(resumed.crawl_funnel, reference.crawl_funnel);
    assert_eq!(journal.len(), reference.crawl_funnel.domains_total);

    // Consolidation folds the segments back into one sorted JSONL file.
    journal.consolidate(&base).expect("consolidate");
    let merged = fs::read_to_string(&base).expect("consolidated journal");
    assert_eq!(merged.lines().count(), journal.len());
    assert!(!segment_path(&base, 0).exists(), "segments removed");
    let _ = fs::remove_dir_all(base.parent().unwrap());
}

/// A virtual host that kills whichever worker touches it: the supervisor
/// must catch the unwind mid-crawl and dead-letter the domain. (Panics are
/// injected from the test, never from library code.)
fn panicking_host() -> impl Fn(&Request) -> Response + Send + Sync {
    |_request: &Request| -> Response { panic!("injected: host melted mid-request") }
}

/// Re-register `victim` so any request to it panics the crawling worker.
fn poison_domain(world: &World, victim: &str) {
    world.internet.register(victim, panicking_host());
}

// Panic-injection chaos sweep: worlds with worker-killing hosts still
// complete, and the quarantine (dead-letter set) and dataset are
// worker-count invariant — fault isolation must not depend on which worker
// happens to pick up the doomed domain.
#[test]
fn panic_injection_dead_letters_are_worker_count_invariant() {
    let mut gen = Gen::from_name("panic_injection_dead_letters");
    for case in 0..4usize {
        let seed = Strategy::generate(&(0u64..1000), &mut gen);
        let domains = Strategy::generate(&(12usize..24), &mut gen);
        let mut reference: Option<(Vec<aipan_core::QuarantineRecord>, String)> = None;
        for workers in [1usize, 2, 5, 8] {
            let world = build_world_lazy(world_config(seed, domains, true));
            let all: Vec<String> = world
                .universe
                .unique_domains()
                .iter()
                .map(|c| c.domain.clone())
                .collect();
            let victims = [all[0].clone(), all[all.len() / 2].clone()];
            for victim in &victims {
                poison_domain(&world, victim);
            }
            let journal = ShardedJournal::in_memory(DEFAULT_SHARDS);
            let run = run_pipeline_sharded(&world, pipeline_config(seed, workers), &journal);

            let tag = format!("case {case}: seed {seed}, {domains} domains, {workers} worker(s)");
            let quarantine = journal.quarantine_records();
            assert_eq!(quarantine.len(), victims.len(), "{tag}");
            for record in &quarantine {
                assert!(victims.contains(&record.domain), "{tag}");
                assert_eq!(record.stage, "crawl", "{tag}");
                assert_eq!(record.kills, 1, "{tag}");
            }
            assert_eq!(run.health.verdict, "degraded", "{tag}");
            assert_eq!(run.health.quarantine, quarantine, "{tag}");
            assert_all_sites_released(&world);

            let bytes = dataset_bytes(&run);
            match &reference {
                None => reference = Some((quarantine, bytes)),
                Some((ref_quarantine, ref_bytes)) => {
                    assert_eq!(
                        &quarantine, ref_quarantine,
                        "{tag}: dead-letter set diverged"
                    );
                    assert_eq!(&bytes, ref_bytes, "{tag}: dataset diverged");
                }
            }
        }
    }
}

// The poison contract end-to-end: a domain that kills its worker in two
// consecutive runs (the default `max_kills`) is skipped outright on the
// third, and that resumed run is byte-identical to a clean run over the
// universe minus the poisoned domain.
#[test]
fn resume_after_quarantine_matches_clean_run_minus_poisoned() {
    let seed = 71;
    let size = 40;
    let config = pipeline_config(seed, 4);
    let eager = build_world(world_config(seed, size, false));
    let reference = run_pipeline(&eager, config.clone());
    let victim = reference.dataset.policies[0].domain.clone();
    let mut minus = reference.dataset.clone();
    minus.policies.retain(|p| p.domain != victim);
    let minus_bytes = serde_json::to_string(&minus).expect("dataset serializes");
    assert_ne!(
        minus_bytes,
        dataset_bytes(&reference),
        "victim must carry a policy for the test to mean anything"
    );

    let base = scratch_base("quarantine");
    // Two runs in which the victim panics its worker: each one dead-letters
    // the domain, accumulating kills across the reopened journal.
    for prior_kills in 0..2u32 {
        let world = build_world_lazy(world_config(seed, size, false));
        poison_domain(&world, &victim);
        let journal = ShardedJournal::open(&base, DEFAULT_SHARDS);
        let run = run_pipeline_sharded(&world, config.clone(), &journal);
        let quarantine = journal.quarantine_records();
        assert_eq!(quarantine.len(), 1);
        assert_eq!(quarantine[0].domain, victim);
        assert_eq!(quarantine[0].kills, prior_kills + 1);
        assert_eq!(quarantine[0].stage, "crawl");
        assert_eq!(run.health.verdict, "degraded");
        assert!(run.health.poisoned_skipped.is_empty());
        // The panicking domain contributes no record either way.
        assert_eq!(dataset_bytes(&run), minus_bytes);
        assert_all_sites_released(&world);
    }

    // Third run: kills reached `max_kills`, so the victim is poisoned and
    // never dispatched — the panicking host is still registered but nothing
    // touches it.
    let world = build_world_lazy(world_config(seed, size, false));
    poison_domain(&world, &victim);
    let journal = ShardedJournal::open(&base, DEFAULT_SHARDS);
    let resumed = run_pipeline_sharded(&world, config.clone(), &journal);
    assert_eq!(resumed.health.poisoned_skipped, vec![victim.clone()]);
    assert_eq!(resumed.health.verdict, "degraded");
    assert_eq!(dataset_bytes(&resumed), minus_bytes);
    assert_eq!(
        resumed.crawl_funnel.domains_total,
        reference.crawl_funnel.domains_total - 1,
        "poisoned domain must not be dispatched at all"
    );
    assert_eq!(
        journal.quarantine_records()[0].kills,
        2,
        "skipping must not accrue further kills"
    );
    assert_all_sites_released(&world);
    let _ = fs::remove_dir_all(base.parent().unwrap());
}

// The full chaos stack at once — network faults (5xx/resets/rate limits),
// the chatbot's seeded error models, and injected disk faults on the
// journal's append path — then a kill point on top: the resumed run is
// still byte-identical to the in-memory reference.
#[test]
fn combined_network_chatbot_disk_chaos_resume_is_byte_identical() {
    let seed = 83;
    let size = 50;
    let config = pipeline_config(seed, 4);
    let ref_world = build_world_lazy(world_config(seed, size, true));
    let reference = streaming_run(&ref_world, config.clone());
    let reference_bytes = dataset_bytes(&reference);

    let base = scratch_base("diskchaos");
    let chaotic = || DiskFaultInjector::new(seed, DiskFaultConfig::chaotic());
    {
        let world = build_world_lazy(world_config(seed, size, true));
        let journal = ShardedJournal::open_with(&base, DEFAULT_SHARDS, chaotic());
        let run = run_pipeline_sharded(&world, config.clone(), &journal);
        assert_eq!(dataset_bytes(&run), reference_bytes);
        assert_eq!(
            journal.write_errors(),
            0,
            "bounded retries must absorb every injected disk fault"
        );
        assert!(
            journal.disk_retries() > 0,
            "chaotic disk config must actually inject faults"
        );
    }

    // Kill point: one segment torn mid-line, another lost entirely. The
    // resume keeps running against the same injected disk faults.
    let seg0 = segment_path(&base, 0);
    let torn = fs::read_to_string(&seg0).expect("segment 0 exists");
    let cut = torn.len() - torn.len() / 4;
    let cut = (0..=cut).rev().find(|&i| torn.is_char_boundary(i)).unwrap();
    fs::write(&seg0, &torn[..cut]).expect("tear segment 0");
    let seg1 = segment_path(&base, 1);
    fs::remove_file(&seg1).expect("segment 1 exists");

    let world = build_world_lazy(world_config(seed, size, true));
    let journal = ShardedJournal::open_with(&base, DEFAULT_SHARDS, chaotic());
    assert!(
        journal.len() < reference.crawl_funnel.domains_total,
        "kill point must actually lose checkpoints"
    );
    let resumed = run_pipeline_sharded(&world, config, &journal);
    assert_eq!(dataset_bytes(&resumed), reference_bytes);
    assert_eq!(resumed.extraction, reference.extraction);
    assert_eq!(resumed.crawl_funnel, reference.crawl_funnel);
    assert_eq!(journal.write_errors(), 0);
    assert_all_sites_released(&world);
    journal.consolidate(&base).expect("consolidate");
    let _ = fs::remove_dir_all(base.parent().unwrap());
}
