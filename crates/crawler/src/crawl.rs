//! The single-domain crawl procedure (§3.1 navigation policy).

use crate::robots::RobotsPolicy;
use aipan_html::{extract, PageRegion};
use aipan_net::http::ContentType;
use aipan_net::retry::{FetchSession, RetryPolicy};
use aipan_net::{Client, Status, Url};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Maximum pages fetched per site (1 homepage + 3 footer links + 2 probes +
/// 5×5 header links = 31, as stated in §3.1).
pub const MAX_PAGES: usize = 31;
/// Footer privacy links followed from the homepage.
pub const MAX_FOOTER_LINKS: usize = 3;
/// Header privacy links followed from each seed page.
pub const MAX_HEADER_LINKS: usize = 5;

/// Link-target extensions that cannot be privacy-policy documents; the
/// crawler skips them before spending a fetch. The simulated internet only
/// serves text pages, so on simulated worlds this is a fetch-budget guard
/// rather than a behavior change.
const SKIP_EXTENSIONS: &[&str] = &[
    "css", "gif", "ico", "jpeg", "jpg", "js", "mp4", "png", "svg", "webp", "zip",
];

/// Whether a link target's file extension marks it as a non-document asset.
fn is_binary_link(url: &Url) -> bool {
    url.extension()
        .map_or(false, |ext| SKIP_EXTENSIONS.contains(&ext.as_str()))
}

/// How a page was discovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkSource {
    /// The homepage itself.
    Homepage,
    /// A "privacy" link from the bottom of the homepage.
    FooterLink,
    /// The `/privacy-policy` probe.
    ProbePolicyPath,
    /// The `/privacy` probe.
    ProbePrivacyPath,
    /// A "privacy" link from the top of a seed page.
    HeaderLink,
}

/// One fetched page.
#[derive(Debug, Clone)]
pub struct CrawledPage {
    /// The URL requested.
    pub url: Url,
    /// The URL that served the response (post-redirects).
    pub final_url: Url,
    /// Response status.
    pub status: Status,
    /// Response content type.
    pub content_type: ContentType,
    /// Response body (HTML text or raw bytes as lossy UTF-8).
    pub body: String,
    /// How the page was discovered.
    pub via: LinkSource,
}

impl CrawledPage {
    /// Whether this is a *potential privacy page*: a successfully fetched
    /// non-homepage page.
    pub fn is_potential_privacy_page(&self) -> bool {
        self.via != LinkSource::Homepage && self.status.is_success()
    }
}

/// Outcome classification for a domain crawl.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrawlOutcome {
    /// At least one potential privacy page was fetched with status < 400.
    Success,
    /// The homepage was reachable but no privacy page was found.
    NoPrivacyPage,
    /// The homepage fetch failed at the transport level.
    TransportFailure(String),
}

/// Per-crawl resilience knobs: the retry policy behind every fetch plus an
/// optional deadline on the simulated clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrawlOptions {
    /// Retry/backoff/breaker policy for this crawl's fetch session.
    pub retry: RetryPolicy,
    /// Seed for deterministic backoff jitter.
    pub seed: u64,
    /// Per-domain crawl deadline in simulated milliseconds. When the
    /// session clock (latency + backoff + politeness) passes it, the crawl
    /// stops fetching and salvages the pages collected so far.
    pub deadline_ms: Option<u64>,
}

impl Default for CrawlOptions {
    fn default() -> Self {
        CrawlOptions {
            retry: RetryPolicy::default(),
            seed: 0,
            deadline_ms: None,
        }
    }
}

impl CrawlOptions {
    /// The pre-resilience behavior: one attempt per fetch, no deadline.
    pub fn no_retry() -> CrawlOptions {
        CrawlOptions {
            retry: RetryPolicy::no_retry(),
            ..CrawlOptions::default()
        }
    }
}

/// The result of crawling one domain.
#[derive(Debug, Clone)]
pub struct DomainCrawl {
    /// The crawled domain.
    pub domain: String,
    /// Outcome classification.
    pub outcome: CrawlOutcome,
    /// All fetched pages (including the homepage), in fetch order.
    pub pages: Vec<CrawledPage>,
    /// Number of fetch attempts (successful or not). Retries are counted
    /// separately in [`DomainCrawl::retries`].
    pub fetch_attempts: usize,
    /// Fetches skipped because robots.txt disallowed the path.
    pub robots_skipped: usize,
    /// Whether robots.txt disallowed the entire site.
    pub robots_blocked: bool,
    /// Simulated politeness delay honored across the crawl (ms), from
    /// robots `Crawl-delay` (default 500 ms between fetches).
    pub politeness_delay_ms: u64,
    /// Transport retries spent by this crawl's fetch session.
    pub retries: u64,
    /// Whether the crawl hit its deadline and salvaged a partial page set.
    pub deadline_hit: bool,
}

impl DomainCrawl {
    /// Whether the crawl succeeded (paper definition).
    pub fn is_success(&self) -> bool {
        self.outcome == CrawlOutcome::Success
    }

    /// Potential privacy pages, deduplicated by final URL and body content.
    pub fn privacy_pages(&self) -> Vec<&CrawledPage> {
        let mut seen_urls = HashSet::new();
        let mut seen_bodies = HashSet::new();
        let mut out = Vec::new();
        for page in &self.pages {
            if !page.is_potential_privacy_page() {
                continue;
            }
            if !seen_urls.insert(page.final_url.clone()) {
                continue;
            }
            let body_key = hash_body(&page.body);
            if !seen_bodies.insert(body_key) {
                continue;
            }
            out.push(page);
        }
        out
    }

    /// Whether the `/privacy-policy` probe hit an existing page.
    pub fn policy_path_exists(&self) -> bool {
        self.probe_hit(LinkSource::ProbePolicyPath)
    }

    /// Whether the `/privacy` probe hit an existing page.
    pub fn privacy_path_exists(&self) -> bool {
        self.probe_hit(LinkSource::ProbePrivacyPath)
    }

    fn probe_hit(&self, via: LinkSource) -> bool {
        self.pages
            .iter()
            .any(|p| p.via == via && p.status.is_success())
    }
}

fn hash_body(body: &str) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    body.hash(&mut h);
    h.finish()
}

/// Default politeness delay between fetches when robots declares none.
pub const DEFAULT_POLITENESS_MS: u64 = 500;

/// The crawler's user-agent string (matched against robots groups).
pub const USER_AGENT: &str = "aipan-crawler/0.1 (headless)";

/// Mutable crawl bookkeeping threaded through the fetch stages.
struct CrawlState {
    pages: Vec<CrawledPage>,
    fetch_attempts: usize,
    robots_skipped: usize,
    deadline_hit: bool,
    delay_per_fetch: u64,
}

impl CrawlState {
    fn new() -> CrawlState {
        CrawlState {
            pages: Vec::new(),
            fetch_attempts: 0,
            robots_skipped: 0,
            deadline_hit: false,
            delay_per_fetch: DEFAULT_POLITENESS_MS,
        }
    }

    /// Whether the simulated clock has passed the crawl deadline.
    fn over_deadline(&mut self, session: &FetchSession, options: &CrawlOptions) -> bool {
        if let Some(deadline) = options.deadline_ms {
            if session.elapsed_ms() >= deadline {
                self.deadline_hit = true;
                return true;
            }
        }
        false
    }

    /// Count one logical fetch, honoring politeness between fetches on the
    /// session clock.
    fn before_fetch(&mut self, session: &mut FetchSession) {
        if self.fetch_attempts > 0 {
            session.advance(self.delay_per_fetch);
        }
        self.fetch_attempts += 1;
    }

    fn finish(
        self,
        domain: &str,
        outcome: CrawlOutcome,
        robots_blocked: bool,
        retries: u64,
    ) -> DomainCrawl {
        DomainCrawl {
            domain: domain.to_string(),
            outcome,
            politeness_delay_ms: self.delay_per_fetch
                * self.fetch_attempts.saturating_sub(1) as u64,
            pages: self.pages,
            fetch_attempts: self.fetch_attempts,
            robots_skipped: self.robots_skipped,
            robots_blocked,
            retries,
            deadline_hit: self.deadline_hit,
        }
    }
}

/// Crawl one domain with the §3.1 navigation policy, honoring robots.txt,
/// using the default retry policy and no deadline.
pub fn crawl_domain(client: &Client, domain: &str) -> DomainCrawl {
    crawl_domain_with(client, domain, &CrawlOptions::default())
}

/// Crawl one domain with explicit resilience options. All fetches go
/// through one [`FetchSession`] (retry/backoff/breaker on a simulated
/// clock); if the deadline passes mid-crawl, the pages fetched so far are
/// salvaged instead of discarding the domain.
pub fn crawl_domain_with(client: &Client, domain: &str, options: &CrawlOptions) -> DomainCrawl {
    let mut state = CrawlState::new();
    let mut session = client.session(options.seed, options.retry);
    let mut visited: HashSet<Url> = HashSet::new();

    let home_url = match Url::parse(&format!("https://{domain}/")) {
        Ok(u) => u,
        Err(e) => {
            return state.finish(
                domain,
                CrawlOutcome::TransportFailure(format!("bad domain: {e}")),
                false,
                0,
            )
        }
    };

    // 0. robots.txt (not counted as a crawled page).
    let robots = fetch_robots(&mut session, &home_url);
    state.delay_per_fetch = robots
        .crawl_delay_ms(USER_AGENT)
        .unwrap_or(DEFAULT_POLITENESS_MS);
    if robots.blocks_everything(USER_AGENT) {
        let retries = session.total_retries();
        return state.finish(domain, CrawlOutcome::NoPrivacyPage, true, retries);
    }
    let allowed = |url: &Url| robots.is_allowed(USER_AGENT, &url.path);

    // 1. Homepage.
    state.before_fetch(&mut session);
    let home = match session.fetch(&home_url) {
        Ok(res) => res,
        Err(e) => {
            let retries = session.total_retries();
            return state.finish(
                domain,
                CrawlOutcome::TransportFailure(e.to_string()),
                false,
                retries,
            );
        }
    };
    visited.insert(home_url.clone());
    visited.insert(home.final_url.clone());
    let home_doc = extract(&String::from_utf8_lossy(&home.response.body));
    state.pages.push(CrawledPage {
        url: home_url.clone(),
        final_url: home.final_url.clone(),
        status: home.response.status,
        content_type: home.response.content_type,
        body: home.response.body_text(),
        via: LinkSource::Homepage,
    });

    if !home.response.status.is_success() {
        let retries = session.total_retries();
        return state.finish(domain, CrawlOutcome::NoPrivacyPage, false, retries);
    }

    // 2. Up to three "privacy" links from the bottom of the homepage.
    let mut seed_targets: Vec<(Url, LinkSource)> = Vec::with_capacity(MAX_FOOTER_LINKS + 2);
    let footer_links = home_doc
        .links_containing("privacy")
        .filter(|l| l.region == PageRegion::Footer)
        .take(MAX_FOOTER_LINKS);
    for link in footer_links {
        if let Ok(url) = home_url.join(&link.href) {
            if url.same_site(&home_url) && !is_binary_link(&url) {
                seed_targets.push((url, LinkSource::FooterLink));
            }
        }
    }
    // 3. Standard path probes.
    if let Ok(u) = home_url.join("/privacy-policy") {
        seed_targets.push((u, LinkSource::ProbePolicyPath));
    }
    if let Ok(u) = home_url.join("/privacy") {
        seed_targets.push((u, LinkSource::ProbePrivacyPath));
    }

    // Fetch the seed pages; collect header links from each.
    let mut header_targets: Vec<(Url, LinkSource)> = Vec::with_capacity(seed_targets.len());
    for (url, via) in seed_targets {
        if state.pages.len() >= MAX_PAGES || state.over_deadline(&session, options) {
            break;
        }
        // Footer-link targets are skipped if already visited; the two path
        // probes are deliberately always attempted (and recorded) even when
        // a footer link pointed at the same URL — the probe-hit statistics
        // of §3.1 are defined over the probes themselves. privacy_pages()
        // deduplicates by final URL, so annotation is unaffected.
        if visited.contains(&url)
            && !matches!(
                via,
                LinkSource::ProbePolicyPath | LinkSource::ProbePrivacyPath
            )
        {
            continue;
        }
        if !allowed(&url) {
            state.robots_skipped += 1;
            continue;
        }
        state.before_fetch(&mut session);
        let fetched = match session.fetch(&url) {
            Ok(res) => res,
            Err(_) => continue,
        };
        visited.insert(url.clone());
        visited.insert(fetched.final_url.clone());
        let body = fetched.response.body_text();
        if fetched.response.status.is_success()
            && fetched.response.content_type == ContentType::Html
        {
            let doc = extract(&body);
            for link in doc
                .links_containing("privacy")
                .filter(|l| l.region == PageRegion::Header)
                .take(MAX_HEADER_LINKS)
            {
                if let Ok(target) = fetched.final_url.join(&link.href) {
                    if target.same_site(&home_url)
                        && !is_binary_link(&target)
                        && !visited.contains(&target)
                    {
                        header_targets.push((target, LinkSource::HeaderLink));
                    }
                }
            }
        }
        state.pages.push(CrawledPage {
            url,
            final_url: fetched.final_url,
            status: fetched.response.status,
            content_type: fetched.response.content_type,
            body,
            via,
        });
    }

    // 4. Header "privacy" links from the seed pages.
    for (url, via) in header_targets {
        if state.pages.len() >= MAX_PAGES || state.over_deadline(&session, options) {
            break;
        }
        if visited.contains(&url) {
            continue;
        }
        if !allowed(&url) {
            state.robots_skipped += 1;
            continue;
        }
        state.before_fetch(&mut session);
        let fetched = match session.fetch(&url) {
            Ok(res) => res,
            Err(_) => continue,
        };
        visited.insert(url.clone());
        visited.insert(fetched.final_url.clone());
        state.pages.push(CrawledPage {
            url,
            final_url: fetched.final_url,
            status: fetched.response.status,
            content_type: fetched.response.content_type,
            body: fetched.response.body_text(),
            via,
        });
    }

    let outcome = if state.pages.iter().any(|p| p.is_potential_privacy_page()) {
        CrawlOutcome::Success
    } else {
        CrawlOutcome::NoPrivacyPage
    };
    let retries = session.total_retries();
    state.finish(domain, outcome, false, retries)
}

/// Fetch and parse robots.txt; any failure (absent file, transport error,
/// non-HTML content type aside) yields the allow-everything policy.
fn fetch_robots(session: &mut FetchSession, home_url: &Url) -> RobotsPolicy {
    let Ok(robots_url) = home_url.join("/robots.txt") else {
        return RobotsPolicy::default();
    };
    match session.fetch(&robots_url) {
        Ok(res) if res.response.status.is_success() => {
            RobotsPolicy::parse(&res.response.body_text())
        }
        _ => RobotsPolicy::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aipan_net::fault::{FaultConfig, FaultInjector};
    use aipan_net::host::StaticSite;
    use aipan_net::http::Response;
    use aipan_net::Internet;

    fn client_for(net: Internet) -> Client {
        Client::new(net, FaultInjector::new(0, FaultConfig::none()))
    }

    fn home_with_footer(links: &str) -> Response {
        Response::html(format!(
            "<html><body><main><p>welcome to our homepage</p></main>\
             <footer>{links}</footer></body></html>"
        ))
    }

    #[test]
    fn binary_asset_links_are_recognized() {
        let binary = Url::parse("https://a.com/assets/privacy-banner.PNG").unwrap();
        assert!(is_binary_link(&binary), "case-insensitive extension match");
        for path in [
            "/privacy-policy",
            "/privacy.html",
            "/privacy.pdf",
            "/v2.1/privacy",
        ] {
            let url = Url::parse(&format!("https://a.com{path}")).unwrap();
            assert!(!is_binary_link(&url), "{path} must stay crawlable");
        }
    }

    #[test]
    fn binary_footer_links_are_not_fetched() {
        let net = Internet::new();
        net.register(
            "a.com",
            StaticSite::new().page(
                "/",
                home_with_footer("<a href=\"/privacy-seal.png\">Privacy Seal</a>"),
            ),
        );
        let crawl = crawl_domain(&client_for(net), "a.com");
        assert!(
            crawl.pages.iter().all(|p| p.via != LinkSource::FooterLink),
            "the .png link must be skipped before fetching"
        );
    }

    #[test]
    fn finds_policy_via_footer_link() {
        let net = Internet::new();
        net.register(
            "a.com",
            StaticSite::new()
                .page(
                    "/",
                    home_with_footer("<a href=\"/legal/pp\">Privacy Policy</a>"),
                )
                .page(
                    "/legal/pp",
                    Response::html("<h1>Privacy</h1><p>policy text</p>"),
                ),
        );
        let crawl = crawl_domain(&client_for(net), "a.com");
        assert!(crawl.is_success());
        assert!(crawl
            .pages
            .iter()
            .any(|p| p.via == LinkSource::FooterLink && p.status.is_success()));
        // Probes 404 but were attempted.
        assert!(!crawl.policy_path_exists());
        assert!(!crawl.privacy_path_exists());
    }

    #[test]
    fn finds_policy_via_probe_without_any_link() {
        let net = Internet::new();
        net.register(
            "b.com",
            StaticSite::new()
                .page("/", home_with_footer(""))
                .page("/privacy-policy", Response::html("<p>the policy</p>")),
        );
        let crawl = crawl_domain(&client_for(net), "b.com");
        assert!(crawl.is_success());
        assert!(crawl.policy_path_exists());
        assert!(!crawl.privacy_path_exists());
    }

    #[test]
    fn follows_header_links_from_privacy_center() {
        let net = Internet::new();
        net.register(
            "c.com",
            StaticSite::new()
                .page(
                    "/",
                    home_with_footer("<a href=\"/privacy\">Privacy Center</a>"),
                )
                .page(
                    "/privacy",
                    Response::html(
                        "<header><a href=\"/privacy/full\">Privacy Policy</a></header>\
                         <main><p>center</p></main>",
                    ),
                )
                .page("/privacy/full", Response::html("<p>full policy text</p>")),
        );
        let crawl = crawl_domain(&client_for(net), "c.com");
        assert!(crawl.is_success());
        let deep = crawl
            .pages
            .iter()
            .find(|p| p.via == LinkSource::HeaderLink)
            .expect("followed header link");
        assert_eq!(deep.final_url.path, "/privacy/full");
    }

    #[test]
    fn no_privacy_page_when_nothing_exists() {
        let net = Internet::new();
        net.register("d.com", StaticSite::new().page("/", home_with_footer("")));
        let crawl = crawl_domain(&client_for(net), "d.com");
        assert_eq!(crawl.outcome, CrawlOutcome::NoPrivacyPage);
        assert!(!crawl.is_success());
    }

    #[test]
    fn transport_failure_reported() {
        let net = Internet::new(); // d.com unregistered → DNS failure.
        let crawl = crawl_domain(&client_for(net), "missing.com");
        assert!(matches!(crawl.outcome, CrawlOutcome::TransportFailure(_)));
    }

    #[test]
    fn javascript_links_ignored() {
        let net = Internet::new();
        net.register(
            "e.com",
            StaticSite::new().page(
                "/",
                home_with_footer("<a href=\"javascript:openPrivacy()\">Privacy Policy</a>"),
            ),
        );
        let crawl = crawl_domain(&client_for(net), "e.com");
        assert_eq!(crawl.outcome, CrawlOutcome::NoPrivacyPage);
    }

    #[test]
    fn offsite_links_ignored() {
        let net = Internet::new();
        net.register(
            "f.com",
            StaticSite::new().page(
                "/",
                home_with_footer("<a href=\"https://other.com/privacy\">Privacy Policy</a>"),
            ),
        );
        net.register(
            "other.com",
            StaticSite::new().page("/privacy", Response::html("x")),
        );
        let crawl = crawl_domain(&client_for(net), "f.com");
        assert_eq!(crawl.outcome, CrawlOutcome::NoPrivacyPage);
    }

    #[test]
    fn footer_links_capped_at_three() {
        let net = Internet::new();
        let footer: String = (0..6)
            .map(|i| format!("<a href=\"/privacy{i}\">Privacy {i}</a>"))
            .collect();
        let mut site = StaticSite::new().page("/", home_with_footer(&footer));
        for i in 0..6 {
            site = site.page(&format!("/privacy{i}"), Response::html("<p>p</p>"));
        }
        net.register("g.com", site);
        let crawl = crawl_domain(&client_for(net), "g.com");
        let footer_fetches = crawl
            .pages
            .iter()
            .filter(|p| p.via == LinkSource::FooterLink)
            .count();
        assert_eq!(footer_fetches, MAX_FOOTER_LINKS);
    }

    #[test]
    fn page_budget_never_exceeded() {
        // A pathological site where every page links five more privacy pages.
        let net = Internet::new();
        let mut site = StaticSite::new();
        let footer: String = (0..3)
            .map(|i| format!("<a href=\"/privacy-hub{i}\">Privacy hub {i}</a>"))
            .collect();
        site = site.page("/", home_with_footer(&footer));
        for i in 0..3 {
            let header: String = (0..5)
                .map(|j| format!("<a href=\"/privacy-leaf{i}{j}\">Privacy leaf</a>"))
                .collect();
            site = site.page(
                &format!("/privacy-hub{i}"),
                Response::html(format!("<header>{header}</header><main><p>hub</p></main>")),
            );
            for j in 0..5 {
                site = site.page(
                    &format!("/privacy-leaf{i}{j}"),
                    Response::html("<p>leaf</p>"),
                );
            }
        }
        net.register("h.com", site);
        let crawl = crawl_domain(&client_for(net), "h.com");
        assert!(
            crawl.pages.len() <= MAX_PAGES,
            "{} pages",
            crawl.pages.len()
        );
        assert!(crawl.fetch_attempts <= MAX_PAGES + 2);
    }

    #[test]
    fn privacy_pages_deduplicated_by_redirect_target() {
        let net = Internet::new();
        net.register(
            "i.com",
            StaticSite::new()
                .page(
                    "/",
                    home_with_footer("<a href=\"/privacy-policy\">Privacy Policy</a>"),
                )
                .page("/privacy-policy", Response::html("<p>one true policy</p>"))
                .page(
                    "/privacy",
                    Response::redirect(Status::MOVED_PERMANENTLY, "/privacy-policy"),
                ),
        );
        let crawl = crawl_domain(&client_for(net), "i.com");
        assert!(crawl.policy_path_exists());
        assert!(crawl.privacy_path_exists());
        assert_eq!(
            crawl.privacy_pages().len(),
            1,
            "redirected duplicate merged"
        );
    }

    #[test]
    fn robots_disallow_all_blocks_crawl() {
        let net = Internet::new();
        net.register(
            "r.com",
            StaticSite::new()
                .page(
                    "/robots.txt",
                    Response {
                        status: Status::OK,
                        content_type: ContentType::Plain,
                        body: "User-agent: *\nDisallow: /\n".into(),
                        location: None,
                    },
                )
                .page(
                    "/",
                    home_with_footer("<a href=\"/privacy\">Privacy Policy</a>"),
                )
                .page("/privacy", Response::html("<p>policy</p>")),
        );
        let crawl = crawl_domain(&client_for(net), "r.com");
        assert!(crawl.robots_blocked);
        assert_eq!(crawl.outcome, CrawlOutcome::NoPrivacyPage);
        assert!(crawl.pages.is_empty(), "nothing may be fetched");
    }

    #[test]
    fn robots_path_rules_skip_disallowed_targets() {
        let net = Internet::new();
        net.register(
            "s.com",
            StaticSite::new()
                .page(
                    "/robots.txt",
                    Response {
                        status: Status::OK,
                        content_type: ContentType::Plain,
                        body: "User-agent: *\nDisallow: /privacy-policy\nCrawl-delay: 2\n".into(),
                        location: None,
                    },
                )
                .page(
                    "/",
                    home_with_footer("<a href=\"/privacy\">Privacy Policy</a>"),
                )
                .page("/privacy", Response::html("<p>the policy text</p>"))
                .page("/privacy-policy", Response::html("<p>forbidden copy</p>")),
        );
        let crawl = crawl_domain(&client_for(net), "s.com");
        assert!(crawl.is_success(), "allowed path still crawled");
        assert!(crawl.robots_skipped >= 1, "disallowed probe skipped");
        assert!(
            crawl
                .pages
                .iter()
                .all(|p| p.final_url.path != "/privacy-policy"),
            "disallowed path must not be fetched"
        );
        // Crawl-delay: 2 → 2000 ms between fetches.
        assert!(crawl.politeness_delay_ms >= 2000);
    }

    #[test]
    fn missing_robots_allows_everything() {
        let net = Internet::new();
        net.register(
            "t.com",
            StaticSite::new()
                .page("/", home_with_footer(""))
                .page("/privacy", Response::html("<p>p</p>")),
        );
        let crawl = crawl_domain(&client_for(net), "t.com");
        assert!(crawl.is_success());
        assert!(!crawl.robots_blocked);
        assert_eq!(crawl.robots_skipped, 0);
    }

    #[test]
    fn retries_recover_domains_the_no_retry_baseline_loses() {
        // The homepage resets for a burst of 2 attempts: the default policy
        // (3 attempts) recovers, the no-retry baseline reports a transport
        // failure. This is the success-rate improvement in miniature.
        let net = Internet::new();
        net.register(
            "flaky.com",
            StaticSite::new()
                .page("/", home_with_footer("<a href=\"/privacy\">Privacy</a>"))
                .page("/privacy", Response::html("<p>policy</p>")),
        );
        let cfg = FaultConfig {
            conn_reset: 1.0,
            burst_max: 2,
            ..FaultConfig::none()
        };
        let retrying = Client::new(net.clone(), FaultInjector::new(0, cfg));
        let crawl = crawl_domain_with(&retrying, "flaky.com", &CrawlOptions::default());
        assert!(crawl.is_success(), "{:?}", crawl.outcome);
        assert!(crawl.retries >= 1, "retries={}", crawl.retries);

        let baseline = Client::new(net, FaultInjector::new(0, cfg));
        let crawl = crawl_domain_with(&baseline, "flaky.com", &CrawlOptions::no_retry());
        assert!(
            matches!(crawl.outcome, CrawlOutcome::TransportFailure(_)),
            "{:?}",
            crawl.outcome
        );
        assert_eq!(crawl.retries, 0);
    }

    #[test]
    fn deadline_salvages_partial_page_set() {
        // Every fetch costs 1000 ms; a 1500 ms deadline lets the homepage
        // and the first footer target through robots+homepage latency, then
        // stops. The salvaged set still counts as a crawl result.
        let net = Internet::new();
        let mut site = StaticSite::new().page(
            "/",
            home_with_footer(
                "<a href=\"/privacy0\">Privacy 0</a>\
                 <a href=\"/privacy1\">Privacy 1</a>\
                 <a href=\"/privacy2\">Privacy 2</a>",
            ),
        );
        for i in 0..3 {
            site = site.page(&format!("/privacy{i}"), Response::html("<p>p</p>"));
        }
        net.register("slow.com", site);
        let cfg = FaultConfig {
            base_latency_ms: 1000,
            ..FaultConfig::none()
        };
        let client = Client::new(net.clone(), FaultInjector::new(0, cfg));
        let options = CrawlOptions {
            deadline_ms: Some(1_500),
            ..CrawlOptions::default()
        };
        let crawl = crawl_domain_with(&client, "slow.com", &options);
        assert!(crawl.deadline_hit, "deadline should have fired");
        assert!(
            crawl.pages.len() < 6,
            "crawl should stop early, got {} pages",
            crawl.pages.len()
        );
        assert!(
            !crawl.pages.is_empty(),
            "partial pages must be salvaged, not discarded"
        );

        // Without a deadline the same site yields the full page set.
        let unbounded = Client::new(net, FaultInjector::new(0, cfg));
        let full = crawl_domain_with(&unbounded, "slow.com", &CrawlOptions::default());
        assert!(!full.deadline_hit);
        assert!(full.pages.len() > crawl.pages.len());
    }

    #[test]
    fn blocked_site_yields_no_success() {
        let net = Internet::new();
        net.register(
            "j.com",
            StaticSite::new().page("/", home_with_footer("<a href=\"/privacy\">Privacy</a>")),
        );
        let cfg = FaultConfig {
            block_crawlers: 1.0,
            ..FaultConfig::none()
        };
        let client = Client::new(net, FaultInjector::new(0, cfg));
        let crawl = crawl_domain(&client, "j.com");
        // The bot wall serves 403s: homepage not successful → no privacy page.
        assert_eq!(crawl.outcome, CrawlOutcome::NoPrivacyPage);
    }
}
