//! The single-domain crawl procedure (§3.1 navigation policy).

use crate::robots::RobotsPolicy;
use aipan_html::{extract, PageRegion};
use aipan_net::http::ContentType;
use aipan_net::{Client, Status, Url};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Maximum pages fetched per site (1 homepage + 3 footer links + 2 probes +
/// 5×5 header links = 31, as stated in §3.1).
pub const MAX_PAGES: usize = 31;
/// Footer privacy links followed from the homepage.
pub const MAX_FOOTER_LINKS: usize = 3;
/// Header privacy links followed from each seed page.
pub const MAX_HEADER_LINKS: usize = 5;

/// Link-target extensions that cannot be privacy-policy documents; the
/// crawler skips them before spending a fetch. The simulated internet only
/// serves text pages, so on simulated worlds this is a fetch-budget guard
/// rather than a behavior change.
const SKIP_EXTENSIONS: &[&str] = &[
    "css", "gif", "ico", "jpeg", "jpg", "js", "mp4", "png", "svg", "webp", "zip",
];

/// Whether a link target's file extension marks it as a non-document asset.
fn is_binary_link(url: &Url) -> bool {
    url.extension()
        .map_or(false, |ext| SKIP_EXTENSIONS.contains(&ext.as_str()))
}

/// How a page was discovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkSource {
    /// The homepage itself.
    Homepage,
    /// A "privacy" link from the bottom of the homepage.
    FooterLink,
    /// The `/privacy-policy` probe.
    ProbePolicyPath,
    /// The `/privacy` probe.
    ProbePrivacyPath,
    /// A "privacy" link from the top of a seed page.
    HeaderLink,
}

/// One fetched page.
#[derive(Debug, Clone)]
pub struct CrawledPage {
    /// The URL requested.
    pub url: Url,
    /// The URL that served the response (post-redirects).
    pub final_url: Url,
    /// Response status.
    pub status: Status,
    /// Response content type.
    pub content_type: ContentType,
    /// Response body (HTML text or raw bytes as lossy UTF-8).
    pub body: String,
    /// How the page was discovered.
    pub via: LinkSource,
}

impl CrawledPage {
    /// Whether this is a *potential privacy page*: a successfully fetched
    /// non-homepage page.
    pub fn is_potential_privacy_page(&self) -> bool {
        self.via != LinkSource::Homepage && self.status.is_success()
    }
}

/// Outcome classification for a domain crawl.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrawlOutcome {
    /// At least one potential privacy page was fetched with status < 400.
    Success,
    /// The homepage was reachable but no privacy page was found.
    NoPrivacyPage,
    /// The homepage fetch failed at the transport level.
    TransportFailure(String),
}

/// The result of crawling one domain.
#[derive(Debug, Clone)]
pub struct DomainCrawl {
    /// The crawled domain.
    pub domain: String,
    /// Outcome classification.
    pub outcome: CrawlOutcome,
    /// All fetched pages (including the homepage), in fetch order.
    pub pages: Vec<CrawledPage>,
    /// Number of fetch attempts (successful or not).
    pub fetch_attempts: usize,
    /// Fetches skipped because robots.txt disallowed the path.
    pub robots_skipped: usize,
    /// Whether robots.txt disallowed the entire site.
    pub robots_blocked: bool,
    /// Simulated politeness delay honored across the crawl (ms), from
    /// robots `Crawl-delay` (default 500 ms between fetches).
    pub politeness_delay_ms: u64,
}

impl DomainCrawl {
    /// Whether the crawl succeeded (paper definition).
    pub fn is_success(&self) -> bool {
        self.outcome == CrawlOutcome::Success
    }

    /// Potential privacy pages, deduplicated by final URL and body content.
    pub fn privacy_pages(&self) -> Vec<&CrawledPage> {
        let mut seen_urls = HashSet::new();
        let mut seen_bodies = HashSet::new();
        let mut out = Vec::new();
        for page in &self.pages {
            if !page.is_potential_privacy_page() {
                continue;
            }
            if !seen_urls.insert(page.final_url.clone()) {
                continue;
            }
            let body_key = hash_body(&page.body);
            if !seen_bodies.insert(body_key) {
                continue;
            }
            out.push(page);
        }
        out
    }

    /// Whether the `/privacy-policy` probe hit an existing page.
    pub fn policy_path_exists(&self) -> bool {
        self.probe_hit(LinkSource::ProbePolicyPath)
    }

    /// Whether the `/privacy` probe hit an existing page.
    pub fn privacy_path_exists(&self) -> bool {
        self.probe_hit(LinkSource::ProbePrivacyPath)
    }

    fn probe_hit(&self, via: LinkSource) -> bool {
        self.pages
            .iter()
            .any(|p| p.via == via && p.status.is_success())
    }
}

fn hash_body(body: &str) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    body.hash(&mut h);
    h.finish()
}

/// Default politeness delay between fetches when robots declares none.
pub const DEFAULT_POLITENESS_MS: u64 = 500;

/// The crawler's user-agent string (matched against robots groups).
pub const USER_AGENT: &str = "aipan-crawler/0.1 (headless)";

fn finish(
    domain: &str,
    outcome: CrawlOutcome,
    pages: Vec<CrawledPage>,
    fetch_attempts: usize,
    robots_skipped: usize,
    robots_blocked: bool,
    delay_per_fetch: u64,
) -> DomainCrawl {
    DomainCrawl {
        domain: domain.to_string(),
        outcome,
        politeness_delay_ms: delay_per_fetch * fetch_attempts.saturating_sub(1) as u64,
        pages,
        fetch_attempts,
        robots_skipped,
        robots_blocked,
    }
}

/// Crawl one domain with the §3.1 navigation policy, honoring robots.txt.
pub fn crawl_domain(client: &Client, domain: &str) -> DomainCrawl {
    let mut pages: Vec<CrawledPage> = Vec::new();
    let mut fetch_attempts = 0usize;
    let mut robots_skipped = 0usize;
    let mut visited: HashSet<Url> = HashSet::new();

    let home_url = match Url::parse(&format!("https://{domain}/")) {
        Ok(u) => u,
        Err(e) => {
            return finish(
                domain,
                CrawlOutcome::TransportFailure(format!("bad domain: {e}")),
                pages,
                fetch_attempts,
                0,
                false,
                DEFAULT_POLITENESS_MS,
            )
        }
    };

    // 0. robots.txt (not counted as a crawled page).
    let robots = fetch_robots(client, &home_url);
    let delay_per_fetch = robots
        .crawl_delay_ms(USER_AGENT)
        .unwrap_or(DEFAULT_POLITENESS_MS);
    if robots.blocks_everything(USER_AGENT) {
        return finish(
            domain,
            CrawlOutcome::NoPrivacyPage,
            pages,
            fetch_attempts,
            0,
            true,
            delay_per_fetch,
        );
    }
    let allowed = |url: &Url| robots.is_allowed(USER_AGENT, &url.path);

    // 1. Homepage.
    fetch_attempts += 1;
    let home = match client.fetch(&home_url) {
        Ok(res) => res,
        Err(e) => {
            return finish(
                domain,
                CrawlOutcome::TransportFailure(e.to_string()),
                pages,
                fetch_attempts,
                robots_skipped,
                false,
                delay_per_fetch,
            )
        }
    };
    visited.insert(home_url.clone());
    visited.insert(home.final_url.clone());
    let home_doc = extract(&String::from_utf8_lossy(&home.response.body));
    pages.push(CrawledPage {
        url: home_url.clone(),
        final_url: home.final_url.clone(),
        status: home.response.status,
        content_type: home.response.content_type,
        body: home.response.body_text(),
        via: LinkSource::Homepage,
    });

    if !home.response.status.is_success() {
        return finish(
            domain,
            CrawlOutcome::NoPrivacyPage,
            pages,
            fetch_attempts,
            robots_skipped,
            false,
            delay_per_fetch,
        );
    }

    // 2. Up to three "privacy" links from the bottom of the homepage.
    let mut seed_targets: Vec<(Url, LinkSource)> = Vec::new();
    let footer_links = home_doc
        .links_containing("privacy")
        .filter(|l| l.region == PageRegion::Footer)
        .take(MAX_FOOTER_LINKS);
    for link in footer_links {
        if let Ok(url) = home_url.join(&link.href) {
            if url.same_site(&home_url) && !is_binary_link(&url) {
                seed_targets.push((url, LinkSource::FooterLink));
            }
        }
    }
    // 3. Standard path probes.
    if let Ok(u) = home_url.join("/privacy-policy") {
        seed_targets.push((u, LinkSource::ProbePolicyPath));
    }
    if let Ok(u) = home_url.join("/privacy") {
        seed_targets.push((u, LinkSource::ProbePrivacyPath));
    }

    // Fetch the seed pages; collect header links from each.
    let mut header_targets: Vec<(Url, LinkSource)> = Vec::new();
    for (url, via) in seed_targets {
        if pages.len() >= MAX_PAGES {
            break;
        }
        // Footer-link targets are skipped if already visited; the two path
        // probes are deliberately always attempted (and recorded) even when
        // a footer link pointed at the same URL — the probe-hit statistics
        // of §3.1 are defined over the probes themselves. privacy_pages()
        // deduplicates by final URL, so annotation is unaffected.
        if visited.contains(&url)
            && !matches!(
                via,
                LinkSource::ProbePolicyPath | LinkSource::ProbePrivacyPath
            )
        {
            continue;
        }
        if !allowed(&url) {
            robots_skipped += 1;
            continue;
        }
        fetch_attempts += 1;
        let fetched = match client.fetch(&url) {
            Ok(res) => res,
            Err(_) => continue,
        };
        visited.insert(url.clone());
        visited.insert(fetched.final_url.clone());
        let body = fetched.response.body_text();
        if fetched.response.status.is_success()
            && fetched.response.content_type == ContentType::Html
        {
            let doc = extract(&body);
            for link in doc
                .links_containing("privacy")
                .filter(|l| l.region == PageRegion::Header)
                .take(MAX_HEADER_LINKS)
            {
                if let Ok(target) = fetched.final_url.join(&link.href) {
                    if target.same_site(&home_url)
                        && !is_binary_link(&target)
                        && !visited.contains(&target)
                    {
                        header_targets.push((target, LinkSource::HeaderLink));
                    }
                }
            }
        }
        pages.push(CrawledPage {
            url,
            final_url: fetched.final_url,
            status: fetched.response.status,
            content_type: fetched.response.content_type,
            body,
            via,
        });
    }

    // 4. Header "privacy" links from the seed pages.
    for (url, via) in header_targets {
        if pages.len() >= MAX_PAGES {
            break;
        }
        if visited.contains(&url) {
            continue;
        }
        if !allowed(&url) {
            robots_skipped += 1;
            continue;
        }
        fetch_attempts += 1;
        let fetched = match client.fetch(&url) {
            Ok(res) => res,
            Err(_) => continue,
        };
        visited.insert(url.clone());
        visited.insert(fetched.final_url.clone());
        pages.push(CrawledPage {
            url,
            final_url: fetched.final_url,
            status: fetched.response.status,
            content_type: fetched.response.content_type,
            body: fetched.response.body_text(),
            via,
        });
    }

    let outcome = if pages.iter().any(|p| p.is_potential_privacy_page()) {
        CrawlOutcome::Success
    } else {
        CrawlOutcome::NoPrivacyPage
    };
    finish(
        domain,
        outcome,
        pages,
        fetch_attempts,
        robots_skipped,
        false,
        delay_per_fetch,
    )
}

/// Fetch and parse robots.txt; any failure (absent file, transport error,
/// non-HTML content type aside) yields the allow-everything policy.
fn fetch_robots(client: &Client, home_url: &Url) -> RobotsPolicy {
    let Ok(robots_url) = home_url.join("/robots.txt") else {
        return RobotsPolicy::default();
    };
    match client.fetch(&robots_url) {
        Ok(res) if res.response.status.is_success() => {
            RobotsPolicy::parse(&res.response.body_text())
        }
        _ => RobotsPolicy::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aipan_net::fault::{FaultConfig, FaultInjector};
    use aipan_net::host::StaticSite;
    use aipan_net::http::Response;
    use aipan_net::Internet;

    fn client_for(net: Internet) -> Client {
        Client::new(net, FaultInjector::new(0, FaultConfig::none()))
    }

    fn home_with_footer(links: &str) -> Response {
        Response::html(format!(
            "<html><body><main><p>welcome to our homepage</p></main>\
             <footer>{links}</footer></body></html>"
        ))
    }

    #[test]
    fn binary_asset_links_are_recognized() {
        let binary = Url::parse("https://a.com/assets/privacy-banner.PNG").unwrap();
        assert!(is_binary_link(&binary), "case-insensitive extension match");
        for path in [
            "/privacy-policy",
            "/privacy.html",
            "/privacy.pdf",
            "/v2.1/privacy",
        ] {
            let url = Url::parse(&format!("https://a.com{path}")).unwrap();
            assert!(!is_binary_link(&url), "{path} must stay crawlable");
        }
    }

    #[test]
    fn binary_footer_links_are_not_fetched() {
        let net = Internet::new();
        net.register(
            "a.com",
            StaticSite::new().page(
                "/",
                home_with_footer("<a href=\"/privacy-seal.png\">Privacy Seal</a>"),
            ),
        );
        let crawl = crawl_domain(&client_for(net), "a.com");
        assert!(
            crawl.pages.iter().all(|p| p.via != LinkSource::FooterLink),
            "the .png link must be skipped before fetching"
        );
    }

    #[test]
    fn finds_policy_via_footer_link() {
        let net = Internet::new();
        net.register(
            "a.com",
            StaticSite::new()
                .page(
                    "/",
                    home_with_footer("<a href=\"/legal/pp\">Privacy Policy</a>"),
                )
                .page(
                    "/legal/pp",
                    Response::html("<h1>Privacy</h1><p>policy text</p>"),
                ),
        );
        let crawl = crawl_domain(&client_for(net), "a.com");
        assert!(crawl.is_success());
        assert!(crawl
            .pages
            .iter()
            .any(|p| p.via == LinkSource::FooterLink && p.status.is_success()));
        // Probes 404 but were attempted.
        assert!(!crawl.policy_path_exists());
        assert!(!crawl.privacy_path_exists());
    }

    #[test]
    fn finds_policy_via_probe_without_any_link() {
        let net = Internet::new();
        net.register(
            "b.com",
            StaticSite::new()
                .page("/", home_with_footer(""))
                .page("/privacy-policy", Response::html("<p>the policy</p>")),
        );
        let crawl = crawl_domain(&client_for(net), "b.com");
        assert!(crawl.is_success());
        assert!(crawl.policy_path_exists());
        assert!(!crawl.privacy_path_exists());
    }

    #[test]
    fn follows_header_links_from_privacy_center() {
        let net = Internet::new();
        net.register(
            "c.com",
            StaticSite::new()
                .page(
                    "/",
                    home_with_footer("<a href=\"/privacy\">Privacy Center</a>"),
                )
                .page(
                    "/privacy",
                    Response::html(
                        "<header><a href=\"/privacy/full\">Privacy Policy</a></header>\
                         <main><p>center</p></main>",
                    ),
                )
                .page("/privacy/full", Response::html("<p>full policy text</p>")),
        );
        let crawl = crawl_domain(&client_for(net), "c.com");
        assert!(crawl.is_success());
        let deep = crawl
            .pages
            .iter()
            .find(|p| p.via == LinkSource::HeaderLink)
            .expect("followed header link");
        assert_eq!(deep.final_url.path, "/privacy/full");
    }

    #[test]
    fn no_privacy_page_when_nothing_exists() {
        let net = Internet::new();
        net.register("d.com", StaticSite::new().page("/", home_with_footer("")));
        let crawl = crawl_domain(&client_for(net), "d.com");
        assert_eq!(crawl.outcome, CrawlOutcome::NoPrivacyPage);
        assert!(!crawl.is_success());
    }

    #[test]
    fn transport_failure_reported() {
        let net = Internet::new(); // d.com unregistered → DNS failure.
        let crawl = crawl_domain(&client_for(net), "missing.com");
        assert!(matches!(crawl.outcome, CrawlOutcome::TransportFailure(_)));
    }

    #[test]
    fn javascript_links_ignored() {
        let net = Internet::new();
        net.register(
            "e.com",
            StaticSite::new().page(
                "/",
                home_with_footer("<a href=\"javascript:openPrivacy()\">Privacy Policy</a>"),
            ),
        );
        let crawl = crawl_domain(&client_for(net), "e.com");
        assert_eq!(crawl.outcome, CrawlOutcome::NoPrivacyPage);
    }

    #[test]
    fn offsite_links_ignored() {
        let net = Internet::new();
        net.register(
            "f.com",
            StaticSite::new().page(
                "/",
                home_with_footer("<a href=\"https://other.com/privacy\">Privacy Policy</a>"),
            ),
        );
        net.register(
            "other.com",
            StaticSite::new().page("/privacy", Response::html("x")),
        );
        let crawl = crawl_domain(&client_for(net), "f.com");
        assert_eq!(crawl.outcome, CrawlOutcome::NoPrivacyPage);
    }

    #[test]
    fn footer_links_capped_at_three() {
        let net = Internet::new();
        let footer: String = (0..6)
            .map(|i| format!("<a href=\"/privacy{i}\">Privacy {i}</a>"))
            .collect();
        let mut site = StaticSite::new().page("/", home_with_footer(&footer));
        for i in 0..6 {
            site = site.page(&format!("/privacy{i}"), Response::html("<p>p</p>"));
        }
        net.register("g.com", site);
        let crawl = crawl_domain(&client_for(net), "g.com");
        let footer_fetches = crawl
            .pages
            .iter()
            .filter(|p| p.via == LinkSource::FooterLink)
            .count();
        assert_eq!(footer_fetches, MAX_FOOTER_LINKS);
    }

    #[test]
    fn page_budget_never_exceeded() {
        // A pathological site where every page links five more privacy pages.
        let net = Internet::new();
        let mut site = StaticSite::new();
        let footer: String = (0..3)
            .map(|i| format!("<a href=\"/privacy-hub{i}\">Privacy hub {i}</a>"))
            .collect();
        site = site.page("/", home_with_footer(&footer));
        for i in 0..3 {
            let header: String = (0..5)
                .map(|j| format!("<a href=\"/privacy-leaf{i}{j}\">Privacy leaf</a>"))
                .collect();
            site = site.page(
                &format!("/privacy-hub{i}"),
                Response::html(format!("<header>{header}</header><main><p>hub</p></main>")),
            );
            for j in 0..5 {
                site = site.page(
                    &format!("/privacy-leaf{i}{j}"),
                    Response::html("<p>leaf</p>"),
                );
            }
        }
        net.register("h.com", site);
        let crawl = crawl_domain(&client_for(net), "h.com");
        assert!(
            crawl.pages.len() <= MAX_PAGES,
            "{} pages",
            crawl.pages.len()
        );
        assert!(crawl.fetch_attempts <= MAX_PAGES + 2);
    }

    #[test]
    fn privacy_pages_deduplicated_by_redirect_target() {
        let net = Internet::new();
        net.register(
            "i.com",
            StaticSite::new()
                .page(
                    "/",
                    home_with_footer("<a href=\"/privacy-policy\">Privacy Policy</a>"),
                )
                .page("/privacy-policy", Response::html("<p>one true policy</p>"))
                .page(
                    "/privacy",
                    Response::redirect(Status::MOVED_PERMANENTLY, "/privacy-policy"),
                ),
        );
        let crawl = crawl_domain(&client_for(net), "i.com");
        assert!(crawl.policy_path_exists());
        assert!(crawl.privacy_path_exists());
        assert_eq!(
            crawl.privacy_pages().len(),
            1,
            "redirected duplicate merged"
        );
    }

    #[test]
    fn robots_disallow_all_blocks_crawl() {
        let net = Internet::new();
        net.register(
            "r.com",
            StaticSite::new()
                .page(
                    "/robots.txt",
                    Response {
                        status: Status::OK,
                        content_type: ContentType::Plain,
                        body: "User-agent: *\nDisallow: /\n".into(),
                        location: None,
                    },
                )
                .page(
                    "/",
                    home_with_footer("<a href=\"/privacy\">Privacy Policy</a>"),
                )
                .page("/privacy", Response::html("<p>policy</p>")),
        );
        let crawl = crawl_domain(&client_for(net), "r.com");
        assert!(crawl.robots_blocked);
        assert_eq!(crawl.outcome, CrawlOutcome::NoPrivacyPage);
        assert!(crawl.pages.is_empty(), "nothing may be fetched");
    }

    #[test]
    fn robots_path_rules_skip_disallowed_targets() {
        let net = Internet::new();
        net.register(
            "s.com",
            StaticSite::new()
                .page(
                    "/robots.txt",
                    Response {
                        status: Status::OK,
                        content_type: ContentType::Plain,
                        body: "User-agent: *\nDisallow: /privacy-policy\nCrawl-delay: 2\n".into(),
                        location: None,
                    },
                )
                .page(
                    "/",
                    home_with_footer("<a href=\"/privacy\">Privacy Policy</a>"),
                )
                .page("/privacy", Response::html("<p>the policy text</p>"))
                .page("/privacy-policy", Response::html("<p>forbidden copy</p>")),
        );
        let crawl = crawl_domain(&client_for(net), "s.com");
        assert!(crawl.is_success(), "allowed path still crawled");
        assert!(crawl.robots_skipped >= 1, "disallowed probe skipped");
        assert!(
            crawl
                .pages
                .iter()
                .all(|p| p.final_url.path != "/privacy-policy"),
            "disallowed path must not be fetched"
        );
        // Crawl-delay: 2 → 2000 ms between fetches.
        assert!(crawl.politeness_delay_ms >= 2000);
    }

    #[test]
    fn missing_robots_allows_everything() {
        let net = Internet::new();
        net.register(
            "t.com",
            StaticSite::new()
                .page("/", home_with_footer(""))
                .page("/privacy", Response::html("<p>p</p>")),
        );
        let crawl = crawl_domain(&client_for(net), "t.com");
        assert!(crawl.is_success());
        assert!(!crawl.robots_blocked);
        assert_eq!(crawl.robots_skipped, 0);
    }

    #[test]
    fn blocked_site_yields_no_success() {
        let net = Internet::new();
        net.register(
            "j.com",
            StaticSite::new().page("/", home_with_footer("<a href=\"/privacy\">Privacy</a>")),
        );
        let cfg = FaultConfig {
            block_crawlers: 1.0,
            ..FaultConfig::none()
        };
        let client = Client::new(net, FaultInjector::new(0, cfg));
        let crawl = crawl_domain(&client, "j.com");
        // The bot wall serves 403s: homepage not successful → no privacy page.
        assert_eq!(crawl.outcome, CrawlOutcome::NoPrivacyPage);
    }
}
