//! # aipan-crawler
//!
//! The privacy-page crawler — AIPAN-RS's stand-in for the paper's
//! Crawlee/Playwright crawler, implementing the §3.1 navigation policy
//! exactly:
//!
//! 1. fetch the homepage;
//! 2. follow up to **three** links containing the word "privacy" from the
//!    *bottom* of the homepage;
//! 3. probe `/privacy-policy` and `/privacy`;
//! 4. follow up to **five** links containing "privacy" from the *top* of
//!    each of those five pages (finding policies behind dedicated privacy
//!    center pages);
//! 5. never fetch more than **31** pages per site.
//!
//! A domain crawl *succeeds* when at least one potential privacy page
//! (a non-homepage page reached via the heuristics) returns an HTTP status
//! below 400.
//!
//! The crawler honors robots.txt ([`robots`]): it fetches and parses the
//! exclusion policy before crawling, skips disallowed paths, and accounts
//! the politeness delay implied by `Crawl-delay`.
//!
//! Modules: [`crawl`] (single-domain procedure), [`pool`] (crossbeam worker
//! pool for whole-universe crawls with graceful shutdown), [`report`]
//! (funnel accounting matching §3.1/§4).

#![warn(missing_docs)]

pub mod crawl;
pub mod pool;
pub mod report;
pub mod robots;

pub use crawl::{
    crawl_domain, crawl_domain_with, CrawlOptions, CrawlOutcome, CrawledPage, DomainCrawl,
    LinkSource, MAX_PAGES,
};
pub use pool::{
    crawl_all, crawl_all_with, stream_all_supervised, stream_all_with, DeadLetter, FailStage,
    PoolConfig, SupervisedOutcome, SupervisorOptions,
};
pub use report::{CrawlFunnel, CrawlReport};
pub use robots::RobotsPolicy;
