//! Whole-universe crawling on a crossbeam worker pool.
//!
//! Work distribution follows the channel-based worker pattern of the
//! networking guides (adapted from async task spawning to scoped threads,
//! since the dependency set is synchronous): a bounded job channel feeds
//! `workers` threads, each driving its own clone of the shared [`Client`];
//! results flow back over a second channel and are re-sorted by domain so
//! output order is deterministic regardless of scheduling.

use crate::crawl::{crawl_domain_with, CrawlOptions, DomainCrawl};
use aipan_net::Client;
use crossbeam::channel;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Worker-pool configuration.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Number of crawler worker threads.
    pub workers: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get().min(16))
            .unwrap_or(4);
        PoolConfig { workers }
    }
}

/// Crawl every domain in `domains` with default [`CrawlOptions`] and return
/// the results sorted by domain.
pub fn crawl_all(client: &Client, domains: &[String], config: PoolConfig) -> Vec<DomainCrawl> {
    crawl_all_with(client, domains, config, &CrawlOptions::default())
}

/// Crawl every domain in `domains` and return the results sorted by domain.
///
/// Each domain crawl owns its own fetch session seeded from `options`, so
/// results are byte-identical for any worker count. The pool shuts down
/// gracefully: the job channel is closed after the last job, workers drain
/// it and exit, and the scope joins them all before returning. If a worker
/// panics, the panic is propagated to the caller instead of returning a
/// silently truncated result set. With `workers <= 1` the crawl runs
/// serially on the caller's thread — same results, none of the thread or
/// channel overhead.
pub fn crawl_all_with(
    client: &Client,
    domains: &[String],
    config: PoolConfig,
    options: &CrawlOptions,
) -> Vec<DomainCrawl> {
    let workers = config.workers.max(1);
    if workers == 1 {
        // Serial fast path: no threads, no channels, no clones of the
        // client — just the same per-domain crawl in the same sorted
        // order the pool would produce.
        let mut results: Vec<DomainCrawl> = Vec::with_capacity(domains.len());
        for domain in domains {
            results.push(crawl_domain_with(client, domain, options));
        }
        results.sort_by(|a, b| a.domain.cmp(&b.domain));
        return results;
    }
    let (job_tx, job_rx) = channel::bounded::<String>(workers * 2);
    let (res_tx, res_rx) = channel::unbounded::<DomainCrawl>();

    let mut results: Vec<DomainCrawl> = Vec::with_capacity(domains.len());
    let scope_result = crossbeam::scope(|scope| {
        let mut worker_handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let client = client.clone();
            let options = *options;
            worker_handles.push(scope.spawn(move |_| {
                for domain in job_rx.iter() {
                    let crawl = crawl_domain_with(&client, &domain, &options);
                    if res_tx.send(crawl).is_err() {
                        break;
                    }
                }
            }));
        }
        drop(job_rx);
        drop(res_tx);

        // Feed jobs from this thread while collecting results to avoid
        // deadlock on the bounded job channel.
        let feeder = scope.spawn({
            let job_tx = job_tx.clone();
            let domains = domains.to_vec();
            move |_| {
                for d in domains {
                    if job_tx.send(d).is_err() {
                        break;
                    }
                }
            }
        });
        drop(job_tx);
        for crawl in res_rx.iter() {
            results.push(crawl);
        }
        // The feeder thread body cannot panic; a failed join only means the
        // thread was torn down, and the result channel has already drained.
        let _ = feeder.join();
        // All workers have exited (the result channel drained), so joins
        // cannot block. A panicking worker means `results` is truncated and
        // silently wrong — re-raise its original panic payload loudly.
        for handle in worker_handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    if let Err(payload) = scope_result {
        // Defense in depth for crossbeam implementations that report child
        // panics through the scope result instead.
        std::panic::resume_unwind(payload);
    }

    results.sort_by(|a, b| a.domain.cmp(&b.domain));
    results
}

/// Drive every domain through the **whole** per-domain chain on the worker
/// pool: each worker crawls a domain and immediately hands the finished
/// crawl to `process`, so generate → crawl → extract → annotate run
/// end-to-end inside one worker task instead of parallelizing only the
/// crawl stage. `process` takes the crawl by value — page bodies can be
/// dropped the moment the domain is done, which is what bounds a streaming
/// run's memory by in-flight domains rather than the universe.
///
/// `init` builds one private state value per worker (scratch arenas,
/// per-worker tallies); `process` may mutate it freely without locks.
/// Returns the per-domain results sorted by domain — byte-identical for
/// any worker count, because each domain's work is a pure function of the
/// domain — plus every worker's final state (in unspecified order: fold
/// worker states commutatively). With `workers <= 1` everything runs
/// serially on the caller's thread, no threads or channels.
pub fn stream_all_with<S, R, I, F>(
    client: &Client,
    domains: &[String],
    config: PoolConfig,
    options: &CrawlOptions,
    init: I,
    process: F,
) -> (Vec<(String, R)>, Vec<S>)
where
    S: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, DomainCrawl) -> R + Sync,
{
    let workers = config.workers.max(1);
    if workers == 1 {
        let mut state = init();
        let mut results: Vec<(String, R)> = Vec::with_capacity(domains.len());
        for domain in domains {
            let crawl = crawl_domain_with(client, domain, options);
            results.push((domain.clone(), process(&mut state, crawl)));
        }
        results.sort_by(|a, b| a.0.cmp(&b.0));
        return (results, vec![state]);
    }
    let (job_tx, job_rx) = channel::bounded::<String>(workers * 2);
    let (res_tx, res_rx) = channel::unbounded::<(String, R)>();
    let (state_tx, state_rx) = channel::unbounded::<S>();

    let mut results: Vec<(String, R)> = Vec::with_capacity(domains.len());
    let scope_result = crossbeam::scope(|scope| {
        let mut worker_handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let state_tx = state_tx.clone();
            let client = client.clone();
            let options = *options;
            let init = &init;
            let process = &process;
            worker_handles.push(scope.spawn(move |_| {
                let mut state = init();
                for domain in job_rx.iter() {
                    let crawl = crawl_domain_with(&client, &domain, &options);
                    let result = process(&mut state, crawl);
                    if res_tx.send((domain, result)).is_err() {
                        break;
                    }
                }
                let _ = state_tx.send(state);
            }));
        }
        drop(job_rx);
        drop(res_tx);
        drop(state_tx);

        // Feed jobs from a dedicated thread while this one collects
        // results, to avoid deadlock on the bounded job channel.
        let feeder = scope.spawn({
            let job_tx = job_tx.clone();
            let domains = domains.to_vec();
            move |_| {
                for d in domains {
                    if job_tx.send(d).is_err() {
                        break;
                    }
                }
            }
        });
        drop(job_tx);
        for pair in res_rx.iter() {
            results.push(pair);
        }
        // The feeder body cannot panic; a failed join only means teardown,
        // and the result channel has already drained.
        let _ = feeder.join();
        // All workers have exited (the result channel drained). A panicking
        // worker means `results` is silently truncated — re-raise it.
        for handle in worker_handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    if let Err(payload) = scope_result {
        std::panic::resume_unwind(payload);
    }

    results.sort_by(|a, b| a.0.cmp(&b.0));
    let states: Vec<S> = state_rx.into_iter().collect();
    (results, states)
}

/// Stage of the per-domain chain a supervised panic was caught in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FailStage {
    /// The crawl itself (fetching pages over the virtual transport).
    Crawl,
    /// The caller's `process` closure (extract / segment / annotate /
    /// journal).
    Process,
}

impl FailStage {
    /// Stable lowercase label used in dead-letter records and health
    /// reports.
    pub fn as_str(self) -> &'static str {
        match self {
            FailStage::Crawl => "crawl",
            FailStage::Process => "process",
        }
    }
}

/// A per-domain panic captured by [`stream_all_supervised`]: which domain
/// died, in which stage of its chain, and the rendered panic message.
///
/// Dead letters are deterministic for a deterministic workload: whether a
/// given domain panics (and in which stage) is a pure function of the
/// domain, so the dead-letter set is worker-count invariant even though
/// which *worker* absorbs the panic is not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadLetter {
    /// Domain whose chain panicked.
    pub domain: String,
    /// Chain stage that panicked.
    pub stage: FailStage,
    /// Panic payload (`String`/`&str` payloads verbatim, an opaque marker
    /// otherwise).
    pub message: String,
}

/// Backpressure and fault-isolation policy for [`stream_all_supervised`].
#[derive(Clone, Copy, Default)]
pub struct SupervisorOptions<'a> {
    /// Probed memory figure above which admission of new domains blocks
    /// (until in-flight domains finish and release memory). `None`
    /// disables backpressure.
    pub memory_cap_bytes: Option<usize>,
    /// Memory probe consulted at admission — e.g. the lazy world's site
    /// gauge. Backpressure is inert unless both cap and probe are set.
    pub memory_probe: Option<&'a (dyn Fn() -> usize + Sync)>,
}

/// Everything a supervised streaming drive returns.
pub struct SupervisedOutcome<R, S> {
    /// Per-domain results of the surviving domains, sorted by domain.
    pub results: Vec<(String, R)>,
    /// One record per panicking domain, sorted by domain.
    pub dead_letters: Vec<DeadLetter>,
    /// Every worker's final state (in unspecified order: fold worker
    /// states commutatively).
    pub states: Vec<S>,
    /// Times a worker blocked at admission waiting for probed memory to
    /// drop back under the cap. Scheduling-dependent (not worker-count
    /// invariant); always zero when backpressure is disabled.
    pub backpressure_stalls: u64,
}

/// Admission gate shared by all supervised workers: counts in-flight
/// domains and blocks admission while probed memory exceeds the cap.
struct AdmissionGate<'a> {
    cap: Option<usize>,
    probe: Option<&'a (dyn Fn() -> usize + Sync)>,
    in_flight: Mutex<usize>,
    released: Condvar,
    stalls: AtomicU64,
}

/// The supervised workers recover a poisoned guard instead of propagating:
/// every panic a worker can raise is already caught per-domain, and the
/// gate's counter stays consistent because admit/release pair around the
/// catch.
fn lock_or_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl<'a> AdmissionGate<'a> {
    fn new(options: &SupervisorOptions<'a>) -> AdmissionGate<'a> {
        AdmissionGate {
            cap: options.memory_cap_bytes,
            probe: options.memory_probe,
            in_flight: Mutex::new(0),
            released: Condvar::new(),
            stalls: AtomicU64::new(0),
        }
    }

    /// Block until admitting one more domain keeps probed memory within
    /// the cap — or until nothing is in flight, in which case admission
    /// always proceeds. That second clause is what makes the gate
    /// deadlock-free: once every in-flight domain has finished (each
    /// release notifies), waiting longer cannot shrink the probed figure,
    /// so the gate admits one domain and degrades to serial rather than
    /// hanging.
    fn admit(&self) {
        let mut in_flight = lock_or_recover(&self.in_flight);
        if let (Some(cap), Some(probe)) = (self.cap, self.probe) {
            let mut stalled = false;
            while *in_flight > 0 && probe() > cap {
                stalled = true;
                in_flight = self
                    .released
                    .wait(in_flight)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            if stalled {
                self.stalls.fetch_add(1, Ordering::Relaxed);
            }
        }
        *in_flight += 1;
    }

    fn release(&self) {
        let mut in_flight = lock_or_recover(&self.in_flight);
        *in_flight = in_flight.saturating_sub(1);
        drop(in_flight);
        self.released.notify_all();
    }
}

/// Render a caught panic payload into a dead-letter message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_string()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Outcome of one supervised per-domain chain.
enum ChainOutcome<R> {
    Done(R),
    Died(FailStage, String),
}

/// Run one domain's crawl → process chain with each stage under
/// `catch_unwind`, so the caught stage can be attributed in the dead
/// letter. `AssertUnwindSafe` is sound here because the caller repairs
/// `state` through its `recover` hook before reusing it after a panic.
fn run_chain<S, R>(
    client: &Client,
    domain: &str,
    options: &CrawlOptions,
    state: &mut S,
    process: &(impl Fn(&mut S, DomainCrawl) -> R + Sync),
) -> ChainOutcome<R> {
    let crawl = match catch_unwind(AssertUnwindSafe(|| {
        crawl_domain_with(client, domain, options)
    })) {
        Ok(crawl) => crawl,
        Err(payload) => return ChainOutcome::Died(FailStage::Crawl, panic_message(payload)),
    };
    match catch_unwind(AssertUnwindSafe(|| process(state, crawl))) {
        Ok(result) => ChainOutcome::Done(result),
        Err(payload) => ChainOutcome::Died(FailStage::Process, panic_message(payload)),
    }
}

/// [`stream_all_with`], under a fault-isolating supervisor: a panic
/// anywhere in one domain's chain no longer kills the run. The panic is
/// caught per-domain, rendered into a [`DeadLetter`] (handed to
/// `on_dead_letter` at the moment it happens, e.g. to quarantine it in a
/// journal), the worker's state is repaired through `recover` — reset
/// scratch buffers, keep commutative tallies — and the worker moves on to
/// the next domain. Workers never die, so the result set is never
/// truncated: it is exactly the surviving domains, sorted.
///
/// `supervisor` additionally bounds memory: when both a cap and a probe
/// are configured, workers block before starting a new domain while the
/// probed figure is over the cap and at least one other domain is in
/// flight (see [`AdmissionGate::admit`] for why that cannot deadlock).
#[allow(clippy::too_many_arguments)]
pub fn stream_all_supervised<S, R, I, F, G, D>(
    client: &Client,
    domains: &[String],
    config: PoolConfig,
    options: &CrawlOptions,
    supervisor: &SupervisorOptions<'_>,
    init: I,
    process: F,
    recover: G,
    on_dead_letter: D,
) -> SupervisedOutcome<R, S>
where
    S: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, DomainCrawl) -> R + Sync,
    G: Fn(&mut S) + Sync,
    D: Fn(&DeadLetter) + Sync,
{
    let workers = config.workers.max(1);
    let gate = AdmissionGate::new(supervisor);
    if workers == 1 {
        let mut state = init();
        let mut results: Vec<(String, R)> = Vec::with_capacity(domains.len());
        let mut dead_letters: Vec<DeadLetter> = Vec::with_capacity(domains.len());
        for domain in domains {
            gate.admit();
            let outcome = run_chain(client, domain, options, &mut state, &process);
            gate.release();
            match outcome {
                ChainOutcome::Done(result) => results.push((domain.clone(), result)),
                ChainOutcome::Died(stage, message) => {
                    recover(&mut state);
                    let letter = DeadLetter {
                        domain: domain.clone(),
                        stage,
                        message,
                    };
                    on_dead_letter(&letter);
                    dead_letters.push(letter);
                }
            }
        }
        results.sort_by(|a, b| a.0.cmp(&b.0));
        dead_letters.sort_by(|a, b| a.domain.cmp(&b.domain));
        return SupervisedOutcome {
            results,
            dead_letters,
            states: vec![state],
            backpressure_stalls: gate.stalls.load(Ordering::Relaxed),
        };
    }
    let (job_tx, job_rx) = channel::bounded::<String>(workers * 2);
    let (res_tx, res_rx) = channel::unbounded::<(String, R)>();
    let (dead_tx, dead_rx) = channel::unbounded::<DeadLetter>();
    let (state_tx, state_rx) = channel::unbounded::<S>();

    let mut results: Vec<(String, R)> = Vec::with_capacity(domains.len());
    let gate = &gate;
    let scope_result = crossbeam::scope(|scope| {
        let mut worker_handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let dead_tx = dead_tx.clone();
            let state_tx = state_tx.clone();
            let client = client.clone();
            let options = *options;
            let init = &init;
            let process = &process;
            let recover = &recover;
            let on_dead_letter = &on_dead_letter;
            worker_handles.push(scope.spawn(move |_| {
                let mut state = init();
                for domain in job_rx.iter() {
                    gate.admit();
                    let outcome = run_chain(&client, &domain, &options, &mut state, process);
                    gate.release();
                    match outcome {
                        ChainOutcome::Done(result) => {
                            if res_tx.send((domain, result)).is_err() {
                                break;
                            }
                        }
                        ChainOutcome::Died(stage, message) => {
                            recover(&mut state);
                            let letter = DeadLetter {
                                domain,
                                stage,
                                message,
                            };
                            on_dead_letter(&letter);
                            if dead_tx.send(letter).is_err() {
                                break;
                            }
                        }
                    }
                }
                let _sent = state_tx.send(state);
            }));
        }
        drop(job_rx);
        drop(res_tx);
        drop(dead_tx);
        drop(state_tx);

        // Feed jobs from a dedicated thread while this one collects
        // results, to avoid deadlock on the bounded job channel.
        let feeder = scope.spawn({
            let job_tx = job_tx.clone();
            let domains = domains.to_vec();
            move |_| {
                for d in domains {
                    if job_tx.send(d).is_err() {
                        break;
                    }
                }
            }
        });
        drop(job_tx);
        for pair in res_rx.iter() {
            results.push(pair);
        }
        // The feeder body cannot panic; a failed join only means teardown,
        // and the result channel has already drained.
        let _joined = feeder.join();
        // Workers catch every per-domain panic, so a join failure here can
        // only come from the supervisor scaffolding itself — re-raise it.
        for handle in worker_handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    if let Err(payload) = scope_result {
        std::panic::resume_unwind(payload);
    }

    results.sort_by(|a, b| a.0.cmp(&b.0));
    let mut dead_letters: Vec<DeadLetter> = dead_rx.into_iter().collect();
    dead_letters.sort_by(|a, b| a.domain.cmp(&b.domain));
    let states: Vec<S> = state_rx.into_iter().collect();
    SupervisedOutcome {
        results,
        dead_letters,
        states,
        backpressure_stalls: gate.stalls.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aipan_net::fault::{FaultConfig, FaultInjector};
    use aipan_net::host::StaticSite;
    use aipan_net::http::Response;
    use aipan_net::Internet;

    fn make_net(n: usize) -> (Internet, Vec<String>) {
        let net = Internet::new();
        let mut domains = Vec::new();
        for i in 0..n {
            let domain = format!("site{i}.com");
            net.register(
                &domain,
                StaticSite::new()
                    .page(
                        "/",
                        Response::html("<footer><a href=\"/privacy\">Privacy Policy</a></footer>"),
                    )
                    .page("/privacy", Response::html("<p>policy</p>")),
            );
            domains.push(domain);
        }
        (net, domains)
    }

    #[test]
    fn crawls_all_domains_sorted() {
        let (net, mut domains) = make_net(37);
        let client = Client::new(net, FaultInjector::new(0, FaultConfig::none()));
        let results = crawl_all(&client, &domains, PoolConfig { workers: 4 });
        assert_eq!(results.len(), 37);
        domains.sort();
        let got: Vec<_> = results.iter().map(|r| r.domain.clone()).collect();
        assert_eq!(got, domains);
        assert!(results.iter().all(|r| r.is_success()));
    }

    #[test]
    fn single_worker_matches_many_workers() {
        let (net, domains) = make_net(12);
        let client1 = Client::new(net.clone(), FaultInjector::new(0, FaultConfig::none()));
        let client8 = Client::new(net, FaultInjector::new(0, FaultConfig::none()));
        let a = crawl_all(&client1, &domains, PoolConfig { workers: 1 });
        let b = crawl_all(&client8, &domains, PoolConfig { workers: 8 });
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.domain, y.domain);
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.pages.len(), y.pages.len());
        }
    }

    #[test]
    fn empty_domain_list() {
        let (net, _) = make_net(1);
        let client = Client::new(net, FaultInjector::new(0, FaultConfig::none()));
        let results = crawl_all(&client, &[], PoolConfig::default());
        assert!(results.is_empty());
    }

    #[test]
    #[should_panic(expected = "host exploded")]
    fn worker_panic_propagates_instead_of_truncating_results() {
        let (net, mut domains) = make_net(6);
        net.register("boom.com", |_req: &aipan_net::Request| -> Response {
            panic!("host exploded")
        });
        domains.push("boom.com".to_string());
        let client = Client::new(net, FaultInjector::new(0, FaultConfig::none()));
        // Without propagation this returns 6 quietly-wrong results.
        crawl_all(&client, &domains, PoolConfig { workers: 3 });
    }

    #[test]
    fn transient_faults_do_not_disturb_worker_determinism() {
        let (net, domains) = make_net(20);
        let cfg = FaultConfig {
            flaky_5xx: 0.3,
            conn_reset: 0.2,
            rate_limit: 0.1,
            burst_max: 2,
            ..FaultConfig::none()
        };
        let client1 = Client::new(net.clone(), FaultInjector::new(5, cfg));
        let client6 = Client::new(net, FaultInjector::new(5, cfg));
        let options = CrawlOptions::default();
        let a = crawl_all_with(&client1, &domains, PoolConfig { workers: 1 }, &options);
        let b = crawl_all_with(&client6, &domains, PoolConfig { workers: 6 }, &options);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.domain, y.domain);
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.retries, y.retries);
            assert_eq!(x.fetch_attempts, y.fetch_attempts);
        }
        assert_eq!(client1.metrics(), client6.metrics());
    }

    #[test]
    fn streaming_results_invariant_across_worker_counts() {
        let (net, domains) = make_net(15);
        let options = CrawlOptions::default();
        let mut baseline: Option<Vec<(String, usize)>> = None;
        for workers in [1usize, 2, 5, 8] {
            let client = Client::new(net.clone(), FaultInjector::new(0, FaultConfig::none()));
            let (results, states) = stream_all_with(
                &client,
                &domains,
                PoolConfig { workers },
                &options,
                || 0usize,
                |count: &mut usize, crawl: DomainCrawl| {
                    *count += 1;
                    crawl.pages.len()
                },
            );
            assert_eq!(states.len(), workers);
            assert_eq!(states.iter().sum::<usize>(), domains.len());
            match &baseline {
                None => baseline = Some(results),
                Some(expected) => assert_eq!(&results, expected),
            }
        }
    }

    #[test]
    fn streaming_empty_domain_list_yields_worker_states() {
        let (net, _) = make_net(1);
        let client = Client::new(net, FaultInjector::new(0, FaultConfig::none()));
        let (results, states) = stream_all_with(
            &client,
            &[],
            PoolConfig { workers: 3 },
            &CrawlOptions::default(),
            || 7u32,
            |_state: &mut u32, _crawl: DomainCrawl| (),
        );
        assert!(results.is_empty());
        assert_eq!(states, vec![7, 7, 7]);
    }

    #[test]
    #[should_panic(expected = "process exploded")]
    fn streaming_process_panic_propagates() {
        let (net, domains) = make_net(6);
        let client = Client::new(net, FaultInjector::new(0, FaultConfig::none()));
        stream_all_with(
            &client,
            &domains,
            PoolConfig { workers: 3 },
            &CrawlOptions::default(),
            || (),
            |_state: &mut (), crawl: DomainCrawl| {
                if crawl.domain == "site3.com" {
                    panic!("process exploded");
                }
            },
        );
    }

    #[test]
    fn streaming_funnels_merge_to_batch_report() {
        use crate::report::{CrawlFunnel, CrawlReport};
        let (net, mut domains) = make_net(10);
        domains.push("ghost.com".to_string());
        let client = Client::new(net.clone(), FaultInjector::new(0, FaultConfig::none()));
        let batch = CrawlReport::new(crawl_all(&client, &domains, PoolConfig { workers: 1 }));
        let (_, funnels) = stream_all_with(
            &client,
            &domains,
            PoolConfig { workers: 4 },
            &CrawlOptions::default(),
            CrawlFunnel::default,
            |funnel: &mut CrawlFunnel, crawl: DomainCrawl| funnel.absorb(&crawl),
        );
        let mut merged = CrawlFunnel::default();
        for funnel in &funnels {
            merged.merge(funnel);
        }
        assert_eq!(merged, batch.funnel);
    }

    #[test]
    fn supervised_crawl_panic_becomes_dead_letter_not_truncation() {
        let (net, mut domains) = make_net(6);
        net.register("boom.com", |_req: &aipan_net::Request| -> Response {
            panic!("host exploded")
        });
        domains.push("boom.com".to_string());
        let client = Client::new(net, FaultInjector::new(0, FaultConfig::none()));
        let outcome = stream_all_supervised(
            &client,
            &domains,
            PoolConfig { workers: 3 },
            &CrawlOptions::default(),
            &SupervisorOptions::default(),
            || 0usize,
            |count: &mut usize, crawl: DomainCrawl| {
                *count += 1;
                crawl.pages.len()
            },
            |_count: &mut usize| {},
            |_letter: &DeadLetter| {},
        );
        assert_eq!(outcome.results.len(), 6, "survivors all present");
        assert_eq!(
            outcome.dead_letters,
            vec![DeadLetter {
                domain: "boom.com".to_string(),
                stage: FailStage::Crawl,
                message: "host exploded".to_string(),
            }]
        );
        assert_eq!(outcome.backpressure_stalls, 0);
    }

    #[test]
    fn supervised_process_panic_attributed_and_state_recovered() {
        let (net, domains) = make_net(8);
        let client = Client::new(net, FaultInjector::new(0, FaultConfig::none()));
        let recoveries = std::sync::atomic::AtomicUsize::new(0);
        let observed = std::sync::Mutex::new(Vec::<String>::new());
        for workers in [1usize, 3] {
            recoveries.store(0, Ordering::SeqCst);
            lock_or_recover(&observed).clear();
            let outcome = stream_all_supervised(
                &client,
                &domains,
                PoolConfig { workers },
                &CrawlOptions::default(),
                &SupervisorOptions::default(),
                || 0usize,
                |count: &mut usize, crawl: DomainCrawl| {
                    if crawl.domain == "site3.com" {
                        panic!("annotator exploded");
                    }
                    *count += 1;
                },
                |_count: &mut usize| {
                    recoveries.fetch_add(1, Ordering::SeqCst);
                },
                |letter: &DeadLetter| {
                    lock_or_recover(&observed).push(letter.domain.clone());
                },
            );
            assert_eq!(outcome.results.len(), 7, "workers={workers}");
            assert_eq!(outcome.dead_letters.len(), 1);
            assert_eq!(outcome.dead_letters[0].stage, FailStage::Process);
            assert_eq!(outcome.dead_letters[0].stage.as_str(), "process");
            assert_eq!(outcome.dead_letters[0].message, "annotator exploded");
            assert_eq!(recoveries.load(Ordering::SeqCst), 1);
            assert_eq!(&*lock_or_recover(&observed), &["site3.com".to_string()]);
            assert_eq!(outcome.states.iter().sum::<usize>(), 7);
        }
    }

    #[test]
    fn supervised_dead_letters_worker_count_invariant() {
        let (net, mut domains) = make_net(12);
        for bad in ["kaboom.com", "fizzle.com"] {
            net.register(bad, |_req: &aipan_net::Request| -> Response {
                panic!("host exploded")
            });
            domains.push(bad.to_string());
        }
        let mut baseline: Option<(Vec<(String, usize)>, Vec<DeadLetter>)> = None;
        for workers in [1usize, 2, 5, 8] {
            let client = Client::new(net.clone(), FaultInjector::new(0, FaultConfig::none()));
            let outcome = stream_all_supervised(
                &client,
                &domains,
                PoolConfig { workers },
                &CrawlOptions::default(),
                &SupervisorOptions::default(),
                || (),
                |_state: &mut (), crawl: DomainCrawl| crawl.pages.len(),
                |_state: &mut ()| {},
                |_letter: &DeadLetter| {},
            );
            match &baseline {
                None => baseline = Some((outcome.results, outcome.dead_letters)),
                Some((results, letters)) => {
                    assert_eq!(&outcome.results, results, "workers={workers}");
                    assert_eq!(&outcome.dead_letters, letters, "workers={workers}");
                }
            }
        }
    }

    #[test]
    fn supervised_backpressure_over_cap_serializes_but_completes() {
        let (net, domains) = make_net(10);
        let client = Client::new(net, FaultInjector::new(0, FaultConfig::none()));
        let in_process = std::sync::atomic::AtomicUsize::new(0);
        let max_in_process = std::sync::atomic::AtomicUsize::new(0);
        // A probe permanently over the cap: the gate must degrade to
        // one-domain-at-a-time (never deadlock), so the pool still
        // finishes every domain.
        let probe = || usize::MAX;
        let outcome = stream_all_supervised(
            &client,
            &domains,
            PoolConfig { workers: 4 },
            &CrawlOptions::default(),
            &SupervisorOptions {
                memory_cap_bytes: Some(1),
                memory_probe: Some(&probe),
            },
            || (),
            |_state: &mut (), _crawl: DomainCrawl| {
                let now = in_process.fetch_add(1, Ordering::SeqCst) + 1;
                max_in_process.fetch_max(now, Ordering::SeqCst);
                in_process.fetch_sub(1, Ordering::SeqCst);
            },
            |_state: &mut ()| {},
            |_letter: &DeadLetter| {},
        );
        assert_eq!(outcome.results.len(), 10);
        assert!(outcome.dead_letters.is_empty());
        assert_eq!(
            max_in_process.load(Ordering::SeqCst),
            1,
            "over-cap admission must serialize in-flight domains"
        );
    }

    #[test]
    fn admission_gate_counts_a_deterministic_stall() {
        let entered = std::sync::atomic::AtomicBool::new(false);
        let probe = || {
            entered.store(true, Ordering::SeqCst);
            usize::MAX
        };
        let options = SupervisorOptions {
            memory_cap_bytes: Some(1),
            memory_probe: Some(&probe),
        };
        let gate = AdmissionGate::new(&options);
        gate.admit(); // in_flight: 0 → 1, probe not consulted
        assert!(!entered.load(Ordering::SeqCst));
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| {
                gate.admit(); // blocks: one in flight, probe over cap
                gate.release();
            });
            // The probe flips `entered` while the waiter holds the gate
            // lock, so our release() below cannot overtake the wait().
            while !entered.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            gate.release();
            waiter.join().expect("waiter thread");
        });
        assert_eq!(gate.stalls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn unknown_domains_reported_as_failures() {
        let (net, mut domains) = make_net(3);
        domains.push("ghost.com".to_string());
        let client = Client::new(net, FaultInjector::new(0, FaultConfig::none()));
        let results = crawl_all(&client, &domains, PoolConfig { workers: 2 });
        let ghost = results.iter().find(|r| r.domain == "ghost.com").unwrap();
        assert!(!ghost.is_success());
    }
}
