//! Whole-universe crawling on a crossbeam worker pool.
//!
//! Work distribution follows the channel-based worker pattern of the
//! networking guides (adapted from async task spawning to scoped threads,
//! since the dependency set is synchronous): a bounded job channel feeds
//! `workers` threads, each driving its own clone of the shared [`Client`];
//! results flow back over a second channel and are re-sorted by domain so
//! output order is deterministic regardless of scheduling.

use crate::crawl::{crawl_domain_with, CrawlOptions, DomainCrawl};
use aipan_net::Client;
use crossbeam::channel;

/// Worker-pool configuration.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Number of crawler worker threads.
    pub workers: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get().min(16))
            .unwrap_or(4);
        PoolConfig { workers }
    }
}

/// Crawl every domain in `domains` with default [`CrawlOptions`] and return
/// the results sorted by domain.
pub fn crawl_all(client: &Client, domains: &[String], config: PoolConfig) -> Vec<DomainCrawl> {
    crawl_all_with(client, domains, config, &CrawlOptions::default())
}

/// Crawl every domain in `domains` and return the results sorted by domain.
///
/// Each domain crawl owns its own fetch session seeded from `options`, so
/// results are byte-identical for any worker count. The pool shuts down
/// gracefully: the job channel is closed after the last job, workers drain
/// it and exit, and the scope joins them all before returning. If a worker
/// panics, the panic is propagated to the caller instead of returning a
/// silently truncated result set. With `workers <= 1` the crawl runs
/// serially on the caller's thread — same results, none of the thread or
/// channel overhead.
pub fn crawl_all_with(
    client: &Client,
    domains: &[String],
    config: PoolConfig,
    options: &CrawlOptions,
) -> Vec<DomainCrawl> {
    let workers = config.workers.max(1);
    if workers == 1 {
        // Serial fast path: no threads, no channels, no clones of the
        // client — just the same per-domain crawl in the same sorted
        // order the pool would produce.
        let mut results: Vec<DomainCrawl> = Vec::with_capacity(domains.len());
        for domain in domains {
            results.push(crawl_domain_with(client, domain, options));
        }
        results.sort_by(|a, b| a.domain.cmp(&b.domain));
        return results;
    }
    let (job_tx, job_rx) = channel::bounded::<String>(workers * 2);
    let (res_tx, res_rx) = channel::unbounded::<DomainCrawl>();

    let mut results: Vec<DomainCrawl> = Vec::with_capacity(domains.len());
    let scope_result = crossbeam::scope(|scope| {
        let mut worker_handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let client = client.clone();
            let options = *options;
            worker_handles.push(scope.spawn(move |_| {
                for domain in job_rx.iter() {
                    let crawl = crawl_domain_with(&client, &domain, &options);
                    if res_tx.send(crawl).is_err() {
                        break;
                    }
                }
            }));
        }
        drop(job_rx);
        drop(res_tx);

        // Feed jobs from this thread while collecting results to avoid
        // deadlock on the bounded job channel.
        let feeder = scope.spawn({
            let job_tx = job_tx.clone();
            let domains = domains.to_vec();
            move |_| {
                for d in domains {
                    if job_tx.send(d).is_err() {
                        break;
                    }
                }
            }
        });
        drop(job_tx);
        for crawl in res_rx.iter() {
            results.push(crawl);
        }
        // The feeder thread body cannot panic; a failed join only means the
        // thread was torn down, and the result channel has already drained.
        let _ = feeder.join();
        // All workers have exited (the result channel drained), so joins
        // cannot block. A panicking worker means `results` is truncated and
        // silently wrong — re-raise its original panic payload loudly.
        for handle in worker_handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    if let Err(payload) = scope_result {
        // Defense in depth for crossbeam implementations that report child
        // panics through the scope result instead.
        std::panic::resume_unwind(payload);
    }

    results.sort_by(|a, b| a.domain.cmp(&b.domain));
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use aipan_net::fault::{FaultConfig, FaultInjector};
    use aipan_net::host::StaticSite;
    use aipan_net::http::Response;
    use aipan_net::Internet;

    fn make_net(n: usize) -> (Internet, Vec<String>) {
        let net = Internet::new();
        let mut domains = Vec::new();
        for i in 0..n {
            let domain = format!("site{i}.com");
            net.register(
                &domain,
                StaticSite::new()
                    .page(
                        "/",
                        Response::html("<footer><a href=\"/privacy\">Privacy Policy</a></footer>"),
                    )
                    .page("/privacy", Response::html("<p>policy</p>")),
            );
            domains.push(domain);
        }
        (net, domains)
    }

    #[test]
    fn crawls_all_domains_sorted() {
        let (net, mut domains) = make_net(37);
        let client = Client::new(net, FaultInjector::new(0, FaultConfig::none()));
        let results = crawl_all(&client, &domains, PoolConfig { workers: 4 });
        assert_eq!(results.len(), 37);
        domains.sort();
        let got: Vec<_> = results.iter().map(|r| r.domain.clone()).collect();
        assert_eq!(got, domains);
        assert!(results.iter().all(|r| r.is_success()));
    }

    #[test]
    fn single_worker_matches_many_workers() {
        let (net, domains) = make_net(12);
        let client1 = Client::new(net.clone(), FaultInjector::new(0, FaultConfig::none()));
        let client8 = Client::new(net, FaultInjector::new(0, FaultConfig::none()));
        let a = crawl_all(&client1, &domains, PoolConfig { workers: 1 });
        let b = crawl_all(&client8, &domains, PoolConfig { workers: 8 });
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.domain, y.domain);
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.pages.len(), y.pages.len());
        }
    }

    #[test]
    fn empty_domain_list() {
        let (net, _) = make_net(1);
        let client = Client::new(net, FaultInjector::new(0, FaultConfig::none()));
        let results = crawl_all(&client, &[], PoolConfig::default());
        assert!(results.is_empty());
    }

    #[test]
    #[should_panic(expected = "host exploded")]
    fn worker_panic_propagates_instead_of_truncating_results() {
        let (net, mut domains) = make_net(6);
        net.register("boom.com", |_req: &aipan_net::Request| -> Response {
            panic!("host exploded")
        });
        domains.push("boom.com".to_string());
        let client = Client::new(net, FaultInjector::new(0, FaultConfig::none()));
        // Without propagation this returns 6 quietly-wrong results.
        crawl_all(&client, &domains, PoolConfig { workers: 3 });
    }

    #[test]
    fn transient_faults_do_not_disturb_worker_determinism() {
        let (net, domains) = make_net(20);
        let cfg = FaultConfig {
            flaky_5xx: 0.3,
            conn_reset: 0.2,
            rate_limit: 0.1,
            burst_max: 2,
            ..FaultConfig::none()
        };
        let client1 = Client::new(net.clone(), FaultInjector::new(5, cfg));
        let client6 = Client::new(net, FaultInjector::new(5, cfg));
        let options = CrawlOptions::default();
        let a = crawl_all_with(&client1, &domains, PoolConfig { workers: 1 }, &options);
        let b = crawl_all_with(&client6, &domains, PoolConfig { workers: 6 }, &options);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.domain, y.domain);
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.retries, y.retries);
            assert_eq!(x.fetch_attempts, y.fetch_attempts);
        }
        assert_eq!(client1.metrics(), client6.metrics());
    }

    #[test]
    fn unknown_domains_reported_as_failures() {
        let (net, mut domains) = make_net(3);
        domains.push("ghost.com".to_string());
        let client = Client::new(net, FaultInjector::new(0, FaultConfig::none()));
        let results = crawl_all(&client, &domains, PoolConfig { workers: 2 });
        let ghost = results.iter().find(|r| r.domain == "ghost.com").unwrap();
        assert!(!ghost.is_success());
    }
}
