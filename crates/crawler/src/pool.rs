//! Whole-universe crawling on a crossbeam worker pool.
//!
//! Work distribution follows the channel-based worker pattern of the
//! networking guides (adapted from async task spawning to scoped threads,
//! since the dependency set is synchronous): a bounded job channel feeds
//! `workers` threads, each driving its own clone of the shared [`Client`];
//! results flow back over a second channel and are re-sorted by domain so
//! output order is deterministic regardless of scheduling.

use crate::crawl::{crawl_domain_with, CrawlOptions, DomainCrawl};
use aipan_net::Client;
use crossbeam::channel;

/// Worker-pool configuration.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Number of crawler worker threads.
    pub workers: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get().min(16))
            .unwrap_or(4);
        PoolConfig { workers }
    }
}

/// Crawl every domain in `domains` with default [`CrawlOptions`] and return
/// the results sorted by domain.
pub fn crawl_all(client: &Client, domains: &[String], config: PoolConfig) -> Vec<DomainCrawl> {
    crawl_all_with(client, domains, config, &CrawlOptions::default())
}

/// Crawl every domain in `domains` and return the results sorted by domain.
///
/// Each domain crawl owns its own fetch session seeded from `options`, so
/// results are byte-identical for any worker count. The pool shuts down
/// gracefully: the job channel is closed after the last job, workers drain
/// it and exit, and the scope joins them all before returning. If a worker
/// panics, the panic is propagated to the caller instead of returning a
/// silently truncated result set. With `workers <= 1` the crawl runs
/// serially on the caller's thread — same results, none of the thread or
/// channel overhead.
pub fn crawl_all_with(
    client: &Client,
    domains: &[String],
    config: PoolConfig,
    options: &CrawlOptions,
) -> Vec<DomainCrawl> {
    let workers = config.workers.max(1);
    if workers == 1 {
        // Serial fast path: no threads, no channels, no clones of the
        // client — just the same per-domain crawl in the same sorted
        // order the pool would produce.
        let mut results: Vec<DomainCrawl> = Vec::with_capacity(domains.len());
        for domain in domains {
            results.push(crawl_domain_with(client, domain, options));
        }
        results.sort_by(|a, b| a.domain.cmp(&b.domain));
        return results;
    }
    let (job_tx, job_rx) = channel::bounded::<String>(workers * 2);
    let (res_tx, res_rx) = channel::unbounded::<DomainCrawl>();

    let mut results: Vec<DomainCrawl> = Vec::with_capacity(domains.len());
    let scope_result = crossbeam::scope(|scope| {
        let mut worker_handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let client = client.clone();
            let options = *options;
            worker_handles.push(scope.spawn(move |_| {
                for domain in job_rx.iter() {
                    let crawl = crawl_domain_with(&client, &domain, &options);
                    if res_tx.send(crawl).is_err() {
                        break;
                    }
                }
            }));
        }
        drop(job_rx);
        drop(res_tx);

        // Feed jobs from this thread while collecting results to avoid
        // deadlock on the bounded job channel.
        let feeder = scope.spawn({
            let job_tx = job_tx.clone();
            let domains = domains.to_vec();
            move |_| {
                for d in domains {
                    if job_tx.send(d).is_err() {
                        break;
                    }
                }
            }
        });
        drop(job_tx);
        for crawl in res_rx.iter() {
            results.push(crawl);
        }
        // The feeder thread body cannot panic; a failed join only means the
        // thread was torn down, and the result channel has already drained.
        let _ = feeder.join();
        // All workers have exited (the result channel drained), so joins
        // cannot block. A panicking worker means `results` is truncated and
        // silently wrong — re-raise its original panic payload loudly.
        for handle in worker_handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    if let Err(payload) = scope_result {
        // Defense in depth for crossbeam implementations that report child
        // panics through the scope result instead.
        std::panic::resume_unwind(payload);
    }

    results.sort_by(|a, b| a.domain.cmp(&b.domain));
    results
}

/// Drive every domain through the **whole** per-domain chain on the worker
/// pool: each worker crawls a domain and immediately hands the finished
/// crawl to `process`, so generate → crawl → extract → annotate run
/// end-to-end inside one worker task instead of parallelizing only the
/// crawl stage. `process` takes the crawl by value — page bodies can be
/// dropped the moment the domain is done, which is what bounds a streaming
/// run's memory by in-flight domains rather than the universe.
///
/// `init` builds one private state value per worker (scratch arenas,
/// per-worker tallies); `process` may mutate it freely without locks.
/// Returns the per-domain results sorted by domain — byte-identical for
/// any worker count, because each domain's work is a pure function of the
/// domain — plus every worker's final state (in unspecified order: fold
/// worker states commutatively). With `workers <= 1` everything runs
/// serially on the caller's thread, no threads or channels.
pub fn stream_all_with<S, R, I, F>(
    client: &Client,
    domains: &[String],
    config: PoolConfig,
    options: &CrawlOptions,
    init: I,
    process: F,
) -> (Vec<(String, R)>, Vec<S>)
where
    S: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, DomainCrawl) -> R + Sync,
{
    let workers = config.workers.max(1);
    if workers == 1 {
        let mut state = init();
        let mut results: Vec<(String, R)> = Vec::with_capacity(domains.len());
        for domain in domains {
            let crawl = crawl_domain_with(client, domain, options);
            results.push((domain.clone(), process(&mut state, crawl)));
        }
        results.sort_by(|a, b| a.0.cmp(&b.0));
        return (results, vec![state]);
    }
    let (job_tx, job_rx) = channel::bounded::<String>(workers * 2);
    let (res_tx, res_rx) = channel::unbounded::<(String, R)>();
    let (state_tx, state_rx) = channel::unbounded::<S>();

    let mut results: Vec<(String, R)> = Vec::with_capacity(domains.len());
    let scope_result = crossbeam::scope(|scope| {
        let mut worker_handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let state_tx = state_tx.clone();
            let client = client.clone();
            let options = *options;
            let init = &init;
            let process = &process;
            worker_handles.push(scope.spawn(move |_| {
                let mut state = init();
                for domain in job_rx.iter() {
                    let crawl = crawl_domain_with(&client, &domain, &options);
                    let result = process(&mut state, crawl);
                    if res_tx.send((domain, result)).is_err() {
                        break;
                    }
                }
                let _ = state_tx.send(state);
            }));
        }
        drop(job_rx);
        drop(res_tx);
        drop(state_tx);

        // Feed jobs from a dedicated thread while this one collects
        // results, to avoid deadlock on the bounded job channel.
        let feeder = scope.spawn({
            let job_tx = job_tx.clone();
            let domains = domains.to_vec();
            move |_| {
                for d in domains {
                    if job_tx.send(d).is_err() {
                        break;
                    }
                }
            }
        });
        drop(job_tx);
        for pair in res_rx.iter() {
            results.push(pair);
        }
        // The feeder body cannot panic; a failed join only means teardown,
        // and the result channel has already drained.
        let _ = feeder.join();
        // All workers have exited (the result channel drained). A panicking
        // worker means `results` is silently truncated — re-raise it.
        for handle in worker_handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    if let Err(payload) = scope_result {
        std::panic::resume_unwind(payload);
    }

    results.sort_by(|a, b| a.0.cmp(&b.0));
    let states: Vec<S> = state_rx.into_iter().collect();
    (results, states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aipan_net::fault::{FaultConfig, FaultInjector};
    use aipan_net::host::StaticSite;
    use aipan_net::http::Response;
    use aipan_net::Internet;

    fn make_net(n: usize) -> (Internet, Vec<String>) {
        let net = Internet::new();
        let mut domains = Vec::new();
        for i in 0..n {
            let domain = format!("site{i}.com");
            net.register(
                &domain,
                StaticSite::new()
                    .page(
                        "/",
                        Response::html("<footer><a href=\"/privacy\">Privacy Policy</a></footer>"),
                    )
                    .page("/privacy", Response::html("<p>policy</p>")),
            );
            domains.push(domain);
        }
        (net, domains)
    }

    #[test]
    fn crawls_all_domains_sorted() {
        let (net, mut domains) = make_net(37);
        let client = Client::new(net, FaultInjector::new(0, FaultConfig::none()));
        let results = crawl_all(&client, &domains, PoolConfig { workers: 4 });
        assert_eq!(results.len(), 37);
        domains.sort();
        let got: Vec<_> = results.iter().map(|r| r.domain.clone()).collect();
        assert_eq!(got, domains);
        assert!(results.iter().all(|r| r.is_success()));
    }

    #[test]
    fn single_worker_matches_many_workers() {
        let (net, domains) = make_net(12);
        let client1 = Client::new(net.clone(), FaultInjector::new(0, FaultConfig::none()));
        let client8 = Client::new(net, FaultInjector::new(0, FaultConfig::none()));
        let a = crawl_all(&client1, &domains, PoolConfig { workers: 1 });
        let b = crawl_all(&client8, &domains, PoolConfig { workers: 8 });
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.domain, y.domain);
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.pages.len(), y.pages.len());
        }
    }

    #[test]
    fn empty_domain_list() {
        let (net, _) = make_net(1);
        let client = Client::new(net, FaultInjector::new(0, FaultConfig::none()));
        let results = crawl_all(&client, &[], PoolConfig::default());
        assert!(results.is_empty());
    }

    #[test]
    #[should_panic(expected = "host exploded")]
    fn worker_panic_propagates_instead_of_truncating_results() {
        let (net, mut domains) = make_net(6);
        net.register("boom.com", |_req: &aipan_net::Request| -> Response {
            panic!("host exploded")
        });
        domains.push("boom.com".to_string());
        let client = Client::new(net, FaultInjector::new(0, FaultConfig::none()));
        // Without propagation this returns 6 quietly-wrong results.
        crawl_all(&client, &domains, PoolConfig { workers: 3 });
    }

    #[test]
    fn transient_faults_do_not_disturb_worker_determinism() {
        let (net, domains) = make_net(20);
        let cfg = FaultConfig {
            flaky_5xx: 0.3,
            conn_reset: 0.2,
            rate_limit: 0.1,
            burst_max: 2,
            ..FaultConfig::none()
        };
        let client1 = Client::new(net.clone(), FaultInjector::new(5, cfg));
        let client6 = Client::new(net, FaultInjector::new(5, cfg));
        let options = CrawlOptions::default();
        let a = crawl_all_with(&client1, &domains, PoolConfig { workers: 1 }, &options);
        let b = crawl_all_with(&client6, &domains, PoolConfig { workers: 6 }, &options);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.domain, y.domain);
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.retries, y.retries);
            assert_eq!(x.fetch_attempts, y.fetch_attempts);
        }
        assert_eq!(client1.metrics(), client6.metrics());
    }

    #[test]
    fn streaming_results_invariant_across_worker_counts() {
        let (net, domains) = make_net(15);
        let options = CrawlOptions::default();
        let mut baseline: Option<Vec<(String, usize)>> = None;
        for workers in [1usize, 2, 5, 8] {
            let client = Client::new(net.clone(), FaultInjector::new(0, FaultConfig::none()));
            let (results, states) = stream_all_with(
                &client,
                &domains,
                PoolConfig { workers },
                &options,
                || 0usize,
                |count: &mut usize, crawl: DomainCrawl| {
                    *count += 1;
                    crawl.pages.len()
                },
            );
            assert_eq!(states.len(), workers);
            assert_eq!(states.iter().sum::<usize>(), domains.len());
            match &baseline {
                None => baseline = Some(results),
                Some(expected) => assert_eq!(&results, expected),
            }
        }
    }

    #[test]
    fn streaming_empty_domain_list_yields_worker_states() {
        let (net, _) = make_net(1);
        let client = Client::new(net, FaultInjector::new(0, FaultConfig::none()));
        let (results, states) = stream_all_with(
            &client,
            &[],
            PoolConfig { workers: 3 },
            &CrawlOptions::default(),
            || 7u32,
            |_state: &mut u32, _crawl: DomainCrawl| (),
        );
        assert!(results.is_empty());
        assert_eq!(states, vec![7, 7, 7]);
    }

    #[test]
    #[should_panic(expected = "process exploded")]
    fn streaming_process_panic_propagates() {
        let (net, domains) = make_net(6);
        let client = Client::new(net, FaultInjector::new(0, FaultConfig::none()));
        stream_all_with(
            &client,
            &domains,
            PoolConfig { workers: 3 },
            &CrawlOptions::default(),
            || (),
            |_state: &mut (), crawl: DomainCrawl| {
                if crawl.domain == "site3.com" {
                    panic!("process exploded");
                }
            },
        );
    }

    #[test]
    fn streaming_funnels_merge_to_batch_report() {
        use crate::report::{CrawlFunnel, CrawlReport};
        let (net, mut domains) = make_net(10);
        domains.push("ghost.com".to_string());
        let client = Client::new(net.clone(), FaultInjector::new(0, FaultConfig::none()));
        let batch = CrawlReport::new(crawl_all(&client, &domains, PoolConfig { workers: 1 }));
        let (_, funnels) = stream_all_with(
            &client,
            &domains,
            PoolConfig { workers: 4 },
            &CrawlOptions::default(),
            CrawlFunnel::default,
            |funnel: &mut CrawlFunnel, crawl: DomainCrawl| funnel.absorb(&crawl),
        );
        let mut merged = CrawlFunnel::default();
        for funnel in &funnels {
            merged.merge(funnel);
        }
        assert_eq!(merged, batch.funnel);
    }

    #[test]
    fn unknown_domains_reported_as_failures() {
        let (net, mut domains) = make_net(3);
        domains.push("ghost.com".to_string());
        let client = Client::new(net, FaultInjector::new(0, FaultConfig::none()));
        let results = crawl_all(&client, &domains, PoolConfig { workers: 2 });
        let ghost = results.iter().find(|r| r.domain == "ghost.com").unwrap();
        assert!(!ghost.is_success());
    }
}
