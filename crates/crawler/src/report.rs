//! Crawl-funnel accounting, mirroring the §3.1 statistics.

use crate::crawl::{CrawlOutcome, DomainCrawl};
use serde::{Deserialize, Serialize};

/// Aggregate crawl statistics (the §3.1 funnel).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CrawlFunnel {
    /// Domains attempted.
    pub domains_total: usize,
    /// Domains with ≥1 potential privacy page (status < 400).
    pub crawl_success: usize,
    /// Domains whose homepage was unreachable at the transport level.
    pub transport_failures: usize,
    /// Domains reachable but with no privacy page found.
    pub no_privacy_page: usize,
    /// Domains where `/privacy-policy` points to an existing page.
    pub policy_path_hits: usize,
    /// Domains where `/privacy` points to an existing page.
    pub privacy_path_hits: usize,
    /// Total pages fetched (including homepages).
    pub total_pages_crawled: usize,
    /// Total deduplicated potential privacy pages.
    pub total_privacy_pages: usize,
    /// Fetches skipped due to robots.txt disallow rules.
    pub robots_skipped: usize,
    /// Domains whose robots.txt disallowed the entire site.
    pub robots_blocked_domains: usize,
    /// Total simulated politeness delay honored (ms).
    pub politeness_delay_ms: u64,
    /// Transport retries spent across all domain crawls.
    pub retries: u64,
    /// Domains that hit their crawl deadline and salvaged a partial page
    /// set.
    pub salvaged_domains: usize,
}

impl CrawlFunnel {
    /// Crawl success rate (paper: 91.6%).
    pub fn success_rate(&self) -> f64 {
        ratio(self.crawl_success, self.domains_total)
    }

    /// `/privacy-policy` existence rate (paper: 54.5%).
    pub fn policy_path_rate(&self) -> f64 {
        ratio(self.policy_path_hits, self.domains_total)
    }

    /// `/privacy` existence rate (paper: 48.6%).
    pub fn privacy_path_rate(&self) -> f64 {
        ratio(self.privacy_path_hits, self.domains_total)
    }

    /// Average pages crawled per domain (paper: 5.1, including homepage).
    pub fn avg_pages_crawled(&self) -> f64 {
        ratio(self.total_pages_crawled, self.domains_total)
    }

    /// Average deduplicated privacy pages per *successful* domain
    /// (paper: 1.8 after duplicate/language filtering).
    pub fn avg_privacy_pages(&self) -> f64 {
        ratio(self.total_privacy_pages, self.crawl_success)
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Full crawl report: the per-domain results plus the funnel.
pub struct CrawlReport {
    /// Per-domain crawls, sorted by domain.
    pub crawls: Vec<DomainCrawl>,
    /// Aggregate funnel.
    pub funnel: CrawlFunnel,
}

impl CrawlFunnel {
    /// Fold one domain's crawl into the funnel — counts only, so the
    /// crawl's page bodies need not be retained. [`CrawlReport::new`] and
    /// the streaming pipeline share this accounting.
    pub fn absorb(&mut self, crawl: &DomainCrawl) {
        self.domains_total += 1;
        match &crawl.outcome {
            CrawlOutcome::Success => self.crawl_success += 1,
            CrawlOutcome::NoPrivacyPage => self.no_privacy_page += 1,
            CrawlOutcome::TransportFailure(_) => self.transport_failures += 1,
        }
        if crawl.policy_path_exists() {
            self.policy_path_hits += 1;
        }
        if crawl.privacy_path_exists() {
            self.privacy_path_hits += 1;
        }
        self.total_pages_crawled += crawl.pages.len();
        self.total_privacy_pages += crawl.privacy_pages().len();
        self.robots_skipped += crawl.robots_skipped;
        self.robots_blocked_domains += usize::from(crawl.robots_blocked);
        self.politeness_delay_ms += crawl.politeness_delay_ms;
        self.retries += crawl.retries;
        self.salvaged_domains += usize::from(crawl.deadline_hit);
    }

    /// Merge another funnel's counts into this one. Every field is an
    /// additive tally, so workers can accumulate private funnels and merge
    /// them in any order with an identical result.
    pub fn merge(&mut self, other: &CrawlFunnel) {
        self.domains_total += other.domains_total;
        self.crawl_success += other.crawl_success;
        self.transport_failures += other.transport_failures;
        self.no_privacy_page += other.no_privacy_page;
        self.policy_path_hits += other.policy_path_hits;
        self.privacy_path_hits += other.privacy_path_hits;
        self.total_pages_crawled += other.total_pages_crawled;
        self.total_privacy_pages += other.total_privacy_pages;
        self.robots_skipped += other.robots_skipped;
        self.robots_blocked_domains += other.robots_blocked_domains;
        self.politeness_delay_ms += other.politeness_delay_ms;
        self.retries += other.retries;
        self.salvaged_domains += other.salvaged_domains;
    }
}

impl CrawlReport {
    /// Build a report from per-domain crawls.
    pub fn new(crawls: Vec<DomainCrawl>) -> CrawlReport {
        let mut funnel = CrawlFunnel::default();
        for crawl in &crawls {
            funnel.absorb(crawl);
        }
        CrawlReport { crawls, funnel }
    }

    /// Domains whose crawl failed (for the §4 failure audit).
    pub fn failed_domains(&self) -> impl Iterator<Item = &DomainCrawl> {
        self.crawls.iter().filter(|c| !c.is_success())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawl::{crawl_domain, CrawledPage, LinkSource};
    use aipan_net::fault::{FaultConfig, FaultInjector};
    use aipan_net::host::StaticSite;
    use aipan_net::http::{ContentType, Response, Status};
    use aipan_net::{Client, Internet, Url};

    fn fake_page(via: LinkSource, status: Status, path: &str, body: &str) -> CrawledPage {
        let url = Url::parse(&format!("https://x.com{path}")).unwrap();
        CrawledPage {
            url: url.clone(),
            final_url: url,
            status,
            content_type: ContentType::Html,
            body: body.to_string(),
            via,
        }
    }

    #[test]
    fn funnel_counts() {
        let ok = DomainCrawl {
            domain: "a.com".into(),
            outcome: CrawlOutcome::Success,
            pages: vec![
                fake_page(LinkSource::Homepage, Status::OK, "/", "home"),
                fake_page(
                    LinkSource::ProbePolicyPath,
                    Status::OK,
                    "/privacy-policy",
                    "p",
                ),
                fake_page(
                    LinkSource::ProbePrivacyPath,
                    Status::NOT_FOUND,
                    "/privacy",
                    "",
                ),
            ],
            fetch_attempts: 3,
            robots_skipped: 0,
            robots_blocked: false,
            politeness_delay_ms: 1000,
            retries: 2,
            deadline_hit: false,
        };
        let fail = DomainCrawl {
            domain: "b.com".into(),
            outcome: CrawlOutcome::TransportFailure("timeout".into()),
            pages: vec![],
            fetch_attempts: 1,
            robots_skipped: 0,
            robots_blocked: false,
            politeness_delay_ms: 0,
            retries: 3,
            deadline_hit: true,
        };
        let report = CrawlReport::new(vec![ok, fail]);
        let f = &report.funnel;
        assert_eq!(f.domains_total, 2);
        assert_eq!(f.crawl_success, 1);
        assert_eq!(f.transport_failures, 1);
        assert_eq!(f.policy_path_hits, 1);
        assert_eq!(f.privacy_path_hits, 0);
        assert_eq!(f.total_privacy_pages, 1);
        assert_eq!(f.retries, 5);
        assert_eq!(f.salvaged_domains, 1);
        assert!((f.success_rate() - 0.5).abs() < 1e-9);
        assert_eq!(report.failed_domains().count(), 1);
    }

    #[test]
    fn empty_report() {
        let report = CrawlReport::new(vec![]);
        assert_eq!(report.funnel.success_rate(), 0.0);
        assert_eq!(report.funnel.avg_pages_crawled(), 0.0);
    }

    #[test]
    fn end_to_end_small_site() {
        let net = Internet::new();
        net.register(
            "a.com",
            StaticSite::new()
                .page(
                    "/",
                    Response::html("<footer><a href=\"/privacy\">Privacy Policy</a></footer>"),
                )
                .page("/privacy", Response::html("<p>policy</p>")),
        );
        let client = Client::new(net, FaultInjector::new(0, FaultConfig::none()));
        let crawl = crawl_domain(&client, "a.com");
        let report = CrawlReport::new(vec![crawl]);
        assert_eq!(report.funnel.crawl_success, 1);
        assert_eq!(report.funnel.privacy_path_hits, 1);
        assert!(report.funnel.avg_pages_crawled() >= 2.0);
    }
}
