//! robots.txt parsing and evaluation.
//!
//! The paper's crawler (Crawlee) honors robots exclusion; so does ours. The
//! parser implements the de-facto standard: user-agent groups, `Disallow`
//! and `Allow` prefix rules (longest match wins, `Allow` beats `Disallow`
//! on ties), and `Crawl-delay`.

use serde::{Deserialize, Serialize};

/// One user-agent group's rules.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct Group {
    agents: Vec<String>,
    allow: Vec<String>,
    disallow: Vec<String>,
    crawl_delay_ms: Option<u64>,
}

impl Group {
    fn matches_agent(&self, user_agent: &str) -> bool {
        let ua = user_agent.to_ascii_lowercase();
        self.agents
            .iter()
            .any(|a| a == "*" || ua.contains(a.as_str()))
    }
}

/// A parsed robots.txt policy.
///
/// ```
/// use aipan_crawler::RobotsPolicy;
///
/// let policy = RobotsPolicy::parse("User-agent: *\nDisallow: /admin\nCrawl-delay: 1");
/// assert!(policy.is_allowed("aipan-crawler", "/privacy-policy"));
/// assert!(!policy.is_allowed("aipan-crawler", "/admin/console"));
/// assert_eq!(policy.crawl_delay_ms("aipan-crawler"), Some(1000));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RobotsPolicy {
    groups: Vec<Group>,
}

impl RobotsPolicy {
    /// Parse robots.txt content. Unknown directives are ignored; a missing
    /// or empty file allows everything.
    pub fn parse(content: &str) -> RobotsPolicy {
        // Real robots.txt files carry a handful of agent groups.
        let mut groups: Vec<Group> = Vec::with_capacity(4);
        let mut current: Option<Group> = None;
        let mut last_was_agent = false;
        for raw_line in content.lines() {
            let line = raw_line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once(':') else {
                continue;
            };
            let key = key.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            match key.as_str() {
                "user-agent" => {
                    if last_was_agent {
                        // Consecutive user-agent lines share one group.
                        if let Some(g) = current.as_mut() {
                            g.agents.push(value.to_ascii_lowercase());
                        }
                    } else {
                        if let Some(g) = current.take() {
                            groups.push(g);
                        }
                        current = Some(Group {
                            agents: vec![value.to_ascii_lowercase()],
                            ..Group::default()
                        });
                    }
                    last_was_agent = true;
                }
                "disallow" => {
                    last_was_agent = false;
                    if let Some(g) = current.as_mut() {
                        if !value.is_empty() {
                            g.disallow.push(value);
                        }
                    }
                }
                "allow" => {
                    last_was_agent = false;
                    if let Some(g) = current.as_mut() {
                        if !value.is_empty() {
                            g.allow.push(value);
                        }
                    }
                }
                "crawl-delay" => {
                    last_was_agent = false;
                    if let Some(g) = current.as_mut() {
                        if let Ok(secs) = value.parse::<f64>() {
                            g.crawl_delay_ms = Some((secs * 1000.0) as u64);
                        }
                    }
                }
                _ => {
                    last_was_agent = false;
                }
            }
        }
        if let Some(g) = current.take() {
            groups.push(g);
        }
        RobotsPolicy { groups }
    }

    /// The group applying to `user_agent`: the first specific match, else
    /// the `*` group, else none.
    fn group_for(&self, user_agent: &str) -> Option<&Group> {
        self.groups
            .iter()
            .find(|g| g.matches_agent(user_agent) && !g.agents.contains(&"*".to_string()))
            .or_else(|| {
                self.groups
                    .iter()
                    .find(|g| g.agents.contains(&"*".to_string()))
            })
    }

    /// Whether `user_agent` may fetch `path`. Longest matching rule wins;
    /// `Allow` beats `Disallow` on equal length.
    pub fn is_allowed(&self, user_agent: &str, path: &str) -> bool {
        let Some(group) = self.group_for(user_agent) else {
            return true;
        };
        let best_disallow = group
            .disallow
            .iter()
            .filter(|rule| path.starts_with(rule.as_str()))
            .map(|rule| rule.len())
            .max();
        let best_allow = group
            .allow
            .iter()
            .filter(|rule| path.starts_with(rule.as_str()))
            .map(|rule| rule.len())
            .max();
        match (best_allow, best_disallow) {
            (_, None) => true,
            (None, Some(_)) => false,
            (Some(a), Some(d)) => a >= d,
        }
    }

    /// Crawl delay for `user_agent`, if declared.
    pub fn crawl_delay_ms(&self, user_agent: &str) -> Option<u64> {
        self.group_for(user_agent).and_then(|g| g.crawl_delay_ms)
    }

    /// Whether everything is disallowed for `user_agent`.
    pub fn blocks_everything(&self, user_agent: &str) -> bool {
        !self.is_allowed(user_agent, "/")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const UA: &str = "aipan-crawler/0.1 (headless)";

    #[test]
    fn empty_allows_everything() {
        let p = RobotsPolicy::parse("");
        assert!(p.is_allowed(UA, "/privacy"));
        assert!(!p.blocks_everything(UA));
        assert_eq!(p.crawl_delay_ms(UA), None);
    }

    #[test]
    fn disallow_all() {
        let p = RobotsPolicy::parse("User-agent: *\nDisallow: /");
        assert!(!p.is_allowed(UA, "/"));
        assert!(!p.is_allowed(UA, "/privacy-policy"));
        assert!(p.blocks_everything(UA));
    }

    #[test]
    fn prefix_rules() {
        let p = RobotsPolicy::parse("User-agent: *\nDisallow: /admin\nDisallow: /cart");
        assert!(!p.is_allowed(UA, "/admin/settings"));
        assert!(!p.is_allowed(UA, "/cart"));
        assert!(p.is_allowed(UA, "/privacy"));
    }

    #[test]
    fn allow_overrides_disallow_when_longer_or_equal() {
        let p = RobotsPolicy::parse("User-agent: *\nDisallow: /legal\nAllow: /legal/privacy");
        assert!(!p.is_allowed(UA, "/legal/terms"));
        assert!(p.is_allowed(UA, "/legal/privacy-notice"));
    }

    #[test]
    fn specific_agent_group_preferred() {
        let p = RobotsPolicy::parse(
            "User-agent: aipan-crawler\nDisallow: /private\n\nUser-agent: *\nDisallow: /",
        );
        assert!(p.is_allowed(UA, "/privacy"));
        assert!(!p.is_allowed(UA, "/private/x"));
        // Another bot falls into the * group.
        assert!(!p.is_allowed("googlebot", "/privacy"));
    }

    #[test]
    fn crawl_delay_parsed() {
        let p = RobotsPolicy::parse("User-agent: *\nCrawl-delay: 2.5\nDisallow: /tmp");
        assert_eq!(p.crawl_delay_ms(UA), Some(2500));
    }

    #[test]
    fn comments_and_junk_ignored() {
        let p = RobotsPolicy::parse(
            "# robots\nUser-agent: * # all\nSitemap: https://x.com/sitemap.xml\n\
             Nonsense line\nDisallow: /x # comment",
        );
        assert!(!p.is_allowed(UA, "/x/y"));
        assert!(p.is_allowed(UA, "/privacy"));
    }

    #[test]
    fn consecutive_agents_share_group() {
        let p = RobotsPolicy::parse("User-agent: a\nUser-agent: b\nDisallow: /z");
        assert!(!p.is_allowed("a", "/z"));
        assert!(!p.is_allowed("b", "/z"));
    }

    #[test]
    fn empty_disallow_means_allow_all() {
        let p = RobotsPolicy::parse("User-agent: *\nDisallow:");
        assert!(p.is_allowed(UA, "/anything"));
    }
}
