//! Chaos harness for the crawl stack: sweep arbitrary fault and retry
//! configurations with proptest and check the resilience invariants the
//! design demands — no panics, transport counter conservation, and
//! byte-identical results regardless of worker count. A deterministic
//! breaker-bound scenario rides along.

use aipan_crawler::{crawl_all_with, crawl_domain_with, CrawlOptions, DomainCrawl, PoolConfig};
use aipan_net::fault::{FaultConfig, FaultInjector};
use aipan_net::host::StaticSite;
use aipan_net::http::Response;
use aipan_net::{Client, Internet, RetryPolicy};
use proptest::prelude::*;

fn make_net(n: usize) -> (Internet, Vec<String>) {
    let net = Internet::new();
    let mut domains = Vec::new();
    for i in 0..n {
        let domain = format!("chaos{i}.com");
        net.register(
            &domain,
            StaticSite::new()
                .page(
                    "/",
                    Response::html("<footer><a href=\"/privacy\">Privacy Policy</a></footer>"),
                )
                .page(
                    "/privacy",
                    Response::html("<p>We collect your email address.</p>"),
                ),
        );
        domains.push(domain);
    }
    (net, domains)
}

/// Fault config from integer percentages (the vendored proptest has no
/// float strategies): `(connect%, 5xx%, reset%, ratelimit%)` plus burst and
/// Retry-After knobs.
fn faults_from(rates: (u64, u64, u64, u64), burst_max: u32, retry_after_ms: u64) -> FaultConfig {
    let (connect, flaky, reset, limit) = rates;
    FaultConfig {
        connect_failure: connect as f64 / 100.0,
        flaky_5xx: flaky as f64 / 100.0,
        conn_reset: reset as f64 / 100.0,
        rate_limit: limit as f64 / 100.0,
        burst_max,
        retry_after_ms,
        ..FaultConfig::default()
    }
}

fn options_from(retry: (u32, u64, u64, u32), seed: u64) -> CrawlOptions {
    let (max_attempts, base_backoff_ms, jitter_ms, domain_budget) = retry;
    CrawlOptions {
        retry: RetryPolicy {
            max_attempts,
            base_backoff_ms,
            jitter_ms,
            domain_budget,
            ..RetryPolicy::default()
        },
        seed,
        deadline_ms: None,
    }
}

/// A stable, comparable fingerprint of a crawl result (DomainCrawl holds
/// page bodies and is deliberately not PartialEq).
fn fingerprint(crawls: &[DomainCrawl]) -> Vec<String> {
    crawls
        .iter()
        .map(|c| {
            let pages: Vec<String> = c
                .pages
                .iter()
                .map(|p| {
                    format!(
                        "{}|{}|{:?}|{}",
                        p.final_url.path,
                        p.status.0,
                        p.via,
                        p.body.len()
                    )
                })
                .collect();
            format!(
                "{} {:?} attempts={} retries={} robots={}/{} delay={} deadline={} pages=[{}]",
                c.domain,
                c.outcome,
                c.fetch_attempts,
                c.retries,
                c.robots_skipped,
                c.robots_blocked,
                c.politeness_delay_ms,
                c.deadline_hit,
                pages.join(", ")
            )
        })
        .collect()
}

proptest! {
    // Any fault/retry configuration: the crawl completes without panics,
    // every domain is accounted for, and the transport counters conserve
    // (requests == responses + every failure class).
    #[test]
    fn chaos_crawl_never_panics_and_conserves_counters(
        rates in (0u64..25, 0u64..40, 0u64..30, 0u64..25),
        burst in (1u32..5, 0u64..3000),
        retry in (1u32..5, 0u64..1000, 0u64..400, 2u32..20),
        run in (0u64..1_000_000, 0u64..1_000_000, 1usize..6),
    ) {
        let (burst_max, retry_after_ms) = burst;
        let (fault_seed, session_seed, workers) = run;
        let faults = faults_from(rates, burst_max, retry_after_ms);
        let options = options_from(retry, session_seed);
        let (net, domains) = make_net(8);
        let client = Client::new(net, FaultInjector::new(fault_seed, faults));
        let crawls = crawl_all_with(&client, &domains, PoolConfig { workers }, &options);
        prop_assert_eq!(crawls.len(), domains.len());
        let m = client.metrics();
        prop_assert!(m.is_conserved(), "unbalanced transport counters: {:?}", m);
    }

    // Results and shared transport metrics are byte-identical for any two
    // worker counts under any fault/retry configuration.
    #[test]
    fn chaos_crawl_identical_across_worker_counts(
        rates in (0u64..25, 0u64..40, 0u64..30, 0u64..25),
        burst in (1u32..5, 0u64..3000),
        retry in (1u32..5, 0u64..1000, 0u64..400, 2u32..20),
        run in (0u64..1_000_000, 0u64..1_000_000, 1usize..5, 5usize..9),
    ) {
        let (burst_max, retry_after_ms) = burst;
        let (fault_seed, session_seed, workers_a, workers_b) = run;
        let faults = faults_from(rates, burst_max, retry_after_ms);
        let options = options_from(retry, session_seed);
        let (net, domains) = make_net(10);
        let client_a = Client::new(net.clone(), FaultInjector::new(fault_seed, faults));
        let client_b = Client::new(net, FaultInjector::new(fault_seed, faults));
        let a = crawl_all_with(&client_a, &domains, PoolConfig { workers: workers_a }, &options);
        let b = crawl_all_with(&client_b, &domains, PoolConfig { workers: workers_b }, &options);
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
        prop_assert_eq!(client_a.metrics(), client_b.metrics());
    }

    // Deadlines salvage deterministically: the same deadline produces the
    // same partial page sets at any worker count, without panics.
    #[test]
    fn chaos_deadlines_salvage_deterministically(
        rates in (0u64..25, 0u64..40, 0u64..30, 0u64..25),
        fault_seed in 0u64..1_000_000,
        deadline_ms in 1u64..5000,
    ) {
        let faults = faults_from(rates, 2, 800);
        let (net, domains) = make_net(4);
        let options = CrawlOptions {
            deadline_ms: Some(deadline_ms),
            ..CrawlOptions::default()
        };
        let client = Client::new(net.clone(), FaultInjector::new(fault_seed, faults));
        let a = crawl_all_with(&client, &domains, PoolConfig { workers: 2 }, &options);
        let client2 = Client::new(net, FaultInjector::new(fault_seed, faults));
        let b = crawl_all_with(&client2, &domains, PoolConfig { workers: 4 }, &options);
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
    }
}

/// The circuit breaker bounds the number of transport requests a dead host
/// can absorb, even when the caller keeps hammering it.
#[test]
fn breaker_bounds_requests_to_dead_host() {
    let net = Internet::new();
    // Not registering the domain → every fetch is a DNS failure.
    let client = Client::new(net, FaultInjector::new(3, FaultConfig::none()));
    let options = CrawlOptions::default();
    for _ in 0..25 {
        let crawl = crawl_domain_with(&client, "dead.example", &options);
        assert!(!crawl.is_success());
    }
    let m = client.metrics();
    // Each crawl opens a fresh session; the breaker threshold caps the
    // requests any single session can send to the dead host, so the total
    // is bounded by crawls × threshold rather than crawls × attempts.
    let per_session_cap = options.retry.breaker_threshold as u64 + 1;
    assert!(
        m.requests <= 25 * per_session_cap,
        "dead host absorbed {} requests",
        m.requests
    );
    assert!(m.is_conserved(), "unbalanced transport counters: {m:?}");
}
