//! Integration test: crawl a small simulated world end to end and check
//! the [`CrawlReport`] funnel statistics against the per-domain results —
//! with and without transient faults — and a property check that the
//! worker pool at any size is indistinguishable from a serial crawl.

use aipan_crawler::{
    crawl_all, crawl_all_with, crawl_domain_with, CrawlOptions, CrawlReport, PoolConfig,
};
use aipan_net::fault::{FaultConfig, FaultInjector};
use aipan_net::Client;
use aipan_webgen::{build_world, WorldConfig};
use proptest::prelude::*;
use std::collections::BTreeSet;

#[test]
fn report_stats_agree_with_per_domain_crawls() {
    let world = build_world(WorldConfig {
        seed: 7,
        universe_size: 120,
        ..Default::default()
    });
    let client = Client::new(
        world.internet.clone(),
        FaultInjector::new(world.config.seed, world.config.faults),
    );
    let domains: BTreeSet<String> = world
        .universe
        .companies
        .iter()
        .map(|c| c.domain.clone())
        .collect();
    let domains: Vec<String> = domains.into_iter().collect();
    let crawls = crawl_all(&client, &domains, PoolConfig::default());
    let report = CrawlReport::new(crawls);

    assert_eq!(report.funnel.domains_total, domains.len());
    assert!(report.funnel.crawl_success > 0, "some crawls must succeed");

    // failed_domains is exactly the complement of the successes.
    let failed = report.failed_domains().count();
    assert_eq!(
        failed,
        report.funnel.domains_total - report.funnel.crawl_success
    );
    assert!(report.failed_domains().all(|c| !c.is_success()));

    // Every successful domain contributes ≥1 deduplicated privacy page, so
    // the per-success average is at least one and matches the raw totals.
    let avg = report.funnel.avg_privacy_pages();
    assert!(avg >= 1.0, "avg privacy pages per success was {avg}");
    let expected = report.funnel.total_privacy_pages as f64 / report.funnel.crawl_success as f64;
    assert!((avg - expected).abs() < 1e-12);
}

#[test]
fn transient_faults_reconcile_with_funnel_accounting() {
    let world = build_world(WorldConfig {
        seed: 19,
        universe_size: 100,
        faults: FaultConfig {
            flaky_5xx: 0.15,
            conn_reset: 0.08,
            rate_limit: 0.05,
            ..FaultConfig::default()
        },
        ..Default::default()
    });
    let client = Client::new(
        world.internet.clone(),
        FaultInjector::new(world.config.seed, world.config.faults),
    );
    let domains: Vec<String> = {
        let set: BTreeSet<String> = world
            .universe
            .companies
            .iter()
            .map(|c| c.domain.clone())
            .collect();
        set.into_iter().collect()
    };
    let crawls = crawl_all_with(
        &client,
        &domains,
        PoolConfig::default(),
        &CrawlOptions::default(),
    );
    let report = CrawlReport::new(crawls);

    // Under these rates some fetch somewhere must have retried, and the
    // funnel's retry total must reconcile with the per-domain counts and
    // with the transport-layer retry counter.
    assert!(
        report.funnel.retries > 0,
        "no retries under elevated faults"
    );
    let per_domain: u64 = report.crawls.iter().map(|c| c.retries).sum();
    assert_eq!(report.funnel.retries, per_domain);
    let m = client.metrics();
    assert_eq!(m.retries, per_domain);
    assert!(m.is_conserved(), "unbalanced transport counters: {m:?}");

    // Transient faults must not cost any domain its crawl: the default
    // retry policy absorbs every default-length burst, so the success
    // count matches a transient-free baseline with the same permanent
    // fates (same injector seed, default fault rates only).
    let baseline_client = Client::new(
        world.internet.clone(),
        FaultInjector::new(world.config.seed, FaultConfig::default()),
    );
    let baseline = CrawlReport::new(crawl_all_with(
        &baseline_client,
        &domains,
        PoolConfig::default(),
        &CrawlOptions::default(),
    ));
    assert_eq!(report.funnel.crawl_success, baseline.funnel.crawl_success);

    // And retries are what buy that parity: the same faulty world crawled
    // with a no-retry policy strictly loses domains.
    let no_retry_client = Client::new(
        world.internet.clone(),
        FaultInjector::new(world.config.seed, world.config.faults),
    );
    let no_retry = CrawlReport::new(crawl_all_with(
        &no_retry_client,
        &domains,
        PoolConfig::default(),
        &CrawlOptions::no_retry(),
    ));
    assert!(
        no_retry.funnel.crawl_success < report.funnel.crawl_success,
        "no-retry baseline ({}) should lose domains vs the retrying crawl ({})",
        no_retry.funnel.crawl_success,
        report.funnel.crawl_success
    );
}

proptest! {
    // The worker pool is an implementation detail: for any worker count
    // and fault seed, crawl_all over the pool equals crawling every domain
    // serially with the same options.
    #[test]
    fn pool_crawl_equals_serial_crawl(
        workers in 1usize..=8,
        fault_seed in 0u64..1_000_000,
        rates in (0u64..20, 0u64..15, 0u64..10),
    ) {
        let (flaky, reset, limit) = rates;
        let faults = FaultConfig {
            flaky_5xx: flaky as f64 / 100.0,
            conn_reset: reset as f64 / 100.0,
            rate_limit: limit as f64 / 100.0,
            ..FaultConfig::default()
        };
        // The generated sites don't depend on the fault rates — only the
        // injector does — so one shared world serves every case.
        static WORLD: std::sync::OnceLock<aipan_webgen::World> = std::sync::OnceLock::new();
        let world = WORLD.get_or_init(|| {
            build_world(WorldConfig {
                seed: 11,
                universe_size: 14,
                ..Default::default()
            })
        });
        let domains: Vec<String> = {
            let set: BTreeSet<String> = world
                .universe
                .companies
                .iter()
                .map(|c| c.domain.clone())
                .collect();
            set.into_iter().collect()
        };
        let options = CrawlOptions::default();
        let pooled_client = Client::new(
            world.internet.clone(),
            FaultInjector::new(fault_seed, faults),
        );
        let pooled = crawl_all_with(&pooled_client, &domains, PoolConfig { workers }, &options);

        let serial_client = Client::new(
            world.internet.clone(),
            FaultInjector::new(fault_seed, faults),
        );
        let serial: Vec<_> = domains
            .iter()
            .map(|d| crawl_domain_with(&serial_client, d, &options))
            .collect();

        prop_assert_eq!(pooled.len(), serial.len());
        for (p, s) in pooled.iter().zip(&serial) {
            prop_assert_eq!(&p.domain, &s.domain);
            prop_assert_eq!(&p.outcome, &s.outcome);
            prop_assert_eq!(p.fetch_attempts, s.fetch_attempts);
            prop_assert_eq!(p.retries, s.retries);
            prop_assert_eq!(p.deadline_hit, s.deadline_hit);
            prop_assert_eq!(p.pages.len(), s.pages.len());
        }
        prop_assert_eq!(pooled_client.metrics(), serial_client.metrics());
    }
}
