//! Integration test: crawl a small simulated world end to end and check
//! the [`CrawlReport`] funnel statistics against the per-domain results.

use aipan_crawler::{crawl_all, CrawlReport, PoolConfig};
use aipan_net::fault::FaultInjector;
use aipan_net::Client;
use aipan_webgen::{build_world, WorldConfig};
use std::collections::BTreeSet;

#[test]
fn report_stats_agree_with_per_domain_crawls() {
    let world = build_world(WorldConfig {
        seed: 7,
        universe_size: 120,
        ..Default::default()
    });
    let client = Client::new(
        world.internet.clone(),
        FaultInjector::new(world.config.seed, world.config.faults),
    );
    let domains: BTreeSet<String> = world
        .universe
        .companies
        .iter()
        .map(|c| c.domain.clone())
        .collect();
    let domains: Vec<String> = domains.into_iter().collect();
    let crawls = crawl_all(&client, &domains, PoolConfig::default());
    let report = CrawlReport::new(crawls);

    assert_eq!(report.funnel.domains_total, domains.len());
    assert!(report.funnel.crawl_success > 0, "some crawls must succeed");

    // failed_domains is exactly the complement of the successes.
    let failed = report.failed_domains().count();
    assert_eq!(
        failed,
        report.funnel.domains_total - report.funnel.crawl_success
    );
    assert!(report.failed_domains().all(|c| !c.is_success()));

    // Every successful domain contributes ≥1 deduplicated privacy page, so
    // the per-success average is at least one and matches the raw totals.
    let avg = report.funnel.avg_privacy_pages();
    assert!(avg >= 1.0, "avg privacy pages per success was {avg}");
    let expected = report.funnel.total_privacy_pages as f64 / report.funnel.crawl_success as f64;
    assert!((avg - expected).abs() < 1e-12);
}
