//! Stack-based DOM construction from the token stream.
//!
//! Implements the subset of the HTML tree-construction rules that matters
//! for content extraction: void elements never take children, `<p>` and
//! `<li>`-style elements implicitly close their predecessors, and unmatched
//! end tags are ignored. The resulting tree is an ordinary owned arena of
//! [`Node`]s.

use crate::tokenizer::{tokenize, Attribute, Token};

/// Kind of a DOM node.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// Synthetic root of the document.
    Document,
    /// An element with a (lower-case) tag name and attributes.
    Element {
        /// Tag name.
        name: String,
        /// Attributes in document order.
        attrs: Vec<Attribute>,
    },
    /// A text node (entity-decoded).
    Text(String),
}

/// A node in the owned DOM tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// What kind of node this is.
    pub kind: NodeKind,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

impl Node {
    /// Parse an HTML document into a tree rooted at a
    /// [`NodeKind::Document`] node.
    pub fn parse(html: &str) -> Node {
        build(tokenize(html))
    }

    /// Element tag name, if this is an element.
    pub fn tag(&self) -> Option<&str> {
        match &self.kind {
            NodeKind::Element { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Value of attribute `name`, if this is an element carrying it.
    pub fn attr(&self, name: &str) -> Option<&str> {
        match &self.kind {
            NodeKind::Element { attrs, .. } => attrs
                .iter()
                .find(|a| a.name == name)
                .map(|a| a.value.as_str()),
            _ => None,
        }
    }

    /// Concatenated text of this subtree (no layout, single spaces between
    /// text nodes). For layout-aware extraction use [`crate::text::extract`].
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        self.collect_text(&mut out);
        out.trim().to_string()
    }

    fn collect_text(&self, out: &mut String) {
        match &self.kind {
            NodeKind::Text(t) => {
                if !out.is_empty() && !out.ends_with(' ') {
                    out.push(' ');
                }
                out.push_str(t.trim());
            }
            _ => {
                for c in &self.children {
                    c.collect_text(out);
                }
            }
        }
    }

    /// Depth-first pre-order iterator over the subtree (including `self`).
    pub fn descendants(&self) -> Descendants<'_> {
        Descendants { stack: vec![self] }
    }

    /// First descendant element with the given tag name.
    pub fn find(&self, tag: &str) -> Option<&Node> {
        self.descendants().find(|n| n.tag() == Some(tag))
    }
}

/// Iterator over a subtree in document order.
pub struct Descendants<'a> {
    stack: Vec<&'a Node>,
}

impl<'a> Iterator for Descendants<'a> {
    type Item = &'a Node;

    fn next(&mut self) -> Option<&'a Node> {
        let node = self.stack.pop()?;
        for child in node.children.iter().rev() {
            self.stack.push(child);
        }
        Some(node)
    }
}

/// Elements that never have children.
fn is_void(name: &str) -> bool {
    matches!(
        name,
        "area"
            | "base"
            | "br"
            | "col"
            | "embed"
            | "hr"
            | "img"
            | "input"
            | "link"
            | "meta"
            | "param"
            | "source"
            | "track"
            | "wbr"
    )
}

/// When `incoming` starts, which open elements does it implicitly close?
fn implicitly_closes(incoming: &str, open: &str) -> bool {
    match incoming {
        "p" | "h1" | "h2" | "h3" | "h4" | "h5" | "h6" | "ul" | "ol" | "table" | "div"
        | "section" | "article" | "header" | "footer" | "nav" | "blockquote" | "pre" => open == "p",
        "li" => open == "li",
        "tr" => matches!(open, "tr" | "td" | "th"),
        "td" | "th" => matches!(open, "td" | "th"),
        "option" => open == "option",
        "dt" | "dd" => matches!(open, "dt" | "dd"),
        _ => false,
    }
}

fn build(tokens: Vec<Token>) -> Node {
    // Arena of partially built nodes; stack holds indices of open nodes.
    struct Open {
        kind: NodeKind,
        children: Vec<Node>,
    }
    let mut stack: Vec<Open> = vec![Open {
        kind: NodeKind::Document,
        children: Vec::new(),
    }];

    fn close_top(stack: &mut Vec<Open>) {
        // Never pop the document root.
        if stack.len() <= 1 {
            return;
        }
        if let Some(top) = stack.pop() {
            let node = Node {
                kind: top.kind,
                children: top.children,
            };
            if let Some(parent) = stack.last_mut() {
                parent.children.push(node);
            }
        }
    }

    for token in tokens {
        match token {
            Token::Text(t) => {
                if let Some(open) = stack.last_mut() {
                    open.children.push(Node {
                        kind: NodeKind::Text(t),
                        children: Vec::new(),
                    });
                }
            }
            Token::Comment(_) | Token::Doctype(_) => {}
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => {
                // Implicit closes.
                while stack.len() > 1 {
                    let top_name = match stack.last().map(|o| &o.kind) {
                        Some(NodeKind::Element { name, .. }) => name.clone(),
                        _ => break,
                    };
                    if implicitly_closes(&name, &top_name) {
                        close_top(&mut stack);
                    } else {
                        break;
                    }
                }
                let kind = NodeKind::Element {
                    name: name.clone(),
                    attrs,
                };
                if self_closing || is_void(&name) {
                    if let Some(open) = stack.last_mut() {
                        open.children.push(Node {
                            kind,
                            children: Vec::new(),
                        });
                    }
                } else {
                    stack.push(Open {
                        kind,
                        children: Vec::new(),
                    });
                }
            }
            Token::EndTag { name } => {
                // Find a matching open element; if none, ignore.
                let matching = stack.iter().rposition(
                    |o| matches!(&o.kind, NodeKind::Element { name: n, .. } if *n == name),
                );
                if let Some(idx) = matching {
                    while stack.len() > idx {
                        close_top(&mut stack);
                    }
                }
            }
        }
    }
    while stack.len() > 1 {
        close_top(&mut stack);
    }
    match stack.pop() {
        Some(root) => Node {
            kind: root.kind,
            children: root.children,
        },
        // Unreachable: the root sentinel is never popped; return an empty
        // document rather than panicking if that ever changes.
        None => Node {
            kind: NodeKind::Document,
            children: Vec::new(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_tree() {
        let doc = Node::parse("<div><p>one</p><p>two</p></div>");
        let div = doc.find("div").unwrap();
        let ps: Vec<_> = div
            .children
            .iter()
            .filter(|c| c.tag() == Some("p"))
            .collect();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].text_content(), "one");
        assert_eq!(ps[1].text_content(), "two");
    }

    #[test]
    fn p_implicitly_closed_by_p() {
        let doc = Node::parse("<p>one<p>two");
        let ps: Vec<_> = doc.descendants().filter(|n| n.tag() == Some("p")).collect();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].text_content(), "one");
        assert_eq!(ps[1].text_content(), "two");
    }

    #[test]
    fn li_implicitly_closed() {
        let doc = Node::parse("<ul><li>a<li>b<li>c</ul>");
        let lis: Vec<_> = doc
            .descendants()
            .filter(|n| n.tag() == Some("li"))
            .collect();
        assert_eq!(lis.len(), 3);
        // No nesting: each li's text is exactly its own.
        assert_eq!(lis[1].text_content(), "b");
    }

    #[test]
    fn void_elements_take_no_children() {
        let doc = Node::parse("<p>a<br>b</p>");
        let p = doc.find("p").unwrap();
        assert_eq!(p.children.len(), 3);
        assert_eq!(p.children[1].tag(), Some("br"));
        assert!(p.children[1].children.is_empty());
    }

    #[test]
    fn unmatched_end_tag_ignored() {
        let doc = Node::parse("<div>x</span></div>");
        assert_eq!(doc.find("div").unwrap().text_content(), "x");
    }

    #[test]
    fn end_tag_closes_intervening_elements() {
        let doc = Node::parse("<div><b>bold text</div>after");
        // </div> force-closes <b>.
        let div = doc.find("div").unwrap();
        assert_eq!(div.text_content(), "bold text");
        let texts: Vec<_> = doc
            .children
            .iter()
            .filter_map(|n| match &n.kind {
                NodeKind::Text(t) => Some(t.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(texts, vec!["after".to_string()]);
    }

    #[test]
    fn attr_lookup() {
        let doc = Node::parse(r#"<a href="/privacy-policy" rel=nofollow>Privacy</a>"#);
        let a = doc.find("a").unwrap();
        assert_eq!(a.attr("href"), Some("/privacy-policy"));
        assert_eq!(a.attr("rel"), Some("nofollow"));
        assert_eq!(a.attr("missing"), None);
    }

    #[test]
    fn text_content_joins_with_spaces() {
        let doc = Node::parse("<p>Hello <b>dear</b> world</p>");
        assert_eq!(doc.text_content(), "Hello dear world");
    }

    #[test]
    fn descendants_in_document_order() {
        let doc = Node::parse("<div><p>a</p><span>b</span></div>");
        let tags: Vec<_> = doc.descendants().filter_map(|n| n.tag()).collect();
        assert_eq!(tags, vec!["div", "p", "span"]);
    }

    #[test]
    fn malformed_soup_never_panics() {
        for s in [
            "<<<>>>",
            "<div><div><div>",
            "</p></p>",
            "<a <b> c>",
            "<p>x</",
            "<table><tr><td>a<td>b<tr><td>c</table>",
        ] {
            let _ = Node::parse(s);
        }
    }
}
