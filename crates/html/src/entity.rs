//! HTML character-reference decoding.
//!
//! Supports the named entities that occur in practice on corporate sites plus
//! decimal/hex numeric references. Unknown references are passed through
//! verbatim (the forgiving behaviour browsers exhibit).

/// Named entities recognized by [`decode`]. Kept small on purpose: corporate
/// privacy pages overwhelmingly use this subset.
const NAMED: &[(&str, &str)] = &[
    ("amp", "&"),
    ("lt", "<"),
    ("gt", ">"),
    ("quot", "\""),
    ("apos", "'"),
    ("nbsp", "\u{a0}"),
    ("copy", "©"),
    ("reg", "®"),
    ("trade", "™"),
    ("mdash", "—"),
    ("ndash", "–"),
    ("hellip", "…"),
    ("lsquo", "\u{2018}"),
    ("rsquo", "\u{2019}"),
    ("ldquo", "\u{201c}"),
    ("rdquo", "\u{201d}"),
    ("bull", "•"),
    ("middot", "·"),
    ("sect", "§"),
    ("para", "¶"),
    ("eacute", "é"),
    ("egrave", "è"),
    ("agrave", "à"),
    ("uuml", "ü"),
    ("ouml", "ö"),
    ("auml", "ä"),
    ("ccedil", "ç"),
    ("ntilde", "ñ"),
];

/// Decode all character references in `input`.
///
/// * `&amp;` → `&`, `&#65;` → `A`, `&#x41;` → `A`.
/// * References may omit the trailing semicolon only for `&amp`, `&lt`,
///   `&gt`, `&quot`, `&nbsp` (the legacy forms browsers accept).
/// * Anything unrecognized is emitted unchanged.
pub fn decode(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&input[i..i + ch_len]);
            i += ch_len;
            continue;
        }
        // Find a candidate reference: up to 12 chars ending in ';'.
        let rest = &input[i + 1..];
        if let Some((decoded, consumed)) = decode_one(rest) {
            out.push_str(&decoded);
            i += 1 + consumed;
        } else {
            out.push('&');
            i += 1;
        }
    }
    out
}

/// Attempt to decode a single reference starting just after `&`. Returns the
/// decoded text and the number of bytes consumed (excluding the `&`).
fn decode_one(rest: &str) -> Option<(String, usize)> {
    if let Some(num) = rest.strip_prefix('#') {
        // Numeric reference.
        let (digits, radix): (&str, u32) =
            if let Some(hex) = num.strip_prefix('x').or_else(|| num.strip_prefix('X')) {
                (hex, 16)
            } else {
                (num, 10)
            };
        let end = digits
            .char_indices()
            .take_while(|(_, c)| c.is_digit(radix))
            .map(|(i, c)| i + c.len_utf8())
            .last()?;
        let code = u32::from_str_radix(&digits[..end], radix).ok()?;
        let ch = char::from_u32(code).unwrap_or('\u{fffd}');
        let prefix_len = rest.len() - digits.len(); // "#" or "#x"
        let mut consumed = prefix_len + end;
        if rest[consumed..].starts_with(';') {
            consumed += 1;
        }
        return Some((ch.to_string(), consumed));
    }
    // Named reference: letters only, then optional ';'.
    let name_end = rest
        .char_indices()
        .take_while(|(_, c)| c.is_ascii_alphanumeric())
        .map(|(i, c)| i + c.len_utf8())
        .last()?;
    let name = &rest[..name_end];
    let has_semi = rest[name_end..].starts_with(';');
    for (n, v) in NAMED {
        if *n == name {
            if has_semi {
                return Some((v.to_string(), name_end + 1));
            }
            // Legacy semicolon-less forms.
            if matches!(*n, "amp" | "lt" | "gt" | "quot" | "nbsp") {
                return Some((v.to_string(), name_end));
            }
            return None;
        }
    }
    None
}

/// Escape text for inclusion in HTML content (used by the site generator).
pub fn escape(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for ch in input.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(ch),
        }
    }
    out
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_named() {
        assert_eq!(decode("a &amp; b"), "a & b");
        assert_eq!(decode("&lt;tag&gt;"), "<tag>");
        assert_eq!(decode("&copy; 2024"), "© 2024");
    }

    #[test]
    fn numeric() {
        assert_eq!(decode("&#65;&#x42;&#X43;"), "ABC");
        assert_eq!(decode("&#8212;"), "—");
    }

    #[test]
    fn numeric_without_semicolon() {
        assert_eq!(decode("&#65 rest"), "A rest");
    }

    #[test]
    fn legacy_semicolonless() {
        assert_eq!(decode("Ben &amp Jerry"), "Ben & Jerry");
        assert_eq!(decode("a&nbsp b"), "a\u{a0} b");
    }

    #[test]
    fn unknown_passthrough() {
        assert_eq!(decode("&bogus; &"), "&bogus; &");
        assert_eq!(decode("AT&T"), "AT&T");
    }

    #[test]
    fn invalid_codepoint_replaced() {
        assert_eq!(decode("&#x110000;"), "\u{fffd}");
    }

    #[test]
    fn escape_roundtrip() {
        let s = "a<b> & \"c\"";
        assert_eq!(decode(&escape(s)), s);
    }

    #[test]
    fn multibyte_passthrough() {
        assert_eq!(decode("héllo — wörld"), "héllo — wörld");
    }
}
