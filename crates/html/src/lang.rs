//! A lightweight English-language detector.
//!
//! The pipeline discards non-English privacy pages (§3.1: "we then remove
//! duplicates and non-English pages"). We score text by the fraction of
//! tokens that are common English stop words; legal English is extremely
//! stop-word dense, so a low threshold separates it cleanly from other
//! languages (and from pages that mix several languages, which the paper's
//! pre-processing also discards).

/// Common English stop words; privacy-policy legalese is saturated with
/// these.
const STOPWORDS: &[&str] = &[
    "the",
    "of",
    "and",
    "to",
    "a",
    "in",
    "that",
    "is",
    "we",
    "you",
    "your",
    "for",
    "on",
    "with",
    "as",
    "are",
    "this",
    "be",
    "or",
    "by",
    "our",
    "it",
    "from",
    "at",
    "an",
    "not",
    "may",
    "will",
    "can",
    "have",
    "has",
    "us",
    "if",
    "any",
    "other",
    "such",
    "use",
    "when",
    "how",
    "do",
    "about",
    "information",
    "data",
    "privacy",
    "policy",
    "collect",
    "personal",
];

/// Fraction of tokens in `text` that are English stop words (0.0–1.0).
///
/// Tokens are lower-cased alphabetic runs. Returns 0.0 for empty input.
pub fn english_score(text: &str) -> f64 {
    let mut total = 0usize;
    let mut hits = 0usize;
    for token in text
        .split(|c: char| !c.is_alphabetic())
        .filter(|t| !t.is_empty())
    {
        total += 1;
        let lower = token.to_ascii_lowercase();
        if STOPWORDS.contains(&lower.as_str()) {
            hits += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// Decision threshold: text at or above this score is considered English.
pub const ENGLISH_THRESHOLD: f64 = 0.18;

/// Whether `text` is (predominantly) English.
pub fn is_english(text: &str) -> bool {
    english_score(text) >= ENGLISH_THRESHOLD
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn english_legalese_scores_high() {
        let text = "We collect personal information about you when you use our services, \
                    and we may share this data with our partners as described in this policy.";
        assert!(english_score(text) > 0.3, "score={}", english_score(text));
        assert!(is_english(text));
    }

    #[test]
    fn german_scores_low() {
        let text = "Wir erheben personenbezogene Daten über Sie, wenn Sie unsere Dienste \
                    nutzen, und geben diese gegebenenfalls an unsere Partner weiter.";
        assert!(
            english_score(text) < ENGLISH_THRESHOLD,
            "score={}",
            english_score(text)
        );
        assert!(!is_english(text));
    }

    #[test]
    fn french_scores_low() {
        let text = "Nous collectons des données personnelles vous concernant lorsque vous \
                    utilisez nos services et pouvons les partager avec nos partenaires.";
        assert!(!is_english(text));
    }

    #[test]
    fn empty_and_symbolic_input() {
        assert_eq!(english_score(""), 0.0);
        assert_eq!(english_score("12345 !!! ###"), 0.0);
        assert!(!is_english(""));
    }

    #[test]
    fn mixed_language_page_scores_between() {
        let en = "We collect personal information about you when you use our services and this is the policy.";
        let de = "Wir erheben personenbezogene Daten über Sie wenn Sie unsere Dienste nutzen und weitergeben.";
        let mixed = format!("{de} {de} {de} {en}");
        let s = english_score(&mixed);
        assert!(s < english_score(en));
        assert!(s > english_score(de));
    }
}
