//! # aipan-html
//!
//! HTML parsing and text extraction for the AIPAN-RS pipeline — the
//! stand-in for the `inscriptis` HTML-to-text library used by the paper
//! (§3.2.1) plus the heading/bold detection of Appendix B.
//!
//! The crate is built in three layers:
//!
//! 1. [`tokenizer`] — a forgiving HTML tokenizer (tags, attributes, text,
//!    comments, raw-text elements like `<script>`). Malformed markup never
//!    panics; it degrades to text.
//! 2. [`dom`] — a stack-based tree builder with the implicit-close rules
//!    needed for real-world pages (`<p>`, `<li>`, void elements).
//! 3. [`text`] — the inscriptis-style renderer: block-level layout into
//!    numbered lines, heading detection (`<h1>`–`<h6>` plus bold text on its
//!    own line, per Appendix B), anchor extraction with page-region
//!    attribution (header/body/footer), and title extraction.
//!
//! [`lang`] adds the stop-word-based English detector used to drop
//! non-English policies, and [`entity`] decodes character references.

#![warn(missing_docs)]

pub mod dom;
pub mod entity;
pub mod lang;
pub mod text;
pub mod tokenizer;

pub use dom::{Node, NodeKind};
pub use lang::english_score;
pub use text::{extract, ExtractedDoc, HeadingLevel, Line, LineKind, PageLink, PageRegion};
