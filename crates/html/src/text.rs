//! Inscriptis-style layout-aware text extraction.
//!
//! Renders a DOM into a sequence of numbered [`Line`]s, the representation
//! the annotation prompts consume (each input line is prefixed `[123]` by
//! the prompt builder). Along the way it records the two signals Appendix B
//! needs for segmentation:
//!
//! * heading lines — text inside `<h1>`–`<h6>`, **plus bold text
//!   (`<b>`/`<strong>`) that appears on a line of its own** (not inline with
//!   non-bold text), exactly as the paper defines heading detection;
//! * anchors — with their text, target, and page region (header/body/footer),
//!   which drive the §3.1 crawler link heuristics.
//!
//! Content of `<script>`, `<style>`, `<noscript>`, `<template>`, and
//! collapsed `<details>` elements is not rendered — the latter reproduces the
//! paper's observed failure mode of policies hidden under expandable
//! elements. Image `alt` text is likewise not rendered (image-based
//! policies yield no text).

use crate::dom::{Node, NodeKind};
use serde::{Deserialize, Serialize};

/// Heading level of a heading line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HeadingLevel {
    /// `<h1>` … `<h6>`.
    H1,
    /// `<h2>`.
    H2,
    /// `<h3>`.
    H3,
    /// `<h4>`.
    H4,
    /// `<h5>`.
    H5,
    /// `<h6>`.
    H6,
    /// Bold text on its own line (ranked below `<h6>` per Appendix B).
    Bold,
}

impl HeadingLevel {
    /// Numeric rank for hierarchy purposes: H1=1 … H6=6, Bold=7.
    pub fn rank(self) -> u8 {
        match self {
            HeadingLevel::H1 => 1,
            HeadingLevel::H2 => 2,
            HeadingLevel::H3 => 3,
            HeadingLevel::H4 => 4,
            HeadingLevel::H5 => 5,
            HeadingLevel::H6 => 6,
            HeadingLevel::Bold => 7,
        }
    }

    fn from_tag(tag: &str) -> Option<HeadingLevel> {
        Some(match tag {
            "h1" => HeadingLevel::H1,
            "h2" => HeadingLevel::H2,
            "h3" => HeadingLevel::H3,
            "h4" => HeadingLevel::H4,
            "h5" => HeadingLevel::H5,
            "h6" => HeadingLevel::H6,
            _ => return None,
        })
    }
}

/// Classification of an extracted line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LineKind {
    /// A heading line (explicit heading tag or bold-on-own-line).
    Heading(HeadingLevel),
    /// Ordinary flowing text.
    Text,
}

/// One extracted text line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Line {
    /// The line's text (whitespace-normalized, entity-decoded).
    pub text: String,
    /// Heading or body text.
    pub kind: LineKind,
}

/// Page region an anchor was found in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PageRegion {
    /// Inside `<header>`/`<nav>`, or in the top of the page.
    Header,
    /// Main content.
    Body,
    /// Inside `<footer>`, or in the bottom of the page.
    Footer,
}

/// An anchor extracted from the page.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PageLink {
    /// Raw `href` attribute value.
    pub href: String,
    /// Anchor text (whitespace-normalized).
    pub text: String,
    /// 1-based line the anchor text starts on (0 if the anchor produced no
    /// text and no line existed yet).
    pub line: usize,
    /// Region attribution.
    pub region: PageRegion,
}

/// The result of extracting a page.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExtractedDoc {
    /// Document title (`<title>`), if present.
    pub title: Option<String>,
    /// Extracted lines in document order; line numbers are index+1.
    pub lines: Vec<Line>,
    /// Extracted anchors in document order.
    pub links: Vec<PageLink>,
}

impl ExtractedDoc {
    /// Full text, one line per extracted line.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(&line.text);
            out.push('\n');
        }
        out
    }

    /// Total number of whitespace-separated words across all lines.
    pub fn word_count(&self) -> usize {
        self.lines
            .iter()
            .map(|l| l.text.split_whitespace().count())
            .sum()
    }

    /// Number of heading lines (used by Appendix B's ">5 headings" rule).
    pub fn heading_count(&self) -> usize {
        self.lines
            .iter()
            .filter(|l| matches!(l.kind, LineKind::Heading(_)))
            .count()
    }

    /// Links whose anchor text or href contains `needle` (case-insensitive).
    pub fn links_containing(&self, needle: &str) -> impl Iterator<Item = &PageLink> {
        let needle = needle.to_ascii_lowercase();
        self.links.iter().filter(move |l| {
            l.text.to_ascii_lowercase().contains(&needle)
                || l.href.to_ascii_lowercase().contains(&needle)
        })
    }
}

/// Extract a page: parse `html` and render it to lines + links.
///
/// ```
/// let doc = aipan_html::extract(
///     "<h2>Information We Collect</h2><p>We collect your email address.</p>",
/// );
/// assert_eq!(doc.lines.len(), 2);
/// assert_eq!(doc.heading_count(), 1);
/// assert!(doc.text().contains("email address"));
/// ```
pub fn extract(html: &str) -> ExtractedDoc {
    let dom = Node::parse(html);
    let mut r = Renderer::default();
    r.walk(&dom, &WalkCtx::default());
    r.finish()
}

/// Fraction of lines from the top considered "header" when no semantic
/// `<header>`/`<nav>` ancestor exists.
const HEADER_FRACTION: f64 = 0.2;
/// Fraction of lines from the bottom considered "footer" when no semantic
/// `<footer>` ancestor exists.
const FOOTER_FRACTION: f64 = 0.2;

#[derive(Debug, Clone, Copy, Default)]
struct WalkCtx {
    bold: bool,
    heading: Option<HeadingLevel>,
    region: Option<PageRegion>,
    in_title: bool,
}

#[derive(Debug, Default)]
struct Renderer {
    lines: Vec<Line>,
    // Current line state.
    buf: String,
    buf_heading: Option<HeadingLevel>,
    buf_has_bold: bool,
    buf_has_plain: bool,
    title: Option<String>,
    links: Vec<PendingLink>,
}

#[derive(Debug)]
struct PendingLink {
    href: String,
    text: String,
    line: usize,
    region: Option<PageRegion>,
}

impl Renderer {
    fn walk(&mut self, node: &Node, ctx: &WalkCtx) {
        match &node.kind {
            NodeKind::Document => {
                for c in &node.children {
                    self.walk(c, ctx);
                }
            }
            NodeKind::Text(t) => self.push_text(t, ctx),
            NodeKind::Element { name, .. } => self.walk_element(node, name, ctx),
        }
    }

    fn walk_element(&mut self, node: &Node, name: &str, ctx: &WalkCtx) {
        match name {
            "script" | "style" | "noscript" | "template" | "iframe" | "svg" | "head" => {
                // Head is skipped except we still want the title.
                if name == "head" {
                    let mut tctx = *ctx;
                    tctx.in_title = true;
                    if let Some(title) = node.find("title") {
                        let text = title.text_content();
                        if !text.is_empty() {
                            self.title = Some(text);
                        }
                    }
                    let _ = tctx;
                }
            }
            "details" if node.attr("open").is_none() => {
                // Collapsed expandable content: render only the <summary>.
                if let Some(summary) = node.find("summary") {
                    self.flush_line();
                    self.walk_children(summary, ctx);
                    self.flush_line();
                }
            }
            "br" => self.flush_line(),
            "img" | "input" | "hr" | "meta" | "link" | "base" => {}
            "a" => {
                let href = node.attr("href").unwrap_or("").to_string();
                let start_line = self.lines.len() + 1;
                let text = node.text_content();
                self.walk_children(node, ctx);
                if !href.is_empty() {
                    self.links.push(PendingLink {
                        href,
                        text,
                        line: start_line,
                        region: ctx.region,
                    });
                }
            }
            "b" | "strong" => {
                let mut c = *ctx;
                c.bold = true;
                self.walk_children(node, &c);
            }
            "header" | "nav" => {
                let mut c = *ctx;
                c.region = Some(PageRegion::Header);
                self.block(node, &c);
            }
            "footer" => {
                let mut c = *ctx;
                c.region = Some(PageRegion::Footer);
                self.block(node, &c);
            }
            _ => {
                if let Some(level) = HeadingLevel::from_tag(name) {
                    let mut c = *ctx;
                    c.heading = Some(level);
                    self.flush_line();
                    self.walk_children(node, &c);
                    self.flush_line();
                } else if is_block(name) {
                    self.block(node, ctx);
                } else {
                    self.walk_children(node, ctx);
                }
            }
        }
    }

    fn block(&mut self, node: &Node, ctx: &WalkCtx) {
        self.flush_line();
        self.walk_children(node, ctx);
        self.flush_line();
    }

    fn walk_children(&mut self, node: &Node, ctx: &WalkCtx) {
        for c in &node.children {
            self.walk(c, ctx);
        }
    }

    fn push_text(&mut self, raw: &str, ctx: &WalkCtx) {
        if raw.chars().all(char::is_whitespace) {
            // Whitespace-only node: collapses to a single pending space.
            if !self.buf.is_empty() && !self.buf.ends_with(' ') {
                self.buf.push(' ');
            }
            return;
        }
        if raw.starts_with(char::is_whitespace) && !self.buf.is_empty() && !self.buf.ends_with(' ')
        {
            self.buf.push(' ');
        }
        let mut first = true;
        for w in raw.split_whitespace() {
            if !first {
                self.buf.push(' ');
            }
            self.buf.push_str(w);
            first = false;
        }
        if raw.ends_with(char::is_whitespace) {
            self.buf.push(' ');
        }
        if let Some(h) = ctx.heading {
            self.buf_heading = Some(match self.buf_heading {
                Some(existing) if existing.rank() <= h.rank() => existing,
                _ => h,
            });
        }
        if ctx.bold {
            self.buf_has_bold = true;
        } else {
            self.buf_has_plain = true;
        }
    }

    fn flush_line(&mut self) {
        let text = std::mem::take(&mut self.buf).trim().to_string();
        let heading = self.buf_heading.take();
        let has_bold = std::mem::take(&mut self.buf_has_bold);
        let has_plain = std::mem::take(&mut self.buf_has_plain);
        if text.is_empty() {
            return;
        }
        let kind = if let Some(h) = heading {
            LineKind::Heading(h)
        } else if has_bold && !has_plain {
            LineKind::Heading(HeadingLevel::Bold)
        } else {
            LineKind::Text
        };
        self.lines.push(Line { text, kind });
    }

    fn finish(mut self) -> ExtractedDoc {
        self.flush_line();
        let total = self.lines.len().max(1) as f64;
        let links = self
            .links
            .into_iter()
            .map(|p| {
                let region = p.region.unwrap_or_else(|| {
                    let frac = (p.line.max(1) - 1) as f64 / total;
                    if frac < HEADER_FRACTION {
                        PageRegion::Header
                    } else if frac >= 1.0 - FOOTER_FRACTION {
                        PageRegion::Footer
                    } else {
                        PageRegion::Body
                    }
                });
                PageLink {
                    href: p.href,
                    text: p.text,
                    line: p.line,
                    region,
                }
            })
            .collect();
        ExtractedDoc {
            title: self.title,
            lines: self.lines,
            links,
        }
    }
}

fn is_block(name: &str) -> bool {
    matches!(
        name,
        "p" | "div"
            | "section"
            | "article"
            | "aside"
            | "main"
            | "ul"
            | "ol"
            | "li"
            | "table"
            | "tr"
            | "td"
            | "th"
            | "thead"
            | "tbody"
            | "tfoot"
            | "blockquote"
            | "pre"
            | "form"
            | "fieldset"
            | "figure"
            | "figcaption"
            | "address"
            | "dl"
            | "dt"
            | "dd"
            | "summary"
            | "details"
            | "body"
            | "html"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paragraphs_become_lines() {
        let doc = extract("<p>one two</p><p>three</p>");
        assert_eq!(doc.lines.len(), 2);
        assert_eq!(doc.lines[0].text, "one two");
        assert_eq!(doc.lines[1].text, "three");
        assert_eq!(doc.lines[0].kind, LineKind::Text);
    }

    #[test]
    fn headings_detected_with_level() {
        let doc = extract("<h1>Top</h1><h3>Sub</h3><p>body</p>");
        assert_eq!(doc.lines[0].kind, LineKind::Heading(HeadingLevel::H1));
        assert_eq!(doc.lines[1].kind, LineKind::Heading(HeadingLevel::H3));
        assert_eq!(doc.lines[2].kind, LineKind::Text);
        assert_eq!(doc.heading_count(), 2);
    }

    #[test]
    fn bold_on_own_line_is_heading() {
        let doc = extract("<p><b>Information We Collect</b></p><p>We collect stuff.</p>");
        assert_eq!(doc.lines[0].kind, LineKind::Heading(HeadingLevel::Bold));
        assert_eq!(doc.lines[1].kind, LineKind::Text);
    }

    #[test]
    fn bold_inline_with_text_is_not_heading() {
        let doc = extract("<p>We collect <b>everything</b> about you.</p>");
        assert_eq!(doc.lines.len(), 1);
        assert_eq!(doc.lines[0].kind, LineKind::Text);
        assert_eq!(doc.lines[0].text, "We collect everything about you.");
    }

    #[test]
    fn strong_counts_as_bold() {
        let doc = extract("<div><strong>Your Rights</strong></div>");
        assert_eq!(doc.lines[0].kind, LineKind::Heading(HeadingLevel::Bold));
    }

    #[test]
    fn inline_elements_flow() {
        let doc = extract("<p>one <span>two</span> <em>three</em></p>");
        assert_eq!(doc.lines.len(), 1);
        assert_eq!(doc.lines[0].text, "one two three");
    }

    #[test]
    fn script_and_style_skipped() {
        let doc = extract("<style>p{}</style><script>var x;</script><p>visible</p>");
        assert_eq!(doc.text().trim(), "visible");
    }

    #[test]
    fn title_extracted_not_rendered() {
        let doc = extract("<head><title>Acme Privacy</title></head><body><p>x</p></body>");
        assert_eq!(doc.title.as_deref(), Some("Acme Privacy"));
        assert_eq!(doc.text().trim(), "x");
    }

    #[test]
    fn links_with_regions_semantic() {
        let html = r#"
            <header><a href="/top">Privacy Center</a></header>
            <main><p>text</p><a href="/mid">Privacy</a></main>
            <footer><a href="/privacy">Privacy Policy</a></footer>
        "#;
        let doc = extract(html);
        let by_href = |h: &str| doc.links.iter().find(|l| l.href == h).unwrap().region;
        assert_eq!(by_href("/top"), PageRegion::Header);
        assert_eq!(by_href("/privacy"), PageRegion::Footer);
    }

    #[test]
    fn links_region_positional_fallback() {
        // 20 body lines, link on the last line → footer by position.
        let mut html = String::from("<a href='/first'>first link here</a>");
        for i in 0..20 {
            html.push_str(&format!("<p>filler line number {i}</p>"));
        }
        html.push_str("<p><a href='/last'>last link</a></p>");
        let doc = extract(&html);
        let first = doc.links.iter().find(|l| l.href == "/first").unwrap();
        let last = doc.links.iter().find(|l| l.href == "/last").unwrap();
        assert_eq!(first.region, PageRegion::Header);
        assert_eq!(last.region, PageRegion::Footer);
    }

    #[test]
    fn links_containing_matches_text_and_href() {
        let doc = extract(
            r#"<a href="/legal">Privacy Notice</a><a href="/privacy-policy">Legal</a>
               <a href="/about">About</a>"#,
        );
        let hits: Vec<_> = doc
            .links_containing("privacy")
            .map(|l| l.href.as_str())
            .collect();
        assert_eq!(hits, vec!["/legal", "/privacy-policy"]);
    }

    #[test]
    fn collapsed_details_hidden_open_details_shown() {
        let closed = extract("<details><summary>More</summary><p>secret policy text</p></details>");
        assert!(!closed.text().contains("secret policy text"));
        assert!(closed.text().contains("More"));
        let open =
            extract("<details open><summary>More</summary><p>secret policy text</p></details>");
        assert!(open.text().contains("secret policy text"));
    }

    #[test]
    fn image_alt_not_rendered() {
        let doc =
            extract(r#"<p>before</p><img src="policy.png" alt="full policy text"><p>after</p>"#);
        assert!(!doc.text().contains("full policy text"));
    }

    #[test]
    fn word_count_counts_words() {
        let doc = extract("<p>one two three</p><p>four five</p>");
        assert_eq!(doc.word_count(), 5);
    }

    #[test]
    fn br_splits_lines() {
        let doc = extract("<p>line one<br>line two</p>");
        assert_eq!(doc.lines.len(), 2);
    }

    #[test]
    fn nested_lists_render_items_as_lines() {
        let doc = extract("<ul><li>alpha</li><li>beta</li><li>gamma</li></ul>");
        let texts: Vec<_> = doc.lines.iter().map(|l| l.text.as_str()).collect();
        assert_eq!(texts, vec!["alpha", "beta", "gamma"]);
    }

    #[test]
    fn empty_page() {
        let doc = extract("");
        assert!(doc.lines.is_empty());
        assert!(doc.links.is_empty());
        assert_eq!(doc.word_count(), 0);
    }
}
