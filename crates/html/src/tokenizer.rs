//! A forgiving HTML tokenizer.
//!
//! Produces a flat stream of [`Token`]s: start tags (with attributes), end
//! tags, text, comments, and doctype. Raw-text elements (`<script>`,
//! `<style>`) swallow their content until the matching close tag, as per the
//! HTML parsing algorithm. Malformed input never panics — stray `<` become
//! text, unterminated constructs run to end-of-input.

use crate::entity;

/// A single HTML attribute, name lower-cased, value entity-decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name (lower-case).
    pub name: String,
    /// Attribute value ("" for bare attributes).
    pub value: String,
}

/// One token from the input stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `<name attr=...>`; `self_closing` reflects a trailing `/`.
    StartTag {
        /// Tag name (lower-case).
        name: String,
        /// Attributes in document order.
        attrs: Vec<Attribute>,
        /// Whether the tag ended with `/>`.
        self_closing: bool,
    },
    /// `</name>`.
    EndTag {
        /// Tag name (lower-case).
        name: String,
    },
    /// Entity-decoded character data.
    Text(String),
    /// `<!-- ... -->` (content, undecoded).
    Comment(String),
    /// `<!DOCTYPE ...>` (content after `<!`, undecoded).
    Doctype(String),
}

/// Elements whose content is raw text (no nested markup).
fn is_raw_text(name: &str) -> bool {
    matches!(name, "script" | "style" | "textarea" | "title")
}

/// Tokenize `input` into a vector of tokens.
pub fn tokenize(input: &str) -> Vec<Token> {
    Tokenizer::new(input).run()
}

struct Tokenizer<'a> {
    input: &'a str,
    pos: usize,
    tokens: Vec<Token>,
}

impl<'a> Tokenizer<'a> {
    fn new(input: &'a str) -> Self {
        Tokenizer {
            input,
            pos: 0,
            tokens: Vec::new(),
        }
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.input.len() {
            match self.rest().find('<') {
                None => {
                    self.emit_text(self.pos, self.input.len());
                    break;
                }
                Some(rel) => {
                    let lt = self.pos + rel;
                    self.emit_text(self.pos, lt);
                    self.pos = lt;
                    self.consume_markup();
                }
            }
        }
        self.tokens
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn emit_text(&mut self, start: usize, end: usize) {
        if start < end {
            let decoded = entity::decode(&self.input[start..end]);
            if !decoded.is_empty() {
                self.tokens.push(Token::Text(decoded));
            }
        }
    }

    /// `self.pos` is at a `<`. Consume one markup construct.
    fn consume_markup(&mut self) {
        let rest = self.rest();
        debug_assert!(rest.starts_with('<'));
        let after = &rest[1..];

        if let Some(comment) = after.strip_prefix("!--") {
            // Comment: until -->
            match comment.find("-->") {
                Some(end) => {
                    self.tokens.push(Token::Comment(comment[..end].to_string()));
                    self.pos += 1 + 3 + end + 3;
                }
                None => {
                    self.tokens.push(Token::Comment(comment.to_string()));
                    self.pos = self.input.len();
                }
            }
            return;
        }
        if after.starts_with('!') || after.starts_with('?') {
            // Doctype / processing instruction: until '>'.
            match after.find('>') {
                Some(end) => {
                    self.tokens.push(Token::Doctype(after[1..end].to_string()));
                    self.pos += 1 + end + 1;
                }
                None => {
                    self.tokens.push(Token::Doctype(after[1..].to_string()));
                    self.pos = self.input.len();
                }
            }
            return;
        }
        if let Some(close) = after.strip_prefix('/') {
            // End tag.
            match close.find('>') {
                Some(end) => {
                    let name = close[..end]
                        .trim()
                        .trim_end_matches('/')
                        .to_ascii_lowercase();
                    if !name.is_empty() {
                        self.tokens.push(Token::EndTag { name });
                    }
                    self.pos += 2 + end + 1;
                }
                None => {
                    self.pos = self.input.len();
                }
            }
            return;
        }
        if !after.starts_with(|c: char| c.is_ascii_alphabetic()) {
            // Stray '<': emit as text.
            self.tokens.push(Token::Text("<".to_string()));
            self.pos += 1;
            return;
        }
        // Start tag.
        match self.parse_start_tag() {
            Some((name, attrs, self_closing, consumed)) => {
                self.pos += consumed;
                let raw = is_raw_text(&name) && !self_closing;
                self.tokens.push(Token::StartTag {
                    name: name.clone(),
                    attrs,
                    self_closing,
                });
                if raw {
                    self.consume_raw_text(&name);
                }
            }
            None => {
                // Unterminated tag; drop the rest.
                self.pos = self.input.len();
            }
        }
    }

    /// Parse a start tag beginning at `self.pos` (which is `<`). Returns
    /// (name, attrs, self_closing, bytes consumed including both angle
    /// brackets), or None if unterminated.
    fn parse_start_tag(&self) -> Option<(String, Vec<Attribute>, bool, usize)> {
        let rest = self.rest();
        let bytes = rest.as_bytes();
        let mut i = 1; // skip '<'
        let name_start = i;
        while i < bytes.len()
            && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'-' || bytes[i] == b':')
        {
            i += 1;
        }
        let name = rest[name_start..i].to_ascii_lowercase();
        let mut attrs = Vec::new();
        let mut self_closing = false;
        loop {
            // Skip whitespace.
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if i >= bytes.len() {
                return None;
            }
            match bytes[i] {
                b'>' => return Some((name, attrs, self_closing, i + 1)),
                b'/' => {
                    self_closing = true;
                    i += 1;
                }
                b'"' | b'\'' => {
                    // Stray quote; skip.
                    i += 1;
                }
                _ => {
                    // Attribute name.
                    let attr_start = i;
                    while i < bytes.len()
                        && !bytes[i].is_ascii_whitespace()
                        && !matches!(bytes[i], b'=' | b'>' | b'/')
                    {
                        i += 1;
                    }
                    let attr_name = rest[attr_start..i].to_ascii_lowercase();
                    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                        i += 1;
                    }
                    let mut value = String::new();
                    if i < bytes.len() && bytes[i] == b'=' {
                        i += 1;
                        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                            i += 1;
                        }
                        if i < bytes.len() && (bytes[i] == b'"' || bytes[i] == b'\'') {
                            let quote = bytes[i];
                            i += 1;
                            let val_start = i;
                            while i < bytes.len() && bytes[i] != quote {
                                i += 1;
                            }
                            value = entity::decode(&rest[val_start..i]);
                            if i < bytes.len() {
                                i += 1; // closing quote
                            }
                        } else {
                            let val_start = i;
                            while i < bytes.len()
                                && !bytes[i].is_ascii_whitespace()
                                && bytes[i] != b'>'
                            {
                                i += 1;
                            }
                            value = entity::decode(&rest[val_start..i]);
                        }
                    }
                    if !attr_name.is_empty() {
                        attrs.push(Attribute {
                            name: attr_name,
                            value,
                        });
                    }
                }
            }
        }
    }

    /// After a raw-text start tag, consume content until `</name>` and emit
    /// it as a single Text token (undecoded, as the HTML spec treats raw
    /// text) plus the end tag.
    fn consume_raw_text(&mut self, name: &str) {
        let rest = self.rest();
        let close = format!("</{name}");
        let lower = rest.to_ascii_lowercase();
        match lower.find(&close) {
            Some(idx) => {
                if idx > 0 {
                    self.tokens.push(Token::Text(rest[..idx].to_string()));
                }
                // Find the '>' terminating the close tag.
                let after = &rest[idx..];
                let end = after.find('>').map(|e| e + 1).unwrap_or(after.len());
                self.tokens.push(Token::EndTag {
                    name: name.to_string(),
                });
                self.pos += idx + end;
            }
            None => {
                if !rest.is_empty() {
                    self.tokens.push(Token::Text(rest.to_string()));
                }
                self.pos = self.input.len();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(name: &str) -> Token {
        Token::StartTag {
            name: name.into(),
            attrs: vec![],
            self_closing: false,
        }
    }

    #[test]
    fn simple_document() {
        let toks = tokenize("<p>Hello</p>");
        assert_eq!(
            toks,
            vec![
                start("p"),
                Token::Text("Hello".into()),
                Token::EndTag { name: "p".into() },
            ]
        );
    }

    #[test]
    fn attributes_quoted_and_bare() {
        let toks = tokenize(r#"<a href="/privacy" class='x' hidden data-n=5>"#);
        match &toks[0] {
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => {
                assert_eq!(name, "a");
                assert!(!self_closing);
                assert_eq!(
                    attrs[0],
                    Attribute {
                        name: "href".into(),
                        value: "/privacy".into()
                    }
                );
                assert_eq!(
                    attrs[1],
                    Attribute {
                        name: "class".into(),
                        value: "x".into()
                    }
                );
                assert_eq!(
                    attrs[2],
                    Attribute {
                        name: "hidden".into(),
                        value: "".into()
                    }
                );
                assert_eq!(
                    attrs[3],
                    Attribute {
                        name: "data-n".into(),
                        value: "5".into()
                    }
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn self_closing() {
        let toks = tokenize("<br/><img src=x />");
        assert!(
            matches!(&toks[0], Token::StartTag { name, self_closing: true, .. } if name == "br")
        );
        assert!(
            matches!(&toks[1], Token::StartTag { name, self_closing: true, .. } if name == "img")
        );
    }

    #[test]
    fn entities_in_text_and_attrs() {
        let toks = tokenize(r#"<a title="Ben &amp; Jerry">&copy; 2024</a>"#);
        match &toks[0] {
            Token::StartTag { attrs, .. } => assert_eq!(attrs[0].value, "Ben & Jerry"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(toks[1], Token::Text("© 2024".into()));
    }

    #[test]
    fn comments_and_doctype() {
        let toks = tokenize("<!DOCTYPE html><!-- hi --><p>x</p>");
        assert!(
            matches!(&toks[0], Token::Doctype(d) if d.contains("DOCTYPE") || d.contains("html"))
        );
        assert_eq!(toks[1], Token::Comment(" hi ".into()));
    }

    #[test]
    fn script_raw_text_not_parsed() {
        let toks = tokenize("<script>if (a < b) { x(); }</script><p>y</p>");
        assert!(matches!(&toks[0], Token::StartTag { name, .. } if name == "script"));
        assert_eq!(toks[1], Token::Text("if (a < b) { x(); }".into()));
        assert_eq!(
            toks[2],
            Token::EndTag {
                name: "script".into()
            }
        );
    }

    #[test]
    fn script_case_insensitive_close() {
        let toks = tokenize("<SCRIPT>var x=1;</ScRiPt>done");
        assert_eq!(toks[1], Token::Text("var x=1;".into()));
        assert_eq!(
            toks[2],
            Token::EndTag {
                name: "script".into()
            }
        );
        assert_eq!(toks[3], Token::Text("done".into()));
    }

    #[test]
    fn stray_lt_is_text() {
        let toks = tokenize("1 < 2 and <b>bold</b>");
        let text: String = toks
            .iter()
            .filter_map(|t| match t {
                Token::Text(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert!(text.contains("1 < 2 and "));
    }

    #[test]
    fn unterminated_constructs_do_not_panic() {
        for s in [
            "<p",
            "<!-- open",
            "<a href=\"x",
            "</",
            "<script>never closed",
        ] {
            let _ = tokenize(s);
        }
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
    }
}
