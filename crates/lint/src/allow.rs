//! The `lint.allow` allowlist: vetted exceptions to lint rules.
//!
//! The file is a TOML subset — an array of `[[allow]]` tables with string
//! and integer values:
//!
//! ```toml
//! [[allow]]
//! rule = "R1"
//! file = "crates/html/src/entity.rs"
//! line = 42            # optional: any line in the file when omitted
//! reason = "static table lookup proven in-bounds by the build script"
//! ```
//!
//! Every entry MUST carry a non-empty `reason`; an allowlist without
//! justifications defeats its purpose, so entries missing one are rejected
//! at parse time. Unused entries are themselves reported (rule `A0`) so the
//! list cannot silently rot.

use crate::findings::{Finding, Severity};

/// One vetted exception.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct AllowEntry {
    /// Rule ID the exception applies to (`R1`, `D2`, ...).
    pub(crate) rule: String,
    /// Workspace-relative file the exception applies to.
    pub(crate) file: String,
    /// Specific line, or `None` to cover the whole file.
    pub(crate) line: Option<u32>,
    /// Mandatory justification.
    pub(crate) reason: String,
}

/// Parsed allowlist plus per-entry hit counters.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
    hits: Vec<bool>,
}

/// Error produced for a malformed `lint.allow`.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line in `lint.allow`.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.allow:{}: {}", self.line, self.message)
    }
}

impl Allowlist {
    /// Parse the TOML-subset allowlist format.
    pub fn parse(text: &str) -> Result<Allowlist, ParseError> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut current: Option<(AllowEntry, u32)> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                if let Some((entry, at)) = current.take() {
                    entries.push(validate(entry, at)?);
                }
                current = Some((
                    AllowEntry {
                        rule: String::new(),
                        file: String::new(),
                        line: None,
                        reason: String::new(),
                    },
                    lineno,
                ));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ParseError {
                    line: lineno,
                    message: format!("expected `key = value` or `[[allow]]`, got `{line}`"),
                });
            };
            let Some((entry, _)) = current.as_mut() else {
                return Err(ParseError {
                    line: lineno,
                    message: "key outside any [[allow]] table".to_string(),
                });
            };
            let key = key.trim();
            let value = value.trim();
            match key {
                "rule" => entry.rule = parse_string(value, lineno)?,
                "file" => entry.file = parse_string(value, lineno)?,
                "reason" => entry.reason = parse_string(value, lineno)?,
                "line" => {
                    entry.line = Some(value.parse::<u32>().map_err(|_| ParseError {
                        line: lineno,
                        message: format!("`line` must be an integer, got `{value}`"),
                    })?)
                }
                other => {
                    return Err(ParseError {
                        line: lineno,
                        message: format!("unknown key `{other}` (expected rule/file/line/reason)"),
                    })
                }
            }
        }
        if let Some((entry, at)) = current.take() {
            entries.push(validate(entry, at)?);
        }
        let hits = vec![false; entries.len()];
        Ok(Allowlist { entries, hits })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Check a finding against the list, recording the hit. A finding is
    /// suppressed when an entry matches its rule + file (+ line, if pinned).
    pub fn permits(&mut self, finding: &Finding) -> bool {
        let mut hit = false;
        for (i, e) in self.entries.iter().enumerate() {
            if e.rule == finding.rule
                && e.file == finding.file
                && e.line.map_or(true, |l| l == finding.line)
            {
                if let Some(h) = self.hits.get_mut(i) {
                    *h = true;
                }
                hit = true;
            }
        }
        hit
    }

    /// Findings for entries that suppressed nothing this run (rule `A0`).
    pub fn unused(&self) -> Vec<Finding> {
        self.entries
            .iter()
            .zip(&self.hits)
            .filter(|(_, &hit)| !hit)
            .map(|(e, _)| {
                Finding::at(
                    "A0",
                    Severity::Warn,
                    "lint.allow",
                    0,
                    0,
                    format!(
                        "allowlist entry for {} in {} matched no finding; remove it",
                        e.rule, e.file
                    ),
                    format!("reason was: {}", e.reason),
                )
            })
            .collect()
    }
}

fn validate(entry: AllowEntry, at: u32) -> Result<AllowEntry, ParseError> {
    for (field, value) in [
        ("rule", &entry.rule),
        ("file", &entry.file),
        ("reason", &entry.reason),
    ] {
        if value.is_empty() {
            return Err(ParseError {
                line: at,
                message: format!("[[allow]] table is missing required key `{field}`"),
            });
        }
    }
    Ok(entry)
}

fn parse_string(value: &str, lineno: u32) -> Result<String, ParseError> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(ParseError {
            line: lineno,
            message: format!("expected a double-quoted string, got `{value}`"),
        })
    }
}

/// Strip a `#`-to-end-of-line comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# vetted exceptions
[[allow]]
rule = "R1"
file = "crates/x/src/a.rs"
line = 7
reason = "slice length checked two lines above"

[[allow]]
rule = "D2"  # whole file
file = "crates/x/src/b.rs"
reason = "iteration order irrelevant: feeds a counter"
"#;

    fn finding(rule: &'static str, file: &str, line: u32) -> Finding {
        Finding::at(
            rule,
            Severity::Deny,
            file,
            line,
            1,
            "m".into(),
            String::new(),
        )
    }

    #[test]
    fn parses_and_matches() {
        let mut list = Allowlist::parse(SAMPLE).unwrap();
        assert_eq!(list.len(), 2);
        assert!(list.permits(&finding("R1", "crates/x/src/a.rs", 7)));
        assert!(
            !list.permits(&finding("R1", "crates/x/src/a.rs", 8)),
            "line-pinned"
        );
        assert!(
            list.permits(&finding("D2", "crates/x/src/b.rs", 99)),
            "file-wide"
        );
        assert!(
            !list.permits(&finding("R1", "crates/x/src/b.rs", 99)),
            "rule mismatch"
        );
        assert!(list.unused().is_empty());
    }

    #[test]
    fn unused_entries_are_reported() {
        let list = Allowlist::parse(SAMPLE).unwrap();
        let unused = list.unused();
        assert_eq!(unused.len(), 2);
        assert_eq!(unused[0].rule, "A0");
        assert!(unused[0].message.contains("crates/x/src/a.rs"));
    }

    #[test]
    fn reason_is_mandatory() {
        let err = Allowlist::parse("[[allow]]\nrule = \"R1\"\nfile = \"f.rs\"\n").unwrap_err();
        assert!(err.message.contains("reason"), "{err}");
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(
            Allowlist::parse("rule = \"R1\"").is_err(),
            "key outside table"
        );
        assert!(Allowlist::parse("[[allow]]\nwhat is this").is_err());
        assert!(Allowlist::parse("[[allow]]\nline = \"seven\"").is_err());
        assert!(Allowlist::parse("[[allow]]\nrule = unquoted").is_err());
    }

    #[test]
    fn empty_file_is_an_empty_list() {
        let list = Allowlist::parse("# nothing here\n").unwrap();
        assert!(list.is_empty());
    }
}
