//! Atomic-commutativity rule `A1`, on the [`crate::types`] field index.
//!
//! The streaming pipeline (PR 8) replaced locked counters with lock-free
//! atomics — `MemoryGauge`, the `UsageLedger` totals, `ShardedJournal`
//! error counts — on a specific discipline: every concurrent update must
//! be a single *commutative* read-modify-write (`fetch_add`,
//! `fetch_sub`, `fetch_max`, or a CAS retry loop), because with relaxed
//! ordering and racing workers only commutative RMWs keep the final
//! value independent of interleaving. `A1` makes the discipline
//! checkable, three ways (all Deny):
//!
//! 1. **Load-then-store**: one fn both `load`s and `store`s the same
//!    atomic field. The classic lost-update race — the store overwrites
//!    any update that landed between the two; use the `fetch_*` RMW or
//!    `fetch_update`.
//! 2. **Non-commutative RMW under `Relaxed`**: `swap` anywhere, or a
//!    `compare_exchange`/`compare_exchange_weak` *outside* a retry loop,
//!    with `Relaxed` success ordering. A CAS inside a loop is the
//!    sanctioned retry idiom; a bare one silently drops the update on
//!    contention.
//! 3. **Mixed orderings on one field**: the same field accessed with two
//!    different memory orderings anywhere in the workspace. Mixed
//!    orderings on a single location are almost never intentional here —
//!    the pipeline's counters are uniformly `Relaxed` — and an accidental
//!    `SeqCst` hides a misunderstanding of what the ordering protects.
//!    (`compare_exchange` failure orderings are excluded: a weaker
//!    failure ordering is the documented idiom.)
//!
//! Approximation directions (DESIGN.md §6a): a receiver must resolve to
//! a field of provable `Atomic*` type through the [`crate::types`]
//! layer, so atomics reached through locals or trait objects are missed
//! (under-approximates, never spurious); the load/store pairing is
//! per-fn and flow-insensitive, so a load and store on provably disjoint
//! paths still pair up (over-approximates — the conservative direction
//! for a race rule).

use crate::callgraph::CallGraph;
use crate::cfg::Cfg;
use crate::cost;
use crate::dataflow;
use crate::expr::{for_each_child, Expr, ExprKind};
use crate::findings::{Finding, Severity};
use crate::graph::Workspace;
use crate::types::{self, LocalTypes, Ty, TyFact, TypeIndex};
use std::collections::{BTreeMap, BTreeSet};

/// The atomic method families the rule recognizes.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_max",
    "fetch_min",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// `std::sync::atomic::Ordering` variant names.
const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One recognized atomic access site.
struct AtomicSite {
    /// `(owning struct or "", field name)` — the location identity.
    key: (String, String),
    /// Method name (`"fetch_add"`).
    method: String,
    /// First memory-ordering argument (success ordering for CAS), when
    /// syntactically recognizable.
    ordering: Option<String>,
    file: usize,
    line: u32,
    col: u32,
    /// Loop depth of the call's line within its fn.
    depth: u32,
}

/// Extract the memory-ordering arguments of one call, in order.
fn ordering_args(args: &[Expr]) -> Vec<String> {
    args.iter()
        .filter_map(|a| {
            let segs = a.plain_path()?;
            let last = segs.last()?;
            ORDERINGS.contains(&last.as_str()).then(|| last.clone())
        })
        .collect()
}

/// Resolve a method receiver to an atomic field identity, when it is a
/// field access whose declared type is an `Atomic*` wrapper.
fn atomic_field(
    lt: &LocalTypes<'_>,
    fact: &BTreeMap<String, TyFact>,
    recv: &Expr,
) -> Option<(String, String)> {
    let ExprKind::Field { base, name } = &recv.kind else {
        return None;
    };
    let recv_ty = lt.infer(fact, recv).ty;
    let Ty::Named(head) = recv_ty else {
        return None;
    };
    if !head.starts_with("Atomic") {
        return None;
    }
    let owner = match &base.kind {
        ExprKind::Path(segs) if segs.as_slice() == ["self"] => lt.self_ty.clone(),
        _ => match lt.infer(fact, base).ty {
            Ty::Named(s) => Some(s),
            _ => None,
        },
    };
    Some((owner.unwrap_or_default(), name.clone()))
}

/// Collect every atomic access in one expression tree (the CFG hoists
/// control-flow subexpressions into their own steps, so don't descend).
fn sites_in(
    lt: &LocalTypes<'_>,
    fact: &BTreeMap<String, TyFact>,
    e: &Expr,
    file: usize,
    depths: &BTreeMap<u32, u32>,
    out: &mut Vec<AtomicSite>,
) {
    if e.is_control() {
        return;
    }
    if let ExprKind::MethodCall {
        recv, name, args, ..
    } = &e.kind
    {
        if ATOMIC_METHODS.contains(&name.as_str()) {
            if let Some(key) = atomic_field(lt, fact, recv) {
                out.push(AtomicSite {
                    key,
                    method: name.clone(),
                    ordering: ordering_args(args).into_iter().next(),
                    file,
                    line: e.line,
                    col: e.col,
                    depth: depths.get(&e.line).copied().unwrap_or(0),
                });
            }
        }
    }
    for_each_child(e, &mut |c| sites_in(lt, fact, c, file, depths, out));
}

/// Run the `A1` pass over every call-graph fn.
pub fn check_atomics(ws: &Workspace, graph: &CallGraph<'_>, index: &TypeIndex) -> Vec<Finding> {
    let mut findings = Vec::new();
    // Workspace-wide ordering census: field identity -> orderings seen,
    // plus the first site for the mixed-ordering finding's anchor.
    let mut orderings: BTreeMap<(String, String), BTreeSet<String>> = BTreeMap::new();
    let mut first_site: BTreeMap<(String, String), (usize, u32, u32)> = BTreeMap::new();
    for node in &graph.fns {
        let Some(file) = ws.files.get(node.file) else {
            continue;
        };
        let lt = LocalTypes::new(index, node);
        let cfg = Cfg::build(&node.info.body);
        let facts = types::solve_fn(&lt, &cfg);
        let depths = cost::line_loop_depths(&node.info.body);
        let mut sites = Vec::new();
        for (nid, cfg_node) in cfg.nodes.iter().enumerate() {
            let Some(fact_in) = facts.get(nid).and_then(|f| f.as_ref()) else {
                continue;
            };
            dataflow::replay(&lt, &cfg_node.steps, fact_in, &mut |step, fact| {
                for e in cost::step_exprs(step) {
                    sites_in(&lt, fact, e, node.file, &depths, &mut sites);
                }
            });
        }
        let loaded: BTreeSet<&(String, String)> = sites
            .iter()
            .filter(|s| s.method == "load")
            .map(|s| &s.key)
            .collect();
        for site in &sites {
            let field = site.key.1.as_str();
            orderings
                .entry(site.key.clone())
                .or_default()
                .extend(site.ordering.clone());
            first_site
                .entry(site.key.clone())
                .or_insert((site.file, site.line, site.col));
            if site.method == "store" && loaded.contains(&site.key) {
                findings.push(Finding::at(
                    "A1",
                    Severity::Deny,
                    &file.parsed.rel_path,
                    site.line,
                    site.col,
                    format!(
                        "non-atomic read-modify-write: `{field}` is loaded and stored \
                         separately in `{}` — racing workers lose updates between the two; \
                         use a `fetch_*` RMW or `fetch_update`",
                        node.name,
                    ),
                    file.snippet(site.line),
                ));
            }
            let relaxed = site.ordering.as_deref() == Some("Relaxed");
            if site.method == "swap" && relaxed {
                findings.push(Finding::at(
                    "A1",
                    Severity::Deny,
                    &file.parsed.rel_path,
                    site.line,
                    site.col,
                    format!(
                        "`swap` on `{field}` under `Ordering::Relaxed` is not commutative — \
                         the final value depends on worker interleaving; use a `fetch_*` \
                         RMW or a CAS retry loop",
                    ),
                    file.snippet(site.line),
                ));
            }
            if site.method.starts_with("compare_exchange") && relaxed && site.depth == 0 {
                findings.push(Finding::at(
                    "A1",
                    Severity::Deny,
                    &file.parsed.rel_path,
                    site.line,
                    site.col,
                    format!(
                        "bare `{}` on `{field}` under `Ordering::Relaxed` outside a retry \
                         loop silently drops the update on contention; retry in a loop or \
                         use `fetch_update`",
                        site.method,
                    ),
                    file.snippet(site.line),
                ));
            }
        }
    }
    for (key, seen) in &orderings {
        if seen.len() > 1 {
            if let Some(&(file_id, line, col)) = first_site.get(key) {
                if let Some(file) = ws.files.get(file_id) {
                    let mix: Vec<&str> = seen.iter().map(String::as_str).collect();
                    findings.push(Finding::at(
                        "A1",
                        Severity::Deny,
                        &file.parsed.rel_path,
                        line,
                        col,
                        format!(
                            "`{}` is accessed with mixed memory orderings ({}) across the \
                             workspace; pick one ordering per location — the pipeline's \
                             counters are uniformly `Relaxed`",
                            key.1,
                            mix.join(", "),
                        ),
                        file.snippet(line),
                    ));
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        let ws = Workspace::build(&owned);
        let graph = CallGraph::build(&ws);
        let index = TypeIndex::build(&ws);
        check_atomics(&ws, &graph, &index)
    }

    #[test]
    fn load_then_store_is_a_lost_update() {
        let findings = run(&[(
            "crates/core/src/gauge.rs",
            "pub struct Gauge { n: AtomicU64 }\n\
             impl Gauge {\n\
                 pub fn bump(&self) {\n\
                     let v = self.n.load(Ordering::Relaxed);\n\
                     self.n.store(v + 1, Ordering::Relaxed);\n\
                 }\n\
             }\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = findings.first().expect("finding");
        assert_eq!((f.rule, f.severity), ("A1", Severity::Deny));
        assert_eq!(f.line, 5, "anchored at the store");
        assert!(f.message.contains("fetch_*"), "{}", f.message);
    }

    #[test]
    fn relaxed_swap_and_bare_cas_deny_but_cas_loops_are_sanctioned() {
        let findings = run(&[(
            "crates/core/src/gauge.rs",
            "pub struct Gauge { n: AtomicU64 }\n\
             impl Gauge {\n\
                 pub fn reset(&self) -> u64 {\n\
                     self.n.swap(0, Ordering::Relaxed)\n\
                 }\n\
                 pub fn try_set(&self, v: u64) {\n\
                     self.n.compare_exchange(0, v, Ordering::Relaxed, Ordering::Relaxed).ok();\n\
                 }\n\
                 pub fn set_max(&self, v: u64) {\n\
                     let mut cur = self.n.load(Ordering::Relaxed);\n\
                     while cur < v {\n\
                         match self.n.compare_exchange(cur, v, Ordering::Relaxed, Ordering::Relaxed) {\n\
                             Ok(_) => return,\n\
                             Err(seen) => cur = seen,\n\
                         }\n\
                     }\n\
                 }\n\
             }\n",
        )]);
        let rules: Vec<(u32, bool)> = findings
            .iter()
            .map(|f| (f.line, f.message.contains("swap")))
            .collect();
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(rules.contains(&(4, true)), "swap denied: {findings:?}");
        assert!(
            findings
                .iter()
                .any(|f| f.line == 7 && f.message.contains("retry loop")),
            "bare CAS denied, looped CAS sanctioned: {findings:?}"
        );
    }

    #[test]
    fn mixed_orderings_on_one_field_deny_once() {
        let findings = run(&[(
            "crates/core/src/gauge.rs",
            "pub struct Gauge { n: AtomicU64 }\n\
             impl Gauge {\n\
                 pub fn bump(&self) { self.n.fetch_add(1, Ordering::Relaxed); }\n\
                 pub fn read(&self) -> u64 { self.n.load(Ordering::SeqCst) }\n\
             }\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = findings.first().expect("finding");
        assert!(
            f.message.contains("Relaxed") && f.message.contains("SeqCst"),
            "{}",
            f.message
        );
    }

    #[test]
    fn uniform_commutative_rmw_is_clean() {
        let findings = run(&[(
            "crates/core/src/gauge.rs",
            "pub struct Gauge { current: AtomicU64, peak: AtomicU64 }\n\
             impl Gauge {\n\
                 pub fn grow(&self, n: u64) {\n\
                     let now = self.current.fetch_add(n, Ordering::Relaxed) + n;\n\
                     self.peak.fetch_max(now, Ordering::Relaxed);\n\
                 }\n\
                 pub fn shrink(&self, n: u64) { self.current.fetch_sub(n, Ordering::Relaxed); }\n\
                 pub fn peak_bytes(&self) -> u64 { self.peak.load(Ordering::Relaxed) }\n\
             }\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn cas_failure_ordering_is_not_a_mix() {
        let findings = run(&[(
            "crates/core/src/gauge.rs",
            "pub struct Gauge { n: AtomicU64 }\n\
             impl Gauge {\n\
                 pub fn set_once(&self, v: u64) {\n\
                     loop {\n\
                         if self.n.compare_exchange(0, v, Ordering::Relaxed, Ordering::Acquire).is_ok() {\n\
                             return;\n\
                         }\n\
                     }\n\
                 }\n\
                 pub fn read(&self) -> u64 { self.n.load(Ordering::Relaxed) }\n\
             }\n",
        )]);
        assert!(
            findings.is_empty(),
            "failure ordering excluded: {findings:?}"
        );
    }
}
