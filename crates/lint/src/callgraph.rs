//! Cross-crate call graph with import-aware name resolution.
//!
//! Nodes are every fn in non-test library code across the workspace;
//! edges connect a call site to the workspace fn(s) it resolves to.
//! Resolution consults the file's `use` declarations instead of matching
//! bare names globally — `use std::fs::remove_file;` followed by
//! `remove_file(p)` resolves *external* and can no longer collide with a
//! same-named workspace fn (the bare-name false-positive class `E1`
//! carried an allowlist entry for).
//!
//! Resolution rules, in order:
//!
//! - `self.m(..)` → method `m` of the enclosing impl's self type, in the
//!   same crate. Method calls on any other receiver are **unresolved**
//!   (no type inference), a documented under-approximation.
//! - `f(..)` → a free fn `f` of the same crate; else the file's imports
//!   (workspace import wins, external import shadows the workspace);
//!   else workspace glob imports; else unresolved.
//! - `T::m(..)` / `path::T::m(..)` with `T` capitalized → associated fn
//!   `m` of type `T` in the crate the path or imports name (`Self::m`
//!   uses the enclosing impl). Not found → external.
//! - `path::f(..)` with a module path → free fn `f` in the crate the
//!   root names (`aipan_x::..` → `x`; `crate`/`self`/`super` → same
//!   crate; an imported module leaf → its crate; otherwise the same
//!   crate if it defines `f`, else external).
//!
//! Module segments inside a crate are not checked (the free-fn index is
//! keyed by crate + name), so two same-named free fns in one crate both
//! resolve — callers get edges to all candidates, which over-approximates
//! reachability (safe for `X1`) and over-approximates fallibility (safe
//! for `E1`).

use crate::graph::Workspace;
use crate::parser::{CallSite, FnInfo, Item, ItemKind};
use std::collections::BTreeMap;

/// One fn node in the call graph.
#[derive(Debug)]
pub struct FnNode<'a> {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Short crate name of the defining file.
    pub crate_name: &'a str,
    /// Self type of the enclosing impl, when the fn is a method or
    /// associated fn.
    pub self_ty: Option<&'a str>,
    /// Fn name.
    pub name: &'a str,
    /// Whether the item is plain `pub`.
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Parsed body facts.
    pub info: &'a FnInfo,
}

/// A resolved call edge `caller → callee`.
#[derive(Debug, Clone, Copy)]
pub struct CallEdge {
    /// Callee fn id.
    pub to: usize,
    /// 1-based line of the call site.
    pub line: u32,
    /// 1-based column of the call site.
    pub col: u32,
}

/// What a call site resolves to.
#[derive(Debug, Clone, PartialEq)]
pub enum Resolution {
    /// Workspace fn candidates (usually one; several on intra-crate name
    /// reuse).
    Fns(Vec<usize>),
    /// Definitely not a workspace fn (external import, foreign path).
    External,
    /// Cannot tell (method on a non-`self` receiver, bare name with no
    /// local definition or import).
    Unknown,
}

/// Where an imported leaf name comes from.
#[derive(Debug, Clone, PartialEq)]
enum Origin {
    /// A workspace crate (short name).
    Ws(String),
    /// Anything else (`std`, vendored deps, ...).
    Ext,
}

#[derive(Debug, Default)]
struct FileImports {
    /// Leaf name → origin crate.
    leaves: BTreeMap<String, Origin>,
    /// Workspace crates glob-imported (`use aipan_x::module::*`).
    glob_crates: Vec<String>,
}

/// The workspace call graph. Fn ids index [`CallGraph::fns`] and
/// [`CallGraph::edges`].
#[derive(Debug)]
pub struct CallGraph<'a> {
    /// All library-code fns, in file-then-source order.
    pub fns: Vec<FnNode<'a>>,
    /// Resolved workspace call edges per fn (parallel to `fns`).
    pub edges: Vec<Vec<CallEdge>>,
    free: BTreeMap<(&'a str, &'a str), Vec<usize>>,
    methods: BTreeMap<(&'a str, &'a str, &'a str), Vec<usize>>,
    imports: Vec<FileImports>,
    file_crates: Vec<&'a str>,
}

impl<'a> CallGraph<'a> {
    /// Build the graph over an analyzed workspace.
    pub fn build(ws: &'a Workspace) -> CallGraph<'a> {
        let mut fns: Vec<FnNode<'a>> = Vec::new();
        let mut imports: Vec<FileImports> = Vec::new();
        let mut file_crates: Vec<&'a str> = Vec::new();
        for (file_idx, file) in ws.files.iter().enumerate() {
            let mut fi = FileImports::default();
            collect_imports(&file.parsed.items, &file.crate_name, &mut fi);
            imports.push(fi);
            file_crates.push(&file.crate_name);
            if !file.class.is_library_code() {
                continue;
            }
            collect_fns(
                &file.parsed.items,
                file_idx,
                &file.crate_name,
                None,
                &mut fns,
            );
        }
        let mut free: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut methods: BTreeMap<(&str, &str, &str), Vec<usize>> = BTreeMap::new();
        for (id, f) in fns.iter().enumerate() {
            match f.self_ty {
                Some(ty) => methods
                    .entry((f.crate_name, ty, f.name))
                    .or_default()
                    .push(id),
                None => free.entry((f.crate_name, f.name)).or_default().push(id),
            }
        }
        let mut graph = CallGraph {
            fns,
            edges: Vec::new(),
            free,
            methods,
            imports,
            file_crates,
        };
        let mut edges: Vec<Vec<CallEdge>> = Vec::with_capacity(graph.fns.len());
        for f in &graph.fns {
            let mut out = Vec::new();
            for call in &f.info.calls {
                if let Resolution::Fns(ids) = graph.resolve(f.file, f.self_ty, call) {
                    for to in ids {
                        out.push(CallEdge {
                            to,
                            line: call.line,
                            col: call.col,
                        });
                    }
                }
            }
            edges.push(out);
        }
        graph.edges = edges;
        graph
    }

    /// Resolve one call site occurring in `file` (with `self_ty` the
    /// enclosing impl's type, if any).
    pub fn resolve(&self, file: usize, self_ty: Option<&str>, call: &CallSite) -> Resolution {
        let crate_name = self.file_crates.get(file).copied().unwrap_or("");
        self.resolve_in(crate_name, self_ty, call, file)
    }

    fn resolve_in(
        &self,
        crate_name: &str,
        self_ty: Option<&str>,
        call: &CallSite,
        file: usize,
    ) -> Resolution {
        if call.is_method {
            // Only `self.m()` resolves; other receivers need inference.
            if call.recv.first().map(String::as_str) == Some("self") && call.recv.len() == 1 {
                if let Some(ty) = self_ty {
                    if let Some(ids) = self.methods.get(&(crate_name, ty, call.name.as_str())) {
                        return Resolution::Fns(ids.clone());
                    }
                }
            }
            return Resolution::Unknown;
        }
        let path = &call.path;
        if path.len() <= 1 {
            return self.resolve_bare(crate_name, file, &call.name);
        }
        let penult = path
            .get(path.len().wrapping_sub(2))
            .map(String::as_str)
            .unwrap_or("");
        if penult == "Self" {
            if let Some(ty) = self_ty {
                if let Some(ids) = self.methods.get(&(crate_name, ty, call.name.as_str())) {
                    return Resolution::Fns(ids.clone());
                }
            }
            return Resolution::External;
        }
        if penult
            .bytes()
            .next()
            .is_some_and(|b| b.is_ascii_uppercase())
        {
            // Associated fn: `T::m` / `path::T::m`.
            let ty_crate = if path.len() >= 3 {
                self.root_crate(crate_name, file, path.first().map(String::as_str))
            } else {
                match self.imports.get(file).and_then(|fi| fi.leaves.get(penult)) {
                    Some(Origin::Ws(c)) => Some(c.clone()),
                    Some(Origin::Ext) => None,
                    None => Some(crate_name.to_string()),
                }
            };
            if let Some(tc) = ty_crate {
                if let Some(ids) = self.methods.get(&(tc.as_str(), penult, call.name.as_str())) {
                    return Resolution::Fns(ids.clone());
                }
            }
            return Resolution::External;
        }
        // Module path to a free fn.
        let root = path.first().map(String::as_str);
        match self.root_crate(crate_name, file, root) {
            Some(rc) => match self.free.get(&(rc.as_str(), call.name.as_str())) {
                Some(ids) => Resolution::Fns(ids.clone()),
                None => Resolution::External,
            },
            None => Resolution::External,
        }
    }

    /// Crate a path root names: `aipan_x` → `x`, `crate`/`self`/`super` →
    /// the current crate, an imported module leaf → its origin crate, a
    /// sibling module (current crate defines the target name) → the
    /// current crate; `None` for external roots.
    fn root_crate(&self, crate_name: &str, file: usize, root: Option<&str>) -> Option<String> {
        let root = root?;
        if let Some(short) = root.strip_prefix("aipan_") {
            return Some(short.to_string());
        }
        if matches!(root, "crate" | "self" | "super") {
            return Some(crate_name.to_string());
        }
        match self.imports.get(file).and_then(|fi| fi.leaves.get(root)) {
            Some(Origin::Ws(c)) => Some(c.clone()),
            Some(Origin::Ext) => None,
            // Unimported lowercase root: a sibling module of this crate.
            None => Some(crate_name.to_string()),
        }
    }

    fn resolve_bare(&self, crate_name: &str, file: usize, name: &str) -> Resolution {
        if let Some(ids) = self.free.get(&(crate_name, name)) {
            return Resolution::Fns(ids.clone());
        }
        match self.imports.get(file).and_then(|fi| fi.leaves.get(name)) {
            Some(Origin::Ws(c)) => match self.free.get(&(c.as_str(), name)) {
                Some(ids) => Resolution::Fns(ids.clone()),
                None => Resolution::External,
            },
            Some(Origin::Ext) => Resolution::External,
            None => {
                let mut ids = Vec::new();
                if let Some(fi) = self.imports.get(file) {
                    for c in &fi.glob_crates {
                        if let Some(more) = self.free.get(&(c.as_str(), name)) {
                            ids.extend(more.iter().copied());
                        }
                    }
                }
                if ids.is_empty() {
                    Resolution::Unknown
                } else {
                    Resolution::Fns(ids)
                }
            }
        }
    }
}

/// Record every `use` leaf of a file's item tree into `fi`.
fn collect_imports(items: &[Item], crate_name: &str, fi: &mut FileImports) {
    for item in items {
        if let ItemKind::Use { paths } = &item.kind {
            for path in paths {
                let origin = match path.first().map(String::as_str) {
                    Some(root) => {
                        if let Some(short) = root.strip_prefix("aipan_") {
                            Origin::Ws(short.to_string())
                        } else if matches!(root, "crate" | "self" | "super") {
                            Origin::Ws(crate_name.to_string())
                        } else {
                            Origin::Ext
                        }
                    }
                    None => continue,
                };
                match path.last().map(String::as_str) {
                    Some("*") => {
                        if let Origin::Ws(c) = origin {
                            fi.glob_crates.push(c);
                        }
                    }
                    Some(leaf) => {
                        fi.leaves.insert(leaf.to_string(), origin);
                    }
                    None => {}
                }
            }
        }
        collect_imports(&item.children, crate_name, fi);
    }
}

/// Collect fn nodes, tracking the enclosing impl's self type.
fn collect_fns<'a>(
    items: &'a [Item],
    file: usize,
    crate_name: &'a str,
    self_ty: Option<&'a str>,
    out: &mut Vec<FnNode<'a>>,
) {
    for item in items {
        if item.cfg_test {
            continue;
        }
        match &item.kind {
            ItemKind::Fn(info) => out.push(FnNode {
                file,
                crate_name,
                self_ty,
                name: &item.name,
                is_pub: item.is_pub,
                line: item.line,
                col: item.col,
                info,
            }),
            ItemKind::Impl { self_ty: ty, .. } => {
                collect_fns(&item.children, file, crate_name, Some(ty.as_str()), out);
            }
            _ => collect_fns(&item.children, file, crate_name, self_ty, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        Workspace::build(&owned)
    }

    fn fn_id<'a>(g: &CallGraph<'a>, name: &str) -> usize {
        g.fns
            .iter()
            .position(|f| f.name == name)
            .unwrap_or_else(|| panic!("fn {name} not in graph"))
    }

    fn callees<'a>(g: &'a CallGraph<'a>, name: &str) -> Vec<&'a str> {
        let id = fn_id(g, name);
        g.edges
            .get(id)
            .map(|es| {
                es.iter()
                    .filter_map(|e| g.fns.get(e.to).map(|f| f.name))
                    .collect()
            })
            .unwrap_or_default()
    }

    #[test]
    fn imported_workspace_fn_resolves_cross_crate() {
        let w = ws(&[
            (
                "crates/net/src/url.rs",
                "pub fn parse(s: &str) -> Result<Url, E> { build(s) }\nfn build(s: &str) -> Result<Url, E> { Err(E) }\n",
            ),
            (
                "crates/core/src/lib.rs",
                "use aipan_net::url::parse;\npub fn f(s: &str) { let _ = parse(s); }\n",
            ),
        ]);
        let g = CallGraph::build(&w);
        assert_eq!(callees(&g, "f"), vec!["parse"]);
        assert_eq!(callees(&g, "parse"), vec!["build"]);
    }

    #[test]
    fn external_import_shadows_nothing_and_stays_external() {
        let w = ws(&[
            (
                "crates/net/src/fsops.rs",
                "pub fn remove_file(p: &str) -> Result<(), E> { Err(E) }\n",
            ),
            (
                "crates/core/src/lib.rs",
                "use std::fs::remove_file;\npub fn f(p: &str) { let _ = remove_file(p); }\n",
            ),
        ]);
        let g = CallGraph::build(&w);
        assert!(callees(&g, "f").is_empty(), "{:?}", callees(&g, "f"));
        let id = fn_id(&g, "f");
        let node = &g.fns[id];
        let call = &node.info.calls[0];
        assert_eq!(
            g.resolve(node.file, node.self_ty, call),
            Resolution::External
        );
    }

    #[test]
    fn unimported_bare_name_is_unknown() {
        let w = ws(&[
            (
                "crates/net/src/url.rs",
                "pub fn parse(s: &str) -> Result<Url, E> { Err(E) }\n",
            ),
            (
                "crates/core/src/lib.rs",
                "pub fn f(s: &str) { let _ = parse(s); }\n",
            ),
        ]);
        let g = CallGraph::build(&w);
        assert!(callees(&g, "f").is_empty());
        let id = fn_id(&g, "f");
        let node = &g.fns[id];
        assert_eq!(
            g.resolve(node.file, node.self_ty, &node.info.calls[0]),
            Resolution::Unknown
        );
    }

    #[test]
    fn self_methods_and_assoc_fns_resolve() {
        let w = ws(&[(
            "crates/x/src/lib.rs",
            "pub struct Pool { n: u32 }\n\
             impl Pool {\n\
                 pub fn new() -> Pool { Self::with(4) }\n\
                 pub fn with(n: u32) -> Pool { Pool { n } }\n\
                 pub fn run(&self) { self.step(); }\n\
                 fn step(&self) {}\n\
             }\n",
        )]);
        let g = CallGraph::build(&w);
        assert_eq!(callees(&g, "new"), vec!["with"]);
        assert_eq!(callees(&g, "run"), vec!["step"]);
    }

    #[test]
    fn method_on_non_self_receiver_is_unresolved() {
        let w = ws(&[(
            "crates/x/src/lib.rs",
            "pub fn f(handle: Handle) { handle.join(); }\npub struct T;\nimpl T { pub fn join(&self) {} }\n",
        )]);
        let g = CallGraph::build(&w);
        assert!(callees(&g, "f").is_empty());
        let id = fn_id(&g, "f");
        let node = &g.fns[id];
        assert_eq!(
            g.resolve(node.file, node.self_ty, &node.info.calls[0]),
            Resolution::Unknown
        );
    }

    #[test]
    fn typed_path_resolves_via_import() {
        let w = ws(&[
            (
                "crates/net/src/lib.rs",
                "pub struct Url;\nimpl Url { pub fn parse(s: &str) -> Result<Url, E> { Err(E) } }\n",
            ),
            (
                "crates/core/src/lib.rs",
                "use aipan_net::Url;\npub fn f(s: &str) { let _ = Url::parse(s); }\n",
            ),
        ]);
        let g = CallGraph::build(&w);
        assert_eq!(callees(&g, "f"), vec!["parse"]);
    }

    #[test]
    fn test_targets_are_not_graph_nodes() {
        let w = ws(&[
            ("crates/x/src/lib.rs", "pub fn real() {}\n"),
            ("crates/x/tests/t.rs", "fn helper() {}\n"),
        ]);
        let g = CallGraph::build(&w);
        let names: Vec<&str> = g.fns.iter().map(|f| f.name).collect();
        assert_eq!(names, vec!["real"]);
    }
}
