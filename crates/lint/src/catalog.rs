//! The embedded rule catalog behind `cargo lint --explain <RULE>`.
//!
//! One [`RuleDoc`] per rule id, compiled into the binary so the
//! explanation a developer reads is the one the running lint actually
//! enforces (no doc/version skew). [`explain`] renders a single entry;
//! the `--explain` flag in `main.rs` is the only consumer besides tests.

use crate::findings::Severity;

/// Catalog entry for one rule: what it fires on, why it exists, and a
/// minimal example of a violation.
#[derive(Debug, Clone, Copy)]
pub struct RuleDoc {
    /// Rule id as it appears in findings (`"X1"`).
    pub id: &'static str,
    /// Severity the rule reports at.
    pub severity: Severity,
    /// One-line description of what the rule catches.
    pub summary: &'static str,
    /// Why the rule exists, in terms of the pipeline's guarantees.
    pub rationale: &'static str,
    /// A minimal violating snippet (or data shape, for `T*`/`A0`).
    pub example: &'static str,
}

/// Every rule the lint enforces, in catalog order (token rules, graph
/// rules, dataflow rules, data invariants, bookkeeping).
pub const RULES: &[RuleDoc] = &[
    RuleDoc {
        id: "D1",
        severity: Severity::Deny,
        summary: "wall-clock or entropy source outside crates/bench",
        rationale: "Every pipeline stage must be replayable byte-for-byte from its seed. \
                    `SystemTime::now`, `Instant::now`, `thread_rng`, and `from_entropy` \
                    smuggle ambient state into output that is diffed against golden files.",
        example: "let started = std::time::Instant::now(); // D1: time-dependent",
    },
    RuleDoc {
        id: "D2",
        severity: Severity::Warn,
        summary: "HashMap/HashSet iteration in a file that writes ordered output",
        rationale: "Hash iteration order varies per process (SipHash keys are randomized), \
                    so any report or serialization fed from it differs run to run. \
                    Iterate a BTree collection or sort first.",
        example: "for (k, v) in &counts { writeln!(out, \"{k}: {v}\")?; } // counts: HashMap",
    },
    RuleDoc {
        id: "R1",
        severity: Severity::Deny,
        summary: ".unwrap() / .expect(..) / panic! in library code",
        rationale: "A panic in a library path aborts the whole crawl-annotate-analyze run; \
                    every fallible step must surface a Result the pipeline can record and \
                    route around. Tests and benches are exempt.",
        example: "let url = parse(input).unwrap(); // R1: return the error instead",
    },
    RuleDoc {
        id: "O1",
        severity: Severity::Warn,
        summary: "println!/eprintln! in library code",
        rationale: "Library stages return or write their output through the report layer; \
                    stray prints interleave with real output and break golden-file diffs.",
        example: "println!(\"processed {n} domains\"); // O1: use the report writer",
    },
    RuleDoc {
        id: "H1",
        severity: Severity::Warn,
        summary: "to-do marker without an issue tag",
        rationale: "Untracked to-dos rot. A marker must carry a `TODO(#NNN)`-style tag so \
                    the backlog stays enumerable from the source tree.",
        example: "// TODO: handle the German pages   (H1: needs TODO(#123))",
    },
    RuleDoc {
        id: "B1",
        severity: Severity::Warn,
        summary: "fetch/complete call inside a loop/while with no visible retry bound",
        rationale: "An unbounded retry loop around a transport or chatbot call turns one \
                    slow host into a hung pipeline. Every such loop must show its cap — an \
                    attempt counter, a tries/budget variable, or a bounded `for` — or \
                    delegate to the RetryPolicy/FetchSession layer, which owns backoff, \
                    budgets, and the circuit breaker.",
        example: "loop {\n    if let Ok(p) = client.fetch_page(url) { return p; }\n} // B1: no attempt cap",
    },
    RuleDoc {
        id: "L1",
        severity: Severity::Deny,
        summary: "cross-crate reference the lint.toml layering contract does not grant",
        rationale: "The workspace layers (taxonomy -> core -> analysis, ...) keep the \
                    reproduction auditable; an undeclared edge is either a design change \
                    (update lint.toml) or an accident (remove the reference).",
        example: "use aipan_analysis::stats; // L1: webgen may not depend on analysis",
    },
    RuleDoc {
        id: "E1",
        severity: Severity::Warn,
        summary: "Result from a fallible workspace fn discarded",
        rationale: "An error silently dropped between verification layers turns a measured \
                    number into a guess. Calls are resolved through the import-aware call \
                    graph, so only genuinely fallible workspace callees count.",
        example: "let _ = crawl_domain(&cfg); // E1: the crawl error vanishes",
    },
    RuleDoc {
        id: "K1",
        severity: Severity::Deny,
        summary: "inconsistent lock-acquisition order across the workspace",
        rationale: "Lock-order inversion deadlocks are invisible per-file: each fn looks \
                    correct and only the global acquisition graph shows the cycle.",
        example: "fn a() { let _s = self.stats.lock(); let _q = self.queue.lock(); }\n\
                  fn b() { let _q = self.queue.lock(); let _s = self.stats.lock(); } // K1",
    },
    RuleDoc {
        id: "P1",
        severity: Severity::Warn,
        summary: "pub item no other workspace file mentions",
        rationale: "Dead public surface accumulates silently because rustc only warns on \
                    dead *private* items. Either a caller is coming (add it) or the item \
                    should be private or deleted.",
        example: "pub fn legacy_export(&self) -> String { .. } // P1: nothing calls it",
    },
    RuleDoc {
        id: "X1",
        severity: Severity::Deny,
        summary: "pub library fn from which a panic is reachable",
        rationale: "A transitively reachable panic is invisible at the call site. Seeds \
                    (unproven indexing, possibly-zero integer divisors, unwrap/expect, \
                    panic-family macros) propagate backward over the call graph; an \
                    intraprocedural bounds dataflow discharges indexes proved in range, \
                    and float arithmetic is exempt (it yields inf/NaN, not a panic).",
        example: "pub fn get(xs: &[u32], i: usize) -> u32 { xs[i] } // X1: use xs.get(i)",
    },
    RuleDoc {
        id: "D3",
        severity: Severity::Deny,
        summary: "hash-order value reaches an output sink through bindings",
        rationale: "D2 catches `map.iter()` feeding `writeln!` in one expression; D3 tracks \
                    the same hazard through `let` chains with a may-dataflow over the fn's \
                    CFG. Taint dies at a sort or a BTree collect; it must not reach \
                    write/serde sinks or a returned collection.",
        example: "let ks: Vec<_> = map.keys().collect();\n\
                  for k in ks { writeln!(out, \"{k}\")?; } // D3: sort ks first",
    },
    RuleDoc {
        id: "H2",
        severity: Severity::Warn,
        summary: "growable collection built element-by-element inside a hot loop",
        rationale: "The interprocedural cost model marks every fn reachable from a \
                    pipeline entry (run_pipeline*, crawl_all*, the annotate surface) as \
                    hot. A `Vec::new()`/`String::new()` grown one `push` at a time inside \
                    a loop there reallocates O(log n) times per iteration set; each \
                    finding carries the entry->fn witness path. Pre-size with \
                    `with_capacity` or build outside the loop.",
        example: "let mut out = Vec::new();\nfor d in domains {\n    out.push(annotate(d)); // H2: Vec::new grown in a hot loop\n}",
    },
    RuleDoc {
        id: "C2",
        severity: Severity::Warn,
        summary: "clone of a loop-invariant value re-done every iteration",
        rationale: "A `.clone()`/`.to_string()`/`.to_owned()`/`.to_vec()` whose source is \
                    proven unmodified inside the loop (by a may-modified dataflow over \
                    the fn's CFG) allocates the same bytes once per iteration. Hoist the \
                    clone above the loop; where the rewrite is provably safe the finding \
                    carries a machine-applicable fix.",
        example: "for row in rows {\n    let hdr = header.clone(); // C2: header never changes in the loop\n    emit(&hdr, row);\n}",
    },
    RuleDoc {
        id: "M1",
        severity: Severity::Deny,
        summary: "lock guard held across an expensive call",
        rationale: "A guard live across a fetch/complete/annotate-family call — or any \
                    callee the cost model prices above the hot threshold — serializes the \
                    whole worker pool on one slow host. Guard liveness is tracked by a \
                    forward dataflow over the fn's CFG, honoring drops, rebinding, and \
                    lexical scope ends. Copy what you need out of the guard, drop it, \
                    then call.",
        example: "let jobs = self.queue.lock()?;\nlet page = client.fetch_page(&jobs[0])?; // M1: lock held across fetch",
    },
    RuleDoc {
        id: "M2",
        severity: Severity::Warn,
        summary: "lock guard acquired outside a loop but only used inside it",
        rationale: "A guard bound before a loop whose every use sits inside the loop body \
                    pins the lock for the full iteration when per-iteration acquisition \
                    would do. Either move the acquisition into the loop or document the \
                    batch-hold by touching the guard outside it.",
        example: "let stats = self.stats.lock()?;\nfor d in domains {\n    stats.record(d); // M2: guard only ever used inside the loop\n}",
    },
    RuleDoc {
        id: "S1",
        severity: Severity::Warn,
        summary: "corpus-scale accumulator escapes a hot fn whose sole consumer iterates it once",
        rationale: "A collection grown across the whole corpus inside a hot fn, returned to \
                    exactly one caller that only ever walks it front to back, retains the \
                    entire corpus in memory for no reason: the producer could yield items \
                    as they are built (an iterator, a callback, a channel) and peak \
                    residency drops from O(corpus) to O(1). Each finding carries the \
                    entry->fn witness path from the cost model.",
        example: "fn load_all(&self) -> Vec<Page> {\n    let mut pages = Vec::new();\n    for d in &self.domains { pages.push(self.fetch(d)); }\n    pages // S1: only caller is `for p in load_all()` — stream instead\n}",
    },
    RuleDoc {
        id: "S2",
        severity: Severity::Warn,
        summary: "collection grown in a loop with no bound derived from a sized input",
        rationale: "A `while`/`loop` (or an open-range `for`) that keeps pushing into a \
                    collection without a visible cap — a `len`/`limit`/`budget`-style \
                    bound in the condition, a guarded break, or a draining iteration — \
                    grows without limit when the input misbehaves; on a hot path that is \
                    an OOM seeded by one pathological domain. Make the bound explicit.",
        example: "let mut seen = Vec::new();\nwhile let Some(url) = frontier.pop() {\n    seen.push(url);\n    frontier.extend(discover(&seen)); // S2: frontier re-fed, no bound\n}",
    },
    RuleDoc {
        id: "W1",
        severity: Severity::Deny,
        summary: "worker-reachable mutable state accessed outside any lock region",
        rationale: "A closure spawned per worker iteration that mutates a captured place \
                    shared across iterations (not rebound per worker, not a \
                    lock/atomic/channel operation) is a data race the borrow checker only \
                    rules out for `std::thread`; for pool abstractions and unsafe \
                    adapters it is the analysis's job. Move the state behind a lock or \
                    give each worker its own clone.",
        example: "let mut tally = BTreeMap::new();\nfor w in 0..workers {\n    pool.spawn(move || tally.insert(w, crawl(w))); // W1: unsynchronized shared write\n}",
    },
    RuleDoc {
        id: "W2",
        severity: Severity::Warn,
        summary: "lock acquired inside a corpus-scale hot loop with non-trivial held cost",
        rationale: "Acquiring a lock once per corpus element and holding it across \
                    allocating work serializes the worker pool exactly where the pipeline \
                    fans out. The held-cost estimate scales with loop depth on the hot \
                    path; `cargo lint --contention` ranks every lock by the same score so \
                    the worst contention point is the first streaming-refactor candidate.",
        example: "for page in &corpus {\n    let mut ledger = self.usage.lock()?; // W2: per-page acquire\n    ledger.record(expensive_breakdown(page));\n}",
    },
    RuleDoc {
        id: "N1",
        severity: Severity::Deny,
        summary: "lossy `as` cast on a corpus-scale quantity",
        rationale: "A page or byte count that fits `u32` on the paper's 56-domain corpus \
                    silently wraps at the 10-100x scale the pipeline targets, and `as` \
                    hides the truncation. The rule fires only when local type inference \
                    proves the operand's type AND its corpus-scale provenance \
                    (`.len()`/`.count()` results, counter-family names); provably \
                    lossless widenings with an exact std `From` impl are reported at \
                    Warn with a machine-applicable `Dst::from(..)` rewrite instead.",
        example: "let pages = corpus.len();\nreport.total = pages as u32; // N1: wraps past 4Gi pages",
    },
    RuleDoc {
        id: "N2",
        severity: Severity::Warn,
        summary: "unchecked compound arithmetic on a corpus-scale counter in a hot fn",
        rationale: "Debug builds panic on overflow and release builds wrap silently, so a \
                    serialized counter that overflows corrupts every downstream report \
                    without an error. On hot-path counters of provable integer type the \
                    overflow policy must be visible at the site: `saturating_add` / \
                    `checked_add`, not bare `+=`.",
        example: "fn absorb(&mut self, other: &Funnel) {\n    self.pages_total += other.pages_total; // N2: use saturating_add\n}",
    },
    RuleDoc {
        id: "A1",
        severity: Severity::Deny,
        summary: "non-commutative or inconsistent atomic access pattern",
        rationale: "The streaming pipeline's lock-free counters are correct only while \
                    every concurrent update is a single commutative RMW (`fetch_add`, \
                    `fetch_max`, or a CAS retry loop): with relaxed ordering and racing \
                    workers, anything else makes the final value depend on interleaving. \
                    The rule denies load-then-store update splits (lost updates), bare \
                    `swap`/`compare_exchange` under `Relaxed` outside a retry loop, and \
                    mixed memory orderings on one field workspace-wide.",
        example: "let v = self.peak.load(Ordering::Relaxed);\nself.peak.store(v.max(n), Ordering::Relaxed); // A1: use fetch_max",
    },
    RuleDoc {
        id: "F1",
        severity: Severity::Warn,
        summary: "filesystem I/O inside a corpus-scale hot loop outside the journal/shard layer",
        rationale: "PR 8 confined durable writes to the sharded journal so the per-domain \
                    hot loop performs bounded syscalls. A direct `fs::*` call — or a call \
                    into any fn whose inferred effect set includes unsanctioned \
                    filesystem I/O — inside a hot loop reintroduces an open/write per \
                    corpus element. Findings carry the cost model's entry->fn witness \
                    chain; effects originating in `journal.rs`/`shard.rs` are sanctioned.",
        example: "for d in domains {\n    std::fs::write(out.join(d), render(d))?; // F1: route through the journal\n}",
    },
    RuleDoc {
        id: "T1",
        severity: Severity::Deny,
        summary: "taxonomy normalization closure broken",
        rationale: "Every surface form must fold to a key owned by exactly one canonical \
                    descriptor, and canonical names must resolve to themselves; otherwise \
                    annotation counts drift between runs of the same corpus.",
        example: "(\"email address\" folds to a key claimed by two descriptors) // T1",
    },
    RuleDoc {
        id: "T2",
        severity: Severity::Deny,
        summary: "duplicate canonical name across vocabularies",
        rationale: "Datatype, purpose, rights, and handling tables share one reporting \
                    namespace; a duplicated canonical name makes table rows ambiguous.",
        example: "(\"Account Data\" appears in both datatype and purpose tables) // T2",
    },
    RuleDoc {
        id: "T3",
        severity: Severity::Deny,
        summary: "paper aspect coverage broken",
        rationale: "The reproduction tracks the paper's nine aspects; a missing aspect or a \
                    key that does not round-trip through Aspect::from_key silently drops a \
                    whole results column.",
        example: "(aspect key \"retention\" missing from the table) // T3",
    },
    RuleDoc {
        id: "A0",
        severity: Severity::Warn,
        summary: "allowlist entry that no longer matches any finding",
        rationale: "lint.allow entries are vetted exceptions; one that stops matching is \
                    dead weight that hides typos and keeps false confidence alive.",
        example: "[[allow]]\nrule = \"R1\"\nfile = \"crates/net/src/url.rs\" # A0: fixed long ago",
    },
];

/// Look up a rule by id, case-insensitively.
pub fn find(id: &str) -> Option<&'static RuleDoc> {
    RULES.iter().find(|r| r.id.eq_ignore_ascii_case(id))
}

/// Render one catalog entry for `--explain`, or a pointer at the valid
/// ids when the rule is unknown.
pub fn explain(id: &str) -> Result<String, String> {
    match find(id) {
        Some(rule) => {
            let mut out = String::new();
            out.push_str(&format!(
                "{} ({})\n  {}\n\nWhy:\n  {}\n\nExample:\n",
                rule.id,
                rule.severity.name(),
                rule.summary,
                rule.rationale
            ));
            for line in rule.example.lines() {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
            Ok(out)
        }
        None => {
            let ids: Vec<&str> = RULES.iter().map(|r| r.id).collect();
            Err(format!(
                "unknown rule `{id}` (known rules: {})",
                ids.join(", ")
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_emitted_rule_id_is_documented() {
        // The ids the passes actually emit, kept in sync by hand; a new
        // rule without a catalog entry fails here.
        let emitted = [
            "D1", "D2", "R1", "O1", "H1", "B1", "L1", "E1", "K1", "P1", "X1", "D3", "H2", "C2",
            "M1", "M2", "S1", "S2", "W1", "W2", "N1", "N2", "A1", "F1", "T1", "T2", "T3", "A0",
        ];
        for id in emitted {
            assert!(find(id).is_some(), "rule {id} missing from catalog");
        }
        assert_eq!(
            RULES.len(),
            emitted.len(),
            "catalog has undocumented extras"
        );
    }

    #[test]
    fn ids_are_unique_and_lookup_is_case_insensitive() {
        let mut ids: Vec<&str> = RULES.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), RULES.len());
        assert_eq!(find("x1").map(|r| r.id), Some("X1"));
    }

    #[test]
    fn explain_renders_id_severity_and_example() {
        let text = explain("X1").expect("X1 is documented");
        assert!(text.starts_with("X1 (deny)"), "{text}");
        assert!(text.contains("Why:"), "{text}");
        assert!(text.contains("Example:"), "{text}");
        assert!(text.contains("xs.get(i)"), "{text}");
    }

    #[test]
    fn unknown_rule_lists_valid_ids() {
        let err = explain("Z9").expect_err("Z9 is not a rule");
        assert!(err.contains("Z9"), "{err}");
        assert!(err.contains("X1") && err.contains("D3"), "{err}");
    }
}
