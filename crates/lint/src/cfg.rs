//! Per-fn control-flow graphs over the [`crate::expr`] AST.
//!
//! Each fn body lowers into basic blocks of [`Step`]s connected by
//! [`Edge`]s: straight-line statements accumulate in one node, and every
//! control construct (`if`/`if let`, `while`/`while let`, `for`, `loop`,
//! `match`, `return`/`break`/`continue`, `let .. else`) splits the graph
//! with labeled `True`/`False` branch edges so a dataflow pass
//! ([`crate::dataflow`]) can apply *edge transfer functions* — the `X1`
//! bounds analysis learns `i < xs.len()` exactly on the `True` edge out
//! of that comparison.
//!
//! Control-flow expressions nested inside larger expressions (a `match`
//! in a `let` initializer, an `if` inside a call argument) are *hoisted*:
//! lowered as diamonds immediately before the step that consumes their
//! value. Rule walkers therefore never descend into control-flow
//! subexpressions (see [`crate::expr::Expr::is_control`]) — each one is
//! already represented structurally in the graph.
//!
//! Documented approximations: closure bodies are lowered inline at the
//! closure's creation point (as if called exactly once, immediately);
//! the `?` operator's early-return path is not modeled; a failed guard
//! edge goes to the match join rather than the next arm. All three only
//! ever *merge more paths* than really execute, which is the
//! conservative direction for both must- and may-analyses.
//!
//! Invariants (proptested in `tests/cfg_props.rs`): node 0 is the unique
//! entry and never the target of an edge; every node is reachable from
//! the entry; every statement of the body is covered by at least one
//! step.

use crate::expr::{for_each_child, Expr, ExprKind, Pat, Stmt};

/// One atomic unit of work inside a CFG node.
#[derive(Debug, Clone, Copy)]
pub enum Step<'a> {
    /// Evaluate an expression for effect or value.
    Eval(&'a Expr),
    /// `let pat: ty = init;` — bind (or rebind) the pattern's names.
    Bind {
        /// Bound pattern.
        pat: &'a Pat,
        /// Declared type tokens (empty when inferred).
        ty: &'a [String],
        /// Initializer, when present (already hoisted if control flow).
        init: Option<&'a Expr>,
        /// 1-based line of the `let`.
        line: u32,
        /// 1-based column of the `let`.
        col: u32,
    },
    /// Pattern bind from a scrutinee (`if let` / `while let` / match arm).
    PatBind {
        /// Bound pattern.
        pat: &'a Pat,
        /// The matched value.
        from: &'a Expr,
    },
    /// A branch condition; the node's outgoing `True`/`False` edges
    /// refine facts against it.
    Cond(&'a Expr),
    /// A `for` loop head; `True` edges enter the body with `pat` bound
    /// from `iter`'s items, `False` edges leave the loop.
    ForHead {
        /// Loop binding.
        pat: &'a Pat,
        /// Iterated expression (evaluated before the loop).
        iter: &'a Expr,
    },
}

impl<'a> Step<'a> {
    /// Source position of the step (1-based line, column).
    pub fn pos(&self) -> (u32, u32) {
        match self {
            Step::Eval(e) | Step::Cond(e) => (e.line, e.col),
            Step::Bind { line, col, .. } => (*line, *col),
            Step::PatBind { from, .. } => (from.line, from.col),
            Step::ForHead { iter, .. } => (iter.line, iter.col),
        }
    }
}

/// Edge labels: `Seq` for unconditional flow, `True`/`False` for the two
/// sides of a branch node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edge {
    /// Unconditional successor.
    Seq,
    /// Branch taken (condition held / pattern matched / iterator yielded).
    True,
    /// Branch not taken.
    False,
}

/// One basic block.
#[derive(Debug, Default)]
pub struct Node<'a> {
    /// Steps executed in order.
    pub steps: Vec<Step<'a>>,
    /// Successor edges `(target node id, label)`.
    pub succs: Vec<(usize, Edge)>,
}

/// A per-fn control-flow graph. Node 0 is the entry; `exit` collects all
/// normal and early returns.
#[derive(Debug)]
pub struct Cfg<'a> {
    /// Basic blocks; index = node id.
    pub nodes: Vec<Node<'a>>,
    /// Exit node id (no steps, no successors).
    pub exit: usize,
}

impl<'a> Cfg<'a> {
    /// Build the CFG for one fn body.
    pub fn build(body: &'a [Stmt]) -> Cfg<'a> {
        let mut b = Builder {
            nodes: vec![Node::default(), Node::default()],
            loops: Vec::new(),
        };
        let end = b.lower_block(body, 0);
        if let Some(end) = end {
            b.edge(end, EXIT, Edge::Seq);
        }
        b.finish()
    }

    /// The last step of a node if it is a branch (`Cond`/`ForHead`) —
    /// what the outgoing `True`/`False` edges refine against.
    pub fn branch_step(&self, node: usize) -> Option<&Step<'a>> {
        let last = self.nodes.get(node)?.steps.last()?;
        match last {
            Step::Cond(_) | Step::ForHead { .. } => Some(last),
            _ => None,
        }
    }
}

/// Fixed id of the exit node during construction.
const EXIT: usize = 1;

struct Builder<'a> {
    nodes: Vec<Node<'a>>,
    /// Innermost-last stack of `(head, after)` loop targets for
    /// `continue`/`break`.
    loops: Vec<(usize, usize)>,
}

impl<'a> Builder<'a> {
    fn new_node(&mut self) -> usize {
        self.nodes.push(Node::default());
        self.nodes.len() - 1
    }

    fn push_step(&mut self, node: usize, step: Step<'a>) {
        if let Some(n) = self.nodes.get_mut(node) {
            n.steps.push(step);
        }
    }

    fn edge(&mut self, from: usize, to: usize, label: Edge) {
        if let Some(n) = self.nodes.get_mut(from) {
            n.succs.push((to, label));
        }
    }

    /// Lower a statement list starting in node `cur`; returns the open
    /// node at the end, or `None` if every path diverged.
    fn lower_block(&mut self, stmts: &'a [Stmt], mut cur: usize) -> Option<usize> {
        for stmt in stmts {
            match stmt {
                Stmt::Let {
                    pat,
                    ty,
                    init,
                    else_block,
                    line,
                    col,
                } => {
                    if let Some(init) = init {
                        cur = self.lower_operand(init, cur)?;
                    }
                    self.push_step(
                        cur,
                        Step::Bind {
                            pat,
                            ty,
                            init: init.as_ref(),
                            line: *line,
                            col: *col,
                        },
                    );
                    if let Some(else_stmts) = else_block {
                        // `let .. else`: the refutable side runs the else
                        // block, which must diverge; model it as a side
                        // branch whose end (if any) flows to the exit.
                        let else_entry = self.new_node();
                        let next = self.new_node();
                        self.edge(cur, else_entry, Edge::Seq);
                        self.edge(cur, next, Edge::Seq);
                        if let Some(end) = self.lower_block(else_stmts, else_entry) {
                            self.edge(end, EXIT, Edge::Seq);
                        }
                        cur = next;
                    }
                }
                Stmt::Expr { expr, .. } => {
                    if expr.is_control() {
                        cur = self.lower_cf(expr, cur)?;
                    } else {
                        cur = self.hoist_nested(expr, cur)?;
                        self.push_step(cur, Step::Eval(expr));
                    }
                }
            }
        }
        Some(cur)
    }

    /// Lower an expression used as an operand (let initializer, branch
    /// condition, scrutinee): control flow lowers structurally, anything
    /// else hoists its nested control flow. The operand's own `Eval`/
    /// `Bind` step is the *caller's* responsibility.
    fn lower_operand(&mut self, e: &'a Expr, cur: usize) -> Option<usize> {
        if e.is_control() {
            self.lower_cf(e, cur)
        } else {
            self.hoist_nested(e, cur)
        }
    }

    /// Hoist control-flow subexpressions nested inside a non-CF
    /// expression, left to right.
    fn hoist_nested(&mut self, e: &'a Expr, cur: usize) -> Option<usize> {
        let mut children = Vec::new();
        for_each_child(e, &mut |c| children.push(c));
        let mut cur = cur;
        for child in children {
            cur = if child.is_control() {
                self.lower_cf(child, cur)?
            } else {
                self.hoist_nested(child, cur)?
            };
        }
        Some(cur)
    }

    /// Lower one control-flow expression; returns the join node.
    fn lower_cf(&mut self, e: &'a Expr, cur: usize) -> Option<usize> {
        match &e.kind {
            ExprKind::Block(stmts) => self.lower_block(stmts, cur),
            ExprKind::If {
                cond,
                then_block,
                else_expr,
            } => {
                let cur = self.lower_operand(cond, cur)?;
                self.push_step(cur, Step::Cond(cond));
                let then_entry = self.new_node();
                let join = self.new_node();
                self.edge(cur, then_entry, Edge::True);
                if let Some(end) = self.lower_block(then_block, then_entry) {
                    self.edge(end, join, Edge::Seq);
                }
                match else_expr {
                    Some(els) => {
                        let else_entry = self.new_node();
                        self.edge(cur, else_entry, Edge::False);
                        if let Some(end) = self.lower_value(els, else_entry) {
                            self.edge(end, join, Edge::Seq);
                        }
                    }
                    None => self.edge(cur, join, Edge::False),
                }
                Some(join)
            }
            ExprKind::IfLet {
                pat,
                scrutinee,
                then_block,
                else_expr,
            } => {
                let cur = self.lower_operand(scrutinee, cur)?;
                self.push_step(cur, Step::Eval(scrutinee));
                let then_entry = self.new_node();
                let join = self.new_node();
                self.edge(cur, then_entry, Edge::True);
                self.push_step(
                    then_entry,
                    Step::PatBind {
                        pat,
                        from: scrutinee,
                    },
                );
                if let Some(end) = self.lower_block(then_block, then_entry) {
                    self.edge(end, join, Edge::Seq);
                }
                match else_expr {
                    Some(els) => {
                        let else_entry = self.new_node();
                        self.edge(cur, else_entry, Edge::False);
                        if let Some(end) = self.lower_value(els, else_entry) {
                            self.edge(end, join, Edge::Seq);
                        }
                    }
                    None => self.edge(cur, join, Edge::False),
                }
                Some(join)
            }
            ExprKind::While { cond, body } => {
                let head = self.new_node();
                self.edge(cur, head, Edge::Seq);
                let cond_node = self.lower_operand(cond, head)?;
                self.push_step(cond_node, Step::Cond(cond));
                let body_entry = self.new_node();
                let after = self.new_node();
                self.edge(cond_node, body_entry, Edge::True);
                self.edge(cond_node, after, Edge::False);
                self.loops.push((head, after));
                let body_end = self.lower_block(body, body_entry);
                self.loops.pop();
                if let Some(end) = body_end {
                    self.edge(end, head, Edge::Seq);
                }
                Some(after)
            }
            ExprKind::WhileLet {
                pat,
                scrutinee,
                body,
            } => {
                let head = self.new_node();
                self.edge(cur, head, Edge::Seq);
                let cond_node = self.lower_operand(scrutinee, head)?;
                self.push_step(cond_node, Step::Eval(scrutinee));
                let body_entry = self.new_node();
                let after = self.new_node();
                self.edge(cond_node, body_entry, Edge::True);
                self.edge(cond_node, after, Edge::False);
                self.push_step(
                    body_entry,
                    Step::PatBind {
                        pat,
                        from: scrutinee,
                    },
                );
                self.loops.push((head, after));
                let body_end = self.lower_block(body, body_entry);
                self.loops.pop();
                if let Some(end) = body_end {
                    self.edge(end, head, Edge::Seq);
                }
                Some(after)
            }
            ExprKind::For { pat, iter, body } => {
                // The iterated expression is evaluated once, before the
                // head; the head's True edge binds the pattern.
                let cur = self.lower_operand(iter, cur)?;
                let head = self.new_node();
                self.edge(cur, head, Edge::Seq);
                self.push_step(head, Step::ForHead { pat, iter });
                let body_entry = self.new_node();
                let after = self.new_node();
                self.edge(head, body_entry, Edge::True);
                self.edge(head, after, Edge::False);
                self.loops.push((head, after));
                let body_end = self.lower_block(body, body_entry);
                self.loops.pop();
                if let Some(end) = body_end {
                    self.edge(end, head, Edge::Seq);
                }
                Some(after)
            }
            ExprKind::Loop { body } => {
                let head = self.new_node();
                self.edge(cur, head, Edge::Seq);
                let after = self.new_node();
                self.loops.push((head, after));
                let body_end = self.lower_block(body, head);
                self.loops.pop();
                if let Some(end) = body_end {
                    self.edge(end, head, Edge::Seq);
                }
                // `after` is only reachable through a `break`.
                Some(after)
            }
            ExprKind::Match { scrutinee, arms } => {
                let cur = self.lower_operand(scrutinee, cur)?;
                self.push_step(cur, Step::Eval(scrutinee));
                let join = self.new_node();
                for arm in arms {
                    let arm_entry = self.new_node();
                    self.edge(cur, arm_entry, Edge::Seq);
                    self.push_step(
                        arm_entry,
                        Step::PatBind {
                            pat: &arm.pat,
                            from: scrutinee,
                        },
                    );
                    let mut arm_cur = arm_entry;
                    if let Some(guard) = &arm.guard {
                        arm_cur = self.lower_operand(guard, arm_cur)?;
                        self.push_step(arm_cur, Step::Cond(guard));
                        let body_entry = self.new_node();
                        self.edge(arm_cur, body_entry, Edge::True);
                        // Guard failed: conservatively flow to the join
                        // (the real target is the next arm; merging at
                        // the join only adds paths).
                        self.edge(arm_cur, join, Edge::False);
                        arm_cur = body_entry;
                    }
                    if let Some(end) = self.lower_value(&arm.body, arm_cur) {
                        self.edge(end, join, Edge::Seq);
                    }
                }
                if arms.is_empty() {
                    self.edge(cur, join, Edge::Seq);
                }
                Some(join)
            }
            ExprKind::Closure { body, .. } => {
                // Inline approximation: the body runs once, here.
                self.lower_value(body, cur)
            }
            ExprKind::Return(operand) => {
                let mut cur = cur;
                if let Some(op) = operand {
                    cur = self.lower_operand(op, cur)?;
                    self.push_step(cur, Step::Eval(op));
                }
                self.edge(cur, EXIT, Edge::Seq);
                None
            }
            ExprKind::Break(operand) => {
                let mut cur = cur;
                if let Some(op) = operand {
                    cur = self.lower_operand(op, cur)?;
                    self.push_step(cur, Step::Eval(op));
                }
                let target = self.loops.last().map(|(_, after)| *after).unwrap_or(EXIT);
                self.edge(cur, target, Edge::Seq);
                None
            }
            ExprKind::Continue => {
                let target = self.loops.last().map(|(head, _)| *head).unwrap_or(EXIT);
                self.edge(cur, target, Edge::Seq);
                None
            }
            _ => {
                // Not control flow after all: treat as a plain step.
                let cur = self.hoist_nested(e, cur)?;
                self.push_step(cur, Step::Eval(e));
                Some(cur)
            }
        }
    }

    /// Lower an expression in value position, recording an `Eval` step
    /// for non-CF expressions.
    fn lower_value(&mut self, e: &'a Expr, cur: usize) -> Option<usize> {
        if e.is_control() {
            self.lower_cf(e, cur)
        } else {
            let cur = self.hoist_nested(e, cur)?;
            self.push_step(cur, Step::Eval(e));
            Some(cur)
        }
    }

    /// Prune unreachable nodes (loop-less `after` nodes, dead joins) and
    /// remap ids. The exit node is always retained.
    fn finish(self) -> Cfg<'a> {
        let n = self.nodes.len();
        let mut reachable = vec![false; n];
        if let Some(r) = reachable.get_mut(0) {
            *r = true;
        }
        let mut stack = vec![0usize];
        while let Some(id) = stack.pop() {
            let succs: Vec<usize> = self
                .nodes
                .get(id)
                .map(|node| node.succs.iter().map(|(t, _)| *t).collect())
                .unwrap_or_default();
            for t in succs {
                if let Some(r) = reachable.get_mut(t) {
                    if !*r {
                        *r = true;
                        stack.push(t);
                    }
                }
            }
        }
        if let Some(r) = reachable.get_mut(EXIT) {
            *r = true;
        }
        let mut remap = vec![usize::MAX; n];
        let mut kept = 0usize;
        for (id, r) in reachable.iter().enumerate() {
            if *r {
                if let Some(m) = remap.get_mut(id) {
                    *m = kept;
                }
                kept += 1;
            }
        }
        let mut nodes = Vec::with_capacity(kept);
        let mut exit = 0usize;
        for (id, node) in self.nodes.into_iter().enumerate() {
            let mapped = remap.get(id).copied().unwrap_or(usize::MAX);
            if mapped == usize::MAX {
                continue;
            }
            if id == EXIT {
                exit = mapped;
            }
            let succs = node
                .succs
                .into_iter()
                .filter_map(|(t, e)| {
                    let t = remap.get(t).copied().unwrap_or(usize::MAX);
                    (t != usize::MAX).then_some((t, e))
                })
                .collect();
            nodes.push(Node {
                steps: node.steps,
                succs,
            });
        }
        Cfg { nodes, exit }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_file, ItemKind, ParsedFile};

    fn with_cfg(body_src: &str, check: impl FnOnce(&Cfg<'_>)) {
        let src = format!("fn f() {{ {body_src} }}\n");
        let parsed: ParsedFile = parse_file("crates/x/src/lib.rs", &src);
        let Some(item) = parsed.items.first() else {
            panic!("no item parsed from {body_src:?}");
        };
        let ItemKind::Fn(info) = &item.kind else {
            panic!("not a fn: {body_src:?}");
        };
        let cfg = Cfg::build(&info.body);
        check(&cfg);
    }

    #[test]
    fn straight_line_body_is_two_nodes() {
        with_cfg("let a = 1; let b = a + 2; use_it(b);", |cfg| {
            assert_eq!(cfg.nodes.len(), 2, "{cfg:?}");
            let entry = cfg.nodes.first().expect("entry");
            assert_eq!(entry.steps.len(), 3);
            assert_eq!(entry.succs, vec![(cfg.exit, Edge::Seq)]);
        });
    }

    #[test]
    fn if_else_forms_a_diamond() {
        with_cfg("if a < b { f(); } else { g(); } h();", |cfg| {
            let entry = cfg.nodes.first().expect("entry");
            let branch: Vec<_> = entry.succs.iter().map(|(_, e)| *e).collect();
            assert_eq!(branch, vec![Edge::True, Edge::False]);
            assert!(cfg.branch_step(0).is_some());
            // entry, then, else, join, exit
            assert_eq!(cfg.nodes.len(), 5, "{cfg:?}");
        });
    }

    #[test]
    fn while_loop_has_back_edge() {
        with_cfg("while i < n { i += 1; } done();", |cfg| {
            // Some node must have a successor with an id at most its own
            // (the back edge to the loop head).
            let back = cfg
                .nodes
                .iter()
                .enumerate()
                .any(|(id, n)| n.succs.iter().any(|(t, _)| *t <= id && *t != cfg.exit));
            assert!(back, "{cfg:?}");
        });
    }

    #[test]
    fn entry_is_never_an_edge_target() {
        for src in [
            "let a = 1;",
            "if c { f(); }",
            "while c { f(); }",
            "for x in xs { f(x); }",
            "loop { break; }",
            "match x { Some(v) => f(v), None => g() }",
            "let Some(x) = opt else { return; }; f(x);",
        ] {
            with_cfg(src, |cfg| {
                for node in &cfg.nodes {
                    assert!(
                        node.succs.iter().all(|(t, _)| *t != 0),
                        "edge into entry: {cfg:?}"
                    );
                }
            });
        }
    }

    #[test]
    fn code_after_early_return_branch_still_reachable() {
        with_cfg("if c { return; } f();", |cfg| {
            let evals = cfg
                .nodes
                .iter()
                .flat_map(|n| n.steps.iter())
                .filter(|s| matches!(s, Step::Eval(_)))
                .count();
            // The `f()` call after the early-return branch must survive
            // as a reachable Eval step.
            assert!(evals >= 1, "{cfg:?}");
        });
    }

    #[test]
    fn nested_cf_in_initializer_is_hoisted() {
        with_cfg("let x = if c { 1 } else { 2 }; f(x);", |cfg| {
            // The diamond precedes the Bind step: more than 2 nodes, and
            // some node carries the Bind.
            assert!(cfg.nodes.len() > 2, "{cfg:?}");
            let has_bind = cfg
                .nodes
                .iter()
                .flat_map(|n| n.steps.iter())
                .any(|s| matches!(s, Step::Bind { .. }));
            assert!(has_bind, "{cfg:?}");
        });
    }

    #[test]
    fn match_guard_becomes_cond() {
        with_cfg("match x { Some(v) if v > 0 => f(v), _ => g() }", |cfg| {
            let conds = cfg
                .nodes
                .iter()
                .flat_map(|n| n.steps.iter())
                .filter(|s| matches!(s, Step::Cond(_)))
                .count();
            assert_eq!(conds, 1, "{cfg:?}");
        });
    }
}
