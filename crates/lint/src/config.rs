//! The `lint.toml` workspace contract: the declared crate layering DAG.
//!
//! The file is the same TOML subset as `lint.allow`: one `[layering]`
//! table whose keys are short crate names (the directory under `crates/`,
//! plus `aipan` for the umbrella package at the workspace root) and whose
//! values are string arrays naming the workspace crates each one may
//! import:
//!
//! ```toml
//! [layering]
//! taxonomy = []
//! net      = []
//! webgen   = ["taxonomy", "net", "html"]
//! ```
//!
//! The `L1` rule (see [`crate::graph`]) checks every `aipan_*` reference
//! in every source file against this table. The table itself is validated
//! at parse time: every referenced crate must be declared, and the
//! declared graph must be acyclic — a layering contract with a cycle
//! defines no layers at all.

use std::collections::{BTreeMap, BTreeSet};

/// Parsed `lint.toml` contents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Config {
    /// Allowed workspace imports per short crate name.
    pub layering: BTreeMap<String, Vec<String>>,
}

/// Error produced for a malformed or inconsistent `lint.toml`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigError {
    /// 1-based line in `lint.toml` (0 for whole-file errors).
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl Config {
    /// Parse and validate the `lint.toml` format.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut layering: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut in_layering = false;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                in_layering = line == "[layering]";
                if !in_layering {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("unknown section `{line}` (expected [layering])"),
                    });
                }
                continue;
            }
            if !in_layering {
                return Err(ConfigError {
                    line: lineno,
                    message: "key outside any section (expected [layering] first)".to_string(),
                });
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("expected `crate = [\"dep\", ...]`, got `{line}`"),
                });
            };
            let key = key.trim().to_string();
            if layering.contains_key(&key) {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("crate `{key}` declared twice"),
                });
            }
            layering.insert(key, parse_string_array(value.trim(), lineno)?);
        }
        let config = Config { layering };
        config.validate()?;
        Ok(config)
    }

    /// Whether crate `from` may import crate `to` under the contract.
    /// Self-imports (integration tests naming their own crate) are always
    /// allowed; crates absent from the table allow nothing.
    pub fn allows(&self, from: &str, to: &str) -> bool {
        if from == to {
            return true;
        }
        self.layering
            .get(from)
            .map_or(false, |deps| deps.iter().any(|d| d == to))
    }

    /// Whether a crate is declared in the contract at all.
    pub fn declares(&self, name: &str) -> bool {
        self.layering.contains_key(name)
    }

    /// Validate internal consistency: declared deps must themselves be
    /// declared, and the graph must be acyclic.
    fn validate(&self) -> Result<(), ConfigError> {
        for (name, deps) in &self.layering {
            for dep in deps {
                if !self.layering.contains_key(dep) {
                    return Err(ConfigError {
                        line: 0,
                        message: format!(
                            "crate `{name}` lists undeclared dependency `{dep}`; every \
                             dependency must have its own [layering] entry"
                        ),
                    });
                }
                if dep == name {
                    return Err(ConfigError {
                        line: 0,
                        message: format!("crate `{name}` lists itself as a dependency"),
                    });
                }
            }
        }
        if let Some(cycle) = self.find_cycle() {
            return Err(ConfigError {
                line: 0,
                message: format!(
                    "layering contract contains a cycle: {} — a cyclic contract defines no \
                     layers",
                    cycle.join(" -> ")
                ),
            });
        }
        Ok(())
    }

    /// First dependency cycle in the declared graph, as a closed path.
    fn find_cycle(&self) -> Option<Vec<String>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks: BTreeMap<&str, Mark> = self
            .layering
            .keys()
            .map(|k| (k.as_str(), Mark::White))
            .collect();
        for start in self.layering.keys() {
            if marks.get(start.as_str()) != Some(&Mark::White) {
                continue;
            }
            // Iterative DFS with an explicit path stack.
            let mut stack: Vec<(&str, usize)> = vec![(start.as_str(), 0)];
            while let Some(&(node, edge)) = stack.last() {
                if edge == 0 {
                    marks.insert(node, Mark::Grey);
                }
                let deps = self.layering.get(node).map(Vec::as_slice).unwrap_or(&[]);
                if edge < deps.len() {
                    if let Some(last) = stack.last_mut() {
                        last.1 += 1;
                    }
                    let next = deps[edge].as_str();
                    match marks.get(next) {
                        Some(Mark::Grey) => {
                            // Found a back edge: the path from `next` to
                            // `node` plus this edge closes the cycle.
                            let mut cycle: Vec<String> = stack
                                .iter()
                                .map(|(n, _)| n.to_string())
                                .skip_while(|n| n != next)
                                .collect();
                            cycle.push(next.to_string());
                            return Some(cycle);
                        }
                        Some(Mark::White) => stack.push((next, 0)),
                        _ => {}
                    }
                } else {
                    marks.insert(node, Mark::Black);
                    stack.pop();
                }
            }
        }
        None
    }
}

fn parse_string_array(value: &str, lineno: u32) -> Result<Vec<String>, ConfigError> {
    let v = value.trim();
    if !v.starts_with('[') || !v.ends_with(']') {
        return Err(ConfigError {
            line: lineno,
            message: format!("expected a string array `[\"a\", \"b\"]`, got `{value}`"),
        });
    }
    let inner = v[1..v.len() - 1].trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    let mut seen = BTreeSet::new();
    for part in inner.split(',') {
        let p = part.trim();
        if p.is_empty() {
            continue;
        }
        if p.len() >= 2 && p.starts_with('"') && p.ends_with('"') {
            let name = p[1..p.len() - 1].to_string();
            if !seen.insert(name.clone()) {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("duplicate dependency `{name}` in array"),
                });
            }
            out.push(name);
        } else {
            return Err(ConfigError {
                line: lineno,
                message: format!("expected a double-quoted string, got `{p}`"),
            });
        }
    }
    Ok(out)
}

/// Strip a `#`-to-end-of-line comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# layering contract
[layering]
taxonomy = []
net = []
webgen = ["taxonomy", "net"]
crawler = ["webgen", "net"]
"#;

    #[test]
    fn parses_and_answers_allows() {
        let c = Config::parse(SAMPLE).unwrap();
        assert!(c.allows("webgen", "taxonomy"));
        assert!(c.allows("webgen", "webgen"), "self always allowed");
        assert!(!c.allows("taxonomy", "webgen"), "direction matters");
        assert!(!c.allows("net", "taxonomy"), "not declared");
        assert!(c.declares("crawler"));
        assert!(!c.declares("ghost"));
    }

    #[test]
    fn rejects_undeclared_dependency() {
        let err = Config::parse("[layering]\na = [\"ghost\"]\n").unwrap_err();
        assert!(err.message.contains("undeclared"), "{err}");
    }

    #[test]
    fn rejects_cycles_and_self_loops() {
        let err = Config::parse("[layering]\na = [\"b\"]\nb = [\"c\"]\nc = [\"a\"]\n").unwrap_err();
        assert!(err.message.contains("cycle"), "{err}");
        assert!(err.message.contains("a -> b -> c -> a"), "{err}");
        let err = Config::parse("[layering]\na = [\"a\"]\n").unwrap_err();
        assert!(err.message.contains("itself"), "{err}");
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(
            Config::parse("taxonomy = []").is_err(),
            "key before section"
        );
        assert!(Config::parse("[other]\n").is_err(), "unknown section");
        assert!(Config::parse("[layering]\nwhat is this\n").is_err());
        assert!(Config::parse("[layering]\na = [unquoted]\n").is_err());
        assert!(
            Config::parse("[layering]\na = []\na = []\n").is_err(),
            "dup"
        );
        assert!(Config::parse("[layering]\na = [\"b\", \"b\"]\n").is_err());
    }

    #[test]
    fn empty_file_is_an_empty_contract() {
        let c = Config::parse("# nothing\n").unwrap();
        assert!(c.layering.is_empty());
        assert!(!c.allows("a", "b"));
        assert!(c.allows("a", "a"));
    }
}
