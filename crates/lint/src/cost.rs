//! Hot-path cost analysis: per-fn static cost summaries propagated over
//! the cross-crate call graph, the `H2`/`C2` allocation rules, and the
//! `--hotpaths` ranking report.
//!
//! **Cost model.** Every fn gets a *local* cost: each allocation site
//! (clone-family methods, `collect`, `format!`/`vec!`, collection
//! constructors, growth methods like `push`) contributes its weight
//! scaled by `8^depth`, where depth is the CFG loop-nesting depth of the
//! site — computed from immediate dominators and natural loops, not from
//! node-id order (the builder creates join nodes before arm bodies, so
//! id order says nothing about nesting). Local costs then propagate over
//! the cross-crate call graph: `total(f) = local(f) + Σ mult(site) ×
//! total(callee)` in reverse topological order of the SCC condensation,
//! where `mult` is the same `8^depth` scaling for call sites inside
//! loops and nontrivial SCCs (recursion) are charged one extra factor.
//! All arithmetic saturates; totals are rankings, not microseconds.
//!
//! **Hot set.** Fns forward-reachable from the pipeline entry points —
//! `run_pipeline*`, `crawl_all`/`crawl_all_with`, and the pub surface of
//! `annotate.rs` — carry a parent pointer back to their entry, so every
//! finding cites a witness call path like `X1`'s.
//!
//! **`H2` allocation-in-hot-loop** (Warn): a container bound with
//! `Vec::new()`/`String::new()` in a hot fn that grows inside a loop —
//! every `push` may reallocate on the hottest paths the workspace has.
//! The fix is `with_capacity`; when the only growth site is a `for` loop
//! over a plain iterable the capacity is provable and the finding
//! carries a machine-applicable fix.
//!
//! **`C2` redundant-clone-in-loop** (Warn): a `let y = x.clone()` (or
//! `to_string`/`to_vec`/`to_owned`) inside a loop whose receiver is
//! loop-invariant — proven by a may-modified dataflow over the worklist
//! solver: the clone's in-fact at fixpoint carries every modification
//! site that can reach it (including around the back edge), and none of
//! the receiver root's sites lie inside the innermost enclosing loop.
//! Unknown method calls on the root count as modifications, so the
//! analysis under-approximates invariance (fewer findings), never the
//! reverse. When every in-loop use of `y` is read-shaped the finding
//! carries a hoist fix.

use crate::callgraph::{CallGraph, FnNode};
use crate::cfg::{Cfg, Step};
use crate::dataflow::{replay, solve, Analysis};
use crate::expr::{child_blocks, for_each_child, Expr, ExprKind, Pat, Stmt};
use crate::findings::{Finding, Severity};
use crate::fix::{offset_in_lines, Fix, FixEdit};
use crate::graph::Workspace;
use crate::parser::FnInfo;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Methods that produce a fresh owned allocation from a place.
const CLONE_METHODS: &[&str] = &["clone", "to_string", "to_owned", "to_vec"];

/// Methods that grow a container (and may reallocate its buffer).
const GROW_METHODS: &[&str] = &["push", "push_str", "extend", "append", "insert"];

/// Collection constructors whose `new()` starts at capacity zero.
const GROWABLE_CTORS: &[&str] = &["Vec", "String"];

/// Methods assumed not to modify their receiver; anything else on a
/// candidate root counts as a modification (conservative for `C2`).
const READ_ONLY_METHODS: &[&str] = &[
    "as_bytes",
    "as_deref",
    "as_ref",
    "as_slice",
    "as_str",
    "chars",
    "clone",
    "cloned",
    "cmp",
    "contains",
    "contains_key",
    "copied",
    "ends_with",
    "eq",
    "find",
    "first",
    "get",
    "is_empty",
    "is_none",
    "is_some",
    "iter",
    "join",
    "keys",
    "last",
    "len",
    "lines",
    "map",
    "max",
    "min",
    "split",
    "split_whitespace",
    "starts_with",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "values",
];

/// Cost multiplier per loop-nesting level is `1 << LOOP_SHIFT` (= 8).
const LOOP_SHIFT: u32 = 3;

/// Depth levels beyond this scale no further (keeps shifts bounded).
pub(crate) const MAX_SCALED_DEPTH: u32 = 4;

/// Extra factor charged to fns inside a call-graph cycle (recursion).
const RECURSION_SHIFT: u32 = 3;

/// Longest witness path rendered before eliding.
const MAX_PATH: usize = 8;

/// Weight scaled by the loop factor for a site at `depth`.
pub(crate) fn scaled(weight: u64, depth: u32) -> u64 {
    weight.saturating_mul(1u64 << (LOOP_SHIFT * depth.min(MAX_SCALED_DEPTH)))
}

/// Reverse postorder over the CFG from the entry node.
fn reverse_postorder(cfg: &Cfg<'_>) -> Vec<usize> {
    let n = cfg.nodes.len();
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    if let Some(s) = seen.first_mut() {
        *s = true;
    }
    while let Some(&(id, edge)) = stack.last() {
        let next = cfg
            .nodes
            .get(id)
            .and_then(|nd| nd.succs.get(edge))
            .map(|(t, _)| *t);
        if let Some(last) = stack.last_mut() {
            last.1 += 1;
        }
        match next {
            Some(t) => {
                if let Some(s) = seen.get_mut(t) {
                    if !*s {
                        *s = true;
                        stack.push((t, 0));
                    }
                }
            }
            None => {
                order.push(id);
                stack.pop();
            }
        }
    }
    order.reverse();
    order
}

/// Sentinel for "no immediate dominator computed".
const UNDEF: usize = usize::MAX;

/// Nearest common dominator of `a` and `b` (Cooper–Harvey–Kennedy walk).
fn intersect(idom: &[usize], rpo_pos: &[usize], mut a: usize, mut b: usize) -> usize {
    let mut budget = idom.len().saturating_mul(2).saturating_add(2);
    while a != b && budget > 0 {
        budget -= 1;
        let pa = rpo_pos.get(a).copied().unwrap_or(UNDEF);
        let pb = rpo_pos.get(b).copied().unwrap_or(UNDEF);
        if pa == UNDEF || pb == UNDEF {
            return 0;
        }
        if pa > pb {
            a = idom.get(a).copied().unwrap_or(0);
        } else {
            b = idom.get(b).copied().unwrap_or(0);
        }
    }
    if a == b {
        a
    } else {
        0
    }
}

/// Immediate dominators for every node reachable from the entry
/// (iterative data-flow form; unreachable nodes keep [`UNDEF`]).
fn immediate_dominators(cfg: &Cfg<'_>, rpo: &[usize], preds: &[Vec<usize>]) -> Vec<usize> {
    let n = cfg.nodes.len();
    let mut rpo_pos = vec![UNDEF; n];
    for (i, &u) in rpo.iter().enumerate() {
        if let Some(p) = rpo_pos.get_mut(u) {
            *p = i;
        }
    }
    let mut idom = vec![UNDEF; n];
    if let Some(d) = idom.first_mut() {
        *d = 0;
    }
    loop {
        let mut changed = false;
        for &u in rpo.iter().skip(1) {
            let mut new_idom = UNDEF;
            for &p in preds.get(u).map(Vec::as_slice).unwrap_or(&[]) {
                if idom.get(p).copied().unwrap_or(UNDEF) == UNDEF {
                    continue;
                }
                new_idom = if new_idom == UNDEF {
                    p
                } else {
                    intersect(&idom, &rpo_pos, new_idom, p)
                };
            }
            if new_idom != UNDEF && idom.get(u).copied() != Some(new_idom) {
                if let Some(d) = idom.get_mut(u) {
                    *d = new_idom;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    idom
}

/// Whether `h` dominates `u` (walks the idom chain, budgeted).
fn dominates(h: usize, mut u: usize, idom: &[usize]) -> bool {
    if h == u {
        return true;
    }
    let mut budget = idom.len().saturating_add(1);
    while budget > 0 {
        budget -= 1;
        let d = idom.get(u).copied().unwrap_or(UNDEF);
        if d == UNDEF || d == u {
            return false;
        }
        if d == h {
            return true;
        }
        u = d;
    }
    false
}

/// Natural-loop bodies of the CFG: one set per loop header, each the
/// union of that header's back-edge loops (header included).
fn natural_loops(cfg: &Cfg<'_>) -> Vec<BTreeSet<usize>> {
    let n = cfg.nodes.len();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, node) in cfg.nodes.iter().enumerate() {
        for (v, _) in &node.succs {
            if let Some(p) = preds.get_mut(*v) {
                p.push(u);
            }
        }
    }
    let rpo = reverse_postorder(cfg);
    let idom = immediate_dominators(cfg, &rpo, &preds);
    let mut by_header: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    for (u, node) in cfg.nodes.iter().enumerate() {
        for (h, _) in &node.succs {
            if !dominates(*h, u, &idom) {
                continue;
            }
            let body = by_header.entry(*h).or_default();
            body.insert(*h);
            let mut stack = vec![u];
            while let Some(x) = stack.pop() {
                if body.insert(x) || x == u {
                    if x == *h {
                        continue;
                    }
                    for &p in preds.get(x).map(Vec::as_slice).unwrap_or(&[]) {
                        if !body.contains(&p) {
                            stack.push(p);
                        }
                    }
                }
            }
        }
    }
    by_header.into_values().collect()
}

/// Loop-nesting depth per CFG node: the number of natural loops whose
/// body contains it.
pub fn loop_depths(cfg: &Cfg<'_>) -> Vec<u32> {
    let mut depth = vec![0u32; cfg.nodes.len()];
    for body in natural_loops(cfg) {
        for x in body {
            if let Some(d) = depth.get_mut(x) {
                *d += 1;
            }
        }
    }
    depth
}

/// One allocation site inside a fn body.
struct AllocSite {
    weight: u64,
}

/// Collect allocation sites in one expression tree (block statements are
/// separate CFG steps and are not descended into).
fn allocs_in(e: &Expr, out: &mut Vec<AllocSite>) {
    match &e.kind {
        ExprKind::MethodCall { name, .. } => {
            if CLONE_METHODS.contains(&name.as_str()) || GROW_METHODS.contains(&name.as_str()) {
                out.push(AllocSite { weight: 1 });
            } else if name == "collect" {
                out.push(AllocSite { weight: 2 });
            }
        }
        ExprKind::MacroCall { path, .. } => match path.last().map(String::as_str) {
            Some("format") => out.push(AllocSite { weight: 2 }),
            Some("vec") => out.push(AllocSite { weight: 1 }),
            _ => {}
        },
        ExprKind::Call { callee, .. } => {
            if let ExprKind::Path(segs) = &callee.kind {
                let ctor = matches!(
                    segs.last().map(String::as_str),
                    Some("new" | "with_capacity")
                );
                let coll = segs
                    .iter()
                    .rev()
                    .nth(1)
                    .is_some_and(|s| GROWABLE_CTORS.contains(&s.as_str()));
                if ctor && coll {
                    out.push(AllocSite { weight: 1 });
                }
            }
        }
        _ => {}
    }
    for_each_child(e, &mut |c| allocs_in(c, out));
}

/// Total allocation weight of one expression tree, on the same scale the
/// cost model uses for `H2`/`C2` (clone/grow 1, `collect`/`format!` 2,
/// growable ctors 1). Shared with the `W2` held-cost computation so one
/// vocabulary prices both hot loops and lock regions.
pub(crate) fn alloc_weight(e: &Expr) -> u64 {
    let mut sites = Vec::new();
    allocs_in(e, &mut sites);
    sites.iter().map(|s| s.weight).sum()
}

/// Top-level expressions evaluated by one step.
pub(crate) fn step_exprs<'a>(step: &Step<'a>) -> Vec<&'a Expr> {
    match *step {
        Step::Eval(e) | Step::Cond(e) => vec![e],
        Step::Bind { init, .. } => init.into_iter().collect(),
        Step::ForHead { iter, .. } => vec![iter],
        Step::PatBind { .. } => Vec::new(),
    }
}

/// Loop depth of every source line holding a step of `body` — what the
/// effect (`F1`) and numeric (`N2`) passes use to ask "is this site
/// inside a loop?" with exactly the cost model's notion of depth.
pub(crate) fn line_loop_depths(body: &[crate::expr::Stmt]) -> BTreeMap<u32, u32> {
    let cfg = Cfg::build(body);
    let depths = loop_depths(&cfg);
    summarize(&cfg, &depths).line_depth
}

/// Per-fn static summary: local cost plus the loop depth of every
/// source line that holds a step.
struct FnSummary {
    local: u64,
    line_depth: BTreeMap<u32, u32>,
}

fn summarize(cfg: &Cfg<'_>, depths: &[u32]) -> FnSummary {
    let mut local = 0u64;
    let mut line_depth = BTreeMap::new();
    for (id, node) in cfg.nodes.iter().enumerate() {
        let d = depths.get(id).copied().unwrap_or(0);
        for step in &node.steps {
            let (line, _) = step.pos();
            let slot = line_depth.entry(line).or_insert(0u32);
            *slot = (*slot).max(d);
            let mut sites = Vec::new();
            for e in step_exprs(step) {
                allocs_in(e, &mut sites);
            }
            for site in sites {
                local = local.saturating_add(scaled(site.weight, d));
            }
        }
    }
    FnSummary { local, line_depth }
}

/// The interprocedural cost model for one analyzed workspace.
pub struct CostModel {
    /// Intra-fn cost per call-graph node.
    pub local: Vec<u64>,
    /// Local + callee cost, propagated over the SCC condensation.
    pub total: Vec<u64>,
    /// Hot-set parent pointers: `Some(p)` when the fn is reachable from
    /// a pipeline entry (`p == self` marks the entry itself).
    pub hot_parent: Vec<Option<usize>>,
    /// Call-graph ids of the pipeline entry points, in id order.
    pub entries: Vec<usize>,
}

/// Whether a fn is one of the pipeline entry points the hot set grows
/// from.
fn is_entry(ws: &Workspace, node: &FnNode<'_>) -> bool {
    if node.name.starts_with("run_pipeline")
        || node.name == "crawl_all"
        || node.name == "crawl_all_with"
    {
        return true;
    }
    node.is_pub
        && ws
            .files
            .get(node.file)
            .is_some_and(|f| f.parsed.rel_path.ends_with("/annotate.rs"))
}

/// Strongly-connected components of the call graph, returned in reverse
/// topological order of the condensation (callees before callers).
/// Shared with the `F1` effect propagation, which walks the same
/// condensation in the same direction.
pub(crate) fn call_sccs(n: usize, succs: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, outs) in succs.iter().enumerate() {
        for &v in outs {
            if let Some(r) = rev.get_mut(v) {
                r.push(u);
            }
        }
    }
    // Pass 1: finish order on the forward graph.
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for start in 0..n {
        if visited.get(start).copied().unwrap_or(true) {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        if let Some(v) = visited.get_mut(start) {
            *v = true;
        }
        while let Some(&(u, e)) = stack.last() {
            let next = succs.get(u).and_then(|o| o.get(e)).copied();
            if let Some(last) = stack.last_mut() {
                last.1 += 1;
            }
            match next {
                Some(t) => {
                    if let Some(v) = visited.get_mut(t) {
                        if !*v {
                            *v = true;
                            stack.push((t, 0));
                        }
                    }
                }
                None => {
                    order.push(u);
                    stack.pop();
                }
            }
        }
    }
    // Pass 2: transpose trees in reverse finish order yield components
    // in topological order; reverse for callees-first.
    let mut assigned = vec![false; n];
    let mut components = Vec::new();
    for &start in order.iter().rev() {
        if assigned.get(start).copied().unwrap_or(true) {
            continue;
        }
        let mut component = Vec::new();
        let mut stack = vec![start];
        if let Some(a) = assigned.get_mut(start) {
            *a = true;
        }
        while let Some(u) = stack.pop() {
            component.push(u);
            for &p in rev.get(u).map(Vec::as_slice).unwrap_or(&[]) {
                if let Some(a) = assigned.get_mut(p) {
                    if !*a {
                        *a = true;
                        stack.push(p);
                    }
                }
            }
        }
        component.sort_unstable();
        components.push(component);
    }
    components.reverse();
    components
}

impl CostModel {
    /// Build the cost model for a workspace and its call graph.
    pub fn build(ws: &Workspace, graph: &CallGraph<'_>) -> CostModel {
        let n = graph.fns.len();
        let mut local = vec![0u64; n];
        let mut line_depths: Vec<BTreeMap<u32, u32>> = Vec::with_capacity(n);
        for (i, node) in graph.fns.iter().enumerate() {
            let cfg = Cfg::build(&node.info.body);
            let depths = loop_depths(&cfg);
            let summary = summarize(&cfg, &depths);
            if let Some(slot) = local.get_mut(i) {
                *slot = summary.local;
            }
            line_depths.push(summary.line_depth);
        }

        // Call successors plus per-edge loop multipliers.
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut mults: Vec<Vec<u64>> = vec![Vec::new(); n];
        for (u, edges) in graph.edges.iter().enumerate() {
            for edge in edges {
                let depth = line_depths
                    .get(u)
                    .and_then(|m| m.get(&edge.line))
                    .copied()
                    .unwrap_or(0);
                if let (Some(s), Some(m)) = (succs.get_mut(u), mults.get_mut(u)) {
                    s.push(edge.to);
                    m.push(scaled(1, depth));
                }
            }
        }

        // Totals in reverse topological order of the condensation.
        let mut total = local.clone();
        let mut comp_of = vec![usize::MAX; n];
        let components = call_sccs(n, &succs);
        for (c, members) in components.iter().enumerate() {
            for &m in members {
                if let Some(slot) = comp_of.get_mut(m) {
                    *slot = c;
                }
            }
        }
        for (c, members) in components.iter().enumerate() {
            let mut base = 0u64;
            let mut cyclic = members.len() > 1;
            for &m in members {
                base = base.saturating_add(local.get(m).copied().unwrap_or(0));
                let outs = succs.get(m).map(Vec::as_slice).unwrap_or(&[]);
                let ms = mults.get(m).map(Vec::as_slice).unwrap_or(&[]);
                for (k, &t) in outs.iter().enumerate() {
                    if comp_of.get(t).copied() == Some(c) {
                        cyclic = cyclic || t == m;
                        continue;
                    }
                    let mult = ms.get(k).copied().unwrap_or(1);
                    let callee = total.get(t).copied().unwrap_or(0);
                    base = base.saturating_add(callee.saturating_mul(mult));
                }
            }
            if cyclic {
                base = base.saturating_mul(1u64 << RECURSION_SHIFT);
            }
            for &m in members {
                if let Some(slot) = total.get_mut(m) {
                    *slot = base;
                }
            }
        }

        // Hot set: forward BFS from the entries, keeping parent links.
        let mut entries: Vec<usize> = Vec::new();
        let mut hot_parent: Vec<Option<usize>> = vec![None; n];
        for (i, node) in graph.fns.iter().enumerate() {
            if is_entry(ws, node) {
                entries.push(i);
                if let Some(slot) = hot_parent.get_mut(i) {
                    *slot = Some(i);
                }
            }
        }
        let mut queue: VecDeque<usize> = entries.iter().copied().collect();
        while let Some(u) = queue.pop_front() {
            for &v in succs.get(u).map(Vec::as_slice).unwrap_or(&[]) {
                if let Some(slot) = hot_parent.get_mut(v) {
                    if slot.is_none() {
                        *slot = Some(u);
                        queue.push_back(v);
                    }
                }
            }
        }

        CostModel {
            local,
            total,
            hot_parent,
            entries,
        }
    }

    /// Whether a call-graph fn is reachable from a pipeline entry.
    pub fn is_hot(&self, id: usize) -> bool {
        self.hot_parent.get(id).copied().flatten().is_some()
    }

    /// Witness call path from the nearest entry down to `id`, rendered
    /// `entry -> mid -> fn`; `None` when the fn is not hot.
    pub fn hot_path(&self, graph: &CallGraph<'_>, id: usize) -> Option<String> {
        self.hot_parent.get(id).copied().flatten()?;
        let mut chain = vec![id];
        let mut cur = id;
        while chain.len() <= MAX_PATH {
            let parent = self.hot_parent.get(cur).copied().flatten()?;
            if parent == cur {
                break;
            }
            chain.push(parent);
            cur = parent;
        }
        chain.reverse();
        let names: Vec<String> = chain
            .iter()
            .filter_map(|&i| graph.fns.get(i).map(fn_display))
            .collect();
        Some(names.join(" -> "))
    }
}

/// Display name for a call-graph fn (`Type::method` or `free_fn`).
pub(crate) fn fn_display(node: &FnNode<'_>) -> String {
    match node.self_ty {
        Some(ty) => format!("{ty}::{}", node.name),
        None => node.name.to_string(),
    }
}

/// The plain root identifier and dotted display form of a place
/// expression (`x`, `x.field.sub`); `None` for anything else.
fn place_root(e: &Expr) -> Option<(String, String)> {
    match &e.kind {
        ExprKind::Path(segs) => match segs.as_slice() {
            [only] if only != "self" => Some((only.clone(), only.clone())),
            _ => None,
        },
        ExprKind::Field { base, name } => {
            let (root, display) = place_root(base)?;
            Some((root, format!("{display}.{name}")))
        }
        _ => None,
    }
}

/// Root identifier of an assignment target, peeling derefs, fields, and
/// indexing.
fn assign_root(e: &Expr) -> Option<String> {
    match &e.kind {
        ExprKind::Path(segs) => segs.first().cloned(),
        ExprKind::Field { base, .. } | ExprKind::Index { base, .. } => assign_root(base),
        ExprKind::Unary { operand, .. } | ExprKind::Ref { operand, .. } => assign_root(operand),
        _ => None,
    }
}

/// Modification sites `(name, line, col)` performed by one expression
/// tree: assignments, `&mut` borrows, and method calls not known to be
/// read-only.
fn expr_mods(e: &Expr, out: &mut Vec<(String, u32, u32)>) {
    match &e.kind {
        ExprKind::Assign { lhs, .. } => {
            if let Some(root) = assign_root(lhs) {
                out.push((root, lhs.line, lhs.col));
            }
        }
        ExprKind::Ref {
            mutable: true,
            operand,
        } => {
            if let Some(root) = assign_root(operand) {
                out.push((root, operand.line, operand.col));
            }
        }
        ExprKind::MethodCall { recv, name, .. } => {
            if !READ_ONLY_METHODS.contains(&name.as_str()) {
                if let Some((root, _)) = place_root(recv) {
                    out.push((root, recv.line, recv.col));
                }
            }
        }
        _ => {}
    }
    for_each_child(e, &mut |c| expr_mods(c, out));
}

/// Modification sites performed by one CFG step (bindings count as
/// modifications of the bound names).
fn step_mods(step: &Step<'_>) -> Vec<(String, u32, u32)> {
    let mut out = Vec::new();
    match *step {
        Step::Bind {
            pat,
            init,
            line,
            col,
            ..
        } => {
            let mut names = Vec::new();
            pat.bound_names(&mut names);
            for name in names {
                out.push((name, line, col));
            }
            if let Some(e) = init {
                expr_mods(e, &mut out);
            }
        }
        Step::PatBind { pat, from } => {
            let mut names = Vec::new();
            pat.bound_names(&mut names);
            for name in names {
                out.push((name, from.line, from.col));
            }
        }
        Step::ForHead { pat, iter } => {
            let mut names = Vec::new();
            pat.bound_names(&mut names);
            for name in names {
                out.push((name, iter.line, iter.col));
            }
            expr_mods(iter, &mut out);
        }
        Step::Eval(e) | Step::Cond(e) => expr_mods(e, &mut out),
    }
    out
}

/// May-modified dataflow: for every name, the set of modification sites
/// that can reach the program point (union join; no kills, so the
/// analysis only ever claims *more* modification, the safe direction).
struct MayMod;

impl<'a> Analysis<'a> for MayMod {
    type Fact = BTreeMap<String, BTreeSet<(u32, u32)>>;

    fn boundary(&self) -> Self::Fact {
        BTreeMap::new()
    }

    fn join(&self, acc: &mut Self::Fact, other: &Self::Fact) {
        for (name, sites) in other {
            acc.entry(name.clone()).or_default().extend(sites.iter());
        }
    }

    fn step(&self, step: &Step<'a>, fact: &mut Self::Fact) {
        for (name, line, col) in step_mods(step) {
            fact.entry(name).or_default().insert((line, col));
        }
    }
}

/// Walk statements tracking the stack of enclosing loop expressions;
/// `visit` sees every statement with its loop stack (innermost last).
fn walk_with_loops<'a>(
    stmts: &'a [Stmt],
    stack: &mut Vec<&'a Expr>,
    visit: &mut impl FnMut(&'a Stmt, &[&'a Expr]),
) {
    for stmt in stmts {
        visit(stmt, stack);
        match stmt {
            Stmt::Let {
                init, else_block, ..
            } => {
                if let Some(e) = init {
                    walk_expr_with_loops(e, stack, visit);
                }
                if let Some(b) = else_block {
                    walk_with_loops(b, stack, visit);
                }
            }
            Stmt::Expr { expr, .. } => walk_expr_with_loops(expr, stack, visit),
        }
    }
}

fn walk_expr_with_loops<'a>(
    e: &'a Expr,
    stack: &mut Vec<&'a Expr>,
    visit: &mut impl FnMut(&'a Stmt, &[&'a Expr]),
) {
    let is_loop = matches!(
        e.kind,
        ExprKind::While { .. }
            | ExprKind::WhileLet { .. }
            | ExprKind::For { .. }
            | ExprKind::Loop { .. }
    );
    if is_loop {
        stack.push(e);
    }
    for block in child_blocks(e) {
        walk_with_loops(block, stack, visit);
    }
    if is_loop {
        stack.pop();
    }
    for_each_child(e, &mut |c| walk_expr_with_loops(c, stack, visit));
}

/// Whether an expression tree contains a grow call `recv.method(..)` on
/// the named container at the given position.
fn contains_grow_at(e: &Expr, container: &str, line: u32, col: u32) -> bool {
    if let ExprKind::MethodCall { recv, name, .. } = &e.kind {
        if GROW_METHODS.contains(&name.as_str())
            && recv.line == line
            && recv.col == col
            && matches!(&recv.kind, ExprKind::Path(segs) if segs.as_slice() == [container])
        {
            return true;
        }
    }
    let mut found = false;
    for_each_child(e, &mut |c| {
        if !found {
            found = contains_grow_at(c, container, line, col);
        }
    });
    if found {
        return true;
    }
    for block in child_blocks(e) {
        for stmt in block {
            let inner = match stmt {
                Stmt::Let { init, .. } => init.as_ref(),
                Stmt::Expr { expr, .. } => Some(expr),
            };
            if let Some(inner) = inner {
                if contains_grow_at(inner, container, line, col) {
                    return true;
                }
            }
        }
    }
    false
}

/// Provable element count for a `for` iterable: a plain local path,
/// optionally behind `&` or trailing `iter`/`iter_mut`/`into_iter`/
/// `enumerate` calls, yields `root.len()`.
fn provable_len(iter: &Expr) -> Option<String> {
    match &iter.kind {
        ExprKind::Path(segs) => match segs.as_slice() {
            [only] if only != "self" => Some(format!("{only}.len()")),
            _ => None,
        },
        ExprKind::Ref { operand, .. } => provable_len(operand),
        ExprKind::MethodCall {
            recv, name, args, ..
        } if args.is_empty()
            && matches!(
                name.as_str(),
                "iter" | "iter_mut" | "into_iter" | "enumerate"
            ) =>
        {
            provable_len(recv)
        }
        _ => None,
    }
}

/// Names bound anywhere in a fn (params, lets, patterns) — used to vet
/// that a capacity source is in scope before the allocation.
fn bound_before(info_params: &[String], cfg: &Cfg<'_>, name: &str, line: u32) -> bool {
    if info_params.iter().any(|p| p == name) {
        return true;
    }
    for node in &cfg.nodes {
        for step in &node.steps {
            let (step_line, _) = step.pos();
            if step_line >= line {
                continue;
            }
            let mut names = Vec::new();
            match step {
                Step::Bind { pat, .. } | Step::PatBind { pat, .. } | Step::ForHead { pat, .. } => {
                    pat.bound_names(&mut names);
                }
                _ => {}
            }
            if names.iter().any(|n| n == name) {
                return true;
            }
        }
    }
    false
}

/// Container heads whose `.len()` is guaranteed to exist.
const SIZED_TY_HEADS: &[&str] = &[
    "Vec", "VecDeque", "String", "str", "BTreeMap", "BTreeSet", "HashMap", "HashSet",
];

/// Whether type tokens name a container with a `.len()` method: leading
/// `&`/`mut` stripped, then a sized head or a slice. Anything involving
/// `impl`/`dyn` (opaque trait types) is rejected outright.
fn ty_has_len(ty: &[String]) -> bool {
    if ty.iter().any(|t| t == "impl" || t == "dyn") {
        return false;
    }
    let head = ty.iter().find(|t| *t != "&" && *t != "mut");
    head.is_some_and(|t| SIZED_TY_HEADS.contains(&t.as_str()) || t == "[")
}

/// Whether `name`'s declared type provably has `.len()`: a param or a
/// single-name `let` whose annotation names a sized container, or a `let`
/// initialized from an unambiguous container constructor (`vec![..]`,
/// `Vec::...`, `String::...`). Pattern-bound and unannotated names are
/// rejected — an emitted fix must compile, so under-approximating here
/// only costs a machine fix, never correctness.
fn root_has_len(info: &FnInfo, name: &str) -> bool {
    for p in &info.params {
        if p.name == name {
            return ty_has_len(&p.ty);
        }
    }
    let mut proven = false;
    let mut stack = Vec::new();
    walk_with_loops(&info.body, &mut stack, &mut |stmt, _| {
        let Stmt::Let { pat, ty, init, .. } = stmt else {
            return;
        };
        let mut names = Vec::new();
        pat.bound_names(&mut names);
        if names.as_slice() != [name.to_string()] {
            return;
        }
        if !ty.is_empty() && ty_has_len(ty) {
            proven = true;
            return;
        }
        let Some(init) = init else {
            return;
        };
        match &init.kind {
            ExprKind::MacroCall { path, .. } if path.last().is_some_and(|s| s == "vec") => {
                proven = true;
            }
            ExprKind::Call { callee, .. } => {
                if let ExprKind::Path(segs) = &callee.kind {
                    if segs
                        .first()
                        .is_some_and(|s| s == "Vec" || s == "String" || s == "VecDeque")
                    {
                        proven = true;
                    }
                }
            }
            _ => {}
        }
    });
    proven
}

/// Whether every use of `name` in the statements is read-shaped (method
/// receiver, reference, index base, field base, comparison operand) —
/// the vet for hoisting a clone whose value must not be moved twice.
fn uses_are_read_shaped(stmts: &[Stmt], name: &str) -> bool {
    fn bare_use(e: &Expr, name: &str) -> bool {
        matches!(&e.kind, ExprKind::Path(segs) if segs.as_slice() == [name])
    }
    fn check(e: &Expr, name: &str) -> bool {
        match &e.kind {
            ExprKind::Path(_) | ExprKind::Lit(_) => !bare_use(e, name),
            ExprKind::MethodCall { recv, args, .. } => {
                let recv_ok = bare_use(recv, name) || check(recv, name);
                recv_ok && args.iter().all(|a| check(a, name))
            }
            ExprKind::Ref { operand, .. } => bare_use(operand, name) || check(operand, name),
            ExprKind::Index { base, index } => {
                (bare_use(base, name) || check(base, name)) && check(index, name)
            }
            ExprKind::Field { base, .. } => bare_use(base, name) || check(base, name),
            ExprKind::Binary { op, lhs, rhs } => {
                let cmp = matches!(op.as_str(), "==" | "!=" | "<" | ">" | "<=" | ">=");
                let lhs_ok = (cmp && bare_use(lhs, name)) || check(lhs, name);
                let rhs_ok = (cmp && bare_use(rhs, name)) || check(rhs, name);
                lhs_ok && rhs_ok
            }
            _ => {
                let mut ok = true;
                for_each_child(e, &mut |c| {
                    if ok {
                        ok = check(c, name);
                    }
                });
                if ok {
                    for block in child_blocks(e) {
                        if !uses_are_read_shaped_inner(block, name) {
                            ok = false;
                        }
                    }
                }
                ok
            }
        }
    }
    fn uses_are_read_shaped_inner(stmts: &[Stmt], name: &str) -> bool {
        for stmt in stmts {
            let ok = match stmt {
                Stmt::Let {
                    init, else_block, ..
                } => {
                    init.as_ref().is_none_or(|e| check(e, name))
                        && else_block
                            .as_ref()
                            .is_none_or(|b| uses_are_read_shaped_inner(b, name))
                }
                Stmt::Expr { expr, .. } => check(expr, name),
            };
            if !ok {
                return false;
            }
        }
        true
    }
    uses_are_read_shaped_inner(stmts, name)
}

/// Run the `H2` and `C2` passes over an analyzed workspace.
pub fn check_cost(ws: &Workspace, graph: &CallGraph<'_>, model: &CostModel) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (id, node) in graph.fns.iter().enumerate() {
        let Some(file) = ws.files.get(node.file) else {
            continue;
        };
        let cfg = Cfg::build(&node.info.body);
        let loops = natural_loops(&cfg);
        let depths = loop_depths(&cfg);
        if model.is_hot(id) {
            check_h2(ws, graph, model, id, node, &cfg, &depths, &mut findings);
        }
        check_c2(file, node, &cfg, &loops, &depths, &mut findings);
    }
    findings
}

/// A growable-container binding tracked by `H2`.
struct Candidate {
    name: String,
    ctor: String,
    bind_line: u32,
    bind_col: u32,
    init_line: u32,
    init_col: u32,
    depth: u32,
    ambiguous: bool,
}

#[allow(clippy::too_many_arguments)]
fn check_h2(
    ws: &Workspace,
    graph: &CallGraph<'_>,
    model: &CostModel,
    id: usize,
    node: &FnNode<'_>,
    cfg: &Cfg<'_>,
    depths: &[u32],
    findings: &mut Vec<Finding>,
) {
    let Some(file) = ws.files.get(node.file) else {
        return;
    };
    let mut candidates: Vec<Candidate> = Vec::new();
    for (nid, block) in cfg.nodes.iter().enumerate() {
        let d = depths.get(nid).copied().unwrap_or(0);
        for step in &block.steps {
            let Step::Bind {
                pat: Pat::Ident { name, .. },
                init: Some(init),
                line,
                col,
                ..
            } = step
            else {
                continue;
            };
            let ExprKind::Call { callee, args } = &init.kind else {
                continue;
            };
            if !args.is_empty() {
                continue;
            }
            let ExprKind::Path(segs) = &callee.kind else {
                continue;
            };
            let ctor = match segs.as_slice() {
                [ty, method] if method == "new" && GROWABLE_CTORS.contains(&ty.as_str()) => {
                    ty.clone()
                }
                _ => continue,
            };
            if let Some(existing) = candidates.iter_mut().find(|c| c.name == *name) {
                existing.ambiguous = true;
                continue;
            }
            candidates.push(Candidate {
                name: name.clone(),
                ctor,
                bind_line: *line,
                bind_col: *col,
                init_line: init.line,
                init_col: init.col,
                depth: d,
                ambiguous: false,
            });
        }
    }
    if candidates.is_empty() {
        return;
    }

    // Growth sites per candidate name: (line, col of receiver, depth).
    let mut grows: BTreeMap<String, Vec<(u32, u32, u32)>> = BTreeMap::new();
    for (nid, block) in cfg.nodes.iter().enumerate() {
        let d = depths.get(nid).copied().unwrap_or(0);
        for step in &block.steps {
            for top in step_exprs(step) {
                collect_grows(top, d, &mut grows);
            }
        }
    }

    for cand in candidates.iter().filter(|c| !c.ambiguous) {
        let sites = grows.get(&cand.name).map(Vec::as_slice).unwrap_or(&[]);
        let max_depth = sites.iter().map(|(_, _, d)| *d).max().unwrap_or(0);
        if sites.is_empty() || max_depth <= cand.depth {
            continue;
        }
        let Some(path) = model.hot_path(graph, id) else {
            continue;
        };
        let fix = h2_fix(file, node, cfg, cand, sites);
        let mut finding = Finding::at(
            "H2",
            Severity::Warn,
            &file.parsed.rel_path,
            cand.bind_line,
            cand.bind_col,
            format!(
                "`{}` is allocated with `{}::new()` but grows inside a loop on a hot \
                 path ({} growth site(s)); pre-allocate with `with_capacity` — hot \
                 path: {path}",
                cand.name,
                cand.ctor,
                sites.len()
            ),
            file.snippet(cand.bind_line),
        );
        finding.fix = fix;
        findings.push(finding);
    }
}

fn collect_grows(e: &Expr, depth: u32, out: &mut BTreeMap<String, Vec<(u32, u32, u32)>>) {
    if let ExprKind::MethodCall { recv, name, .. } = &e.kind {
        if GROW_METHODS.contains(&name.as_str()) {
            if let ExprKind::Path(segs) = &recv.kind {
                if let [only] = segs.as_slice() {
                    out.entry(only.clone())
                        .or_default()
                        .push((recv.line, recv.col, depth));
                }
            }
        }
    }
    for_each_child(e, &mut |c| collect_grows(c, depth, out));
}

/// Attach the `with_capacity` fix when the candidate's single growth
/// site sits in a `for` loop over an iterable with a provable length.
fn h2_fix(
    file: &crate::graph::AnalyzedFile,
    node: &FnNode<'_>,
    cfg: &Cfg<'_>,
    cand: &Candidate,
    sites: &[(u32, u32, u32)],
) -> Option<Fix> {
    if cand.ctor != "Vec" || sites.len() != 1 {
        return None;
    }
    let (grow_line, grow_col, _) = sites.first().copied()?;
    // Innermost AST loop holding the growth site.
    let mut innermost: Option<&Expr> = None;
    let mut stack = Vec::new();
    walk_with_loops(&node.info.body, &mut stack, &mut |stmt, loops| {
        if innermost.is_some() {
            return;
        }
        let expr = match stmt {
            Stmt::Expr { expr, .. } => expr,
            Stmt::Let {
                init: Some(init), ..
            } => init,
            _ => return,
        };
        if contains_grow_at(expr, &cand.name, grow_line, grow_col) {
            innermost = loops.last().copied();
        }
    });
    let ExprKind::For { iter, .. } = &innermost?.kind else {
        return None;
    };
    let capacity = provable_len(iter)?;
    let root = capacity.split('.').next().unwrap_or("");
    if root == cand.name {
        return None;
    }
    let params: Vec<String> = node.info.params.iter().map(|p| p.name.clone()).collect();
    if !bound_before(&params, cfg, root, cand.bind_line) {
        return None;
    }
    // The rewrite calls `.len()` on the root, so its declared type must
    // provably have one (`impl IntoIterator` params etc. do not).
    if !root_has_len(node.info, root) {
        return None;
    }
    // The replaced text must be exactly the ctor call.
    let line_text = file.lines.get(cand.init_line.saturating_sub(1) as usize)?;
    let col = cand.init_col.saturating_sub(1) as usize;
    if !line_text
        .get(col..)
        .is_some_and(|t| t.starts_with("Vec::new()"))
    {
        return None;
    }
    let start = offset_in_lines(&file.lines, cand.init_line, cand.init_col);
    Some(Fix {
        title: format!(
            "pre-allocate `{}` with `Vec::with_capacity({capacity})`",
            cand.name
        ),
        edits: vec![FixEdit {
            start,
            end: start + "Vec::new()".len(),
            replacement: format!("Vec::with_capacity({capacity})"),
        }],
    })
}

fn check_c2(
    file: &crate::graph::AnalyzedFile,
    node: &FnNode<'_>,
    cfg: &Cfg<'_>,
    loops: &[BTreeSet<usize>],
    depths: &[u32],
    findings: &mut Vec<Finding>,
) {
    // Candidate clone binds in loops.
    struct CloneBind {
        nid: usize,
        y: String,
        root: String,
        display: String,
        method: String,
        line: u32,
        col: u32,
    }
    let mut cands: Vec<CloneBind> = Vec::new();
    for (nid, block) in cfg.nodes.iter().enumerate() {
        if depths.get(nid).copied().unwrap_or(0) == 0 {
            continue;
        }
        for step in &block.steps {
            let Step::Bind {
                pat: Pat::Ident { name: y, .. },
                init: Some(init),
                line,
                col,
                ..
            } = step
            else {
                continue;
            };
            let ExprKind::MethodCall {
                recv,
                name: method,
                args,
                ..
            } = &init.kind
            else {
                continue;
            };
            if !args.is_empty() || !CLONE_METHODS.contains(&method.as_str()) {
                continue;
            }
            let Some((root, display)) = place_root(recv) else {
                continue;
            };
            cands.push(CloneBind {
                nid,
                y: y.clone(),
                root,
                display,
                method: method.clone(),
                line: *line,
                col: *col,
            });
        }
    }
    if cands.is_empty() {
        return;
    }

    // Map every modification site to the CFG nodes that perform it.
    let mut site_nodes: BTreeMap<(String, u32, u32), BTreeSet<usize>> = BTreeMap::new();
    for (nid, block) in cfg.nodes.iter().enumerate() {
        for step in &block.steps {
            for (name, line, col) in step_mods(step) {
                site_nodes.entry((name, line, col)).or_default().insert(nid);
            }
        }
    }

    let analysis = MayMod;
    let in_facts = solve(cfg, &analysis);
    for cand in cands {
        // Innermost natural loop containing the clone's node.
        let Some(body) = loops
            .iter()
            .filter(|b| b.contains(&cand.nid))
            .min_by_key(|b| b.len())
        else {
            continue;
        };
        let Some(fact_in) = in_facts.get(cand.nid).and_then(|f| f.as_ref()) else {
            continue;
        };
        let Some(steps) = cfg.nodes.get(cand.nid).map(|n| n.steps.as_slice()) else {
            continue;
        };
        // Fact holding immediately before the clone bind.
        let mut at_bind: Option<<MayMod as Analysis<'_>>::Fact> = None;
        replay(&analysis, steps, fact_in, &mut |step, fact| {
            if at_bind.is_none() {
                if let Step::Bind { line, col, .. } = step {
                    if *line == cand.line && *col == cand.col {
                        at_bind = Some(fact.clone());
                    }
                }
            }
        });
        let Some(fact) = at_bind else {
            continue;
        };
        let in_loop = |name: &str, sites: Option<&BTreeSet<(u32, u32)>>| {
            sites.is_some_and(|sites| {
                sites.iter().any(|(l, c)| {
                    site_nodes
                        .get(&(name.to_string(), *l, *c))
                        .is_some_and(|nodes| nodes.iter().any(|n| body.contains(n)))
                })
            })
        };
        if in_loop(&cand.root, fact.get(&cand.root)) {
            continue;
        }
        // `y` must not be separately modified inside the loop (its own
        // bind site is the candidate itself).
        let y_modified = fact.get(&cand.y).is_some_and(|sites| {
            sites.iter().any(|(l, c)| {
                (*l, *c) != (cand.line, cand.col)
                    && site_nodes
                        .get(&(cand.y.clone(), *l, *c))
                        .is_some_and(|nodes| nodes.iter().any(|n| body.contains(n)))
            })
        });
        if y_modified {
            continue;
        }
        let fix = c2_fix(file, node, &cand.y, &cand.root, cand.line, cand.col);
        let mut finding = Finding::at(
            "C2",
            Severity::Warn,
            &file.parsed.rel_path,
            cand.line,
            cand.col,
            format!(
                "`{}.{}()` is loop-invariant: `{}` is never modified inside the \
                 enclosing loop, so the copy is re-made every iteration; hoist the \
                 `let {}` above the loop",
                cand.display, cand.method, cand.root, cand.y
            ),
            file.snippet(cand.line),
        );
        finding.fix = fix;
        findings.push(finding);
    }
}

/// Attach the hoist fix for a loop-invariant clone: delete the whole
/// single-line `let` and re-insert it immediately above the innermost
/// enclosing loop statement, at the loop's indentation.
fn c2_fix(
    file: &crate::graph::AnalyzedFile,
    node: &FnNode<'_>,
    y: &str,
    root: &str,
    line: u32,
    col: u32,
) -> Option<Fix> {
    let _ = root;
    let line_text = file.lines.get(line.saturating_sub(1) as usize)?;
    let indent = line_text.len() - line_text.trim_start().len();
    let stmt_text = line_text.trim();
    // Whole-line single statement: the `let` starts the line and the
    // statement ends it.
    if col.saturating_sub(1) as usize != indent || !stmt_text.ends_with(';') {
        return None;
    }
    // Locate the innermost AST loop holding this let, and vet `y`'s
    // in-loop uses as read-shaped so the hoisted value is never moved.
    let mut target: Option<(&Expr, &[Stmt])> = None;
    let mut stack = Vec::new();
    walk_with_loops(&node.info.body, &mut stack, &mut |stmt, loops| {
        if target.is_some() {
            return;
        }
        if let Stmt::Let {
            line: l, col: c, ..
        } = stmt
        {
            if *l == line && *c == col {
                if let Some(lp) = loops.last() {
                    let body = child_blocks(lp).into_iter().next();
                    if let Some(body) = body {
                        target = Some((*lp, body.as_slice()));
                    }
                }
            }
        }
    });
    let (loop_expr, body) = target?;
    if !uses_are_read_shaped(body, y) {
        return None;
    }
    let loop_line_text = file.lines.get(loop_expr.line.saturating_sub(1) as usize)?;
    let loop_indent = &loop_line_text[..loop_line_text.len() - loop_line_text.trim_start().len()];
    if loop_expr.col.saturating_sub(1) as usize != loop_indent.len() {
        return None;
    }
    let insert_at = offset_in_lines(&file.lines, loop_expr.line, 1);
    let del_start = offset_in_lines(&file.lines, line, 1);
    let del_end = offset_in_lines(&file.lines, line + 1, 1);
    Some(Fix {
        title: format!("hoist `let {y}` above the loop"),
        edits: vec![
            FixEdit {
                start: insert_at,
                end: insert_at,
                replacement: format!("{loop_indent}{stmt_text}\n"),
            },
            FixEdit {
                start: del_start,
                end: del_end,
                replacement: String::new(),
            },
        ],
    })
}

/// Render the `--hotpaths` report: the top-`n` costliest entry chains,
/// each following the most expensive callee from its entry point.
pub fn hotpath_report(
    ws: &Workspace,
    graph: &CallGraph<'_>,
    model: &CostModel,
    n: usize,
) -> String {
    let mut ranked: Vec<usize> = model.entries.clone();
    ranked.sort_by(|&a, &b| {
        let ca = model.total.get(a).copied().unwrap_or(0);
        let cb = model.total.get(b).copied().unwrap_or(0);
        cb.cmp(&ca).then_with(|| {
            let na = graph.fns.get(a).map(fn_display).unwrap_or_default();
            let nb = graph.fns.get(b).map(fn_display).unwrap_or_default();
            na.cmp(&nb).then(a.cmp(&b))
        })
    });
    let mut out = String::new();
    out.push_str("aipan-lint --hotpaths: costliest pipeline entry chains\n");
    for (rank, &entry) in ranked.iter().take(n).enumerate() {
        let mut chain = vec![entry];
        let mut seen: BTreeSet<usize> = chain.iter().copied().collect();
        let mut cur = entry;
        while chain.len() < MAX_PATH {
            let next = graph
                .edges
                .get(cur)
                .map(Vec::as_slice)
                .unwrap_or(&[])
                .iter()
                .map(|e| e.to)
                .filter(|t| !seen.contains(t))
                .max_by_key(|&t| (model.total.get(t).copied().unwrap_or(0), usize::MAX - t));
            match next {
                Some(t) if model.total.get(t).copied().unwrap_or(0) > 0 => {
                    chain.push(t);
                    seen.insert(t);
                    cur = t;
                }
                _ => break,
            }
        }
        let hops: Vec<String> = chain
            .iter()
            .filter_map(|&i| {
                let node = graph.fns.get(i)?;
                let cost = model.total.get(i).copied().unwrap_or(0);
                Some(format!("{} (cost {cost})", fn_display(node)))
            })
            .collect();
        let file = graph
            .fns
            .get(entry)
            .and_then(|f| ws.files.get(f.file))
            .map(|f| f.parsed.rel_path.as_str())
            .unwrap_or("?");
        out.push_str(&format!(
            "{:>3}. {}\n     entry at {file}\n",
            rank + 1,
            hops.join(" -> ")
        ));
    }
    if ranked.is_empty() {
        out.push_str("(no pipeline entry points found)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_file, ItemKind};

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        Workspace::build(&owned)
    }

    fn first_fn_cfg(src: &str) -> (crate::parser::ParsedFile, Vec<u32>) {
        let parsed = parse_file("crates/x/src/lib.rs", src);
        let depths = parsed
            .items
            .iter()
            .find_map(|i| match &i.kind {
                ItemKind::Fn(info) => {
                    let cfg = Cfg::build(&info.body);
                    Some(loop_depths(&cfg))
                }
                _ => None,
            })
            .unwrap_or_default();
        (parsed, depths)
    }

    #[test]
    fn loop_depths_count_nesting_not_node_ids() {
        let src = "fn f(xs: Vec<u32>) {\n\
                   \x20   touch();\n\
                   \x20   for x in xs {\n\
                   \x20       for y in ys {\n\
                   \x20           use_it(x, y);\n\
                   \x20       }\n\
                   \x20   }\n\
                   }\n";
        let (_, depths) = first_fn_cfg(src);
        assert_eq!(depths.iter().copied().max().unwrap_or(0), 2, "{depths:?}");
        // Entry stays outside every loop.
        assert_eq!(depths.first().copied(), Some(0));
    }

    #[test]
    fn totals_flow_from_callee_to_caller() {
        let w = ws(&[(
            "crates/core/src/lib.rs",
            "pub fn run_pipeline() { helper(); }\n\
             fn helper() { let s = format!(\"x\"); use_it(s); }\n",
        )]);
        let graph = CallGraph::build(&w);
        let model = CostModel::build(&w, &graph);
        let helper = graph.fns.iter().position(|f| f.name == "helper");
        let entry = graph.fns.iter().position(|f| f.name == "run_pipeline");
        let (Some(h), Some(e)) = (helper, entry) else {
            panic!("fns resolved: {:?}", graph.fns.len());
        };
        assert!(model.local.get(h).copied().unwrap_or(0) > 0);
        assert!(
            model.total.get(e) >= model.total.get(h),
            "{:?}",
            model.total
        );
        assert!(model.is_hot(h), "helper is reachable from the entry");
        let path = model.hot_path(&graph, h).unwrap_or_default();
        assert!(path.contains("run_pipeline"), "{path}");
    }

    #[test]
    fn recursion_does_not_hang_and_costs_extra() {
        let w = ws(&[(
            "crates/core/src/lib.rs",
            "pub fn run_pipeline() { spin(0); }\n\
             fn spin(n: u32) { let s = format!(\"{n}\"); spin(n); use_it(s); }\n",
        )]);
        let graph = CallGraph::build(&w);
        let model = CostModel::build(&w, &graph);
        let spin = graph.fns.iter().position(|f| f.name == "spin");
        let Some(s) = spin else {
            panic!("spin resolved");
        };
        assert!(
            model.total.get(s) > model.local.get(s),
            "cycle charged a recursion factor: {:?} {:?}",
            model.local,
            model.total
        );
    }
}
