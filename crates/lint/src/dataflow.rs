//! Generic forward dataflow over [`crate::cfg`] graphs.
//!
//! A rule implements [`Analysis`] — a fact lattice with a join, a
//! per-step transfer function, and an *edge* transfer function that
//! refines facts along `True`/`False` branch edges — and [`solve`] runs
//! the textbook worklist iteration to a fixpoint, returning the fact
//! flowing *into* each node (`None` for nodes no path reaches).
//!
//! Termination: `join` must be monotone over a finite lattice. Both
//! clients satisfy this — the `X1` bounds facts only shrink under
//! intersection and the `D3` taint sets only grow under union, each
//! bounded by the finite set of names/pairs mentioned in one fn body.
//! As a belt-and-braces guarantee against a non-monotone client, the
//! solver also stops after `nodes² × 64` node visits.

use crate::cfg::{Cfg, Edge, Step};

/// A forward dataflow problem.
pub trait Analysis<'a> {
    /// The per-program-point fact.
    type Fact: Clone + PartialEq;

    /// The fact entering the CFG's entry node.
    fn boundary(&self) -> Self::Fact;

    /// Merge `other` into `acc` at a join point.
    fn join(&self, acc: &mut Self::Fact, other: &Self::Fact);

    /// Apply one step's effect to the fact.
    fn step(&self, step: &Step<'a>, fact: &mut Self::Fact);

    /// Refine the fact along an outgoing edge. `branch` is the source
    /// node's trailing `Cond`/`ForHead` step when one exists; `Seq`
    /// edges and branchless nodes pass through unchanged by default.
    fn edge(&self, branch: Option<&Step<'a>>, label: Edge, fact: &mut Self::Fact) {
        let _ = (branch, label, fact);
    }
}

/// Run `analysis` to fixpoint; returns per-node *in* facts (index = node
/// id), `None` for unreached nodes.
pub fn solve<'a, A: Analysis<'a>>(cfg: &Cfg<'a>, analysis: &A) -> Vec<Option<A::Fact>> {
    let n = cfg.nodes.len();
    let mut in_facts: Vec<Option<A::Fact>> = vec![None; n];
    if let Some(slot) = in_facts.get_mut(0) {
        *slot = Some(analysis.boundary());
    }
    let mut queued = vec![false; n];
    let mut worklist = vec![0usize];
    if let Some(q) = queued.get_mut(0) {
        *q = true;
    }
    let mut budget = n.saturating_mul(n).saturating_mul(64).max(64);
    while let Some(id) = worklist.pop() {
        if let Some(q) = queued.get_mut(id) {
            *q = false;
        }
        if budget == 0 {
            break;
        }
        budget -= 1;
        let Some(node) = cfg.nodes.get(id) else {
            continue;
        };
        let Some(fact_in) = in_facts.get(id).and_then(|f| f.clone()) else {
            continue;
        };
        let mut out = fact_in;
        for step in &node.steps {
            analysis.step(step, &mut out);
        }
        let branch = cfg.branch_step(id);
        for (target, label) in &node.succs {
            let mut edge_fact = out.clone();
            analysis.edge(branch, *label, &mut edge_fact);
            let changed = match in_facts.get_mut(*target) {
                Some(slot) => match slot {
                    Some(existing) => {
                        let before = existing.clone();
                        analysis.join(existing, &edge_fact);
                        *existing != before
                    }
                    None => {
                        *slot = Some(edge_fact);
                        true
                    }
                },
                None => false,
            };
            if changed {
                if let Some(q) = queued.get_mut(*target) {
                    if !*q {
                        *q = true;
                        worklist.push(*target);
                    }
                }
            }
        }
    }
    in_facts
}

/// Replay a node's steps from its in-fact, calling `visit` with the fact
/// holding *before* each step — how rules inspect intra-node program
/// points after [`solve`].
pub fn replay<'a, A: Analysis<'a>>(
    analysis: &A,
    steps: &[Step<'a>],
    fact_in: &A::Fact,
    visit: &mut impl FnMut(&Step<'a>, &A::Fact),
) {
    let mut fact = fact_in.clone();
    for step in steps {
        visit(step, &fact);
        analysis.step(step, &mut fact);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::expr::ExprKind;
    use crate::parser::{parse_file, ItemKind};

    /// Toy may-analysis: collect the names of all `Path` expressions
    /// evaluated so far (union join).
    struct SeenNames;

    impl<'a> Analysis<'a> for SeenNames {
        type Fact = std::collections::BTreeSet<String>;

        fn boundary(&self) -> Self::Fact {
            Default::default()
        }

        fn join(&self, acc: &mut Self::Fact, other: &Self::Fact) {
            acc.extend(other.iter().cloned());
        }

        fn step(&self, step: &Step<'a>, fact: &mut Self::Fact) {
            if let Step::Eval(e) = step {
                if let ExprKind::Path(segs) = &e.kind {
                    fact.insert(segs.join("::"));
                }
            }
        }
    }

    fn facts_at_exit(body_src: &str) -> std::collections::BTreeSet<String> {
        let src = format!("fn f() {{ {body_src} }}\n");
        let parsed = parse_file("crates/x/src/lib.rs", &src);
        let Some(item) = parsed.items.first() else {
            panic!("no item");
        };
        let ItemKind::Fn(info) = &item.kind else {
            panic!("not a fn");
        };
        let cfg = Cfg::build(&info.body);
        let facts = solve(&cfg, &SeenNames);
        facts
            .get(cfg.exit)
            .and_then(|f| f.clone())
            .unwrap_or_default()
    }

    #[test]
    fn facts_flow_through_branches_to_exit() {
        let seen = facts_at_exit("if c { a; } else { b; }");
        assert!(seen.contains("a") && seen.contains("b"), "{seen:?}");
    }

    #[test]
    fn loop_body_facts_reach_exit() {
        let seen = facts_at_exit("while c { inner; } after;");
        assert!(seen.contains("inner") && seen.contains("after"), "{seen:?}");
    }

    #[test]
    fn fixpoint_terminates_on_nested_loops() {
        let seen = facts_at_exit("loop { loop { if c { break; } x; } y; break; } z;");
        assert!(seen.contains("z"), "{seen:?}");
    }
}
