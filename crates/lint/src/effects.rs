//! Fn-level filesystem-effect inference and the `F1` rule.
//!
//! PR 8's streaming contract keeps durable writes confined to the
//! journal/shard layer (`crates/core/src/journal.rs`, `shard.rs`): the
//! per-domain hot loop appends through `ShardedJournal`, and nothing
//! else on the pipeline's hot path touches the filesystem. This pass
//! makes that contract checkable: every fn gets an *fs effect* bit —
//! true when it (transitively) performs filesystem I/O that does **not**
//! originate inside the sanctioned journal/shard modules — propagated
//! callees-first over the [`crate::cost::call_sccs`] condensation,
//! exactly the way the cost model propagates totals.
//!
//! **`F1` filesystem-I/O-in-hot-loop** (Warn): a call at loop depth ≥ 1
//! inside a fn of the pipeline hot set either performs filesystem I/O
//! directly or reaches a workspace fn with an unsanctioned fs effect.
//! At the 10–100× corpus scale an open/write per loop iteration is a
//! syscall storm the sharded journal exists to absorb; findings carry
//! the cost model's entry→fn witness chain.
//!
//! Approximation directions (DESIGN.md §6a): the fs base set is
//! syntactic (`fs::*` paths, `File`/`OpenOptions` ctors, `sync_all`/
//! `sync_data`), so I/O behind an unresolvable trait object is missed
//! (under-approximates effects); propagation merges all call edges, so
//! a dynamically-dead branch still taints its caller (over-approximates
//! reachability, the conservative direction for a hot-loop rule); and
//! effects originating *inside* journal/shard files are sanctioned
//! wholesale — the rule checks confinement, not volume.

use crate::callgraph::{CallGraph, FnNode, Resolution};
use crate::cost::{self, CostModel};
use crate::findings::{Finding, Severity};
use crate::graph::Workspace;
use crate::parser::CallSite;

/// Method names that force durable I/O on an already-open handle.
const FS_METHODS: &[&str] = &["sync_all", "sync_data"];

/// Type heads whose associated fns open filesystem handles.
const FS_TYPES: &[&str] = &["File", "OpenOptions", "DirBuilder"];

/// Files whose filesystem effects are sanctioned: the durable-write
/// layer the rest of the pipeline is supposed to route through.
const SANCTIONED_SUFFIXES: &[&str] = &["/journal.rs", "/shard.rs"];

/// Whether one call site is directly filesystem I/O.
fn is_fs_call(call: &CallSite) -> bool {
    if call.is_method {
        return FS_METHODS.contains(&call.name.as_str());
    }
    // Path calls: `fs::write`, `std::fs::read_to_string`,
    // `File::open`, `OpenOptions::new`.
    call.path.iter().any(|s| s == "fs")
        || call
            .path
            .first()
            .is_some_and(|head| FS_TYPES.contains(&head.as_str()))
}

/// Whether a fn's defining file is part of the sanctioned write layer.
fn is_sanctioned(ws: &Workspace, node: &FnNode<'_>) -> bool {
    ws.files.get(node.file).is_some_and(|f| {
        SANCTIONED_SUFFIXES
            .iter()
            .any(|s| f.parsed.rel_path.ends_with(s))
    })
}

/// Per-fn effect facts for one analyzed workspace.
#[derive(Debug)]
pub struct EffectModel {
    /// Whether the fn transitively performs filesystem I/O originating
    /// outside the journal/shard layer (index = call-graph fn id).
    pub fs_unsanctioned: Vec<bool>,
}

impl EffectModel {
    /// Infer effects for every call-graph fn, callees first.
    pub fn build(ws: &Workspace, graph: &CallGraph<'_>) -> EffectModel {
        let n = graph.fns.len();
        let mut fs_unsanctioned = vec![false; n];
        for (i, node) in graph.fns.iter().enumerate() {
            if is_sanctioned(ws, node) {
                continue;
            }
            if node.info.calls.iter().any(is_fs_call) {
                if let Some(slot) = fs_unsanctioned.get_mut(i) {
                    *slot = true;
                }
            }
        }
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (u, edges) in graph.edges.iter().enumerate() {
            for edge in edges {
                if let Some(s) = succs.get_mut(u) {
                    s.push(edge.to);
                }
            }
        }
        for component in cost::call_sccs(n, &succs) {
            let tainted = component.iter().any(|&m| {
                fs_unsanctioned.get(m).copied().unwrap_or(false)
                    || succs
                        .get(m)
                        .map(Vec::as_slice)
                        .unwrap_or(&[])
                        .iter()
                        .any(|&t| {
                            !component.contains(&t)
                                && fs_unsanctioned.get(t).copied().unwrap_or(false)
                        })
            });
            if tainted {
                for &m in &component {
                    if let Some(slot) = fs_unsanctioned.get_mut(m) {
                        *slot = true;
                    }
                }
            }
        }
        EffectModel { fs_unsanctioned }
    }

    /// Whether fn `id` carries an unsanctioned fs effect.
    pub fn has_fs(&self, id: usize) -> bool {
        self.fs_unsanctioned.get(id).copied().unwrap_or(false)
    }
}

/// Run the `F1` pass: unsanctioned filesystem I/O at loop depth ≥ 1 in
/// hot-set fns outside the journal/shard layer.
pub fn check_effects(
    ws: &Workspace,
    graph: &CallGraph<'_>,
    model: &CostModel,
    effects: &EffectModel,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (id, node) in graph.fns.iter().enumerate() {
        if !model.is_hot(id) || is_sanctioned(ws, node) {
            continue;
        }
        let Some(file) = ws.files.get(node.file) else {
            continue;
        };
        let depths = cost::line_loop_depths(&node.info.body);
        let resolved_fs = |call: &CallSite| -> Option<String> {
            if is_fs_call(call) {
                return Some(call.name.clone());
            }
            match graph.resolve(node.file, node.self_ty, call) {
                Resolution::Fns(ids) => ids
                    .iter()
                    .find(|&&t| effects.has_fs(t))
                    .and_then(|&t| graph.fns.get(t))
                    .map(cost::fn_display),
                _ => None,
            }
        };
        for call in &node.info.calls {
            if depths.get(&call.line).copied().unwrap_or(0) == 0 {
                continue;
            }
            let Some(callee) = resolved_fs(call) else {
                continue;
            };
            findings.push(Finding::at(
                "F1",
                Severity::Warn,
                &file.parsed.rel_path,
                call.line,
                call.col,
                format!(
                    "`{callee}` performs filesystem I/O inside a corpus-scale hot loop \
                     (hot path: {}); route durable writes through the journal/shard \
                     layer or hoist the I/O out of the loop",
                    model
                        .hot_path(graph, id)
                        .unwrap_or_else(|| node.name.to_string()),
                ),
                file.snippet(call.line),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        Workspace::build(&owned)
    }

    fn f1_findings(files: &[(&str, &str)]) -> Vec<Finding> {
        let ws = ws(files);
        let graph = CallGraph::build(&ws);
        let model = CostModel::build(&ws, &graph);
        let effects = EffectModel::build(&ws, &graph);
        check_effects(&ws, &graph, &model, &effects)
    }

    #[test]
    fn direct_fs_write_in_hot_loop_fires() {
        let findings = f1_findings(&[(
            "crates/core/src/pipeline.rs",
            "pub fn run_pipeline(domains: &[String]) {\n\
                 for d in domains {\n\
                     std::fs::write(d, \"x\").ok();\n\
                 }\n\
             }\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = findings.first().expect("finding");
        assert_eq!((f.rule, f.severity), ("F1", Severity::Warn));
        assert_eq!(f.line, 3);
        assert!(
            f.message.contains("hot path: run_pipeline"),
            "{}",
            f.message
        );
    }

    #[test]
    fn fs_effect_propagates_through_helpers() {
        let findings = f1_findings(&[(
            "crates/core/src/pipeline.rs",
            "pub fn run_pipeline(domains: &[String]) {\n\
                 for d in domains {\n\
                     persist(d);\n\
                 }\n\
             }\n\
             fn persist(d: &str) { std::fs::write(d, \"x\").ok(); }\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings
                .first()
                .is_some_and(|f| f.message.contains("persist")),
            "{findings:?}"
        );
    }

    #[test]
    fn journal_layer_calls_are_sanctioned() {
        let findings = f1_findings(&[
            (
                "crates/core/src/pipeline.rs",
                "use crate::journal::append_record;\n\
                 pub fn run_pipeline(domains: &[String]) {\n\
                     for d in domains {\n\
                         append_record(d);\n\
                     }\n\
                 }\n",
            ),
            (
                "crates/core/src/journal.rs",
                "pub fn append_record(d: &str) { std::fs::write(d, \"x\").ok(); }\n",
            ),
        ]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn fs_outside_loops_or_cold_fns_is_silent() {
        let findings = f1_findings(&[(
            "crates/core/src/pipeline.rs",
            "pub fn run_pipeline(domains: &[String]) {\n\
                 std::fs::write(\"summary\", \"x\").ok();\n\
                 for d in domains { use_it(d); }\n\
             }\n\
             fn use_it(_d: &str) {}\n\
             pub fn cold_helper(domains: &[String]) {\n\
                 for d in domains { std::fs::write(d, \"x\").ok(); }\n\
             }\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
