//! `E1`: discarded `Result`s from fallible workspace functions.
//!
//! The paper's pipeline earns trust through verification layers; an error
//! silently dropped between them (a crawl failure, a malformed annotation,
//! a validation miss) turns a measured number into a guess. This pass
//! resolves every call in library code through the import-aware
//! [`crate::callgraph`] and flags:
//!
//! - `let _ = fallible(...);` — the error explicitly thrown away;
//! - `fallible(...);` as a bare statement — implicitly dropped;
//! - `anything.ok();` statement-final — the error mapped to `None` and
//!   then dropped, which is the same silence with extra steps.
//!
//! A discarded call fires only when resolution lands on a workspace fn
//! whose declared return type mentions `Result`. A call that resolves
//! *external* (a foreign import shadowing a workspace name, `std::fs::
//! remove_file` style) or *unknown* (a method on a non-`self` receiver)
//! never fires — the bare-name collision class that previously needed a
//! standing allowlist entry is resolved structurally instead.
//! Tests, benches, examples, binaries, and `#[cfg(test)]` code are exempt,
//! as for `R1`/`O1`.

use crate::callgraph::{CallGraph, Resolution};
use crate::findings::{Finding, Severity};
use crate::graph::Workspace;
use crate::parser::Discard;

/// Run the `E1` pass over an analyzed workspace.
pub fn check_error_flow(ws: &Workspace) -> Vec<Finding> {
    let graph = CallGraph::build(ws);
    check_with_graph(ws, &graph)
}

/// `E1` against a prebuilt call graph (shared with the `X1` pass).
pub fn check_with_graph(ws: &Workspace, graph: &CallGraph<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for node in &graph.fns {
        let Some(file) = ws.files.get(node.file) else {
            continue;
        };
        for call in &node.info.calls {
            if call.discard == Discard::None {
                continue;
            }
            if call.is_method && call.name == "ok" {
                findings.push(Finding::at(
                    "E1",
                    Severity::Warn,
                    &file.parsed.rel_path,
                    call.line,
                    call.col,
                    "`.ok()` whose value is immediately dropped swallows the error; \
                     handle the Err case, propagate with `?`, or match explicitly"
                        .to_string(),
                    file.snippet(call.line),
                ));
                continue;
            }
            let Resolution::Fns(ids) = graph.resolve(node.file, node.self_ty, call) else {
                continue;
            };
            let fallible = ids
                .iter()
                .any(|id| graph.fns.get(*id).is_some_and(|f| f.info.returns_result));
            if !fallible {
                continue;
            }
            let how = match call.discard {
                Discard::LetUnderscore => "`let _ =` discards",
                _ => "a bare statement drops",
            };
            findings.push(Finding::at(
                "E1",
                Severity::Warn,
                &file.parsed.rel_path,
                call.line,
                call.col,
                format!(
                    "{how} the Result of fallible workspace fn `{}`; handle or \
                     propagate the error (or justify the discard in lint.allow)",
                    call.name
                ),
                file.snippet(call.line),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        Workspace::build(&owned)
    }

    const FALLIBLE_DEF: (&str, &str) = (
        "crates/net/src/url.rs",
        "pub fn parse(s: &str) -> Result<Url, UrlError> { todo(s) }\n",
    );

    #[test]
    fn let_underscore_discard_fires() {
        let w = ws(&[
            FALLIBLE_DEF,
            (
                "crates/core/src/lib.rs",
                "use aipan_net::url::parse;\npub fn f(s: &str) { let _ = parse(s); }\n",
            ),
        ]);
        let f = check_error_flow(&w);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(
            (f[0].rule, f[0].file.as_str()),
            ("E1", "crates/core/src/lib.rs")
        );
        assert!(f[0].message.contains("let _ ="), "{}", f[0].message);
    }

    #[test]
    fn bare_statement_discard_fires() {
        let w = ws(&[
            FALLIBLE_DEF,
            (
                "crates/core/src/lib.rs",
                "use aipan_net::url::parse;\npub fn f(s: &str) { parse(s); }\n",
            ),
        ]);
        let f = check_error_flow(&w);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("bare statement"));
    }

    #[test]
    fn ok_swallowing_fires_regardless_of_callee_origin() {
        let w = ws(&[(
            "crates/core/src/lib.rs",
            "pub fn f(s: &str) { std::fs::remove_file(s).ok(); }\n",
        )]);
        let f = check_error_flow(&w);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains(".ok()"));
    }

    #[test]
    fn used_results_are_clean() {
        let w = ws(&[
            FALLIBLE_DEF,
            (
                "crates/core/src/lib.rs",
                "use aipan_net::url::parse;\n\
                 pub fn f(s: &str) -> Result<Url, UrlError> {\n\
                 \x20   let u = parse(s)?;\n\
                 \x20   if parse(s).is_ok() { return parse(s); }\n\
                 \x20   let v = parse(s).ok();\n\
                 \x20   other(v);\n\
                 \x20   Ok(u)\n\
                 }\n\
                 fn other<T>(_v: T) {}\n",
            ),
        ]);
        let f = check_error_flow(&w);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_code_and_test_targets_are_exempt() {
        let w = ws(&[
            FALLIBLE_DEF,
            (
                "crates/core/src/lib.rs",
                "use aipan_net::url::parse;\n\
                 #[cfg(test)]\nmod tests {\n    fn t() { let _ = parse(\"x\"); }\n}\n",
            ),
            (
                "crates/core/tests/t.rs",
                "#[test]\nfn t() { let _ = parse(\"x\"); }\n",
            ),
        ]);
        assert!(check_error_flow(&w).is_empty());
    }

    #[test]
    fn infallible_workspace_fns_are_clean() {
        let w = ws(&[
            (
                "crates/net/src/url.rs",
                "pub fn normalize(s: &str) -> String { s.to_string() }\n",
            ),
            (
                "crates/core/src/lib.rs",
                "use aipan_net::url::normalize;\npub fn f(s: &str) { normalize(s); }\n",
            ),
        ]);
        assert!(check_error_flow(&w).is_empty());
    }

    #[test]
    fn unimported_bare_name_does_not_fire() {
        // Without a `use`, resolution is Unknown — the old bare-name
        // matching would have fired here.
        let w = ws(&[
            FALLIBLE_DEF,
            (
                "crates/core/src/lib.rs",
                "pub fn f(s: &str) { let _ = parse(s); }\n",
            ),
        ]);
        assert!(check_error_flow(&w).is_empty());
    }

    #[test]
    fn external_import_shadows_workspace_name() {
        // `remove_file` exists fallibly in the workspace, but this file
        // imported std's; the discard is of the external one.
        let w = ws(&[
            (
                "crates/net/src/fsops.rs",
                "pub fn remove_file(p: &str) -> Result<(), E> { Err(E) }\n",
            ),
            (
                "crates/core/src/lib.rs",
                "use std::fs::remove_file;\npub fn f(p: &str) { let _ = remove_file(p); }\n",
            ),
        ]);
        assert!(check_error_flow(&w).is_empty());
    }

    #[test]
    fn foreign_method_sharing_a_workspace_fn_name_does_not_fire() {
        // The crossbeam-`join` collision class: a method on a non-`self`
        // receiver never resolves to a workspace free fn.
        let w = ws(&[
            (
                "crates/exec/src/lib.rs",
                "pub fn join(parts: &[String]) -> Result<String, E> { Err(E) }\n",
            ),
            (
                "crates/crawler/src/pool.rs",
                "pub fn run(handle: Handle) { handle.join(); }\n",
            ),
        ]);
        assert!(check_error_flow(&w).is_empty());
    }
}
