//! `E1`: discarded `Result`s from fallible workspace functions.
//!
//! The paper's pipeline earns trust through verification layers; an error
//! silently dropped between them (a crawl failure, a malformed annotation,
//! a validation miss) turns a measured number into a guess. This pass
//! resolves every call in library code against the set of *workspace*
//! functions whose declared return type mentions `Result`, and flags:
//!
//! - `let _ = fallible(...);` — the error explicitly thrown away;
//! - `fallible(...);` as a bare statement — implicitly dropped;
//! - `anything.ok();` statement-final — the error mapped to `None` and
//!   then dropped, which is the same silence with extra steps.
//!
//! Resolution is by callee name (the parser does not do type inference),
//! so a workspace fn and a foreign method sharing a name can collide; the
//! allowlist covers such vetted cases, with the collision documented.
//! Tests, benches, examples, binaries, and `#[cfg(test)]` code are exempt,
//! as for `R1`/`O1`.

use crate::findings::{Finding, Severity};
use crate::graph::{AnalyzedFile, Workspace};
use crate::parser::{Discard, FnInfo, Item, ItemKind};
use std::collections::BTreeSet;

/// Run the `E1` pass over an analyzed workspace.
pub fn check_error_flow(ws: &Workspace) -> Vec<Finding> {
    let fallible = fallible_fn_names(ws);
    let mut findings = Vec::new();
    for file in &ws.files {
        if !file.class.is_library_code() {
            continue;
        }
        let mut fns: Vec<&Item> = Vec::new();
        collect_fns(&file.parsed.items, &mut fns);
        for item in fns {
            if let ItemKind::Fn(info) = &item.kind {
                scan_fn(file, info, &fallible, &mut findings);
            }
        }
    }
    findings
}

/// Flag the discarded-`Result` patterns inside one fn body.
fn scan_fn(
    file: &AnalyzedFile,
    info: &FnInfo,
    fallible: &BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    for call in &info.calls {
        if call.discard == Discard::None {
            continue;
        }
        if call.is_method && call.name == "ok" {
            findings.push(Finding::at(
                "E1",
                Severity::Warn,
                &file.parsed.rel_path,
                call.line,
                call.col,
                "`.ok()` whose value is immediately dropped swallows the error; \
                 handle the Err case, propagate with `?`, or match explicitly"
                    .to_string(),
                file.snippet(call.line),
            ));
        } else if fallible.contains(call.name.as_str()) {
            let how = match call.discard {
                Discard::LetUnderscore => "`let _ =` discards",
                _ => "a bare statement drops",
            };
            findings.push(Finding::at(
                "E1",
                Severity::Warn,
                &file.parsed.rel_path,
                call.line,
                call.col,
                format!(
                    "{how} the Result of fallible workspace fn `{}`; handle or \
                     propagate the error (or justify the discard in lint.allow)",
                    call.name
                ),
                file.snippet(call.line),
            ));
        }
    }
}

/// Names of workspace fns whose declared return type mentions `Result`,
/// collected from non-test library code across all crates.
fn fallible_fn_names(ws: &Workspace) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for file in &ws.files {
        if !file.class.is_library_code() {
            continue;
        }
        let mut fns = Vec::new();
        collect_fns(&file.parsed.items, &mut fns);
        for item in fns {
            if let ItemKind::Fn(info) = &item.kind {
                if info.returns_result && !item.cfg_test {
                    names.insert(item.name.clone());
                }
            }
        }
    }
    names
}

/// All fn items (free, impl, trait, nested in mods), excluding
/// `#[cfg(test)]` scopes.
fn collect_fns<'a>(items: &'a [Item], out: &mut Vec<&'a Item>) {
    for item in items {
        if item.cfg_test {
            continue;
        }
        if matches!(item.kind, ItemKind::Fn(_)) {
            out.push(item);
        }
        collect_fns(&item.children, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        Workspace::build(&owned)
    }

    const FALLIBLE_DEF: (&str, &str) = (
        "crates/net/src/url.rs",
        "pub fn parse(s: &str) -> Result<Url, UrlError> { todo(s) }\n",
    );

    #[test]
    fn let_underscore_discard_fires() {
        let w = ws(&[
            FALLIBLE_DEF,
            (
                "crates/core/src/lib.rs",
                "pub fn f(s: &str) { let _ = parse(s); }\n",
            ),
        ]);
        let f = check_error_flow(&w);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(
            (f[0].rule, f[0].file.as_str()),
            ("E1", "crates/core/src/lib.rs")
        );
        assert!(f[0].message.contains("let _ ="), "{}", f[0].message);
    }

    #[test]
    fn bare_statement_discard_fires() {
        let w = ws(&[
            FALLIBLE_DEF,
            (
                "crates/core/src/lib.rs",
                "pub fn f(s: &str) { parse(s); }\n",
            ),
        ]);
        let f = check_error_flow(&w);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("bare statement"));
    }

    #[test]
    fn ok_swallowing_fires_regardless_of_callee_origin() {
        let w = ws(&[(
            "crates/core/src/lib.rs",
            "pub fn f(s: &str) { std::fs::remove_file(s).ok(); }\n",
        )]);
        let f = check_error_flow(&w);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains(".ok()"));
    }

    #[test]
    fn used_results_are_clean() {
        let w = ws(&[
            FALLIBLE_DEF,
            (
                "crates/core/src/lib.rs",
                "pub fn f(s: &str) -> Result<Url, UrlError> {\n\
                 \x20   let u = parse(s)?;\n\
                 \x20   if parse(s).is_ok() { return parse(s); }\n\
                 \x20   let v = parse(s).ok();\n\
                 \x20   other(v);\n\
                 \x20   Ok(u)\n\
                 }\n\
                 fn other<T>(_v: T) {}\n",
            ),
        ]);
        let f = check_error_flow(&w);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_code_and_test_targets_are_exempt() {
        let w = ws(&[
            FALLIBLE_DEF,
            (
                "crates/core/src/lib.rs",
                "#[cfg(test)]\nmod tests {\n    fn t() { let _ = parse(\"x\"); }\n}\n",
            ),
            (
                "crates/core/tests/t.rs",
                "#[test]\nfn t() { let _ = parse(\"x\"); }\n",
            ),
        ]);
        assert!(check_error_flow(&w).is_empty());
    }

    #[test]
    fn infallible_workspace_fns_are_clean() {
        let w = ws(&[
            (
                "crates/net/src/url.rs",
                "pub fn normalize(s: &str) -> String { s.to_string() }\n",
            ),
            (
                "crates/core/src/lib.rs",
                "pub fn f(s: &str) { normalize(s); }\n",
            ),
        ]);
        assert!(check_error_flow(&w).is_empty());
    }
}
