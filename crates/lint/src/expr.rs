//! Expression grammar for fn bodies (lint v3).
//!
//! [`crate::parser`] resolves *items*; this module parses the token range
//! of one fn body into a statement/expression AST: method chains, match
//! arms with guards, `if let`/`while let`, index/field/call expressions,
//! closures, struct literals, and macro invocations. The CFG builder
//! ([`crate::cfg`]) and the dataflow rules (`X1`, `D3`) consume this AST;
//! the legacy [`crate::parser::CallSite`] list is *derived* from it (see
//! [`collect_calls`]), so the statement-level consumers (`E1`, `K1`) keep
//! their exact semantics.
//!
//! The lexer emits multi-byte operators as consecutive single-byte
//! `Punct` tokens, so operator recognition re-joins *source-adjacent*
//! punctuation (`>` `>` at adjacent columns is a shift; `>` `>` closing
//! two generic lists in a turbofish is never adjacent to an operand
//! context). That is what makes `Vec<Vec<u32>>` vs `a >> b`
//! disambiguation fall out of context rather than lookahead hacks.
//!
//! Like the item parser, this parser is tolerant by construction: any
//! token run it cannot shape becomes an [`ExprKind::Unknown`] leaf and
//! the parse continues — malformed input degrades to less structure,
//! never to a panic.

use crate::lexer::{Token, TokenKind};
use crate::parser::{CallSite, Discard};

/// One statement inside a fn body or block.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let pat[: ty] [= init] [else { .. }];`
    Let {
        /// Bound pattern.
        pat: Pat,
        /// Declared type tokens (empty when inferred).
        ty: Vec<String>,
        /// Initializer expression, when present.
        init: Option<Expr>,
        /// `let .. else` diverging block.
        else_block: Option<Vec<Stmt>>,
        /// 1-based line of the `let` keyword.
        line: u32,
        /// 1-based column of the `let` keyword.
        col: u32,
    },
    /// An expression statement; `semi` records a trailing `;`.
    Expr {
        /// The expression.
        expr: Expr,
        /// Whether the statement ends with `;` (value dropped).
        semi: bool,
    },
}

/// One expression node.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Shape and children.
    pub kind: ExprKind,
    /// 1-based line of the expression's first token.
    pub line: u32,
    /// 1-based column of the expression's first token.
    pub col: u32,
    /// Significant-token index of the expression's first token.
    pub tok: usize,
    /// Significant-token index of the expression's *name* token: the last
    /// path segment for paths, the method name for method calls; equals
    /// `tok` otherwise. Call-site derivation anchors lines/columns here.
    pub name_tok: usize,
}

/// Expression shapes. Control-flow shapes (`If`..`Match`, `Block`) are
/// lowered structurally by the CFG builder; everything else is a leaf or
/// an operator node the rule walkers descend through.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// A (possibly qualified) path: `x`, `self`, `Url::parse`.
    Path(Vec<String>),
    /// Number, string, char, or bool literal.
    Lit(String),
    /// Prefix operator: `-x`, `!x`, `*x`.
    Unary {
        /// Operator byte (`-`, `!`, `*`).
        op: char,
        /// Operand.
        operand: Box<Expr>,
    },
    /// `&expr` / `&mut expr`.
    Ref {
        /// True for `&mut`.
        mutable: bool,
        /// Referent.
        operand: Box<Expr>,
    },
    /// Infix operator (`+`, `==`, `&&`, `<<`, ...).
    Binary {
        /// Operator text.
        op: String,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `lhs = rhs`, `lhs += rhs`, ...
    Assign {
        /// Operator text (`=`, `+=`, ...).
        op: String,
        /// Assignee.
        lhs: Box<Expr>,
        /// Value.
        rhs: Box<Expr>,
    },
    /// `expr as Ty`.
    Cast {
        /// Value being cast.
        operand: Box<Expr>,
        /// Target type tokens.
        ty: Vec<String>,
    },
    /// `callee(args)`.
    Call {
        /// Callee (usually a `Path`).
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `recv.name::<T>(args)`.
    MethodCall {
        /// Receiver.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Turbofish type tokens (empty when absent).
        turbofish: Vec<String>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `name!(args)` / `path::name![..]` / `name!{..}`.
    MacroCall {
        /// Macro path.
        path: Vec<String>,
        /// Arguments that parsed as expressions (others become `Unknown`).
        args: Vec<Expr>,
        /// Identifiers captured by `{ident}` holes in a leading format
        /// string literal argument.
        captures: Vec<String>,
    },
    /// `base.field` / `base.0` / `base.await`.
    Field {
        /// Base expression.
        base: Box<Expr>,
        /// Field name (tuple indices as digits; `await` for awaits).
        name: String,
    },
    /// `base[index]`.
    Index {
        /// Indexed expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// `expr?`.
    Try {
        /// Fallible operand.
        operand: Box<Expr>,
    },
    /// `lo..hi` / `lo..=hi` with either side optional.
    Range {
        /// Lower bound.
        lo: Option<Box<Expr>>,
        /// Upper bound.
        hi: Option<Box<Expr>>,
        /// True for `..=`.
        inclusive: bool,
    },
    /// `(a, b, ..)` — a 1-tuple of parens yields the inner expression
    /// instead.
    Tuple(Vec<Expr>),
    /// `[a, b, ..]`.
    Array(Vec<Expr>),
    /// `[elem; len]`.
    Repeat {
        /// Element expression.
        elem: Box<Expr>,
        /// Length expression.
        len: Box<Expr>,
    },
    /// `Path { field: expr, .. }`.
    StructLit {
        /// Struct path.
        path: Vec<String>,
        /// Field initializers (shorthand `field` becomes `field: field`).
        fields: Vec<(String, Expr)>,
        /// `..base` functional-update expression.
        rest: Option<Box<Expr>>,
    },
    /// `{ stmts }` (including `unsafe { .. }`).
    Block(Vec<Stmt>),
    /// `if cond { .. } [else ..]`.
    If {
        /// Condition.
        cond: Box<Expr>,
        /// Then-block statements.
        then_block: Vec<Stmt>,
        /// Else expression (`Block` or chained `If`).
        else_expr: Option<Box<Expr>>,
    },
    /// `if let pat = scrutinee { .. } [else ..]`.
    IfLet {
        /// Matched pattern.
        pat: Pat,
        /// Matched value.
        scrutinee: Box<Expr>,
        /// Then-block statements.
        then_block: Vec<Stmt>,
        /// Else expression.
        else_expr: Option<Box<Expr>>,
    },
    /// `while cond { .. }`.
    While {
        /// Condition.
        cond: Box<Expr>,
        /// Body statements.
        body: Vec<Stmt>,
    },
    /// `while let pat = scrutinee { .. }`.
    WhileLet {
        /// Matched pattern.
        pat: Pat,
        /// Matched value.
        scrutinee: Box<Expr>,
        /// Body statements.
        body: Vec<Stmt>,
    },
    /// `for pat in iter { .. }`.
    For {
        /// Loop binding.
        pat: Pat,
        /// Iterated expression.
        iter: Box<Expr>,
        /// Body statements.
        body: Vec<Stmt>,
    },
    /// `loop { .. }`.
    Loop {
        /// Body statements.
        body: Vec<Stmt>,
    },
    /// `match scrutinee { arms }`.
    Match {
        /// Matched value.
        scrutinee: Box<Expr>,
        /// Arms in source order.
        arms: Vec<Arm>,
    },
    /// `|params| body` / `move |params| body`.
    Closure {
        /// True for `move` closures.
        moves: bool,
        /// Parameter patterns.
        params: Vec<Pat>,
        /// Body expression.
        body: Box<Expr>,
    },
    /// `return [expr]`.
    Return(Option<Box<Expr>>),
    /// `break ['label] [expr]`.
    Break(Option<Box<Expr>>),
    /// `continue ['label]`.
    Continue,
    /// Token run the parser could not shape (tolerant recovery).
    Unknown,
}

/// One match arm: `pat | pat if guard => body`.
#[derive(Debug, Clone, PartialEq)]
pub struct Arm {
    /// Arm pattern (alternatives folded into [`Pat::Or`]).
    pub pat: Pat,
    /// Guard expression after `if`, when present.
    pub guard: Option<Expr>,
    /// Arm body.
    pub body: Expr,
}

/// Patterns, at the resolution the dataflow rules need: which names a
/// pattern binds, plus enough structure to walk tuples and variants.
#[derive(Debug, Clone, PartialEq)]
pub enum Pat {
    /// `_`.
    Wild,
    /// A binding: `x`, `ref x`, `mut x`, `x @ sub`.
    Ident {
        /// Bound name.
        name: String,
        /// True for `ref` bindings.
        by_ref: bool,
        /// True for `mut` bindings.
        mutable: bool,
    },
    /// A unit path pattern: `None`, `Sector::Web`, `true`.
    Path(Vec<String>),
    /// A literal pattern (including literal ranges).
    Lit(String),
    /// `(a, b)`.
    Tuple(Vec<Pat>),
    /// `Variant(a, b)`.
    TupleStruct {
        /// Variant path.
        path: Vec<String>,
        /// Element patterns.
        elems: Vec<Pat>,
    },
    /// `Struct { field: pat, .. }`.
    Struct {
        /// Struct path.
        path: Vec<String>,
        /// Field patterns (shorthand `field` binds `field`).
        fields: Vec<(String, Pat)>,
    },
    /// `[a, b, ..]`.
    Slice(Vec<Pat>),
    /// `&pat` / `&mut pat`.
    Ref(Box<Pat>),
    /// `a | b` alternatives.
    Or(Vec<Pat>),
    /// `..` rest.
    Rest,
    /// Unrecognized pattern tokens.
    Unknown,
}

impl Pat {
    /// All names this pattern binds, in source order.
    pub fn bound_names(&self, out: &mut Vec<String>) {
        match self {
            Pat::Ident { name, .. } => out.push(name.clone()),
            Pat::Tuple(elems) | Pat::Slice(elems) | Pat::Or(elems) => {
                for p in elems {
                    p.bound_names(out);
                }
            }
            Pat::TupleStruct { elems, .. } => {
                for p in elems {
                    p.bound_names(out);
                }
            }
            Pat::Struct { fields, .. } => {
                for (_, p) in fields {
                    p.bound_names(out);
                }
            }
            Pat::Ref(inner) => inner.bound_names(out),
            Pat::Wild | Pat::Path(_) | Pat::Lit(_) | Pat::Rest | Pat::Unknown => {}
        }
    }
}

impl Expr {
    /// The plain dotted path of this expression when it is a chain of
    /// `Path`/`Field` over identifiers (`self.metrics` →
    /// `["self", "metrics"]`); `None` when any link is computed.
    pub fn plain_path(&self) -> Option<Vec<String>> {
        match &self.kind {
            ExprKind::Path(segs) => Some(segs.clone()),
            ExprKind::Field { base, name } => {
                let mut segs = base.plain_path()?;
                segs.push(name.clone());
                Some(segs)
            }
            _ => None,
        }
    }

    /// Whether this expression introduces control flow the CFG builder
    /// lowers structurally (rule walkers stop at these).
    pub fn is_control(&self) -> bool {
        matches!(
            self.kind,
            ExprKind::If { .. }
                | ExprKind::IfLet { .. }
                | ExprKind::While { .. }
                | ExprKind::WhileLet { .. }
                | ExprKind::For { .. }
                | ExprKind::Loop { .. }
                | ExprKind::Match { .. }
                | ExprKind::Block(_)
                | ExprKind::Closure { .. }
                | ExprKind::Return(_)
                | ExprKind::Break(_)
                | ExprKind::Continue
        )
    }
}

/// Maximum expression nesting before the parser degrades to `Unknown`
/// (keeps arbitrary token soup from recursing unboundedly).
const MAX_DEPTH: u32 = 80;

/// Keywords that terminate expression parsing when seen in operand
/// position (item starts and grammar words the body parser handles
/// elsewhere).
const STOP_WORDS: &[&str] = &[
    "else", "in", "where", "impl", "dyn", "pub", "use", "mod", "struct", "enum", "trait", "static",
    "type", "extern", "fn", "let",
];

/// Parse the body token range `[start, end)` (inside the braces) into
/// statements. `sig`/`texts` are the file's significant tokens.
pub(crate) fn parse_body<'a>(
    sig: &[&Token<'a>],
    texts: &[&'a str],
    start: usize,
    end: usize,
) -> Vec<Stmt> {
    let mut p = BodyParser {
        sig,
        texts,
        pos: start,
        end: end.min(texts.len()),
        depth: 0,
    };
    p.parse_stmts()
}

struct BodyParser<'a, 'b> {
    sig: &'a [&'a Token<'b>],
    texts: &'a [&'b str],
    pos: usize,
    end: usize,
    depth: u32,
}

impl<'a, 'b> BodyParser<'a, 'b> {
    fn at(&self, i: usize) -> &'b str {
        if i < self.end {
            self.texts.get(i).copied().unwrap_or("")
        } else {
            ""
        }
    }

    fn cur(&self) -> &'b str {
        self.at(self.pos)
    }

    fn peek(&self, n: usize) -> &'b str {
        self.at(self.pos + n)
    }

    fn kind_at(&self, i: usize) -> Option<TokenKind> {
        if i < self.end {
            self.sig.get(i).map(|t| t.kind)
        } else {
            None
        }
    }

    fn pos_of(&self, i: usize) -> (u32, u32) {
        self.sig.get(i).map(|t| (t.line, t.col)).unwrap_or((0, 0))
    }

    fn done(&self) -> bool {
        self.pos >= self.end
    }

    /// Whether tokens `i` and `i+1` touch in the source (no whitespace or
    /// comment between them) — the condition for two `Punct` tokens to
    /// form one multi-byte operator.
    fn adjacent(&self, i: usize) -> bool {
        match (self.sig.get(i), self.sig.get(i + 1)) {
            (Some(a), Some(b)) if i + 1 < self.end => {
                let width = u32::try_from(a.text.len()).unwrap_or(u32::MAX);
                a.line == b.line && b.col == a.col.saturating_add(width)
            }
            _ => false,
        }
    }

    /// Maximal-munch operator at the cursor: joins source-adjacent
    /// `Punct` tokens into one operator text, returning it with its token
    /// length. Returns `None` for non-punctuation.
    fn op_ahead(&self) -> Option<(String, usize)> {
        if self.kind_at(self.pos) != Some(TokenKind::Punct) {
            return None;
        }
        let a = self.cur();
        let b = if self.adjacent(self.pos) {
            self.peek(1)
        } else {
            ""
        };
        let c = if self.adjacent(self.pos) && self.adjacent(self.pos + 1) {
            self.peek(2)
        } else {
            ""
        };
        let three = format!("{a}{b}{c}");
        if matches!(three.as_str(), "..=" | "<<=" | ">>=") {
            return Some((three, 3));
        }
        let two = format!("{a}{b}");
        if matches!(
            two.as_str(),
            "&&" | "||"
                | "=="
                | "!="
                | "<="
                | ">="
                | "+="
                | "-="
                | "*="
                | "/="
                | "%="
                | "^="
                | "&="
                | "|="
                | "<<"
                | ">>"
                | "->"
                | "=>"
                | "::"
                | ".."
        ) {
            return Some((two, 2));
        }
        Some((a.to_string(), 1))
    }

    fn expr_at(&self, start: usize, kind: ExprKind) -> Expr {
        let (line, col) = self.pos_of(start);
        Expr {
            kind,
            line,
            col,
            tok: start,
            name_tok: start,
        }
    }

    /// Parse statements up to the region end or a `}` at this level.
    fn parse_stmts(&mut self) -> Vec<Stmt> {
        let mut stmts = Vec::new();
        while !self.done() && self.cur() != "}" {
            let before = self.pos;
            if self.cur() == ";" {
                self.pos += 1;
                continue;
            }
            self.skip_stmt_attrs();
            if self.done() || self.cur() == "}" {
                break;
            }
            match self.cur() {
                "let" => stmts.push(self.parse_let()),
                "fn" => {
                    // Nested fn: skip the signature, parse the body as a
                    // block statement so its calls stay visible.
                    self.skip_to_body_or_semi();
                    if self.cur() == "{" {
                        let start = self.pos;
                        let block = self.parse_block();
                        stmts.push(Stmt::Expr {
                            expr: self.expr_at(start, ExprKind::Block(block)),
                            semi: false,
                        });
                    }
                }
                t if is_item_start(t) => self.skip_item_like(),
                _ => {
                    let expr = self.parse_expr(0, false);
                    let semi = self.cur() == ";";
                    if semi {
                        self.pos += 1;
                    }
                    stmts.push(Stmt::Expr { expr, semi });
                }
            }
            if self.pos == before {
                // Recovery: guarantee progress on any input.
                self.pos += 1;
            }
        }
        stmts
    }

    /// Skip `#[..]` statement attributes.
    fn skip_stmt_attrs(&mut self) {
        while self.cur() == "#" && self.peek(1) == "[" {
            self.pos += 1;
            self.skip_balanced();
        }
    }

    /// Skip an item-like statement (`use ..;`, `struct S {..}`, ...)
    /// without modeling it.
    fn skip_item_like(&mut self) {
        while !self.done() {
            match self.cur() {
                ";" => {
                    self.pos += 1;
                    return;
                }
                "{" => {
                    self.skip_balanced();
                    return;
                }
                "(" | "[" => self.skip_balanced(),
                "}" => return,
                _ => self.pos += 1,
            }
        }
    }

    /// Skip tokens until a `{` or `;` at group depth 0 (nested fn
    /// signatures; parens skipped whole).
    fn skip_to_body_or_semi(&mut self) {
        while !self.done() {
            match self.cur() {
                "{" | ";" => return,
                "(" | "[" => self.skip_balanced(),
                "}" => return,
                _ => self.pos += 1,
            }
        }
    }

    /// Skip one balanced group with the cursor on the opener.
    fn skip_balanced(&mut self) {
        let (open, close) = match self.cur() {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => {
                self.pos += 1;
                return;
            }
        };
        let mut depth = 0usize;
        while !self.done() {
            let t = self.cur();
            self.pos += 1;
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
        }
    }

    fn parse_let(&mut self) -> Stmt {
        let (line, col) = self.pos_of(self.pos);
        self.pos += 1; // let
        let pat = self.parse_pat(true);
        let mut ty = Vec::new();
        if self.cur() == ":" && self.op_ahead().map(|(op, _)| op) == Some(":".to_string()) {
            self.pos += 1;
            ty = self.scan_type(&["=", ";"]);
        }
        let mut init = None;
        if self.cur() == "=" && self.op_ahead().map(|(op, _)| op) == Some("=".to_string()) {
            self.pos += 1;
            init = Some(self.parse_expr(0, false));
        }
        let mut else_block = None;
        if self.cur() == "else" && self.peek(1) == "{" {
            self.pos += 1;
            else_block = Some(self.parse_block());
        }
        if self.cur() == ";" {
            self.pos += 1;
        }
        Stmt::Let {
            pat,
            ty,
            init,
            else_block,
            line,
            col,
        }
    }

    /// Collect type tokens until one of `stops` at bracket/angle depth 0;
    /// `->` inside `Fn(..) -> T` is tolerated. Cursor stops on the stop
    /// token (or an enclosing closer).
    fn scan_type(&mut self, stops: &[&str]) -> Vec<String> {
        let mut out = Vec::new();
        let mut angle = 0i32;
        let mut group = 0i32;
        while !self.done() {
            let t = self.cur();
            if t == "-" && self.adjacent(self.pos) && self.peek(1) == ">" {
                out.push("->".to_string());
                self.pos += 2;
                continue;
            }
            if angle == 0 && group == 0 && stops.contains(&t) {
                break;
            }
            match t {
                "<" => angle += 1,
                ">" => {
                    if angle == 0 {
                        break;
                    }
                    angle -= 1;
                }
                "(" | "[" | "{" => group += 1,
                ")" | "]" | "}" => {
                    if group == 0 {
                        break;
                    }
                    group -= 1;
                }
                ";" | "=" if group == 0 && angle == 0 => break,
                _ => {}
            }
            out.push(t.to_string());
            self.pos += 1;
        }
        out
    }

    /// Parse one expression with operator precedence (`min_bp` is the
    /// minimum binding power; `no_struct` suppresses struct literals, as
    /// in condition position).
    fn parse_expr(&mut self, min_bp: u8, no_struct: bool) -> Expr {
        if self.depth >= MAX_DEPTH {
            let start = self.pos;
            match self.cur() {
                "(" | "[" | "{" => self.skip_balanced(),
                _ => self.pos += 1,
            }
            return self.expr_at(start, ExprKind::Unknown);
        }
        self.depth += 1;
        let e = self.parse_expr_inner(min_bp, no_struct);
        self.depth -= 1;
        e
    }

    fn parse_expr_inner(&mut self, min_bp: u8, no_struct: bool) -> Expr {
        let mut lhs = self.parse_prefix(no_struct);
        loop {
            if self.done() {
                break;
            }
            // Postfix: `.`, call, index, `?`.
            match self.cur() {
                "." => {
                    // `..` is the range operator, not a field access.
                    if self.adjacent(self.pos) && self.peek(1) == "." {
                        // fall through to binary handling below
                    } else {
                        lhs = self.parse_postfix_dot(lhs);
                        continue;
                    }
                }
                "(" => {
                    if postfix_binds(min_bp) {
                        let args = self.parse_paren_args();
                        let start = lhs.tok;
                        let name_tok = lhs.name_tok;
                        let mut e = self.expr_at(
                            start,
                            ExprKind::Call {
                                callee: Box::new(lhs),
                                args,
                            },
                        );
                        e.name_tok = name_tok;
                        lhs = e;
                        continue;
                    }
                }
                "[" => {
                    if postfix_binds(min_bp) {
                        self.pos += 1;
                        let index = self.parse_expr(0, false);
                        if self.cur() == "]" {
                            self.pos += 1;
                        }
                        let start = lhs.tok;
                        lhs = self.expr_at(
                            start,
                            ExprKind::Index {
                                base: Box::new(lhs),
                                index: Box::new(index),
                            },
                        );
                        continue;
                    }
                }
                "?" => {
                    self.pos += 1;
                    let start = lhs.tok;
                    lhs = self.expr_at(
                        start,
                        ExprKind::Try {
                            operand: Box::new(lhs),
                        },
                    );
                    continue;
                }
                "as" => {
                    self.pos += 1;
                    let ty = self.scan_type(&[
                        ",", ";", ")", "]", "}", "=", "+", "-", "*", "/", "%", "?", ".", "{", "<",
                        ">", "&", "|", "!", "^",
                    ]);
                    let start = lhs.tok;
                    lhs = self.expr_at(
                        start,
                        ExprKind::Cast {
                            operand: Box::new(lhs),
                            ty,
                        },
                    );
                    continue;
                }
                _ => {}
            }
            // Binary / assignment / range operators.
            let Some((op, len)) = self.op_ahead() else {
                break;
            };
            let Some((l_bp, r_bp)) = infix_binding(&op) else {
                break;
            };
            if l_bp < min_bp {
                break;
            }
            self.pos += len;
            if op == ".." || op == "..=" {
                let hi = if self.range_operand_ahead() {
                    Some(Box::new(self.parse_expr(r_bp, no_struct)))
                } else {
                    None
                };
                let start = lhs.tok;
                lhs = self.expr_at(
                    start,
                    ExprKind::Range {
                        lo: Some(Box::new(lhs)),
                        hi,
                        inclusive: op == "..=",
                    },
                );
                continue;
            }
            let rhs = self.parse_expr(r_bp, no_struct);
            let start = lhs.tok;
            let kind = if op == "=" || op.len() == 2 && op.ends_with('=') && is_compound_assign(&op)
            {
                ExprKind::Assign {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                }
            } else {
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                }
            };
            lhs = self.expr_at(start, kind);
        }
        lhs
    }

    /// Whether a token that can start a range operand follows.
    fn range_operand_ahead(&self) -> bool {
        let t = self.cur();
        if t.is_empty() {
            return false;
        }
        match self.kind_at(self.pos) {
            Some(TokenKind::Ident) => !STOP_WORDS.contains(&t) && t != "else",
            Some(TokenKind::Number) | Some(TokenKind::Literal) => true,
            Some(TokenKind::Punct) => matches!(t, "(" | "[" | "-" | "*" | "&" | "!"),
            _ => false,
        }
    }

    /// Parse `.name`, `.name(..)`, `.name::<T>(..)`, `.0`, `.await`.
    fn parse_postfix_dot(&mut self, base: Expr) -> Expr {
        let start = base.tok;
        self.pos += 1; // .
        let name_tok = self.pos;
        let name = match self.kind_at(self.pos) {
            Some(TokenKind::Ident) => {
                let n = self.cur().to_string();
                self.pos += 1;
                n
            }
            Some(TokenKind::Number) => {
                let n = self.cur().to_string();
                self.pos += 1;
                n
            }
            _ => {
                return self.expr_at(
                    start,
                    ExprKind::Field {
                        base: Box::new(base),
                        name: String::new(),
                    },
                );
            }
        };
        // Turbofish: `::<T>`.
        let mut turbofish = Vec::new();
        if self.cur() == ":"
            && self.adjacent(self.pos)
            && self.peek(1) == ":"
            && self.peek(2) == "<"
        {
            self.pos += 2;
            turbofish = self.scan_generic_args();
        }
        if self.cur() == "(" {
            let args = self.parse_paren_args();
            let mut e = self.expr_at(
                start,
                ExprKind::MethodCall {
                    recv: Box::new(base),
                    name,
                    turbofish,
                    args,
                },
            );
            e.name_tok = name_tok;
            e
        } else {
            self.expr_at(
                start,
                ExprKind::Field {
                    base: Box::new(base),
                    name,
                },
            )
        }
    }

    /// Consume a `<..>` generic-argument list (cursor on `<`), returning
    /// its inner token texts. Single-byte `>` tokens close one level each,
    /// which is exactly how `Vec<Vec<u32>>` splits its `>>`.
    fn scan_generic_args(&mut self) -> Vec<String> {
        let mut out = Vec::new();
        if self.cur() != "<" {
            return out;
        }
        self.pos += 1;
        let mut depth = 1i32;
        while !self.done() {
            let t = self.cur();
            if t == "-" && self.adjacent(self.pos) && self.peek(1) == ">" {
                out.push("->".to_string());
                self.pos += 2;
                continue;
            }
            match t {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        self.pos += 1;
                        return out;
                    }
                }
                "(" | "[" => {
                    // Balanced group inside generics (`Fn(A, B)` bounds).
                    let before = self.pos;
                    self.skip_balanced();
                    for i in before..self.pos {
                        out.push(self.at(i).to_string());
                    }
                    continue;
                }
                ";" | "{" | "}" => return out, // malformed: bail
                _ => {}
            }
            out.push(t.to_string());
            self.pos += 1;
        }
        out
    }

    /// Parse a parenthesized argument list with the cursor on `(`.
    fn parse_paren_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        if self.cur() != "(" {
            return args;
        }
        self.pos += 1;
        while !self.done() && self.cur() != ")" {
            let before = self.pos;
            args.push(self.parse_expr(0, false));
            if self.cur() == "," {
                self.pos += 1;
            } else if self.pos == before {
                self.pos += 1; // recovery inside malformed args
            }
        }
        if self.cur() == ")" {
            self.pos += 1;
        }
        args
    }

    /// Parse a `{ .. }` block with the cursor on `{`; returns its
    /// statements with the cursor past the closing `}`.
    fn parse_block(&mut self) -> Vec<Stmt> {
        if self.cur() != "{" {
            return Vec::new();
        }
        self.pos += 1;
        let stmts = self.parse_stmts();
        if self.cur() == "}" {
            self.pos += 1;
        }
        stmts
    }

    fn parse_prefix(&mut self, no_struct: bool) -> Expr {
        let start = self.pos;
        if self.done() {
            return self.expr_at(start, ExprKind::Unknown);
        }
        // Loop labels: `'a: loop { .. }`.
        if self.kind_at(self.pos) == Some(TokenKind::Lifetime) && self.peek(1) == ":" {
            self.pos += 2;
            return self.parse_prefix(no_struct);
        }
        match self.cur() {
            "(" => {
                self.pos += 1;
                let mut elems = Vec::new();
                let mut trailing_comma = false;
                while !self.done() && self.cur() != ")" {
                    let before = self.pos;
                    elems.push(self.parse_expr(0, false));
                    trailing_comma = false;
                    if self.cur() == "," {
                        self.pos += 1;
                        trailing_comma = true;
                    } else if self.pos == before {
                        self.pos += 1;
                    }
                }
                if self.cur() == ")" {
                    self.pos += 1;
                }
                if elems.len() == 1 && !trailing_comma {
                    let mut inner = elems.remove(0);
                    inner.tok = start;
                    return inner;
                }
                self.expr_at(start, ExprKind::Tuple(elems))
            }
            "[" => {
                self.pos += 1;
                let mut elems = Vec::new();
                let mut repeat_len = None;
                while !self.done() && self.cur() != "]" {
                    let before = self.pos;
                    let e = self.parse_expr(0, false);
                    if self.cur() == ";" && repeat_len.is_none() && elems.is_empty() {
                        self.pos += 1;
                        elems.push(e);
                        repeat_len = Some(self.parse_expr(0, false));
                        continue;
                    }
                    elems.push(e);
                    if self.cur() == "," {
                        self.pos += 1;
                    } else if self.pos == before {
                        self.pos += 1;
                    }
                }
                if self.cur() == "]" {
                    self.pos += 1;
                }
                if let (Some(len), Some(elem)) = (repeat_len, elems.drain(..).next()) {
                    return self.expr_at(
                        start,
                        ExprKind::Repeat {
                            elem: Box::new(elem),
                            len: Box::new(len),
                        },
                    );
                }
                self.expr_at(start, ExprKind::Array(elems))
            }
            "{" => {
                let block = self.parse_block();
                self.expr_at(start, ExprKind::Block(block))
            }
            "&" => {
                // `&&x` is two nested refs when adjacent.
                let double = self.adjacent(self.pos) && self.peek(1) == "&";
                self.pos += 1;
                if double {
                    // Re-enter so the second `&` wraps the operand.
                    let inner = self.parse_prefix(no_struct);
                    return self.expr_at(
                        start,
                        ExprKind::Ref {
                            mutable: false,
                            operand: Box::new(inner),
                        },
                    );
                }
                let mutable = self.cur() == "mut";
                if mutable {
                    self.pos += 1;
                }
                let operand = self.parse_expr(UNARY_BP, no_struct);
                self.expr_at(
                    start,
                    ExprKind::Ref {
                        mutable,
                        operand: Box::new(operand),
                    },
                )
            }
            "-" | "!" | "*" => {
                let op = self.cur().bytes().next().unwrap_or(b'-') as char;
                self.pos += 1;
                let operand = self.parse_expr(UNARY_BP, no_struct);
                self.expr_at(
                    start,
                    ExprKind::Unary {
                        op,
                        operand: Box::new(operand),
                    },
                )
            }
            "." => {
                // Prefix range `..x` / `..=x` / bare `..`.
                if self.adjacent(self.pos) && self.peek(1) == "." {
                    let inclusive = self.adjacent(self.pos + 1) && self.peek(2) == "=";
                    self.pos += if inclusive { 3 } else { 2 };
                    let hi = if self.range_operand_ahead() {
                        Some(Box::new(self.parse_expr(RANGE_BP, no_struct)))
                    } else {
                        None
                    };
                    return self.expr_at(
                        start,
                        ExprKind::Range {
                            lo: None,
                            hi,
                            inclusive,
                        },
                    );
                }
                self.pos += 1;
                self.expr_at(start, ExprKind::Unknown)
            }
            "|" => self.parse_closure(start, false),
            "move" => {
                self.pos += 1;
                self.parse_closure(start, true)
            }
            "if" => self.parse_if(start),
            "while" => self.parse_while(start),
            "for" => self.parse_for(start),
            "loop" => {
                self.pos += 1;
                let body = self.parse_block();
                self.expr_at(start, ExprKind::Loop { body })
            }
            "match" => self.parse_match(start),
            "unsafe" | "async" if self.peek(1) == "{" => {
                self.pos += 1;
                let block = self.parse_block();
                self.expr_at(start, ExprKind::Block(block))
            }
            "return" => {
                self.pos += 1;
                let operand = if self.expr_start_ahead() {
                    Some(Box::new(self.parse_expr(0, no_struct)))
                } else {
                    None
                };
                self.expr_at(start, ExprKind::Return(operand))
            }
            "break" => {
                self.pos += 1;
                if self.kind_at(self.pos) == Some(TokenKind::Lifetime) {
                    self.pos += 1;
                }
                let operand = if self.expr_start_ahead() {
                    Some(Box::new(self.parse_expr(0, no_struct)))
                } else {
                    None
                };
                self.expr_at(start, ExprKind::Break(operand))
            }
            "continue" => {
                self.pos += 1;
                if self.kind_at(self.pos) == Some(TokenKind::Lifetime) {
                    self.pos += 1;
                }
                self.expr_at(start, ExprKind::Continue)
            }
            _ => match self.kind_at(self.pos) {
                Some(TokenKind::Number) | Some(TokenKind::Literal) => {
                    let text = self.cur().to_string();
                    self.pos += 1;
                    self.expr_at(start, ExprKind::Lit(text))
                }
                Some(TokenKind::Ident) if !STOP_WORDS.contains(&self.cur()) => {
                    self.parse_path_expr(start, no_struct)
                }
                _ => {
                    match self.cur() {
                        "(" | "[" | "{" => self.skip_balanced(),
                        _ => self.pos += 1,
                    }
                    self.expr_at(start, ExprKind::Unknown)
                }
            },
        }
    }

    /// Whether the cursor could start an expression (for optional
    /// `return`/`break` operands).
    fn expr_start_ahead(&self) -> bool {
        let t = self.cur();
        if t.is_empty() || matches!(t, ";" | "," | ")" | "]" | "}") {
            return false;
        }
        if STOP_WORDS.contains(&t) || t == "else" {
            return false;
        }
        true
    }

    /// Parse `|params| body` with the cursor on `|` (or just past `move`).
    fn parse_closure(&mut self, start: usize, moves: bool) -> Expr {
        let mut params = Vec::new();
        // `||` adjacent = empty parameter list.
        if self.cur() == "|" && self.adjacent(self.pos) && self.peek(1) == "|" {
            self.pos += 2;
        } else if self.cur() == "|" {
            self.pos += 1;
            while !self.done() && self.cur() != "|" {
                let before = self.pos;
                params.push(self.parse_pat(false));
                if self.cur() == ":" {
                    self.pos += 1;
                    self.scan_type(&[",", "|"]);
                }
                if self.cur() == "," {
                    self.pos += 1;
                } else if self.pos == before {
                    self.pos += 1;
                }
            }
            if self.cur() == "|" {
                self.pos += 1;
            }
        } else {
            return self.expr_at(start, ExprKind::Unknown);
        }
        // Optional `-> T` return type forces a block body.
        if self.cur() == "-" && self.adjacent(self.pos) && self.peek(1) == ">" {
            self.pos += 2;
            self.scan_type(&["{"]);
        }
        let body = self.parse_expr(CLOSURE_BODY_BP, false);
        self.expr_at(
            start,
            ExprKind::Closure {
                moves,
                params,
                body: Box::new(body),
            },
        )
    }

    fn parse_if(&mut self, start: usize) -> Expr {
        self.pos += 1; // if
        if self.cur() == "let" {
            self.pos += 1;
            let pat = self.parse_pat(true);
            if self.cur() == "=" {
                self.pos += 1;
            }
            let scrutinee = self.parse_expr(0, true);
            let then_block = self.parse_block();
            let else_expr = self.parse_else();
            return self.expr_at(
                start,
                ExprKind::IfLet {
                    pat,
                    scrutinee: Box::new(scrutinee),
                    then_block,
                    else_expr,
                },
            );
        }
        let cond = self.parse_expr(0, true);
        let then_block = self.parse_block();
        let else_expr = self.parse_else();
        self.expr_at(
            start,
            ExprKind::If {
                cond: Box::new(cond),
                then_block,
                else_expr,
            },
        )
    }

    fn parse_else(&mut self) -> Option<Box<Expr>> {
        if self.cur() != "else" {
            return None;
        }
        self.pos += 1;
        let start = self.pos;
        if self.cur() == "if" {
            Some(Box::new(self.parse_if(start)))
        } else {
            let block = self.parse_block();
            Some(Box::new(self.expr_at(start, ExprKind::Block(block))))
        }
    }

    fn parse_while(&mut self, start: usize) -> Expr {
        self.pos += 1; // while
        if self.cur() == "let" {
            self.pos += 1;
            let pat = self.parse_pat(true);
            if self.cur() == "=" {
                self.pos += 1;
            }
            let scrutinee = self.parse_expr(0, true);
            let body = self.parse_block();
            return self.expr_at(
                start,
                ExprKind::WhileLet {
                    pat,
                    scrutinee: Box::new(scrutinee),
                    body,
                },
            );
        }
        let cond = self.parse_expr(0, true);
        let body = self.parse_block();
        self.expr_at(
            start,
            ExprKind::While {
                cond: Box::new(cond),
                body,
            },
        )
    }

    fn parse_for(&mut self, start: usize) -> Expr {
        self.pos += 1; // for
        let pat = self.parse_pat(true);
        if self.cur() == "in" {
            self.pos += 1;
        }
        let iter = self.parse_expr(0, true);
        let body = self.parse_block();
        self.expr_at(
            start,
            ExprKind::For {
                pat,
                iter: Box::new(iter),
                body,
            },
        )
    }

    fn parse_match(&mut self, start: usize) -> Expr {
        self.pos += 1; // match
        let scrutinee = self.parse_expr(0, true);
        let mut arms = Vec::new();
        if self.cur() == "{" {
            self.pos += 1;
            while !self.done() && self.cur() != "}" {
                let before = self.pos;
                self.skip_stmt_attrs();
                let pat = self.parse_pat(true);
                let guard = if self.cur() == "if" {
                    self.pos += 1;
                    Some(self.parse_expr(0, true))
                } else {
                    None
                };
                if self.cur() == "=" && self.adjacent(self.pos) && self.peek(1) == ">" {
                    self.pos += 2;
                }
                let body = self.parse_expr(0, false);
                if self.cur() == "," {
                    self.pos += 1;
                }
                arms.push(Arm { pat, guard, body });
                if self.pos == before {
                    self.pos += 1;
                }
            }
            if self.cur() == "}" {
                self.pos += 1;
            }
        }
        self.expr_at(
            start,
            ExprKind::Match {
                scrutinee: Box::new(scrutinee),
                arms,
            },
        )
    }

    /// Parse a path-rooted expression: path, turbofish call, macro call,
    /// or struct literal.
    fn parse_path_expr(&mut self, start: usize, no_struct: bool) -> Expr {
        let mut segs = Vec::new();
        let mut last_seg_tok = self.pos;
        loop {
            match self.kind_at(self.pos) {
                Some(TokenKind::Ident) => {
                    let raw = self.cur();
                    last_seg_tok = self.pos;
                    segs.push(raw.strip_prefix("r#").unwrap_or(raw).to_string());
                    self.pos += 1;
                }
                _ => break,
            }
            // `::` continuation (segment or turbofish).
            if self.cur() == ":" && self.adjacent(self.pos) && self.peek(1) == ":" {
                if self.peek(2) == "<" {
                    self.pos += 2;
                    let _generics = self.scan_generic_args();
                    // Turbofished path: continue if another `::` follows
                    // (`Vec::<u8>::new`).
                    if self.cur() == ":" && self.adjacent(self.pos) && self.peek(1) == ":" {
                        self.pos += 2;
                        continue;
                    }
                    break;
                }
                match self.kind_at(self.pos + 2) {
                    Some(TokenKind::Ident) => {
                        self.pos += 2;
                        continue;
                    }
                    _ => break,
                }
            }
            break;
        }
        // Macro invocation: `name!(..)` / `name![..]` / `name!{..}`.
        if self.cur() == "!" && matches!(self.peek(1), "(" | "[" | "{") {
            self.pos += 1;
            let delim = self.cur();
            let (args, captures) = self.parse_macro_args(delim);
            let mut e = self.expr_at(
                start,
                ExprKind::MacroCall {
                    path: segs,
                    args,
                    captures,
                },
            );
            e.name_tok = last_seg_tok;
            return e;
        }
        // Struct literal: `Path { field: .. }` (suppressed in condition
        // position; the head must look like a type to avoid swallowing
        // blocks after plain variables).
        if self.cur() == "{"
            && !no_struct
            && segs
                .last()
                .map(|s| s.bytes().next().is_some_and(|b| b.is_ascii_uppercase()))
                .unwrap_or(false)
        {
            let (fields, rest) = self.parse_struct_lit_body();
            let mut e = self.expr_at(
                start,
                ExprKind::StructLit {
                    path: segs,
                    fields,
                    rest,
                },
            );
            e.name_tok = last_seg_tok;
            return e;
        }
        let mut e = self.expr_at(start, ExprKind::Path(segs));
        e.name_tok = last_seg_tok;
        e
    }

    /// Parse `{ field: expr, field, ..rest }` with the cursor on `{`.
    fn parse_struct_lit_body(&mut self) -> (Vec<(String, Expr)>, Option<Box<Expr>>) {
        let mut fields = Vec::new();
        let mut rest = None;
        self.pos += 1; // {
        while !self.done() && self.cur() != "}" {
            let before = self.pos;
            if self.cur() == "." && self.adjacent(self.pos) && self.peek(1) == "." {
                self.pos += 2;
                rest = Some(Box::new(self.parse_expr(0, false)));
                if self.cur() == "," {
                    self.pos += 1;
                }
                continue;
            }
            if self.kind_at(self.pos) == Some(TokenKind::Ident) {
                let name = self.cur().to_string();
                let name_tok = self.pos;
                self.pos += 1;
                if self.cur() == ":" && !(self.adjacent(self.pos) && self.peek(1) == ":") {
                    self.pos += 1;
                    let value = self.parse_expr(0, false);
                    fields.push((name, value));
                } else {
                    // Shorthand `field` — value is the same-named path.
                    let mut value = self.expr_at(name_tok, ExprKind::Path(vec![name.clone()]));
                    value.name_tok = name_tok;
                    fields.push((name, value));
                }
            }
            if self.cur() == "," {
                self.pos += 1;
            } else if self.pos == before {
                self.pos += 1;
            }
        }
        if self.cur() == "}" {
            self.pos += 1;
        }
        (fields, rest)
    }

    /// Parse macro arguments. For `(`/`[` delimiters the contents are
    /// comma-separated expressions (tolerantly); `{}` bodies are skipped.
    /// A leading string-literal argument contributes its `{ident}`
    /// capture names.
    fn parse_macro_args(&mut self, delim: &str) -> (Vec<Expr>, Vec<String>) {
        let mut args = Vec::new();
        let mut captures = Vec::new();
        let close = match delim {
            "(" => ")",
            "[" => "]",
            _ => {
                self.skip_balanced();
                return (args, captures);
            }
        };
        self.pos += 1;
        while !self.done() && self.cur() != close {
            let before = self.pos;
            let arg = self.parse_expr(0, false);
            if let ExprKind::Lit(text) = &arg.kind {
                if text.starts_with('"') || text.starts_with("r\"") || text.starts_with("r#") {
                    captures.extend(format_captures(text));
                }
            }
            args.push(arg);
            if self.cur() == "," {
                self.pos += 1;
            } else if self.pos == before {
                self.pos += 1;
            }
        }
        if self.cur() == close {
            self.pos += 1;
        }
        (args, captures)
    }

    /// Parse one pattern. `allow_or` permits top-level `|` alternatives
    /// (match arms, `let`); closure parameters must not eat their closing
    /// `|`.
    fn parse_pat(&mut self, allow_or: bool) -> Pat {
        if self.depth >= MAX_DEPTH {
            self.pos += 1;
            return Pat::Unknown;
        }
        self.depth += 1;
        let mut first = self.parse_pat_single();
        if allow_or && self.cur() == "|" && !(self.adjacent(self.pos) && self.peek(1) == "|") {
            let mut alts = vec![first];
            while self.cur() == "|" && !(self.adjacent(self.pos) && self.peek(1) == "|") {
                self.pos += 1;
                alts.push(self.parse_pat_single());
            }
            first = Pat::Or(alts);
        }
        self.depth -= 1;
        first
    }

    fn parse_pat_single(&mut self) -> Pat {
        // Leading `|` in or-patterns.
        match self.cur() {
            "_" => {
                self.pos += 1;
                return Pat::Wild;
            }
            "&" => {
                self.pos += 1;
                if self.cur() == "&" {
                    self.pos += 1;
                }
                if self.cur() == "mut" {
                    self.pos += 1;
                }
                return Pat::Ref(Box::new(self.parse_pat_single()));
            }
            "(" => {
                let elems = self.parse_pat_list(")");
                return Pat::Tuple(elems);
            }
            "[" => {
                let elems = self.parse_pat_list("]");
                return Pat::Slice(elems);
            }
            "." => {
                if self.adjacent(self.pos) && self.peek(1) == "." {
                    self.pos += 2;
                    if self.cur() == "=" {
                        // `..=lit` range pattern tail.
                        self.pos += 1;
                        if !self.done() {
                            self.pos += 1;
                        }
                    }
                    return Pat::Rest;
                }
                self.pos += 1;
                return Pat::Unknown;
            }
            "-" => {
                // Negative literal pattern.
                self.pos += 1;
                if matches!(
                    self.kind_at(self.pos),
                    Some(TokenKind::Number) | Some(TokenKind::Literal)
                ) {
                    let text = format!("-{}", self.cur());
                    self.pos += 1;
                    self.consume_range_pat_tail();
                    return Pat::Lit(text);
                }
                return Pat::Unknown;
            }
            _ => {}
        }
        match self.kind_at(self.pos) {
            Some(TokenKind::Number) | Some(TokenKind::Literal) => {
                let text = self.cur().to_string();
                self.pos += 1;
                self.consume_range_pat_tail();
                Pat::Lit(text)
            }
            Some(TokenKind::Ident) => self.parse_pat_path(),
            _ => {
                self.pos += 1;
                Pat::Unknown
            }
        }
    }

    /// Consume `..= x` / `.. x` after a literal (range patterns).
    fn consume_range_pat_tail(&mut self) {
        if self.cur() == "." && self.adjacent(self.pos) && self.peek(1) == "." {
            self.pos += 2;
            if self.cur() == "=" {
                self.pos += 1;
            }
            if matches!(
                self.kind_at(self.pos),
                Some(TokenKind::Number) | Some(TokenKind::Literal) | Some(TokenKind::Ident)
            ) {
                self.pos += 1;
            }
        }
    }

    fn parse_pat_path(&mut self) -> Pat {
        let mut by_ref = false;
        let mut mutable = false;
        loop {
            match self.cur() {
                "ref" => {
                    by_ref = true;
                    self.pos += 1;
                }
                "mut" => {
                    mutable = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        if self.kind_at(self.pos) != Some(TokenKind::Ident) {
            return Pat::Unknown;
        }
        let mut segs = Vec::new();
        loop {
            if self.kind_at(self.pos) != Some(TokenKind::Ident) {
                break;
            }
            let raw = self.cur();
            segs.push(raw.strip_prefix("r#").unwrap_or(raw).to_string());
            self.pos += 1;
            if self.cur() == ":"
                && self.adjacent(self.pos)
                && self.peek(1) == ":"
                && self.kind_at(self.pos + 2) == Some(TokenKind::Ident)
            {
                self.pos += 2;
                continue;
            }
            break;
        }
        match self.cur() {
            "(" => {
                let elems = self.parse_pat_list(")");
                Pat::TupleStruct { path: segs, elems }
            }
            "{" => {
                let fields = self.parse_pat_struct_body();
                Pat::Struct { path: segs, fields }
            }
            "@" => {
                self.pos += 1;
                let _sub = self.parse_pat_single();
                Pat::Ident {
                    name: segs.join("::"),
                    by_ref,
                    mutable,
                }
            }
            _ => {
                let is_binding = segs.len() == 1
                    && segs
                        .first()
                        .map(|s| {
                            s.bytes()
                                .next()
                                .is_some_and(|b| b.is_ascii_lowercase() || b == b'_')
                        })
                        .unwrap_or(false);
                if is_binding {
                    let name = segs.join("");
                    Pat::Ident {
                        name,
                        by_ref,
                        mutable,
                    }
                } else {
                    Pat::Path(segs)
                }
            }
        }
    }

    /// Comma-separated sub-patterns up to `close` (cursor on opener).
    fn parse_pat_list(&mut self, close: &str) -> Vec<Pat> {
        let mut elems = Vec::new();
        self.pos += 1;
        while !self.done() && self.cur() != close {
            let before = self.pos;
            elems.push(self.parse_pat(true));
            if self.cur() == "," {
                self.pos += 1;
            } else if self.pos == before {
                self.pos += 1;
            }
        }
        if self.cur() == close {
            self.pos += 1;
        }
        elems
    }

    /// `{ field: pat, field, .. }` body of a struct pattern.
    fn parse_pat_struct_body(&mut self) -> Vec<(String, Pat)> {
        let mut fields = Vec::new();
        self.pos += 1; // {
        while !self.done() && self.cur() != "}" {
            let before = self.pos;
            if self.cur() == "." && self.adjacent(self.pos) && self.peek(1) == "." {
                self.pos += 2;
                continue;
            }
            let mut by_ref = false;
            let mut mutable = false;
            loop {
                match self.cur() {
                    "ref" => {
                        by_ref = true;
                        self.pos += 1;
                    }
                    "mut" => {
                        mutable = true;
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
            if self.kind_at(self.pos) == Some(TokenKind::Ident) {
                let name = self.cur().to_string();
                self.pos += 1;
                if self.cur() == ":" && !(self.adjacent(self.pos) && self.peek(1) == ":") {
                    self.pos += 1;
                    let pat = self.parse_pat(true);
                    fields.push((name, pat));
                } else {
                    fields.push((
                        name.clone(),
                        Pat::Ident {
                            name,
                            by_ref,
                            mutable,
                        },
                    ));
                }
            }
            if self.cur() == "," {
                self.pos += 1;
            } else if self.pos == before {
                self.pos += 1;
            }
        }
        if self.cur() == "}" {
            self.pos += 1;
        }
        fields
    }
}

/// Binding power used for unary operand parsing.
const UNARY_BP: u8 = 17;
/// Range operator binding power (prefix form).
const RANGE_BP: u8 = 3;
/// Closure bodies bind loosely so `|x| x + 1` takes the whole sum.
const CLOSURE_BODY_BP: u8 = 2;

/// Whether postfix operators may attach at this minimum binding power.
fn postfix_binds(min_bp: u8) -> bool {
    min_bp <= 18
}

/// Left/right binding powers for an infix operator; `None` for
/// non-operators (`=>`, `->`, `::`, ...), which terminate the expression.
fn infix_binding(op: &str) -> Option<(u8, u8)> {
    Some(match op {
        "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>=" => (2, 1),
        ".." | "..=" => (3, 3),
        "||" => (4, 5),
        "&&" => (5, 6),
        "==" | "!=" | "<" | ">" | "<=" | ">=" => (7, 8),
        "|" => (10, 11),
        "^" => (11, 12),
        "&" => (12, 13),
        "<<" | ">>" => (13, 14),
        "+" | "-" => (14, 15),
        "*" | "/" | "%" => (15, 16),
        _ => return None,
    })
}

/// Whether a two-byte `X=` operator is a compound assignment.
fn is_compound_assign(op: &str) -> bool {
    matches!(
        op,
        "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>="
    )
}

/// Statement-start tokens that begin nested items the body parser skips.
fn is_item_start(t: &str) -> bool {
    matches!(
        t,
        "use"
            | "struct"
            | "enum"
            | "trait"
            | "impl"
            | "mod"
            | "const"
            | "static"
            | "type"
            | "macro_rules"
            | "extern"
            | "union"
    )
}

/// Identifier capture names inside a format string literal (`"{name}"`,
/// `"{name:?}"`), skipping escaped `{{`.
fn format_captures(lit: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = lit.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes.get(i).copied().unwrap_or(0);
        if b == b'{' {
            if bytes.get(i + 1).copied() == Some(b'{') {
                i += 2;
                continue;
            }
            let mut j = i + 1;
            let mut name = String::new();
            while j < bytes.len() {
                let c = bytes.get(j).copied().unwrap_or(0);
                if c.is_ascii_alphanumeric() || c == b'_' {
                    name.push(c as char);
                    j += 1;
                } else {
                    break;
                }
            }
            if !name.is_empty()
                && name
                    .bytes()
                    .next()
                    .is_some_and(|c| c.is_ascii_alphabetic() || c == b'_')
            {
                let closes = matches!(bytes.get(j).copied(), Some(b'}') | Some(b':'));
                if closes {
                    out.push(name);
                }
            }
            i = j.max(i + 1);
        } else {
            i += 1;
        }
    }
    out
}

/// How a call's statement context discards (or keeps) its value.
#[derive(Clone, Copy, PartialEq)]
enum StmtCtx {
    None,
    LetUnderscore,
    StmtDrop,
}

/// Derive the legacy [`CallSite`] list from a parsed body, preserving the
/// statement-level semantics the `E1`/`K1` passes were built on: calls in
/// source order; the *outermost* call of a `expr;` statement is a
/// [`Discard::StmtDrop`], of a `let _ = expr;` statement a
/// [`Discard::LetUnderscore`]; every other call keeps its value.
pub(crate) fn collect_calls(body: &[Stmt], sig: &[&Token<'_>]) -> Vec<crate::parser::CallSite> {
    let mut acc: Vec<(usize, CallSite)> = Vec::new();
    collect_calls_block(body, sig, &mut acc);
    acc.sort_by_key(|(tok, _)| *tok);
    acc.into_iter().map(|(_, c)| c).collect()
}

fn collect_calls_block(stmts: &[Stmt], sig: &[&Token<'_>], acc: &mut Vec<(usize, CallSite)>) {
    for stmt in stmts {
        match stmt {
            Stmt::Let {
                pat,
                init,
                else_block,
                ..
            } => {
                if let Some(init) = init {
                    let ctx = if matches!(pat, Pat::Wild) {
                        StmtCtx::LetUnderscore
                    } else {
                        StmtCtx::None
                    };
                    collect_calls_expr(init, sig, ctx, acc);
                }
                if let Some(block) = else_block {
                    collect_calls_block(block, sig, acc);
                }
            }
            Stmt::Expr { expr, semi } => {
                let ctx = if *semi {
                    StmtCtx::StmtDrop
                } else {
                    StmtCtx::None
                };
                collect_calls_expr(expr, sig, ctx, acc);
            }
        }
    }
}

/// Walk one expression; `ctx` applies to the outermost call only.
fn collect_calls_expr(
    expr: &Expr,
    sig: &[&Token<'_>],
    ctx: StmtCtx,
    acc: &mut Vec<(usize, CallSite)>,
) {
    match &expr.kind {
        ExprKind::Call { callee, args } => {
            if let ExprKind::Path(segs) = &callee.kind {
                if let Some(name) = segs.last() {
                    let (line, col) = sig
                        .get(callee.name_tok)
                        .map(|t| (t.line, t.col))
                        .unwrap_or((expr.line, expr.col));
                    acc.push((
                        callee.name_tok,
                        CallSite {
                            name: name.clone(),
                            recv: Vec::new(),
                            path: segs.clone(),
                            is_method: false,
                            line,
                            col,
                            discard: discard_of(ctx),
                        },
                    ));
                }
            } else {
                collect_calls_expr(callee, sig, StmtCtx::None, acc);
            }
            for arg in args {
                collect_calls_expr(arg, sig, StmtCtx::None, acc);
            }
        }
        ExprKind::MethodCall {
            recv, name, args, ..
        } => {
            let recv_path = recv.plain_path().unwrap_or_default();
            let (line, col) = sig
                .get(expr.name_tok)
                .map(|t| (t.line, t.col))
                .unwrap_or((expr.line, expr.col));
            acc.push((
                expr.name_tok,
                CallSite {
                    name: name.clone(),
                    recv: recv_path,
                    path: Vec::new(),
                    is_method: true,
                    line,
                    col,
                    discard: discard_of(ctx),
                },
            ));
            collect_calls_expr(recv, sig, StmtCtx::None, acc);
            for arg in args {
                collect_calls_expr(arg, sig, StmtCtx::None, acc);
            }
        }
        _ => {
            for_each_child(expr, &mut |child| {
                collect_calls_expr(child, sig, StmtCtx::None, acc);
            });
            for block in child_blocks(expr) {
                collect_calls_block(block, sig, acc);
            }
            if let ExprKind::Match { arms, .. } = &expr.kind {
                for arm in arms {
                    if let Some(guard) = &arm.guard {
                        collect_calls_expr(guard, sig, StmtCtx::None, acc);
                    }
                    collect_calls_expr(&arm.body, sig, StmtCtx::None, acc);
                }
            }
        }
    }
}

fn discard_of(ctx: StmtCtx) -> Discard {
    match ctx {
        StmtCtx::None => Discard::None,
        StmtCtx::LetUnderscore => Discard::LetUnderscore,
        StmtCtx::StmtDrop => Discard::StmtDrop,
    }
}

/// Visit each direct child *expression* of `expr` (blocks excluded; see
/// [`child_blocks`]; match guards/bodies handled by callers needing them).
pub fn for_each_child<'e>(expr: &'e Expr, visit: &mut impl FnMut(&'e Expr)) {
    match &expr.kind {
        ExprKind::Unary { operand, .. }
        | ExprKind::Ref { operand, .. }
        | ExprKind::Cast { operand, .. }
        | ExprKind::Try { operand } => visit(operand),
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            visit(lhs);
            visit(rhs);
        }
        ExprKind::Call { callee, args } => {
            visit(callee);
            for a in args {
                visit(a);
            }
        }
        ExprKind::MethodCall { recv, args, .. } => {
            visit(recv);
            for a in args {
                visit(a);
            }
        }
        ExprKind::MacroCall { args, .. } => {
            for a in args {
                visit(a);
            }
        }
        ExprKind::Field { base, .. } => visit(base),
        ExprKind::Index { base, index } => {
            visit(base);
            visit(index);
        }
        ExprKind::Range { lo, hi, .. } => {
            if let Some(lo) = lo {
                visit(lo);
            }
            if let Some(hi) = hi {
                visit(hi);
            }
        }
        ExprKind::Tuple(elems) | ExprKind::Array(elems) => {
            for e in elems {
                visit(e);
            }
        }
        ExprKind::Repeat { elem, len } => {
            visit(elem);
            visit(len);
        }
        ExprKind::StructLit { fields, rest, .. } => {
            for (_, e) in fields {
                visit(e);
            }
            if let Some(rest) = rest {
                visit(rest);
            }
        }
        ExprKind::If {
            cond, else_expr, ..
        } => {
            visit(cond);
            if let Some(e) = else_expr {
                visit(e);
            }
        }
        ExprKind::IfLet {
            scrutinee,
            else_expr,
            ..
        } => {
            visit(scrutinee);
            if let Some(e) = else_expr {
                visit(e);
            }
        }
        ExprKind::While { cond, .. } => visit(cond),
        ExprKind::WhileLet { scrutinee, .. } => visit(scrutinee),
        ExprKind::For { iter, .. } => visit(iter),
        ExprKind::Match { scrutinee, .. } => visit(scrutinee),
        ExprKind::Closure { body, .. } => visit(body),
        ExprKind::Return(operand) | ExprKind::Break(operand) => {
            if let Some(e) = operand {
                visit(e);
            }
        }
        ExprKind::Path(_)
        | ExprKind::Lit(_)
        | ExprKind::Block(_)
        | ExprKind::Loop { .. }
        | ExprKind::Continue
        | ExprKind::Unknown => {}
    }
}

/// The statement blocks directly owned by `expr` (loop bodies, branch
/// blocks) — callers recurse into these for whole-tree walks.
pub fn child_blocks(expr: &Expr) -> Vec<&Vec<Stmt>> {
    match &expr.kind {
        ExprKind::Block(b) => vec![b],
        ExprKind::If { then_block, .. } => vec![then_block],
        ExprKind::IfLet { then_block, .. } => vec![then_block],
        ExprKind::While { body, .. }
        | ExprKind::WhileLet { body, .. }
        | ExprKind::For { body, .. }
        | ExprKind::Loop { body } => vec![body],
        _ => Vec::new(),
    }
}

/// Visit every expression in a statement list, descending into nested
/// blocks and control flow.
pub fn for_each_expr<'b>(stmts: &'b [Stmt], f: &mut impl FnMut(&'b Expr)) {
    fn visit<'b>(e: &'b Expr, f: &mut impl FnMut(&'b Expr)) {
        f(e);
        for_each_child(e, &mut |c| visit(c, f));
        for block in child_blocks(e) {
            for_each_expr(block, f);
        }
    }
    for stmt in stmts {
        match stmt {
            Stmt::Let {
                init, else_block, ..
            } => {
                if let Some(e) = init {
                    visit(e, f);
                }
                if let Some(b) = else_block {
                    for_each_expr(b, f);
                }
            }
            Stmt::Expr { expr, .. } => visit(expr, f),
        }
    }
}

/// Visit every `let` statement (pattern, type annotation, initializer)
/// in a statement list, including lets inside nested blocks, in source
/// order.
pub fn for_each_let<'b>(
    stmts: &'b [Stmt],
    f: &mut impl FnMut(&'b Pat, &'b [String], Option<&'b Expr>),
) {
    fn in_expr<'b>(e: &'b Expr, f: &mut impl FnMut(&'b Pat, &'b [String], Option<&'b Expr>)) {
        for_each_child(e, &mut |c| in_expr(c, f));
        for block in child_blocks(e) {
            for_each_let(block, f);
        }
    }
    for stmt in stmts {
        match stmt {
            Stmt::Let {
                pat,
                ty,
                init,
                else_block,
                ..
            } => {
                f(pat, ty, init.as_ref());
                if let Some(e) = init {
                    in_expr(e, f);
                }
                if let Some(b) = else_block {
                    for_each_let(b, f);
                }
            }
            Stmt::Expr { expr, .. } => in_expr(expr, f),
        }
    }
}
