//! The finding model shared by rule passes, invariant checks, and reporters.

use serde::Serialize;

/// How severe a finding is; `Deny` findings always fail the lint,
/// `Warn` findings fail only under `--deny-warnings`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Severity {
    /// Advisory; fails the run only under `--deny-warnings`.
    Warn,
    /// Always fails the run unless allowlisted.
    Deny,
}

impl Severity {
    /// Lower-case display name (`"warn"` / `"deny"`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// One lint finding, pointing at a file/line/column with a rule ID.
///
/// Data-invariant findings (taxonomy checks) point at the vocabulary source
/// file with line 0 — they describe table contents, not a specific line.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Finding {
    /// Stable rule identifier (`D1`, `R1`, `T1`, ...).
    pub rule: &'static str,
    /// Severity class of the rule that fired.
    pub severity: Severity,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line, or 0 for whole-file/data findings.
    pub line: u32,
    /// 1-based column, or 0 when not applicable.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// Offending source line (or table entry), trimmed; may be empty.
    pub snippet: String,
    /// Machine-applicable rewrite, when the rule can prove one.
    pub fix: Option<crate::fix::Fix>,
}

impl Finding {
    /// Build a finding at an explicit position.
    pub fn at(
        rule: &'static str,
        severity: Severity,
        file: &str,
        line: u32,
        col: u32,
        message: String,
        snippet: String,
    ) -> Finding {
        Finding {
            rule,
            severity,
            file: file.to_string(),
            line,
            col,
            message,
            snippet,
            fix: None,
        }
    }

    /// Build a whole-file (data-invariant) finding with no position.
    pub fn for_data(rule: &'static str, file: &str, message: String, snippet: String) -> Finding {
        Finding::at(rule, Severity::Deny, file, 0, 0, message, snippet)
    }
}

/// Deterministic ordering for reports: by file, then line, column, rule.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
}
