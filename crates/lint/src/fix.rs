//! Machine-applicable fixes: span-anchored rewrites attached to findings.
//!
//! A [`Fix`] is a set of non-overlapping byte-range edits against the
//! exact on-disk source the scan read. Byte offsets are derived from the
//! lexer's 1-based line/byte-column positions (the token stream
//! round-trips byte-for-byte, so `line_starts[line-1] + col - 1` is
//! exact). The `--fix` driver in `main.rs` applies edits last-to-first
//! per file, re-lints, and repeats to a fixpoint; `--fix --dry-run`
//! renders the would-be changes as a unified diff instead.
//!
//! Only a vetted rule subset attaches fixes — a fix must be
//! behavior-preserving by construction, not merely plausible:
//!
//! - `E1`: `let _ = fallible();` → `let _ignored = fallible();` (a named
//!   discard the rule no longer counts, and rustc's unused-variable lint
//!   ignores);
//! - `C2`: hoist a whole-line loop-invariant `let y = x.clone();` to
//!   immediately above the loop (attached only when every in-loop use of
//!   `y` is read-shaped, so the hoisted value is never moved twice);
//! - `H2`: `Vec::new()` → `Vec::with_capacity(xs.len())` when the
//!   binding's only growth site is a `for` loop over a plain iterable
//!   whose length is the provable element count;
//! - `N1`: `x as u64` → `u64::from(x)` when the cast is a provable
//!   widening with the exact std `From` impl (lossy casts never get a
//!   fix — the right rewrite needs a human overflow policy).

use serde::Serialize;

/// One byte-range replacement against a file's current contents.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FixEdit {
    /// Inclusive start byte offset.
    pub start: usize,
    /// Exclusive end byte offset (`start == end` is a pure insertion).
    pub end: usize,
    /// Replacement text for the range.
    pub replacement: String,
}

/// A machine-applicable rewrite: a short title plus its edits, all
/// against the same file as the finding that carries it.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fix {
    /// One-line description of what applying the fix does.
    pub title: String,
    /// Byte-range edits, in ascending `start` order, non-overlapping.
    pub edits: Vec<FixEdit>,
}

/// Byte offset of a 1-based `(line, col)` position within source held as
/// newline-split lines (the `AnalyzedFile::lines` representation; each
/// line implicitly ends with `\n`).
pub fn offset_in_lines(lines: &[String], line: u32, col: u32) -> usize {
    let line = line.saturating_sub(1) as usize;
    let mut offset = 0usize;
    for l in lines.iter().take(line) {
        offset += l.len() + 1;
    }
    offset + col.saturating_sub(1) as usize
}

/// Apply a set of edits to `src`. Edits are sorted by start offset, and
/// when two overlap the *earlier* one wins: the later edit is dropped
/// from this round and re-derived by the next `--fix` fixpoint iteration
/// against the rewritten text. (The previous last-to-first policy kept
/// the later edit instead, which silently discarded the first finding's
/// fix whenever two findings shared a line.) Kept edits are applied
/// last-to-first so earlier offsets stay valid; an edit that reaches
/// past the end of the source or splits a UTF-8 character is skipped
/// outright.
pub fn apply_edits(src: &str, edits: &[FixEdit]) -> String {
    let mut sorted: Vec<&FixEdit> = edits
        .iter()
        .filter(|e| e.start <= e.end && e.end <= src.len())
        .filter(|e| src.is_char_boundary(e.start) && src.is_char_boundary(e.end))
        .collect();
    sorted.sort_by_key(|e| (e.start, e.end));
    let mut kept: Vec<&FixEdit> = Vec::new();
    for edit in sorted {
        if kept.last().is_some_and(|prev| edit.start < prev.end) {
            continue;
        }
        kept.push(edit);
    }
    let mut out = src.to_string();
    for edit in kept.iter().rev() {
        out.replace_range(edit.start..edit.end, &edit.replacement);
    }
    out
}

/// Render a minimal unified diff between two versions of one file: the
/// common prefix and suffix are trimmed line-wise and the changed middle
/// is emitted as a single hunk with three lines of context. Empty when
/// the texts are identical.
pub fn unified_diff(path: &str, old: &str, new: &str) -> String {
    if old == new {
        return String::new();
    }
    let old_lines: Vec<&str> = old.lines().collect();
    let new_lines: Vec<&str> = new.lines().collect();
    let mut prefix = 0usize;
    while old_lines.get(prefix).is_some() && old_lines.get(prefix) == new_lines.get(prefix) {
        prefix += 1;
    }
    let last = |lines: &[&str], back: usize| -> Option<String> {
        lines
            .len()
            .checked_sub(1 + back)
            .and_then(|i| lines.get(i).map(|l| l.to_string()))
    };
    let mut suffix = 0usize;
    while suffix < old_lines.len().saturating_sub(prefix)
        && suffix < new_lines.len().saturating_sub(prefix)
        && last(&old_lines, suffix) == last(&new_lines, suffix)
    {
        suffix += 1;
    }
    let context = 3usize;
    let ctx_start = prefix.saturating_sub(context);
    let trailing = context.min(suffix);
    let old_mid = old_lines.len().saturating_sub(suffix) - ctx_start;
    let new_mid = new_lines.len().saturating_sub(suffix) - ctx_start;
    let mut out = String::new();
    out.push_str(&format!("--- a/{path}\n+++ b/{path}\n"));
    out.push_str(&format!(
        "@@ -{},{} +{},{} @@\n",
        ctx_start + 1,
        old_mid + trailing,
        ctx_start + 1,
        new_mid + trailing
    ));
    for line in old_lines.iter().skip(ctx_start).take(prefix - ctx_start) {
        out.push_str(&format!(" {line}\n"));
    }
    for line in old_lines
        .iter()
        .skip(prefix)
        .take(old_mid - (prefix - ctx_start))
    {
        out.push_str(&format!("-{line}\n"));
    }
    for line in new_lines
        .iter()
        .skip(prefix)
        .take(new_mid - (prefix - ctx_start))
    {
        out.push_str(&format!("+{line}\n"));
    }
    let tail_at = old_lines.len().saturating_sub(suffix);
    for line in old_lines.iter().skip(tail_at).take(trailing) {
        out.push_str(&format!(" {line}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_match_byte_positions() {
        let lines: Vec<String> = vec!["fn f() {".to_string(), "    let x = 1;".to_string()];
        // Line 2, col 5 is the `l` of `let`: 9 bytes of line 1 + newline
        // + 4 columns.
        assert_eq!(offset_in_lines(&lines, 2, 5), 13);
        assert_eq!(offset_in_lines(&lines, 1, 1), 0);
    }

    #[test]
    fn edits_apply_in_any_supplied_order() {
        let src = "let _ = a();\nlet _ = b();\n";
        let edits = vec![
            FixEdit {
                start: 17,
                end: 18,
                replacement: "_ignored".to_string(),
            },
            FixEdit {
                start: 4,
                end: 5,
                replacement: "_ignored".to_string(),
            },
        ];
        assert_eq!(
            apply_edits(src, &edits),
            "let _ignored = a();\nlet _ignored = b();\n"
        );
    }

    #[test]
    fn overlapping_and_out_of_range_edits_are_skipped() {
        let src = "abcdef";
        let edits = vec![
            FixEdit {
                start: 1,
                end: 4,
                replacement: "X".to_string(),
            },
            FixEdit {
                start: 3,
                end: 5,
                replacement: "Y".to_string(),
            },
            FixEdit {
                start: 90,
                end: 99,
                replacement: "Z".to_string(),
            },
        ];
        // Earlier-edit-wins: 1..4 applies, the overlapping 3..5 is
        // deferred to the next fixpoint round, 90..99 is out of range.
        assert_eq!(apply_edits(src, &edits), "aXef");
    }

    #[test]
    fn same_line_overlapping_fixes_converge_over_two_rounds() {
        // Two findings on one line, C2-shaped and E1-shaped, whose edits
        // overlap: a hoist that rewrites the whole statement and a rename
        // inside it. Round one must apply the earlier (hoist) edit and
        // defer the rename; round two, re-derived against the new text,
        // reaches the fixpoint.
        let src = "let h = header.clone(); let _ = send(h);\n";
        let round_one = vec![
            // C2-style hoist: rewrite the clone statement in place.
            FixEdit {
                start: 0,
                end: 23,
                replacement: "let h = &header;".to_string(),
            },
            // E1-style rename on the same line, anchored inside the
            // region the first edit rewrites.
            FixEdit {
                start: 22,
                end: 29,
                replacement: "; let _ignored".to_string(),
            },
        ];
        let after_one = apply_edits(src, &round_one);
        // Only the earlier edit landed; the later was deferred, so the
        // discard is still unnamed.
        assert_eq!(after_one, "let h = &header; let _ = send(h);\n");

        // The re-lint re-derives the rename against the rewritten text.
        let round_two = vec![FixEdit {
            start: 21,
            end: 22,
            replacement: "_ignored".to_string(),
        }];
        let after_two = apply_edits(&after_one, &round_two);
        assert_eq!(after_two, "let h = &header; let _ignored = send(h);\n");
        // Fixpoint: applying no edits changes nothing.
        assert_eq!(apply_edits(&after_two, &[]), after_two);
    }

    #[test]
    fn diff_is_empty_only_for_identical_text() {
        assert_eq!(unified_diff("f.rs", "a\nb\n", "a\nb\n"), "");
        let d = unified_diff("f.rs", "a\nb\nc\n", "a\nX\nc\n");
        assert!(d.contains("--- a/f.rs"), "{d}");
        assert!(d.contains("-b"), "{d}");
        assert!(d.contains("+X"), "{d}");
    }
}
