//! Machine-applicable fixes: span-anchored rewrites attached to findings.
//!
//! A [`Fix`] is a set of non-overlapping byte-range edits against the
//! exact on-disk source the scan read. Byte offsets are derived from the
//! lexer's 1-based line/byte-column positions (the token stream
//! round-trips byte-for-byte, so `line_starts[line-1] + col - 1` is
//! exact). The `--fix` driver in `main.rs` applies edits last-to-first
//! per file, re-lints, and repeats to a fixpoint; `--fix --dry-run`
//! renders the would-be changes as a unified diff instead.
//!
//! Only a vetted rule subset attaches fixes — a fix must be
//! behavior-preserving by construction, not merely plausible:
//!
//! - `E1`: `let _ = fallible();` → `let _ignored = fallible();` (a named
//!   discard the rule no longer counts, and rustc's unused-variable lint
//!   ignores);
//! - `C2`: hoist a whole-line loop-invariant `let y = x.clone();` to
//!   immediately above the loop (attached only when every in-loop use of
//!   `y` is read-shaped, so the hoisted value is never moved twice);
//! - `H2`: `Vec::new()` → `Vec::with_capacity(xs.len())` when the
//!   binding's only growth site is a `for` loop over a plain iterable
//!   whose length is the provable element count.

use serde::Serialize;

/// One byte-range replacement against a file's current contents.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FixEdit {
    /// Inclusive start byte offset.
    pub start: usize,
    /// Exclusive end byte offset (`start == end` is a pure insertion).
    pub end: usize,
    /// Replacement text for the range.
    pub replacement: String,
}

/// A machine-applicable rewrite: a short title plus its edits, all
/// against the same file as the finding that carries it.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fix {
    /// One-line description of what applying the fix does.
    pub title: String,
    /// Byte-range edits, in ascending `start` order, non-overlapping.
    pub edits: Vec<FixEdit>,
}

/// Byte offset of a 1-based `(line, col)` position within source held as
/// newline-split lines (the `AnalyzedFile::lines` representation; each
/// line implicitly ends with `\n`).
pub fn offset_in_lines(lines: &[String], line: u32, col: u32) -> usize {
    let line = line.saturating_sub(1) as usize;
    let mut offset = 0usize;
    for l in lines.iter().take(line) {
        offset += l.len() + 1;
    }
    offset + col.saturating_sub(1) as usize
}

/// Apply a set of edits to `src`. Edits are sorted by start offset and
/// applied last-to-first so earlier offsets stay valid; an edit that
/// overlaps an already-applied one, or reaches past the end of the
/// source, is skipped (the next `--fix` iteration re-derives it against
/// the new text).
pub fn apply_edits(src: &str, edits: &[FixEdit]) -> String {
    let mut sorted: Vec<&FixEdit> = edits.iter().filter(|e| e.start <= e.end).collect();
    sorted.sort_by_key(|e| (e.start, e.end));
    let mut out = src.to_string();
    let mut applied_floor = usize::MAX;
    for edit in sorted.iter().rev() {
        if edit.end > out.len() || edit.end > applied_floor {
            continue;
        }
        if !out.is_char_boundary(edit.start) || !out.is_char_boundary(edit.end) {
            continue;
        }
        out.replace_range(edit.start..edit.end, &edit.replacement);
        applied_floor = edit.start;
    }
    out
}

/// Render a minimal unified diff between two versions of one file: the
/// common prefix and suffix are trimmed line-wise and the changed middle
/// is emitted as a single hunk with three lines of context. Empty when
/// the texts are identical.
pub fn unified_diff(path: &str, old: &str, new: &str) -> String {
    if old == new {
        return String::new();
    }
    let old_lines: Vec<&str> = old.lines().collect();
    let new_lines: Vec<&str> = new.lines().collect();
    let mut prefix = 0usize;
    while old_lines.get(prefix).is_some() && old_lines.get(prefix) == new_lines.get(prefix) {
        prefix += 1;
    }
    let last = |lines: &[&str], back: usize| -> Option<String> {
        lines
            .len()
            .checked_sub(1 + back)
            .and_then(|i| lines.get(i).map(|l| l.to_string()))
    };
    let mut suffix = 0usize;
    while suffix < old_lines.len().saturating_sub(prefix)
        && suffix < new_lines.len().saturating_sub(prefix)
        && last(&old_lines, suffix) == last(&new_lines, suffix)
    {
        suffix += 1;
    }
    let context = 3usize;
    let ctx_start = prefix.saturating_sub(context);
    let trailing = context.min(suffix);
    let old_mid = old_lines.len().saturating_sub(suffix) - ctx_start;
    let new_mid = new_lines.len().saturating_sub(suffix) - ctx_start;
    let mut out = String::new();
    out.push_str(&format!("--- a/{path}\n+++ b/{path}\n"));
    out.push_str(&format!(
        "@@ -{},{} +{},{} @@\n",
        ctx_start + 1,
        old_mid + trailing,
        ctx_start + 1,
        new_mid + trailing
    ));
    for line in old_lines.iter().skip(ctx_start).take(prefix - ctx_start) {
        out.push_str(&format!(" {line}\n"));
    }
    for line in old_lines
        .iter()
        .skip(prefix)
        .take(old_mid - (prefix - ctx_start))
    {
        out.push_str(&format!("-{line}\n"));
    }
    for line in new_lines
        .iter()
        .skip(prefix)
        .take(new_mid - (prefix - ctx_start))
    {
        out.push_str(&format!("+{line}\n"));
    }
    let tail_at = old_lines.len().saturating_sub(suffix);
    for line in old_lines.iter().skip(tail_at).take(trailing) {
        out.push_str(&format!(" {line}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_match_byte_positions() {
        let lines: Vec<String> = vec!["fn f() {".to_string(), "    let x = 1;".to_string()];
        // Line 2, col 5 is the `l` of `let`: 9 bytes of line 1 + newline
        // + 4 columns.
        assert_eq!(offset_in_lines(&lines, 2, 5), 13);
        assert_eq!(offset_in_lines(&lines, 1, 1), 0);
    }

    #[test]
    fn edits_apply_in_any_supplied_order() {
        let src = "let _ = a();\nlet _ = b();\n";
        let edits = vec![
            FixEdit {
                start: 17,
                end: 18,
                replacement: "_ignored".to_string(),
            },
            FixEdit {
                start: 4,
                end: 5,
                replacement: "_ignored".to_string(),
            },
        ];
        assert_eq!(
            apply_edits(src, &edits),
            "let _ignored = a();\nlet _ignored = b();\n"
        );
    }

    #[test]
    fn overlapping_and_out_of_range_edits_are_skipped() {
        let src = "abcdef";
        let edits = vec![
            FixEdit {
                start: 1,
                end: 4,
                replacement: "X".to_string(),
            },
            FixEdit {
                start: 3,
                end: 5,
                replacement: "Y".to_string(),
            },
            FixEdit {
                start: 90,
                end: 99,
                replacement: "Z".to_string(),
            },
        ];
        // The later (3..5) edit lands first in reverse order, then 1..4
        // overlaps the applied floor and is skipped.
        assert_eq!(apply_edits(src, &edits), "abcYf");
    }

    #[test]
    fn diff_is_empty_only_for_identical_text() {
        assert_eq!(unified_diff("f.rs", "a\nb\n", "a\nb\n"), "");
        let d = unified_diff("f.rs", "a\nb\nc\n", "a\nX\nc\n");
        assert!(d.contains("--- a/f.rs"), "{d}");
        assert!(d.contains("-b"), "{d}");
        assert!(d.contains("+X"), "{d}");
    }
}
